/// \file error_feedback.h
/// \brief Error-feedback (EF / memory) wrapper around any lossy codec.
///
/// Plain lossy compression discards information every round; error feedback
/// (Seide et al. 1-bit SGD; EF-SGD) instead *remembers* what compression
/// destroyed and adds it back before the next encode:
///
///   e_t = v_t + r_{t-1}          (input plus carried residual)
///   p_t = inner.Encode(e_t)
///   r_t = e_t - inner.Decode(p_t)
///
/// The residuals telescope: sum_t Decode(p_t) = sum_t v_t - r_T, so the
/// aggregate the server accumulates trails the uncompressed aggregate by a
/// single round's compression error no matter how many rounds ran — the
/// property tests/comm/error_feedback_test.cc pins. Residuals are kept per
/// `stream` (the simulator keys streams by client and payload slot), so
/// concurrent senders never mix memories. A stream whose dimension changes
/// resets its residual.
///
/// Wire format and byte accounting are the inner codec's; the wrapper adds
/// nothing to the payload.

#ifndef FEDADMM_COMM_ERROR_FEEDBACK_H_
#define FEDADMM_COMM_ERROR_FEEDBACK_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/codec.h"

namespace fedadmm {

/// \brief Accumulates per-stream compression residuals across rounds.
class ErrorFeedbackCodec : public UpdateCodec {
 public:
  explicit ErrorFeedbackCodec(std::unique_ptr<UpdateCodec> inner);

  std::string name() const override;
  Payload Encode(int64_t stream, const std::vector<float>& v,
                 Rng* rng) override;
  std::vector<float> Decode(const Payload& payload) const override;
  /// Wire format is the inner codec's; boundary decode delegates.
  Result<std::vector<float>> TryDecode(const uint8_t* data, size_t len,
                                       int64_t expected_dim) const override {
    return inner_->TryDecode(data, len, expected_dim);
  }
  int64_t WireBytes(int64_t dim) const override;

  bool deterministic() const override { return inner_->deterministic(); }
  /// Residuals accumulate across rounds: a remote encoder's memory would
  /// diverge from the server's — the serving frontend must reject this.
  bool stateful() const override { return true; }

  /// The residual currently carried for `stream` (empty if none yet).
  const std::vector<float>& residual(int64_t stream) const;

  /// Drops all carried residuals (e.g. between independent runs).
  void Reset() { residuals_.clear(); }

  const UpdateCodec& inner() const { return *inner_; }

 private:
  std::unique_ptr<UpdateCodec> inner_;
  std::unordered_map<int64_t, std::vector<float>> residuals_;
};

}  // namespace fedadmm

#endif  // FEDADMM_COMM_ERROR_FEEDBACK_H_
