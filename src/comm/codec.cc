#include "comm/codec.h"

#include <cstdlib>

#include "comm/error_feedback.h"
#include "comm/identity.h"
#include "comm/quantize.h"
#include "comm/topk.h"

namespace fedadmm {
namespace {

// Parses the integer suffix of `spec` after `prefix`; returns -1 when the
// prefix does not match or the suffix is not a bare positive integer.
int ParseIntSuffix(const std::string& spec, const std::string& prefix) {
  if (spec.size() <= prefix.size() ||
      spec.compare(0, prefix.size(), prefix) != 0) {
    return -1;
  }
  const std::string digits = spec.substr(prefix.size());
  char* end = nullptr;
  const long v = std::strtol(digits.c_str(), &end, 10);
  if (end == digits.c_str() || *end != '\0' || v <= 0) return -1;
  return static_cast<int>(v);
}

}  // namespace

Result<std::unique_ptr<UpdateCodec>> MakeUpdateCodec(const std::string& spec) {
  if (spec == "identity") {
    return std::unique_ptr<UpdateCodec>(new IdentityCodec());
  }
  if (spec == "fp16") {
    return std::unique_ptr<UpdateCodec>(new UniformQuantCodec(16));
  }
  if (spec.rfind("ef:", 0) == 0) {
    const std::string inner_spec = spec.substr(3);
    if (inner_spec.rfind("ef:", 0) == 0) {
      return Status::InvalidArgument(
          "MakeUpdateCodec: nested error feedback '" + spec + "'");
    }
    FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<UpdateCodec> inner,
                             MakeUpdateCodec(inner_spec));
    return std::unique_ptr<UpdateCodec>(
        new ErrorFeedbackCodec(std::move(inner)));
  }
  // "sq" must be probed before "q": both prefixes match "sq8".
  if (const int bits = ParseIntSuffix(spec, "sq"); bits > 0) {
    if (bits > 16) {
      return Status::InvalidArgument(
          "MakeUpdateCodec: sq bits must be in 1..16, got '" + spec + "'");
    }
    return std::unique_ptr<UpdateCodec>(new StochasticQuantCodec(bits));
  }
  if (const int bits = ParseIntSuffix(spec, "q"); bits > 0) {
    if (bits > 16) {
      return Status::InvalidArgument(
          "MakeUpdateCodec: q bits must be in 1..16, got '" + spec + "'");
    }
    return std::unique_ptr<UpdateCodec>(new UniformQuantCodec(bits));
  }
  if (const int percent = ParseIntSuffix(spec, "topk"); percent > 0) {
    if (percent > 100) {
      return Status::InvalidArgument(
          "MakeUpdateCodec: topk percent must be in 1..100, got '" + spec +
          "'");
    }
    return std::unique_ptr<UpdateCodec>(new TopKCodec(percent / 100.0));
  }
  return Status::InvalidArgument(
      "MakeUpdateCodec: unknown codec spec '" + spec +
      "' (try identity, q8, fp16, sq4, topk10, ef:topk10)");
}

const std::vector<std::string>& UpdateCodecExampleSpecs() {
  static const std::vector<std::string> kSpecs = {
      "identity", "fp16", "q8", "sq8", "sq4", "topk10", "ef:topk10", "ef:sq4",
  };
  return kSpecs;
}

}  // namespace fedadmm
