#include "comm/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "comm/wire.h"

namespace fedadmm {

TopKCodec::TopKCodec(double fraction) : fraction_(fraction) {
  FEDADMM_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                    "TopKCodec: fraction in (0, 1]");
}

std::string TopKCodec::name() const {
  // Canonical integer-percent spelling; factory specs are integer percents.
  return "topk" + std::to_string(static_cast<int>(
                      std::lround(fraction_ * 100.0)));
}

int64_t TopKCodec::KForDim(int64_t dim) const {
  FEDADMM_CHECK_MSG(dim >= 0, "TopKCodec: negative dim");
  if (dim == 0) return 0;
  const int64_t k = static_cast<int64_t>(
      std::ceil(fraction_ * static_cast<double>(dim)));
  return std::min(dim, std::max<int64_t>(1, k));
}

Payload TopKCodec::Encode(int64_t stream, const std::vector<float>& v,
                          Rng* rng) {
  (void)stream;
  (void)rng;
  const int64_t dim = static_cast<int64_t>(v.size());
  const int64_t k = KForDim(dim);

  // Select the k largest magnitudes; ties prefer the lower index so the
  // wire form is a pure function of the input.
  std::vector<uint32_t> order(v.size());
  std::iota(order.begin(), order.end(), 0u);
  auto larger = [&v](uint32_t a, uint32_t b) {
    const float ma = std::fabs(v[a]);
    const float mb = std::fabs(v[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  if (k < dim) {
    std::nth_element(order.begin(), order.begin() + k, order.end(), larger);
    order.resize(static_cast<size_t>(k));
  }
  std::sort(order.begin(), order.end());

  Payload payload;
  payload.bytes.reserve(static_cast<size_t>(WireBytes(dim)));
  wire::Writer writer(&payload.bytes);
  writer.PutU64(static_cast<uint64_t>(dim));
  writer.PutU64(static_cast<uint64_t>(k));
  for (uint32_t idx : order) writer.PutU32(idx);
  for (uint32_t idx : order) writer.PutF32(v[idx]);
  return payload;
}

std::vector<float> TopKCodec::Decode(const Payload& payload) const {
  wire::Reader reader(payload.bytes);
  const uint64_t dim = reader.GetU64();
  const uint64_t k = reader.GetU64();
  FEDADMM_CHECK_MSG(k <= dim, "TopKCodec: k > dim in payload");
  std::vector<uint32_t> indices(k);
  for (uint64_t i = 0; i < k; ++i) indices[i] = reader.GetU32();
  std::vector<float> v(dim, 0.0f);
  for (uint64_t i = 0; i < k; ++i) {
    FEDADMM_CHECK_MSG(indices[i] < dim, "TopKCodec: index out of range");
    v[indices[i]] = reader.GetF32();
  }
  FEDADMM_CHECK_MSG(reader.remaining() == 0,
                    "TopKCodec: trailing payload bytes");
  return v;
}

Result<std::vector<float>> TopKCodec::TryDecode(const uint8_t* data,
                                                size_t len,
                                                int64_t expected_dim) const {
  wire::ReaderView reader(data, len);
  uint64_t dim = 0;
  uint64_t k = 0;
  FEDADMM_RETURN_IF_ERROR(reader.TryU64(&dim));
  FEDADMM_RETURN_IF_ERROR(reader.TryU64(&k));
  if (expected_dim < 0 || dim != static_cast<uint64_t>(expected_dim)) {
    return Status::InvalidArgument(
        "TopKCodec: payload dim " + std::to_string(dim) + " != expected " +
        std::to_string(expected_dim));
  }
  if (k > dim || len != 16 + 8 * k) {
    return Status::InvalidArgument(
        "TopKCodec: payload is " + std::to_string(len) + " bytes with k=" +
        std::to_string(k) + " at dim " + std::to_string(dim));
  }
  std::vector<uint32_t> indices(k);
  for (uint64_t i = 0; i < k; ++i) {
    FEDADMM_RETURN_IF_ERROR(reader.TryU32(&indices[i]));
    // Encode emits strictly ascending indices; that single check also
    // rejects duplicates and (with the last index) out-of-range writes.
    if (indices[i] >= dim || (i > 0 && indices[i] <= indices[i - 1])) {
      return Status::InvalidArgument(
          "TopKCodec: indices not strictly ascending within dim");
    }
  }
  std::vector<float> v(dim, 0.0f);
  for (uint64_t i = 0; i < k; ++i) {
    FEDADMM_RETURN_IF_ERROR(reader.TryF32(&v[indices[i]]));
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("TopKCodec: trailing payload bytes");
  }
  return {std::move(v)};
}

int64_t TopKCodec::WireBytes(int64_t dim) const {
  return 16 + 8 * KForDim(dim);
}

}  // namespace fedadmm
