#include "comm/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "comm/wire.h"
#include "tensor/simd/simd.h"

namespace fedadmm {
namespace {

// Chunk scale: max |v| over [begin, end). NaNs are rejected (a NaN delta is
// a training bug upstream); infinities cannot be gridded either.
float ChunkScale(const std::vector<float>& v, size_t begin, size_t end) {
  bool saw_nan = false;
  const float scale =
      simd::ActiveKernels().max_abs(v.data() + begin, end - begin, &saw_nan);
  FEDADMM_CHECK_MSG(!saw_nan && std::isfinite(scale),
                    "quantize: non-finite input");
  return scale;
}

}  // namespace

int ChunkedQuantCodec::ValidatedLevels(int bits) {
  FEDADMM_CHECK_MSG(bits >= 1 && bits <= 16,
                    "ChunkedQuantCodec: bits in [1, 16]");
  return (1 << bits) - 1;
}

ChunkedQuantCodec::ChunkedQuantCodec(int bits, int chunk)
    : bits_(bits), chunk_(chunk), levels_(ValidatedLevels(bits)) {
  FEDADMM_CHECK_MSG(chunk >= 1, "ChunkedQuantCodec: chunk >= 1");
}

Payload ChunkedQuantCodec::EncodeImpl(const std::vector<float>& v, Rng* rng) {
  const int64_t dim = static_cast<int64_t>(v.size());
  Payload payload;
  payload.bytes.reserve(static_cast<size_t>(WireBytes(dim)));
  wire::Writer writer(&payload.bytes);
  writer.PutU64(v.size());
  const size_t chunk = static_cast<size_t>(chunk_);
  const simd::KernelTable& kern = simd::ActiveKernels();
  // Deterministic-grid subclasses (round-to-nearest, no Rng) run the batch
  // quantize + pack kernels; the codes they produce are exactly what the
  // per-element path below would feed the BitPacker, so both paths emit
  // identical bytes. Stochastic subclasses keep the sequential path: one
  // Rng draw per coordinate, in coordinate order, is the replay contract.
  const bool batch = UsesDeterministicGrid();
  std::vector<uint16_t> codes(batch ? std::min(chunk, v.size()) : 0);
  for (size_t begin = 0; begin < v.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, v.size());
    const float scale = ChunkScale(v, begin, end);
    writer.PutF32(scale);
    const size_t len = end - begin;
    if (batch) {
      kern.quantize_uniform(v.data() + begin, len, scale, levels_,
                            codes.data());
      uint8_t* out = writer.Extend(static_cast<size_t>(
          wire::BitPacker::PackedBytes(static_cast<int64_t>(len), bits_)));
      kern.pack_codes(codes.data(), len, bits_, out);
      continue;
    }
    wire::BitPacker packer(&writer, bits_);
    for (size_t i = begin; i < end; ++i) {
      // Grid position in [0, L] of v on the symmetric range [-s, +s]. An
      // all-zero chunk quantizes the grid origin (x = 0): code 0 decodes
      // to exactly 0, and the stochastic subclass still consumes its one
      // draw per coordinate, keeping the stream advance data-independent.
      double x = 0.0;
      if (scale > 0.0f) {
        const double dx = static_cast<double>(v[i]) / scale;
        x = (dx + 1.0) / 2.0 * levels_;
      }
      uint32_t code = Quantize(x, rng);
      if (code > static_cast<uint32_t>(levels_)) {
        code = static_cast<uint32_t>(levels_);
      }
      packer.Put(code);
    }
    packer.Flush();
  }
  return payload;
}

std::vector<float> ChunkedQuantCodec::Decode(const Payload& payload) const {
  wire::Reader reader(payload.bytes);
  const uint64_t dim = reader.GetU64();
  std::vector<float> v(dim);
  const size_t chunk = static_cast<size_t>(chunk_);
  // Decoding is the deterministic grid inverse for every subclass (the
  // rounding rule only affects encoding), so the batch kernels always
  // apply: unpack a whole chunk, then map codes to grid points.
  const simd::KernelTable& kern = simd::ActiveKernels();
  std::vector<uint16_t> codes(std::min(chunk, static_cast<size_t>(dim)));
  for (size_t begin = 0; begin < dim; begin += chunk) {
    const size_t end = std::min(begin + chunk, static_cast<size_t>(dim));
    const float scale = reader.GetF32();
    const size_t len = end - begin;
    const uint8_t* bytes = reader.Skip(static_cast<size_t>(
        wire::BitPacker::PackedBytes(static_cast<int64_t>(len), bits_)));
    kern.unpack_codes(bytes, len, bits_, codes.data());
    kern.dequantize_grid(codes.data(), len, scale, levels_, v.data() + begin);
  }
  FEDADMM_CHECK_MSG(reader.remaining() == 0,
                    "ChunkedQuantCodec: trailing payload bytes");
  return v;
}

Result<std::vector<float>> ChunkedQuantCodec::TryDecode(
    const uint8_t* data, size_t len, int64_t expected_dim) const {
  wire::ReaderView reader(data, len);
  uint64_t dim = 0;
  FEDADMM_RETURN_IF_ERROR(reader.TryU64(&dim));
  if (expected_dim < 0 || dim != static_cast<uint64_t>(expected_dim)) {
    return Status::InvalidArgument(
        "ChunkedQuantCodec: payload dim " + std::to_string(dim) +
        " != expected " + std::to_string(expected_dim));
  }
  if (len != static_cast<size_t>(WireBytes(expected_dim))) {
    return Status::InvalidArgument(
        "ChunkedQuantCodec: payload is " + std::to_string(len) +
        " bytes, want " + std::to_string(WireBytes(expected_dim)));
  }
  std::vector<float> v(static_cast<size_t>(dim));
  const size_t chunk = static_cast<size_t>(chunk_);
  const simd::KernelTable& kern = simd::ActiveKernels();
  std::vector<uint16_t> codes(std::min(chunk, v.size()));
  for (size_t begin = 0; begin < v.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, v.size());
    float scale = 0.0f;
    FEDADMM_RETURN_IF_ERROR(reader.TryF32(&scale));
    // A hostile scale cannot crash the grid inverse, but it would smuggle
    // non-finite values into the aggregation reduce; reject at the door.
    if (!std::isfinite(scale) || scale < 0.0f) {
      return Status::InvalidArgument(
          "ChunkedQuantCodec: non-finite or negative chunk scale");
    }
    const size_t packed = static_cast<size_t>(wire::BitPacker::PackedBytes(
        static_cast<int64_t>(end - begin), bits_));
    const uint8_t* bytes = nullptr;
    FEDADMM_RETURN_IF_ERROR(reader.TrySkip(packed, &bytes));
    kern.unpack_codes(bytes, end - begin, bits_, codes.data());
    kern.dequantize_grid(codes.data(), end - begin, scale, levels_,
                         v.data() + begin);
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "ChunkedQuantCodec: trailing payload bytes");
  }
  return {std::move(v)};
}

int64_t ChunkedQuantCodec::WireBytes(int64_t dim) const {
  FEDADMM_CHECK_MSG(dim >= 0, "ChunkedQuantCodec: negative dim");
  int64_t bytes = 8;  // u64 dim
  for (int64_t begin = 0; begin < dim; begin += chunk_) {
    const int64_t len = std::min<int64_t>(chunk_, dim - begin);
    bytes += 4 + wire::BitPacker::PackedBytes(len, bits_);
  }
  return bytes;
}

std::string UniformQuantCodec::name() const {
  std::string n = "q";
  n += std::to_string(bits());
  if (chunk() != kDefaultQuantChunk) {
    n += "c";
    n += std::to_string(chunk());
  }
  return n;
}

Payload UniformQuantCodec::Encode(int64_t stream, const std::vector<float>& v,
                                  Rng* rng) {
  (void)stream;
  return EncodeImpl(v, rng);
}

uint32_t UniformQuantCodec::Quantize(double x, Rng* rng) const {
  (void)rng;
  return static_cast<uint32_t>(std::floor(x + 0.5));
}

std::string StochasticQuantCodec::name() const {
  std::string n = "sq";
  n += std::to_string(bits());
  if (chunk() != kDefaultQuantChunk) {
    n += "c";
    n += std::to_string(chunk());
  }
  return n;
}

Payload StochasticQuantCodec::Encode(int64_t stream,
                                     const std::vector<float>& v, Rng* rng) {
  (void)stream;
  FEDADMM_CHECK_MSG(rng != nullptr, "StochasticQuantCodec: Encode needs Rng");
  return EncodeImpl(v, rng);
}

uint32_t StochasticQuantCodec::Quantize(double x, Rng* rng) const {
  const double base = std::floor(x);
  const double frac = x - base;
  // One uniform draw per coordinate, even when frac == 0, keeps the stream
  // advance independent of the data — replay-stable under tiny perturbations.
  const bool up = rng->Uniform() < frac;
  return static_cast<uint32_t>(base) + (up ? 1u : 0u);
}

}  // namespace fedadmm
