/// \file topk.h
/// \brief Top-k magnitude sparsification with explicit index encoding.
///
/// Keeps the k = ceil(fraction · d) largest-|v| coordinates at full fp32
/// precision and drops the rest to zero; the wire carries (index, value)
/// pairs instead of the dense vector, so the payload shrinks from 4d to
/// 16 + 8k bytes. Kept coordinates reconstruct exactly; every dropped
/// magnitude is <= the smallest kept magnitude (ties broken by lower index
/// first, deterministically). Usually paired with the error-feedback
/// wrapper (comm/error_feedback.h) so dropped mass is retransmitted later
/// instead of lost.
///
/// Wire format (little-endian): u64 dim, u64 k, k × u32 index (strictly
/// ascending), k × f32 value.

#ifndef FEDADMM_COMM_TOPK_H_
#define FEDADMM_COMM_TOPK_H_

#include <string>
#include <vector>

#include "comm/codec.h"

namespace fedadmm {

/// \brief Keep-the-largest sparsifier. Deterministic; ignores the Rng.
class TopKCodec : public UpdateCodec {
 public:
  /// `fraction` in (0, 1]: the kept share of coordinates. A non-empty
  /// vector always keeps at least one coordinate.
  explicit TopKCodec(double fraction);

  std::string name() const override;
  Payload Encode(int64_t stream, const std::vector<float>& v,
                 Rng* rng) override;
  std::vector<float> Decode(const Payload& payload) const override;
  Result<std::vector<float>> TryDecode(const uint8_t* data, size_t len,
                                       int64_t expected_dim) const override;
  int64_t WireBytes(int64_t dim) const override;

  /// k for a d-vector: min(d, max(1, ceil(fraction·d))); 0 when d == 0.
  int64_t KForDim(int64_t dim) const;

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

}  // namespace fedadmm

#endif  // FEDADMM_COMM_TOPK_H_
