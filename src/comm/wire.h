/// \file wire.h
/// \brief Byte-level primitives for codec wire formats.
///
/// Every codec serializes to little-endian bytes through these helpers so
/// `WireBytes()` accounting is exact by construction and payloads are
/// portable across hosts of the same endianness class. The reader bounds-
/// checks every access: a malformed payload is a programmer error (payloads
/// are produced in-process) and aborts via FEDADMM_CHECK.

#ifndef FEDADMM_COMM_WIRE_H_
#define FEDADMM_COMM_WIRE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace fedadmm::wire {

/// \brief Appends fixed-width little-endian values to a byte buffer.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {
    FEDADMM_CHECK(out != nullptr);
  }

  void PutU8(uint8_t v) { out_->push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutF32(float v) {
    uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }

  /// Appends `n` uninitialized-content (zeroed) bytes and returns a pointer
  /// to them, for block writers (e.g. SIMD bit packing) that produce whole
  /// regions at once. The pointer is invalidated by any further append.
  uint8_t* Extend(size_t n) {
    const size_t pos = out_->size();
    out_->resize(pos + n);
    return out_->data() + pos;
  }

 private:
  std::vector<uint8_t>* out_;
};

/// \brief Reads fixed-width little-endian values from a byte buffer.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint8_t GetU8() {
    FEDADMM_CHECK_MSG(pos_ + 1 <= bytes_.size(), "wire: truncated payload");
    return bytes_[pos_++];
  }

  uint32_t GetU32() {
    FEDADMM_CHECK_MSG(pos_ + 4 <= bytes_.size(), "wire: truncated payload");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    FEDADMM_CHECK_MSG(pos_ + 8 <= bytes_.size(), "wire: truncated payload");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  float GetF32() {
    const uint32_t bits = GetU32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Consumes `n` bytes at once and returns a pointer to them, for block
  /// readers (e.g. SIMD bit unpacking) that parse whole regions directly.
  const uint8_t* Skip(size_t n) {
    FEDADMM_CHECK_MSG(pos_ + n <= bytes_.size(), "wire: truncated payload");
    const uint8_t* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

/// \brief Packs fixed-width codes (1..16 bits each) into a byte stream,
/// little-endian within and across bytes. `Flush` pads the final partial
/// byte with zero bits.
class BitPacker {
 public:
  BitPacker(Writer* out, int bits) : out_(out), bits_(bits) {
    FEDADMM_CHECK_MSG(bits >= 1 && bits <= 16, "BitPacker: bits in [1,16]");
  }

  void Put(uint32_t code) {
    acc_ |= static_cast<uint64_t>(code) << filled_;
    filled_ += bits_;
    while (filled_ >= 8) {
      out_->PutU8(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->PutU8(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Exact bytes `count` codes of `bits` bits occupy after Flush.
  static int64_t PackedBytes(int64_t count, int bits) {
    return (count * static_cast<int64_t>(bits) + 7) / 8;
  }

 private:
  Writer* out_;
  int bits_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// \brief Unpacks codes written by `BitPacker`.
class BitUnpacker {
 public:
  BitUnpacker(Reader* reader, int bits) : reader_(reader), bits_(bits) {
    FEDADMM_CHECK_MSG(bits >= 1 && bits <= 16, "BitUnpacker: bits in [1,16]");
  }

  uint32_t Get() {
    while (filled_ < bits_) {
      acc_ |= static_cast<uint64_t>(reader_->GetU8()) << filled_;
      filled_ += 8;
    }
    const uint32_t mask = (1u << bits_) - 1u;
    const uint32_t code = static_cast<uint32_t>(acc_) & mask;
    acc_ >>= bits_;
    filled_ -= bits_;
    return code;
  }

 private:
  Reader* reader_;
  int bits_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace fedadmm::wire

#endif  // FEDADMM_COMM_WIRE_H_
