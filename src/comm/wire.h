/// \file wire.h
/// \brief Byte-level primitives for codec wire formats.
///
/// Every codec serializes to little-endian bytes through these helpers so
/// `WireBytes()` accounting is exact by construction and payloads are
/// portable across hosts of the same endianness class. Two reader tiers:
///
///   * `Reader` bounds-checks every access and aborts via FEDADMM_CHECK —
///     for payloads produced in-process, where truncation is a programmer
///     error.
///   * `ReaderView` returns Status instead — the only legal parser for
///     bytes that crossed a process/network boundary (src/serve), where a
///     malformed frame is an input, not a bug, and must never abort.
///
/// On little-endian hosts the fixed-width paths are single memcpys (the
/// per-byte shift loops remain as the big-endian fallback and the byte
/// contract: tests/comm/wire_view_test.cc pins both against hardcoded
/// little-endian sequences).

#ifndef FEDADMM_COMM_WIRE_H_
#define FEDADMM_COMM_WIRE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace fedadmm::wire {

// The host stores integers in wire order: fixed-width puts/gets are single
// memcpys instead of per-byte shift loops (identical bytes either way).
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline constexpr bool kHostIsLittleEndian = true;
#else
inline constexpr bool kHostIsLittleEndian = false;
#endif

/// \brief Appends fixed-width little-endian values to a byte buffer.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {
    FEDADMM_CHECK(out != nullptr);
  }

  void PutU8(uint8_t v) { out_->push_back(v); }

  void PutU16(uint16_t v) {
    out_->push_back(static_cast<uint8_t>(v));
    out_->push_back(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    if constexpr (kHostIsLittleEndian) {
      const size_t pos = out_->size();
      out_->resize(pos + sizeof(v));
      std::memcpy(out_->data() + pos, &v, sizeof(v));
    } else {
      for (int i = 0; i < 4; ++i) {
        out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
      }
    }
  }

  void PutU64(uint64_t v) {
    if constexpr (kHostIsLittleEndian) {
      const size_t pos = out_->size();
      out_->resize(pos + sizeof(v));
      std::memcpy(out_->data() + pos, &v, sizeof(v));
    } else {
      for (int i = 0; i < 8; ++i) {
        out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
      }
    }
  }

  void PutF32(float v) {
    uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }

  void PutF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Appends `n` uninitialized-content (zeroed) bytes and returns a pointer
  /// to them, for block writers (e.g. SIMD bit packing) that produce whole
  /// regions at once. The pointer is invalidated by any further append.
  uint8_t* Extend(size_t n) {
    const size_t pos = out_->size();
    out_->resize(pos + n);
    return out_->data() + pos;
  }

 private:
  std::vector<uint8_t>* out_;
};

/// \brief Reads fixed-width little-endian values from a byte buffer.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint8_t GetU8() {
    FEDADMM_CHECK_MSG(pos_ + 1 <= bytes_.size(), "wire: truncated payload");
    return bytes_[pos_++];
  }

  uint32_t GetU32() {
    FEDADMM_CHECK_MSG(pos_ + 4 <= bytes_.size(), "wire: truncated payload");
    uint32_t v = 0;
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    } else {
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(bytes_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
      }
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    FEDADMM_CHECK_MSG(pos_ + 8 <= bytes_.size(), "wire: truncated payload");
    uint64_t v = 0;
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    } else {
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(bytes_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
      }
    }
    pos_ += 8;
    return v;
  }

  float GetF32() {
    const uint32_t bits = GetU32();
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Consumes `n` bytes at once and returns a pointer to them, for block
  /// readers (e.g. SIMD bit unpacking) that parse whole regions directly.
  const uint8_t* Skip(size_t n) {
    FEDADMM_CHECK_MSG(pos_ + n <= bytes_.size(), "wire: truncated payload");
    const uint8_t* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

/// \brief Status-returning little-endian parser over a borrowed byte span.
///
/// The boundary twin of `Reader`: every accessor reports truncation as
/// `Status::InvalidArgument` instead of aborting, so network-supplied bytes
/// can be parsed without trusting them. Out-parameters (rather than
/// `Result<T>`) keep the hot ingest path allocation-free.
class ReaderView {
 public:
  ReaderView(const uint8_t* data, size_t len) : data_(data), len_(len) {
    FEDADMM_CHECK(data != nullptr || len == 0);
  }

  Status TryU8(uint8_t* out) {
    if (pos_ + 1 > len_) return Truncated();
    *out = data_[pos_++];
    return Status::OK();
  }

  Status TryU16(uint16_t* out) {
    if (pos_ + 2 > len_) return Truncated();
    *out = static_cast<uint16_t>(
        static_cast<uint16_t>(data_[pos_]) |
        (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return Status::OK();
  }

  Status TryU32(uint32_t* out) {
    if (pos_ + 4 > len_) return Truncated();
    uint32_t v = 0;
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(&v, data_ + pos_, sizeof(v));
    } else {
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status TryU64(uint64_t* out) {
    if (pos_ + 8 > len_) return Truncated();
    uint64_t v = 0;
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(&v, data_ + pos_, sizeof(v));
    } else {
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
      }
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status TryF32(float* out) {
    uint32_t bits = 0;
    FEDADMM_RETURN_IF_ERROR(TryU32(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status TryF64(double* out) {
    uint64_t bits = 0;
    FEDADMM_RETURN_IF_ERROR(TryU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  /// Consumes `n` bytes at once, pointing `*out` at them (valid while the
  /// underlying span lives) — the Status twin of `Reader::Skip` for block
  /// parsers (SIMD bit unpacking, payload views).
  Status TrySkip(size_t n, const uint8_t** out) {
    if (n > len_ - pos_) return Truncated();
    *out = data_ + pos_;
    pos_ += n;
    return Status::OK();
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return len_ - pos_; }
  /// Bytes consumed so far.
  size_t consumed() const { return pos_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("wire: truncated payload");
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// \brief Packs fixed-width codes (1..16 bits each) into a byte stream,
/// little-endian within and across bytes. `Flush` pads the final partial
/// byte with zero bits.
class BitPacker {
 public:
  BitPacker(Writer* out, int bits) : out_(out), bits_(bits) {
    FEDADMM_CHECK_MSG(bits >= 1 && bits <= 16, "BitPacker: bits in [1,16]");
  }

  void Put(uint32_t code) {
    acc_ |= static_cast<uint64_t>(code) << filled_;
    filled_ += bits_;
    while (filled_ >= 8) {
      out_->PutU8(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->PutU8(static_cast<uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  /// Exact bytes `count` codes of `bits` bits occupy after Flush.
  static int64_t PackedBytes(int64_t count, int bits) {
    return (count * static_cast<int64_t>(bits) + 7) / 8;
  }

 private:
  Writer* out_;
  int bits_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// \brief Unpacks codes written by `BitPacker`.
class BitUnpacker {
 public:
  BitUnpacker(Reader* reader, int bits) : reader_(reader), bits_(bits) {
    FEDADMM_CHECK_MSG(bits >= 1 && bits <= 16, "BitUnpacker: bits in [1,16]");
  }

  uint32_t Get() {
    while (filled_ < bits_) {
      acc_ |= static_cast<uint64_t>(reader_->GetU8()) << filled_;
      filled_ += 8;
    }
    const uint32_t mask = (1u << bits_) - 1u;
    const uint32_t code = static_cast<uint32_t>(acc_) & mask;
    acc_ >>= bits_;
    filled_ -= bits_;
    return code;
  }

 private:
  Reader* reader_;
  int bits_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace fedadmm::wire

#endif  // FEDADMM_COMM_WIRE_H_
