/// \file codec.h
/// \brief Update compression: the codec interface and payload type.
///
/// In cross-device FL the uplink dominates deployment cost, so the simulator
/// models what real systems do: each client update is *encoded* to a wire
/// payload, the payload's exact byte size is billed to the virtual clock
/// (sys/virtual_clock.h), and the server aggregates the *decoded* — lossy —
/// reconstruction. An `UpdateCodec` bundles the three operations:
///
///   * `Encode`   — vector in R^d to a self-describing byte payload;
///   * `Decode`   — payload back to R^d (`Decode(Encode(v)).size() ==
///                  v.size()` always; values within the codec's bound);
///   * `WireBytes(dim)` — the exact serialized size for a d-vector, used by
///                  the accounting paths without materializing a payload.
///
/// Codecs are deterministic given their inputs: stochastic codecs draw every
/// random bit from the caller-provided `Rng` (the simulator forks a
/// per-(round, client) stream), so replay is bitwise reproducible across
/// thread counts. `Encode` may mutate codec state (the error-feedback
/// wrapper accumulates residuals) and is therefore called serially by the
/// simulator; `Decode` and `WireBytes` are const and thread-safe.

#ifndef FEDADMM_COMM_CODEC_H_
#define FEDADMM_COMM_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace fedadmm {

/// \brief An encoded update as it would travel the network.
struct Payload {
  /// The serialized wire form; `bytes.size()` IS the transfer size.
  std::vector<uint8_t> bytes;

  /// Exact bytes this payload occupies on the wire.
  int64_t WireBytes() const { return static_cast<int64_t>(bytes.size()); }
};

/// \brief A lossy (or lossless) vector compressor with exact accounting.
class UpdateCodec {
 public:
  virtual ~UpdateCodec() = default;

  /// Canonical spec string, e.g. "q8", "topk10", "ef:sq4" — round-trips
  /// through `MakeUpdateCodec`.
  virtual std::string name() const = 0;

  /// Encodes `v` into a self-describing payload. `stream` identifies the
  /// logical sender slot for stateful codecs (the simulator passes
  /// 2*client_id for the primary payload, 2*client_id+1 for the secondary,
  /// and kBroadcastStream for the server broadcast); stateless codecs
  /// ignore it. `rng` drives stochastic codecs and may be nullptr for
  /// deterministic ones. Called serially — may mutate codec state.
  virtual Payload Encode(int64_t stream, const std::vector<float>& v,
                         Rng* rng) = 0;

  /// Reconstructs a vector from `payload`. Pure function of the bytes.
  /// CHECK-aborts on malformed bytes — only for payloads produced
  /// in-process; boundary bytes go through `TryDecode`.
  virtual std::vector<float> Decode(const Payload& payload) const = 0;

  /// Status-returning decode for bytes that crossed a process/network
  /// boundary (src/serve): validates the structure against `expected_dim`
  /// before allocating and never aborts. On success the result is bitwise
  /// identical to `Decode` of the same bytes. Thread-safe (const). The
  /// default rejects — codecs opt in.
  virtual Result<std::vector<float>> TryDecode(const uint8_t* data,
                                               size_t len,
                                               int64_t expected_dim) const {
    (void)data;
    (void)len;
    (void)expected_dim;
    return Status::Unimplemented("UpdateCodec: " + name() +
                                 " does not support boundary decode");
  }

  /// Exact `Encode(...).WireBytes()` for any vector of length `dim`.
  virtual int64_t WireBytes(int64_t dim) const = 0;

  /// True when `Encode` is a pure function of its input vector (no Rng
  /// draws). A serving frontend can only reproduce the in-process
  /// trajectory bitwise for deterministic uplink codecs — the client-side
  /// encoder has no access to the server's per-(round, client) streams.
  virtual bool deterministic() const { return true; }

  /// True when `Encode` mutates cross-round codec state (error feedback).
  /// Stateful uplink codecs are rejected by the serving frontend: the
  /// client-side and server-side residual histories could diverge.
  virtual bool stateful() const { return false; }
};

/// Stream id the simulator uses when the server encodes the θ broadcast.
inline constexpr int64_t kBroadcastStream = -1;

/// \brief Builds a codec from a spec string:
///   * "identity"        — raw fp32, lossless;
///   * "q<b>", b in 1..16 — uniform b-bit quantization, per-chunk scale,
///                          deterministic rounding ("fp16" = alias of "q16");
///   * "sq<b>", b in 1..16 — stochastic (unbiased) b-bit quantization; needs
///                          an Rng at Encode time;
///   * "topk<p>", p in 1..100 — keep the ceil(p% · d) largest-magnitude
///                          coordinates (indices + values on the wire);
///   * "ef:<inner>"      — error-feedback wrapper around any of the above,
///                          accumulating residuals per stream across rounds.
/// Returns InvalidArgument for anything else.
Result<std::unique_ptr<UpdateCodec>> MakeUpdateCodec(const std::string& spec);

/// Example specs for help strings and sweeps.
const std::vector<std::string>& UpdateCodecExampleSpecs();

}  // namespace fedadmm

#endif  // FEDADMM_COMM_CODEC_H_
