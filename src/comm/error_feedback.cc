#include "comm/error_feedback.h"

#include <utility>

namespace fedadmm {

ErrorFeedbackCodec::ErrorFeedbackCodec(std::unique_ptr<UpdateCodec> inner)
    : inner_(std::move(inner)) {
  FEDADMM_CHECK_MSG(inner_ != nullptr, "ErrorFeedbackCodec: inner required");
}

std::string ErrorFeedbackCodec::name() const {
  return "ef:" + inner_->name();
}

Payload ErrorFeedbackCodec::Encode(int64_t stream,
                                   const std::vector<float>& v, Rng* rng) {
  std::vector<float>& residual = residuals_[stream];
  if (residual.size() != v.size()) {
    residual.assign(v.size(), 0.0f);
  }
  // e = v + r: what the sender *wants* the server to have learned by now.
  std::vector<float> compensated(v.size());
  for (size_t i = 0; i < v.size(); ++i) compensated[i] = v[i] + residual[i];
  Payload payload = inner_->Encode(stream, compensated, rng);
  const std::vector<float> decoded = inner_->Decode(payload);
  FEDADMM_CHECK_MSG(decoded.size() == v.size(),
                    "ErrorFeedbackCodec: inner changed dimension");
  for (size_t i = 0; i < v.size(); ++i) {
    residual[i] = compensated[i] - decoded[i];
  }
  return payload;
}

std::vector<float> ErrorFeedbackCodec::Decode(const Payload& payload) const {
  return inner_->Decode(payload);
}

int64_t ErrorFeedbackCodec::WireBytes(int64_t dim) const {
  return inner_->WireBytes(dim);
}

const std::vector<float>& ErrorFeedbackCodec::residual(int64_t stream) const {
  static const std::vector<float> kEmpty;
  auto it = residuals_.find(stream);
  return it == residuals_.end() ? kEmpty : it->second;
}

}  // namespace fedadmm
