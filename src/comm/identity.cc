#include "comm/identity.h"

#include "comm/wire.h"

namespace fedadmm {

Payload IdentityCodec::Encode(int64_t stream, const std::vector<float>& v,
                              Rng* rng) {
  (void)stream;
  (void)rng;
  Payload payload;
  payload.bytes.reserve(v.size() * sizeof(float));
  wire::Writer writer(&payload.bytes);
  for (float x : v) writer.PutF32(x);
  return payload;
}

std::vector<float> IdentityCodec::Decode(const Payload& payload) const {
  FEDADMM_CHECK_MSG(payload.bytes.size() % sizeof(float) == 0,
                    "IdentityCodec: payload not a multiple of 4 bytes");
  const size_t dim = payload.bytes.size() / sizeof(float);
  std::vector<float> v(dim);
  wire::Reader reader(payload.bytes);
  for (size_t i = 0; i < dim; ++i) v[i] = reader.GetF32();
  return v;
}

int64_t IdentityCodec::WireBytes(int64_t dim) const {
  FEDADMM_CHECK_MSG(dim >= 0, "IdentityCodec: negative dim");
  return dim * static_cast<int64_t>(sizeof(float));
}

}  // namespace fedadmm
