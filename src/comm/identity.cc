#include "comm/identity.h"

#include "comm/wire.h"

namespace fedadmm {

Payload IdentityCodec::Encode(int64_t stream, const std::vector<float>& v,
                              Rng* rng) {
  (void)stream;
  (void)rng;
  Payload payload;
  payload.bytes.reserve(v.size() * sizeof(float));
  wire::Writer writer(&payload.bytes);
  for (float x : v) writer.PutF32(x);
  return payload;
}

std::vector<float> IdentityCodec::Decode(const Payload& payload) const {
  FEDADMM_CHECK_MSG(payload.bytes.size() % sizeof(float) == 0,
                    "IdentityCodec: payload not a multiple of 4 bytes");
  const size_t dim = payload.bytes.size() / sizeof(float);
  std::vector<float> v(dim);
  wire::Reader reader(payload.bytes);
  for (size_t i = 0; i < dim; ++i) v[i] = reader.GetF32();
  return v;
}

Result<std::vector<float>> IdentityCodec::TryDecode(
    const uint8_t* data, size_t len, int64_t expected_dim) const {
  if (expected_dim < 0 ||
      len != static_cast<size_t>(expected_dim) * sizeof(float)) {
    return Status::InvalidArgument(
        "IdentityCodec: payload is " + std::to_string(len) +
        " bytes, want " + std::to_string(expected_dim) + " * 4");
  }
  std::vector<float> v(static_cast<size_t>(expected_dim));
  wire::ReaderView reader(data, len);
  for (size_t i = 0; i < v.size(); ++i) {
    FEDADMM_RETURN_IF_ERROR(reader.TryF32(&v[i]));
  }
  return {std::move(v)};
}

int64_t IdentityCodec::WireBytes(int64_t dim) const {
  FEDADMM_CHECK_MSG(dim >= 0, "IdentityCodec: negative dim");
  return dim * static_cast<int64_t>(sizeof(float));
}

}  // namespace fedadmm
