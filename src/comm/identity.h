/// \file identity.h
/// \brief The no-op codec: raw fp32 on the wire.
///
/// Exists so "compressed" and "uncompressed" runs share one code path: the
/// simulator always talks to an UpdateCodec, and attaching the identity
/// codec is bitwise indistinguishable — in trajectory and in byte
/// accounting — from attaching none (tests/fl/deterministic_replay_test.cc
/// pins this).

#ifndef FEDADMM_COMM_IDENTITY_H_
#define FEDADMM_COMM_IDENTITY_H_

#include <string>
#include <vector>

#include "comm/codec.h"

namespace fedadmm {

/// \brief Lossless pass-through; wire format is the raw little-endian fp32
/// array (no header: dim is the byte count / 4).
class IdentityCodec : public UpdateCodec {
 public:
  std::string name() const override { return "identity"; }

  Payload Encode(int64_t stream, const std::vector<float>& v,
                 Rng* rng) override;
  std::vector<float> Decode(const Payload& payload) const override;
  Result<std::vector<float>> TryDecode(const uint8_t* data, size_t len,
                                       int64_t expected_dim) const override;
  int64_t WireBytes(int64_t dim) const override;
};

}  // namespace fedadmm

#endif  // FEDADMM_COMM_IDENTITY_H_
