/// \file quantize.h
/// \brief Uniform b-bit quantization with per-chunk scale.
///
/// The vector is cut into fixed-size chunks; each chunk stores one fp32
/// scale s = max|v| and every value as a b-bit code on the uniform grid of
/// L = 2^b − 1 levels over [−s, +s]. Two rounding rules:
///
///   * `UniformQuantCodec`    — round-to-nearest. Reconstruction error is
///     at most s/L per coordinate (half a grid step). b = 16 is the
///     "fp16-style" configuration: ~2 bytes/value at error ≤ s/65535.
///   * `StochasticQuantCodec` — QSGD-style stochastic rounding to one of
///     the two adjacent levels, unbiased conditional on the scale
///     (E[decode] = v); error is strictly below one full grid step 2s/L.
///     All randomness comes from the caller's `Rng`, so encoding is
///     bitwise reproducible given the stream — the simulator forks a
///     per-(round, client) stream and thread count cannot change results.
///
/// Per-chunk scales localize the damage of outlier coordinates: a single
/// huge entry only coarsens its own chunk's grid. An all-zero chunk stores
/// scale 0 and decodes exactly.
///
/// Wire format (little-endian): u64 dim, then per chunk an f32 scale
/// followed by the chunk's codes bit-packed and padded to a byte boundary.

#ifndef FEDADMM_COMM_QUANTIZE_H_
#define FEDADMM_COMM_QUANTIZE_H_

#include <string>
#include <vector>

#include "comm/codec.h"

namespace fedadmm {

/// Chunk length every factory-built quantizer uses.
inline constexpr int kDefaultQuantChunk = 256;

/// \brief Shared chunked-grid machinery of the two quantizers.
class ChunkedQuantCodec : public UpdateCodec {
 public:
  /// `bits` in [1, 16]; `chunk` >= 1 values per scale.
  ChunkedQuantCodec(int bits, int chunk);

  std::vector<float> Decode(const Payload& payload) const override;
  Result<std::vector<float>> TryDecode(const uint8_t* data, size_t len,
                                       int64_t expected_dim) const override;
  int64_t WireBytes(int64_t dim) const override;

  int bits() const { return bits_; }
  int chunk() const { return chunk_; }
  /// Grid levels L = 2^bits − 1.
  int levels() const { return levels_; }

 protected:
  /// Encodes with the subclass's rounding rule via `Quantize`.
  Payload EncodeImpl(const std::vector<float>& v, Rng* rng);

  /// Maps x in [0, L] to an integer code in [0, L].
  virtual uint32_t Quantize(double x, Rng* rng) const = 0;

  /// True when `Quantize` is exactly round-to-nearest on the grid with no
  /// Rng consumption — the contract that lets `EncodeImpl` run the batch
  /// SIMD quantizer kernel instead of the per-element virtual call.
  /// Stochastic subclasses must return false: their per-coordinate Rng
  /// draws are part of the replay contract and must stay sequential.
  virtual bool UsesDeterministicGrid() const { return false; }

 private:
  /// CHECKs `bits` in [1, 16] *before* computing L = 2^bits − 1, so an
  /// out-of-range width aborts cleanly instead of hitting undefined
  /// behavior in the shift (member initializers run before the ctor body).
  static int ValidatedLevels(int bits);

  int bits_;
  int chunk_;
  int levels_;
};

/// \brief Deterministic round-to-nearest; error <= scale/L per coordinate.
class UniformQuantCodec : public ChunkedQuantCodec {
 public:
  explicit UniformQuantCodec(int bits, int chunk = kDefaultQuantChunk)
      : ChunkedQuantCodec(bits, chunk) {}

  std::string name() const override;
  Payload Encode(int64_t stream, const std::vector<float>& v,
                 Rng* rng) override;

 protected:
  uint32_t Quantize(double x, Rng* rng) const override;
  bool UsesDeterministicGrid() const override { return true; }
};

/// \brief Stochastic rounding; unbiased, error < 2*scale/L per coordinate.
/// Encode requires a non-null Rng.
class StochasticQuantCodec : public ChunkedQuantCodec {
 public:
  explicit StochasticQuantCodec(int bits, int chunk = kDefaultQuantChunk)
      : ChunkedQuantCodec(bits, chunk) {}

  std::string name() const override;
  Payload Encode(int64_t stream, const std::vector<float>& v,
                 Rng* rng) override;
  /// Stochastic rounding draws from the caller's Rng: a remote encoder
  /// cannot reproduce the server's stream (decode stays deterministic).
  bool deterministic() const override { return false; }

 protected:
  uint32_t Quantize(double x, Rng* rng) const override;
};

}  // namespace fedadmm

#endif  // FEDADMM_COMM_QUANTIZE_H_
