/// \file partition.h
/// \brief Client data partitioners reproducing the paper's settings.
///
/// * IID: shuffle, split evenly (Section V-A, "data are evenly distributed").
/// * Shard non-IID: sort by label, cut into `shards_per_client * m` shards,
///   assign each client `shards_per_client` shards uniformly at random — the
///   paper's "rather extreme representative of data heterogeneity" (each
///   client sees at most 2 classes with the default of 2 shards).
/// * Imbalanced groups (Table VI): sort by label, cut into `total_shards`
///   shards, split the m clients into m/2 groups; each member of group g is
///   assigned g shards, the last group collecting the remainder. Reproduces
///   mean 300 / stdev ≈ 171 for FMNIST with 200 clients and 10,000 shards.
/// * Dirichlet(α): common non-IID generator, included as an extension.

#ifndef FEDADMM_DATA_PARTITION_H_
#define FEDADMM_DATA_PARTITION_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace fedadmm {

/// client id -> indices into the training set.
using Partition = std::vector<std::vector<int>>;

/// \brief IID split: global shuffle, then equal contiguous chunks (the first
/// `n % clients` clients receive one extra sample).
Result<Partition> PartitionIid(int num_samples, int num_clients, Rng* rng);

/// \brief Pathological non-IID split by label shards (paper default:
/// shards_per_client = 2).
Result<Partition> PartitionShards(const std::vector<int>& labels,
                                  int num_clients, int shards_per_client,
                                  Rng* rng);

/// \brief Table VI imbalanced-volume split (see file comment).
Result<Partition> PartitionImbalancedGroups(const std::vector<int>& labels,
                                            int num_clients, int total_shards,
                                            Rng* rng);

/// \brief Label-distribution-skew split: client class proportions drawn from
/// Dirichlet(alpha). Smaller alpha = more skew.
Result<Partition> PartitionDirichlet(const std::vector<int>& labels,
                                     int num_clients, int num_classes,
                                     double alpha, Rng* rng);

/// \brief Summary statistics of a partition (Table VI reports these).
struct PartitionStats {
  int num_clients = 0;
  int total_samples = 0;
  int min_size = 0;
  int max_size = 0;
  double mean_size = 0.0;
  double stddev_size = 0.0;
  /// Average number of distinct labels held per client.
  double mean_distinct_labels = 0.0;

  std::string ToString() const;
};

/// \brief Computes summary statistics; `labels` may be empty to skip the
/// label diversity metric.
PartitionStats ComputePartitionStats(const Partition& partition,
                                     const std::vector<int>& labels);

}  // namespace fedadmm

#endif  // FEDADMM_DATA_PARTITION_H_
