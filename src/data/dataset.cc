#include "data/dataset.h"

#include <cstring>

namespace fedadmm {

void Dataset::Add(std::span<const float> pixels, int label) {
  FEDADMM_CHECK_MSG(static_cast<int64_t>(pixels.size()) == SampleNumel(),
                    "Dataset::Add: pixel count mismatch");
  FEDADMM_CHECK_MSG(label >= 0 && label < num_classes_,
                    "Dataset::Add: label out of range");
  storage_.insert(storage_.end(), pixels.begin(), pixels.end());
  labels_.push_back(label);
}

Tensor Dataset::MakeBatch(std::span<const int> indices) const {
  const int64_t b = static_cast<int64_t>(indices.size());
  const int64_t per = SampleNumel();
  Tensor batch(Shape({b, sample_shape_.dim(0), sample_shape_.dim(1),
                      sample_shape_.dim(2)}));
  float* dst = batch.data();
  for (int64_t i = 0; i < b; ++i) {
    const int idx = indices[static_cast<size_t>(i)];
    FEDADMM_CHECK_MSG(idx >= 0 && idx < size(), "batch index out of range");
    std::memcpy(dst + i * per,
                storage_.data() + static_cast<size_t>(idx) * per,
                static_cast<size_t>(per) * sizeof(float));
  }
  return batch;
}

std::vector<int> Dataset::MakeLabelBatch(std::span<const int> indices) const {
  std::vector<int> out;
  out.reserve(indices.size());
  for (int idx : indices) {
    FEDADMM_CHECK_MSG(idx >= 0 && idx < size(), "label index out of range");
    out.push_back(labels_[static_cast<size_t>(idx)]);
  }
  return out;
}

std::vector<int> Dataset::AllIndices() const {
  std::vector<int> idx(static_cast<size_t>(size()));
  for (int i = 0; i < size(); ++i) idx[static_cast<size_t>(i)] = i;
  return idx;
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_classes_), 0);
  for (int l : labels_) ++counts[static_cast<size_t>(l)];
  return counts;
}

std::vector<std::vector<int>> ClientView::EpochBatches(int batch_size,
                                                       Rng* rng) const {
  FEDADMM_CHECK(dataset_ != nullptr);
  std::vector<int> order = indices_;
  rng->Shuffle(&order);
  std::vector<std::vector<int>> batches;
  if (batch_size <= 0 || batch_size >= static_cast<int>(order.size())) {
    if (!order.empty()) batches.push_back(std::move(order));
    return batches;
  }
  for (size_t start = 0; start < order.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(order.size(), start + static_cast<size_t>(batch_size));
    batches.emplace_back(order.begin() + static_cast<ptrdiff_t>(start),
                         order.begin() + static_cast<ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace fedadmm
