#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace fedadmm {
namespace {

/// Indices sorted by label (stable within a label, matching "arrange the
/// training data by label" in Section V-A).
std::vector<int> IndicesSortedByLabel(const std::vector<int>& labels) {
  std::vector<int> idx(labels.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&labels](int a, int b) {
    return labels[static_cast<size_t>(a)] < labels[static_cast<size_t>(b)];
  });
  return idx;
}

/// Cuts `sorted` into `num_shards` nearly-equal contiguous shards.
std::vector<std::vector<int>> CutShards(const std::vector<int>& sorted,
                                        int num_shards) {
  std::vector<std::vector<int>> shards(static_cast<size_t>(num_shards));
  const size_t n = sorted.size();
  size_t start = 0;
  for (int s = 0; s < num_shards; ++s) {
    // Even distribution of the remainder across the first shards.
    const size_t len = n / static_cast<size_t>(num_shards) +
                       (static_cast<size_t>(s) <
                                n % static_cast<size_t>(num_shards)
                            ? 1
                            : 0);
    shards[static_cast<size_t>(s)].assign(
        sorted.begin() + static_cast<ptrdiff_t>(start),
        sorted.begin() + static_cast<ptrdiff_t>(start + len));
    start += len;
  }
  return shards;
}

}  // namespace

Result<Partition> PartitionIid(int num_samples, int num_clients, Rng* rng) {
  if (num_clients <= 0) {
    return Status::InvalidArgument("PartitionIid: num_clients must be > 0");
  }
  if (num_samples < num_clients) {
    return Status::InvalidArgument(
        "PartitionIid: fewer samples than clients");
  }
  std::vector<int> idx(static_cast<size_t>(num_samples));
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  Partition partition(static_cast<size_t>(num_clients));
  size_t start = 0;
  for (int c = 0; c < num_clients; ++c) {
    const size_t len =
        static_cast<size_t>(num_samples / num_clients) +
        (c < num_samples % num_clients ? 1 : 0);
    partition[static_cast<size_t>(c)].assign(
        idx.begin() + static_cast<ptrdiff_t>(start),
        idx.begin() + static_cast<ptrdiff_t>(start + len));
    start += len;
  }
  return partition;
}

Result<Partition> PartitionShards(const std::vector<int>& labels,
                                  int num_clients, int shards_per_client,
                                  Rng* rng) {
  if (num_clients <= 0 || shards_per_client <= 0) {
    return Status::InvalidArgument("PartitionShards: invalid sizes");
  }
  const int num_shards = num_clients * shards_per_client;
  if (static_cast<int>(labels.size()) < num_shards) {
    return Status::InvalidArgument(
        "PartitionShards: fewer samples than shards");
  }
  std::vector<std::vector<int>> shards =
      CutShards(IndicesSortedByLabel(labels), num_shards);
  std::vector<int> shard_order(static_cast<size_t>(num_shards));
  std::iota(shard_order.begin(), shard_order.end(), 0);
  rng->Shuffle(&shard_order);

  Partition partition(static_cast<size_t>(num_clients));
  int next = 0;
  for (int c = 0; c < num_clients; ++c) {
    auto& mine = partition[static_cast<size_t>(c)];
    for (int s = 0; s < shards_per_client; ++s, ++next) {
      const auto& shard =
          shards[static_cast<size_t>(shard_order[static_cast<size_t>(next)])];
      mine.insert(mine.end(), shard.begin(), shard.end());
    }
  }
  return partition;
}

Result<Partition> PartitionImbalancedGroups(const std::vector<int>& labels,
                                            int num_clients, int total_shards,
                                            Rng* rng) {
  if (num_clients <= 0 || num_clients % 2 != 0) {
    return Status::InvalidArgument(
        "PartitionImbalancedGroups: num_clients must be positive and even");
  }
  const int num_groups = num_clients / 2;
  // Minimum shards needed: every member of group g (1-based) takes g shards
  // except the last group, which collects whatever remains.
  const int64_t needed = 2LL * num_groups * (num_groups - 1) / 2 + 2;
  if (total_shards < needed) {
    return Status::InvalidArgument(
        "PartitionImbalancedGroups: total_shards too small (< " +
        std::to_string(needed) + ")");
  }
  if (static_cast<int>(labels.size()) < total_shards) {
    return Status::InvalidArgument(
        "PartitionImbalancedGroups: fewer samples than shards");
  }
  std::vector<std::vector<int>> shards =
      CutShards(IndicesSortedByLabel(labels), total_shards);
  std::vector<int> shard_order(static_cast<size_t>(total_shards));
  std::iota(shard_order.begin(), shard_order.end(), 0);
  rng->Shuffle(&shard_order);

  Partition partition(static_cast<size_t>(num_clients));
  int next = 0;
  auto take = [&](int client, int count) {
    auto& mine = partition[static_cast<size_t>(client)];
    for (int s = 0; s < count; ++s, ++next) {
      const auto& shard =
          shards[static_cast<size_t>(shard_order[static_cast<size_t>(next)])];
      mine.insert(mine.end(), shard.begin(), shard.end());
    }
  };
  // Each member of group g receives g shards (g is 1-based) ...
  for (int g = 1; g < num_groups; ++g) {
    for (int member = 0; member < 2; ++member) {
      take(2 * (g - 1) + member, g);
    }
  }
  // ... "except for the last group that collects the remaining data": split
  // the leftovers alternately between the last group's two members.
  int member = 0;
  while (next < total_shards) {
    take(num_clients - 2 + member, 1);
    member = 1 - member;
  }
  return partition;
}

Result<Partition> PartitionDirichlet(const std::vector<int>& labels,
                                     int num_clients, int num_classes,
                                     double alpha, Rng* rng) {
  if (num_clients <= 0 || num_classes <= 0 || alpha <= 0.0) {
    return Status::InvalidArgument("PartitionDirichlet: invalid arguments");
  }
  // Bucket sample indices by class, shuffled within class.
  std::vector<std::vector<int>> by_class(static_cast<size_t>(num_classes));
  for (size_t i = 0; i < labels.size(); ++i) {
    const int l = labels[i];
    if (l < 0 || l >= num_classes) {
      return Status::InvalidArgument("PartitionDirichlet: label out of range");
    }
    by_class[static_cast<size_t>(l)].push_back(static_cast<int>(i));
  }
  for (auto& bucket : by_class) rng->Shuffle(&bucket);

  Partition partition(static_cast<size_t>(num_clients));
  for (int cls = 0; cls < num_classes; ++cls) {
    auto& bucket = by_class[static_cast<size_t>(cls)];
    if (bucket.empty()) continue;
    const std::vector<double> props = rng->Dirichlet(num_clients, alpha);
    // Convert proportions to cumulative cut points over the bucket.
    size_t start = 0;
    double cum = 0.0;
    for (int c = 0; c < num_clients; ++c) {
      cum += props[static_cast<size_t>(c)];
      size_t end = (c == num_clients - 1)
                       ? bucket.size()
                       : static_cast<size_t>(
                             std::llround(cum * static_cast<double>(
                                                    bucket.size())));
      end = std::min(end, bucket.size());
      if (end < start) end = start;
      auto& mine = partition[static_cast<size_t>(c)];
      mine.insert(mine.end(),
                  bucket.begin() + static_cast<ptrdiff_t>(start),
                  bucket.begin() + static_cast<ptrdiff_t>(end));
      start = end;
    }
  }
  return partition;
}

PartitionStats ComputePartitionStats(const Partition& partition,
                                     const std::vector<int>& labels) {
  PartitionStats stats;
  stats.num_clients = static_cast<int>(partition.size());
  if (partition.empty()) return stats;
  stats.min_size = static_cast<int>(partition[0].size());
  double sum = 0.0, sum_sq = 0.0, distinct_sum = 0.0;
  for (const auto& client : partition) {
    const int sz = static_cast<int>(client.size());
    stats.total_samples += sz;
    stats.min_size = std::min(stats.min_size, sz);
    stats.max_size = std::max(stats.max_size, sz);
    sum += sz;
    sum_sq += static_cast<double>(sz) * sz;
    if (!labels.empty()) {
      std::set<int> distinct;
      for (int idx : client) distinct.insert(labels[static_cast<size_t>(idx)]);
      distinct_sum += static_cast<double>(distinct.size());
    }
  }
  const double n = static_cast<double>(stats.num_clients);
  stats.mean_size = sum / n;
  const double var = std::max(0.0, sum_sq / n - stats.mean_size *
                                                    stats.mean_size);
  stats.stddev_size = std::sqrt(var);
  stats.mean_distinct_labels = labels.empty() ? 0.0 : distinct_sum / n;
  return stats;
}

std::string PartitionStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "clients=%d samples=%d size[min=%d max=%d mean=%.2f "
                "stdev=%.2f] distinct_labels=%.2f",
                num_clients, total_samples, min_size, max_size, mean_size,
                stddev_size, mean_distinct_labels);
  return buf;
}

}  // namespace fedadmm
