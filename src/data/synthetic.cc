#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace fedadmm {
namespace {

/// Bilinearly upsamples a coarse [grid, grid] pattern to [h, w].
void UpsampleBilinear(const std::vector<float>& coarse, int grid, int h, int w,
                      float* out) {
  for (int y = 0; y < h; ++y) {
    // Map output pixel centers onto the coarse grid.
    const float fy = (static_cast<float>(y) + 0.5f) / static_cast<float>(h) *
                         static_cast<float>(grid) -
                     0.5f;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, grid - 1);
    const int y1 = std::min(y0 + 1, grid - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
    for (int x = 0; x < w; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) /
                           static_cast<float>(w) * static_cast<float>(grid) -
                       0.5f;
      const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, grid - 1);
      const int x1 = std::min(x0 + 1, grid - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
      const float v00 = coarse[static_cast<size_t>(y0 * grid + x0)];
      const float v01 = coarse[static_cast<size_t>(y0 * grid + x1)];
      const float v10 = coarse[static_cast<size_t>(y1 * grid + x0)];
      const float v11 = coarse[static_cast<size_t>(y1 * grid + x1)];
      out[y * w + x] = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                       wy * ((1 - wx) * v10 + wx * v11);
    }
  }
}

/// Generates the deterministic prototype image for one class.
std::vector<float> MakePrototype(const SyntheticSpec& spec, int cls) {
  Rng rng = Rng(spec.seed).Fork(0xC1A55, static_cast<uint64_t>(cls));
  const int grid = std::max(2, spec.prototype_grid);
  std::vector<float> proto(
      static_cast<size_t>(spec.channels * spec.height * spec.width));
  std::vector<float> coarse(static_cast<size_t>(grid * grid));
  for (int c = 0; c < spec.channels; ++c) {
    for (auto& v : coarse) {
      v = static_cast<float>(rng.Normal(0.0, spec.signal));
    }
    UpsampleBilinear(coarse, grid, spec.height, spec.width,
                     proto.data() + static_cast<size_t>(c) * spec.height *
                                        spec.width);
  }
  return proto;
}

/// Adds one noisy (optionally jittered) sample of class `cls` to `out`.
void AddSample(const SyntheticSpec& spec, const std::vector<float>& proto,
               int cls, Rng* rng, Dataset* out) {
  const int h = spec.height, w = spec.width;
  std::vector<float> pixels(proto.size());
  int dy = 0, dx = 0;
  if (spec.jitter) {
    dy = static_cast<int>(rng->UniformInt(-1, 1));
    dx = static_cast<int>(rng->UniformInt(-1, 1));
  }
  for (int c = 0; c < spec.channels; ++c) {
    const float* src = proto.data() + static_cast<size_t>(c) * h * w;
    float* dst = pixels.data() + static_cast<size_t>(c) * h * w;
    for (int y = 0; y < h; ++y) {
      const int sy = std::clamp(y + dy, 0, h - 1);
      for (int x = 0; x < w; ++x) {
        const int sx = std::clamp(x + dx, 0, w - 1);
        dst[y * w + x] =
            src[sy * w + sx] +
            static_cast<float>(rng->Normal(0.0, spec.noise_stddev));
      }
    }
  }
  out->Add(pixels, cls);
}

}  // namespace

std::string SyntheticSpec::ToString() const {
  return "Synthetic(" + std::to_string(classes) + " classes, " +
         std::to_string(channels) + "x" + std::to_string(height) + "x" +
         std::to_string(width) + ", " + std::to_string(train_per_class) +
         "/class train, noise " + std::to_string(noise_stddev) + ", seed " +
         std::to_string(seed) + ")";
}

SyntheticSpec SyntheticMnistSpec(int train_per_class, int test_per_class) {
  SyntheticSpec spec;
  spec.channels = 1;
  spec.height = spec.width = 28;
  spec.train_per_class = train_per_class;
  spec.test_per_class = test_per_class;
  spec.noise_stddev = 0.7f;
  spec.seed = 0x4D4E495354ULL;  // "MNIST"
  return spec;
}

SyntheticSpec SyntheticFmnistSpec(int train_per_class, int test_per_class) {
  SyntheticSpec spec = SyntheticMnistSpec(train_per_class, test_per_class);
  spec.noise_stddev = 1.0f;
  spec.seed = 0x464D4E495354ULL;  // "FMNIST"
  return spec;
}

SyntheticSpec SyntheticCifarSpec(int train_per_class, int test_per_class) {
  SyntheticSpec spec;
  spec.channels = 3;
  spec.height = spec.width = 32;
  spec.train_per_class = train_per_class;
  spec.test_per_class = test_per_class;
  spec.noise_stddev = 1.3f;
  spec.seed = 0x434946415231ULL;  // "CIFAR1"
  return spec;
}

SyntheticSpec SyntheticBenchSpec(int channels, int hw, int train_per_class,
                                 int test_per_class, float noise_stddev) {
  SyntheticSpec spec;
  spec.channels = channels;
  spec.height = spec.width = hw;
  spec.train_per_class = train_per_class;
  spec.test_per_class = test_per_class;
  spec.noise_stddev = noise_stddev;
  spec.prototype_grid = 3;
  spec.seed = 0xBE7C4ULL;
  return spec;
}

DataSplit GenerateSynthetic(const SyntheticSpec& spec) {
  FEDADMM_CHECK_MSG(spec.classes > 0 && spec.channels > 0 && spec.height > 0 &&
                        spec.width > 0,
                    "SyntheticSpec: invalid geometry");
  const Shape sample_shape({spec.channels, spec.height, spec.width});
  DataSplit split{Dataset(sample_shape, spec.classes),
                  Dataset(sample_shape, spec.classes)};
  split.train.Reserve(spec.classes * spec.train_per_class);
  split.test.Reserve(spec.classes * spec.test_per_class);

  for (int cls = 0; cls < spec.classes; ++cls) {
    const std::vector<float> proto = MakePrototype(spec, cls);
    Rng train_rng =
        Rng(spec.seed).Fork(0x7EA1, static_cast<uint64_t>(cls), 0);
    Rng test_rng = Rng(spec.seed).Fork(0x7EA1, static_cast<uint64_t>(cls), 1);
    for (int i = 0; i < spec.train_per_class; ++i) {
      AddSample(spec, proto, cls, &train_rng, &split.train);
    }
    for (int i = 0; i < spec.test_per_class; ++i) {
      AddSample(spec, proto, cls, &test_rng, &split.test);
    }
  }
  return split;
}

}  // namespace fedadmm
