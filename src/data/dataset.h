/// \file dataset.h
/// \brief In-memory labeled image dataset and batch assembly.

#ifndef FEDADMM_DATA_DATASET_H_
#define FEDADMM_DATA_DATASET_H_

#include <span>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace fedadmm {

/// \brief A dense collection of (image, label) pairs.
///
/// Samples are stored contiguously; `MakeBatch` gathers an index list into a
/// fresh [B, C, H, W] tensor, which is the unit consumed by Model.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset of samples shaped [C, H, W] with labels in
  /// [0, num_classes).
  Dataset(Shape sample_shape, int num_classes)
      : sample_shape_(std::move(sample_shape)), num_classes_(num_classes) {
    FEDADMM_CHECK_MSG(sample_shape_.ndim() == 3,
                      "Dataset samples must be [C, H, W]");
    FEDADMM_CHECK_MSG(num_classes > 0, "num_classes must be positive");
  }

  /// Pre-allocates storage for `n` samples.
  void Reserve(int n) {
    storage_.reserve(static_cast<size_t>(n) * SampleNumel());
    labels_.reserve(static_cast<size_t>(n));
  }

  /// Appends one sample; `pixels` must hold sample_shape().numel() floats.
  void Add(std::span<const float> pixels, int label);

  /// Number of samples.
  int size() const { return static_cast<int>(labels_.size()); }
  /// Shape of one sample, [C, H, W].
  const Shape& sample_shape() const { return sample_shape_; }
  /// Number of classes.
  int num_classes() const { return num_classes_; }
  /// Scalars per sample.
  int64_t SampleNumel() const { return sample_shape_.numel(); }

  /// All labels.
  const std::vector<int>& labels() const { return labels_; }
  /// Label of sample `i`.
  int label(int i) const { return labels_[static_cast<size_t>(i)]; }
  /// Pixels of sample `i`.
  std::span<const float> sample(int i) const {
    return std::span<const float>(
        storage_.data() + static_cast<size_t>(i) * SampleNumel(),
        static_cast<size_t>(SampleNumel()));
  }

  /// Gathers `indices` into a [B, C, H, W] batch tensor.
  Tensor MakeBatch(std::span<const int> indices) const;

  /// Gathers labels for `indices`.
  std::vector<int> MakeLabelBatch(std::span<const int> indices) const;

  /// All indices [0, size).
  std::vector<int> AllIndices() const;

  /// Per-class sample counts.
  std::vector<int> ClassCounts() const;

 private:
  Shape sample_shape_;
  int num_classes_ = 0;
  std::vector<float> storage_;
  std::vector<int> labels_;
};

/// \brief Train/test pair produced by generators and loaders.
struct DataSplit {
  Dataset train;
  Dataset test;
};

/// \brief A client's slice of a dataset plus minibatch iteration.
///
/// `batch_size <= 0` means full batch (the paper's `B = ∞` configuration).
class ClientView {
 public:
  ClientView() = default;

  /// Points at `dataset` (not owned; must outlive the view) restricted to
  /// `indices`.
  ClientView(const Dataset* dataset, std::vector<int> indices)
      : dataset_(dataset), indices_(std::move(indices)) {}

  /// Number of local samples n_i.
  int size() const { return static_cast<int>(indices_.size()); }
  /// The underlying dataset.
  const Dataset* dataset() const { return dataset_; }
  /// The raw index list.
  const std::vector<int>& indices() const { return indices_; }

  /// Produces the minibatch index lists for one epoch: shuffles locally with
  /// `rng` and chunks into batches of `batch_size` (full batch if <= 0).
  std::vector<std::vector<int>> EpochBatches(int batch_size, Rng* rng) const;

  /// Gathers the entire local slice as one batch.
  Tensor FullBatch() const { return dataset_->MakeBatch(indices_); }
  /// Labels of the entire local slice.
  std::vector<int> FullLabels() const {
    return dataset_->MakeLabelBatch(indices_);
  }

 private:
  const Dataset* dataset_ = nullptr;
  std::vector<int> indices_;
};

}  // namespace fedadmm

#endif  // FEDADMM_DATA_DATASET_H_
