#include "data/loaders.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "util/logging.h"

namespace fedadmm {
namespace {

constexpr uint32_t kIdxImagesMagic = 0x00000803;
constexpr uint32_t kIdxLabelsMagic = 0x00000801;
constexpr int kCifarRecordBytes = 1 + 3 * 32 * 32;
constexpr int kCifarRecordsPerBatch = 10000;

/// Reads a big-endian uint32.
bool ReadU32Be(std::istream& in, uint32_t* out) {
  unsigned char bytes[4];
  if (!in.read(reinterpret_cast<char*>(bytes), 4)) return false;
  *out = (static_cast<uint32_t>(bytes[0]) << 24) |
         (static_cast<uint32_t>(bytes[1]) << 16) |
         (static_cast<uint32_t>(bytes[2]) << 8) |
         static_cast<uint32_t>(bytes[3]);
  return true;
}

}  // namespace

Result<Dataset> LoadIdx(const std::string& images_path,
                        const std::string& labels_path) {
  std::ifstream images(images_path, std::ios::binary);
  if (!images.is_open()) {
    return Status::NotFound("LoadIdx: cannot open " + images_path);
  }
  std::ifstream labels(labels_path, std::ios::binary);
  if (!labels.is_open()) {
    return Status::NotFound("LoadIdx: cannot open " + labels_path);
  }

  uint32_t magic = 0, n_images = 0, rows = 0, cols = 0;
  if (!ReadU32Be(images, &magic) || magic != kIdxImagesMagic) {
    return Status::IoError("LoadIdx: bad image magic in " + images_path);
  }
  if (!ReadU32Be(images, &n_images) || !ReadU32Be(images, &rows) ||
      !ReadU32Be(images, &cols)) {
    return Status::IoError("LoadIdx: truncated image header");
  }
  uint32_t labels_magic = 0, n_labels = 0;
  if (!ReadU32Be(labels, &labels_magic) || labels_magic != kIdxLabelsMagic) {
    return Status::IoError("LoadIdx: bad label magic in " + labels_path);
  }
  if (!ReadU32Be(labels, &n_labels)) {
    return Status::IoError("LoadIdx: truncated label header");
  }
  if (n_images != n_labels) {
    return Status::InvalidArgument("LoadIdx: image/label count mismatch");
  }
  if (rows == 0 || cols == 0 || rows > 4096 || cols > 4096) {
    return Status::InvalidArgument("LoadIdx: implausible image dims");
  }

  const int64_t pixels = static_cast<int64_t>(rows) * cols;
  Dataset dataset(Shape({1, static_cast<int64_t>(rows),
                         static_cast<int64_t>(cols)}),
                  /*num_classes=*/10);
  dataset.Reserve(static_cast<int>(n_images));
  std::vector<unsigned char> raw(static_cast<size_t>(pixels));
  std::vector<float> scaled(static_cast<size_t>(pixels));
  for (uint32_t i = 0; i < n_images; ++i) {
    if (!images.read(reinterpret_cast<char*>(raw.data()),
                     static_cast<std::streamsize>(raw.size()))) {
      return Status::IoError("LoadIdx: truncated image data at record " +
                             std::to_string(i));
    }
    char label_byte = 0;
    if (!labels.read(&label_byte, 1)) {
      return Status::IoError("LoadIdx: truncated label data at record " +
                             std::to_string(i));
    }
    const int label = static_cast<unsigned char>(label_byte);
    if (label > 9) {
      return Status::InvalidArgument("LoadIdx: label out of range");
    }
    for (size_t p = 0; p < raw.size(); ++p) {
      scaled[p] = static_cast<float>(raw[p]) / 255.0f;
    }
    dataset.Add(scaled, label);
  }
  return dataset;
}

Result<Dataset> LoadCifarBatch(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("LoadCifarBatch: cannot open " + path);
  }
  Dataset dataset(Shape({3, 32, 32}), /*num_classes=*/10);
  dataset.Reserve(kCifarRecordsPerBatch);
  std::vector<unsigned char> record(kCifarRecordBytes);
  std::vector<float> scaled(3 * 32 * 32);
  while (in.read(reinterpret_cast<char*>(record.data()), kCifarRecordBytes)) {
    const int label = record[0];
    if (label > 9) {
      return Status::InvalidArgument("LoadCifarBatch: label out of range");
    }
    for (size_t p = 1; p < record.size(); ++p) {
      scaled[p - 1] = static_cast<float>(record[p]) / 255.0f;
    }
    dataset.Add(scaled, label);
  }
  if (in.gcount() != 0) {
    return Status::IoError("LoadCifarBatch: trailing partial record in " +
                           path);
  }
  if (dataset.size() == 0) {
    return Status::IoError("LoadCifarBatch: no records in " + path);
  }
  return dataset;
}

Result<DataSplit> LoadMnistDirectory(const std::string& dir) {
  FEDADMM_ASSIGN_OR_RETURN(
      Dataset train, LoadIdx(dir + "/train-images-idx3-ubyte",
                             dir + "/train-labels-idx1-ubyte"));
  FEDADMM_ASSIGN_OR_RETURN(Dataset test,
                           LoadIdx(dir + "/t10k-images-idx3-ubyte",
                                   dir + "/t10k-labels-idx1-ubyte"));
  return DataSplit{std::move(train), std::move(test)};
}

Result<DataSplit> LoadCifarDirectory(const std::string& dir) {
  Dataset train(Shape({3, 32, 32}), 10);
  train.Reserve(5 * kCifarRecordsPerBatch);
  for (int b = 1; b <= 5; ++b) {
    FEDADMM_ASSIGN_OR_RETURN(
        Dataset batch,
        LoadCifarBatch(dir + "/data_batch_" + std::to_string(b) + ".bin"));
    for (int i = 0; i < batch.size(); ++i) {
      train.Add(batch.sample(i), batch.label(i));
    }
  }
  FEDADMM_ASSIGN_OR_RETURN(Dataset test,
                           LoadCifarBatch(dir + "/test_batch.bin"));
  return DataSplit{std::move(train), std::move(test)};
}

DataSplit LoadOrSynthesize(const std::string& dir, bool cifar_layout,
                           const SyntheticSpec& fallback) {
  if (!dir.empty()) {
    Result<DataSplit> loaded =
        cifar_layout ? LoadCifarDirectory(dir) : LoadMnistDirectory(dir);
    if (loaded.ok()) {
      FEDADMM_LOG(Info) << "Loaded real dataset from " << dir;
      return std::move(loaded).ValueOrDie();
    }
    FEDADMM_LOG(Warning) << "Real data unavailable (" << dir << "): "
                         << loaded.status().ToString()
                         << " — using synthetic fallback";
  }
  return GenerateSynthetic(fallback);
}

}  // namespace fedadmm
