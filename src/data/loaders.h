/// \file loaders.h
/// \brief Readers for the real dataset formats the paper uses.
///
/// When MNIST/FMNIST IDX files or CIFAR-10 binary batches are available on
/// disk the library trains on real data; otherwise callers fall back to the
/// synthetic generators (see `LoadOrSynthesize`). File formats:
///   * IDX: big-endian magic 0x00000803 (images, [n, rows, cols] uint8) and
///     0x00000801 (labels, [n] uint8) — http://yann.lecun.com/exdb/mnist/.
///   * CIFAR-10 binary: records of 1 label byte + 3072 pixel bytes
///     (3 channels x 32 x 32) — https://www.cs.toronto.edu/~kriz/cifar.html.
/// Pixels are scaled to [0, 1].

#ifndef FEDADMM_DATA_LOADERS_H_
#define FEDADMM_DATA_LOADERS_H_

#include <string>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace fedadmm {

/// \brief Loads an IDX image/label file pair into a dataset.
Result<Dataset> LoadIdx(const std::string& images_path,
                        const std::string& labels_path);

/// \brief Loads one CIFAR-10 binary batch file (10,000 records).
Result<Dataset> LoadCifarBatch(const std::string& path);

/// \brief Loads MNIST-layout train/test IDX files from a directory
/// (train-images-idx3-ubyte etc.); also matches Fashion-MNIST's identical
/// layout.
Result<DataSplit> LoadMnistDirectory(const std::string& dir);

/// \brief Loads CIFAR-10 binary train batches 1-5 plus test_batch from a
/// directory.
Result<DataSplit> LoadCifarDirectory(const std::string& dir);

/// \brief Tries a real-data directory first; on any failure logs a note and
/// returns synthetic data from `fallback`.
DataSplit LoadOrSynthesize(const std::string& dir, bool cifar_layout,
                           const SyntheticSpec& fallback);

}  // namespace fedadmm

#endif  // FEDADMM_DATA_LOADERS_H_
