/// \file synthetic.h
/// \brief Synthetic stand-ins for MNIST / Fashion-MNIST / CIFAR-10.
///
/// The environment is offline, so real dataset files may be absent. The
/// paper's phenomena — client drift under label-skewed partitions, the
/// benefit of dual variables, sensitivity to ρ and η — are properties of the
/// optimization landscape induced by the *partition*, not of natural-image
/// pixel statistics. This generator produces a 10-class image classification
/// task of controllable difficulty whose samples have the same shapes as the
/// real datasets:
///
///   * each class has a deterministic low-frequency prototype image
///     (coarse random grid, bilinearly upsampled — spatially correlated so
///     convolutions are the right inductive bias);
///   * a sample is `prototype + Gaussian pixel noise`, optionally shifted by
///     ±1 pixel (data augmentation-like jitter increasing difficulty).
///
/// See DESIGN.md §5 for the substitution rationale.

#ifndef FEDADMM_DATA_SYNTHETIC_H_
#define FEDADMM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace fedadmm {

/// \brief Configuration of the synthetic image task.
struct SyntheticSpec {
  int classes = 10;
  int channels = 1;
  int height = 28;
  int width = 28;
  /// Training samples per class.
  int train_per_class = 100;
  /// Test samples per class.
  int test_per_class = 20;
  /// Amplitude of the class prototype pattern.
  float signal = 1.0f;
  /// Stddev of additive pixel noise (higher = harder task).
  float noise_stddev = 0.8f;
  /// Coarse grid size for prototype generation (spatial correlation scale).
  int prototype_grid = 4;
  /// Random ±1 pixel translation of each sample.
  bool jitter = true;
  /// Master seed; the same spec always yields the same data.
  uint64_t seed = 1234;

  std::string ToString() const;
};

/// \brief MNIST-like spec (1x28x28) scaled to `per_class` samples.
SyntheticSpec SyntheticMnistSpec(int train_per_class = 100,
                                 int test_per_class = 20);

/// \brief Fashion-MNIST-like spec (1x28x28): noisier than MNIST, matching
/// the relative difficulty ordering of the real datasets.
SyntheticSpec SyntheticFmnistSpec(int train_per_class = 100,
                                  int test_per_class = 20);

/// \brief CIFAR-10-like spec (3x32x32): the hardest of the three.
SyntheticSpec SyntheticCifarSpec(int train_per_class = 100,
                                 int test_per_class = 20);

/// \brief Reduced-resolution spec used by the CPU bench harness.
SyntheticSpec SyntheticBenchSpec(int channels, int hw, int train_per_class,
                                 int test_per_class, float noise_stddev);

/// \brief Generates the train/test split deterministically from the spec.
DataSplit GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace fedadmm

#endif  // FEDADMM_DATA_SYNTHETIC_H_
