#include "fl/client_executor.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/shard.h"

namespace fedadmm {
namespace {

constexpr uint64_t kClientTag = 0xC11E47;

// Pool sizing: no point in more threads than the problem has worker slots.
int ClampThreads(int requested, int num_workers) {
  int threads = requested;
  if (threads <= 0) threads = ThreadPool::DefaultNumThreads();
  threads = std::min(threads, num_workers);
  return std::max(threads, 1);
}

}  // namespace

ClientExecutor::ClientExecutor(FederatedProblem* problem,
                               FederatedAlgorithm* algorithm,
                               const Rng& master, int num_threads,
                               int num_shards)
    : problem_(problem),
      algorithm_(algorithm),
      master_(master),
      pool_(ClampThreads(num_threads, problem->num_workers())),
      num_shards_(std::max(1, num_shards)) {
  shard_event_hist_.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shard_event_hist_.push_back(obs::MetricsRegistry::Global().histogram(
        obs::ShardLabel("client/event_seconds", s)));
  }
}

void ClientExecutor::RunWave(int wave, const std::vector<int>& clients,
                             const std::vector<float>& theta,
                             std::vector<UpdateMessage>* out) {
  out->assign(clients.size(), UpdateMessage());
  // Shard-major execution order: under a sharded server, clients of the
  // same shard run back-to-back, so concurrent MutableView/Release calls
  // spread across the per-shard stores' locks instead of hammering one
  // store's stripes. Pure scheduling — each result lands at its original
  // index and every RNG stream is keyed by (wave, client), so trajectories
  // are bitwise identical for any order (and W = 1 keeps the natural
  // order: the sort below is a stable identity).
  std::vector<int> order(clients.size());
  std::iota(order.begin(), order.end(), 0);
  if (num_shards_ > 1) {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return ShardOfClient(clients[static_cast<size_t>(a)], num_shards_) <
             ShardOfClient(clients[static_cast<size_t>(b)], num_shards_);
    });
  }
  pool_.ParallelFor(
      static_cast<int>(clients.size()), [&](int pos, int worker) {
        const int idx = order[static_cast<size_t>(pos)];
        const int client = clients[static_cast<size_t>(idx)];
        const int shard = ShardOfClient(client, num_shards_);
        // Per-event wall latency, keyed by the client's aggregation shard.
        // A no-op (never reads the clock) unless metrics or a trace
        // capture are on — the zero-perturbation contract of src/obs.
        obs::TraceScope scope("client_event", "client",
                              shard_event_hist_[static_cast<size_t>(shard)]);
        scope.set_arg("client", client);
        auto local = problem_->MakeLocalProblem(client, worker);
        // Per-(wave, client) stream: results do not depend on thread
        // scheduling.
        Rng client_rng = master_.Fork(kClientTag, static_cast<uint64_t>(wave),
                                      static_cast<uint64_t>(client));
        (*out)[static_cast<size_t>(idx)] = algorithm_->ClientUpdate(
            client, wave, theta, local.get(), client_rng);
      });
}

}  // namespace fedadmm
