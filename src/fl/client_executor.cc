#include "fl/client_executor.h"

#include <algorithm>

namespace fedadmm {
namespace {

constexpr uint64_t kClientTag = 0xC11E47;

// Pool sizing: no point in more threads than the problem has worker slots.
int ClampThreads(int requested, int num_workers) {
  int threads = requested;
  if (threads <= 0) threads = ThreadPool::DefaultNumThreads();
  threads = std::min(threads, num_workers);
  return std::max(threads, 1);
}

}  // namespace

ClientExecutor::ClientExecutor(FederatedProblem* problem,
                               FederatedAlgorithm* algorithm,
                               const Rng& master, int num_threads)
    : problem_(problem),
      algorithm_(algorithm),
      master_(master),
      pool_(ClampThreads(num_threads, problem->num_workers())) {}

void ClientExecutor::RunWave(int wave, const std::vector<int>& clients,
                             const std::vector<float>& theta,
                             std::vector<UpdateMessage>* out) {
  out->assign(clients.size(), UpdateMessage());
  pool_.ParallelFor(
      static_cast<int>(clients.size()), [&](int idx, int worker) {
        const int client = clients[static_cast<size_t>(idx)];
        auto local = problem_->MakeLocalProblem(client, worker);
        // Per-(wave, client) stream: results do not depend on thread
        // scheduling.
        Rng client_rng = master_.Fork(kClientTag, static_cast<uint64_t>(wave),
                                      static_cast<uint64_t>(client));
        (*out)[static_cast<size_t>(idx)] = algorithm_->ClientUpdate(
            client, wave, theta, local.get(), client_rng);
      });
}

}  // namespace fedadmm
