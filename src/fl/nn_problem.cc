#include "fl/nn_problem.h"

#include <algorithm>

#include "nn/losses.h"

namespace fedadmm {
namespace {

/// LocalProblem adapter over a worker-slot model and a client's data view.
class NnLocalProblem : public LocalProblem {
 public:
  NnLocalProblem(Model* model, const ClientView* view)
      : model_(model), view_(view) {}

  int64_t dim() const override { return model_->NumParameters(); }
  int num_samples() const override { return view_->size(); }

  double BatchLossGradient(std::span<const float> w,
                           const std::vector<int>& batch,
                           std::span<float> grad) override {
    FEDADMM_CHECK_MSG(!batch.empty(), "empty batch");
    model_->SetParameters(w);
    model_->ZeroGrad();
    const Tensor inputs = view_->dataset()->MakeBatch(batch);
    const std::vector<int> labels = view_->dataset()->MakeLabelBatch(batch);
    const double loss = model_->ForwardBackward(inputs, labels);
    model_->GetGradients(grad);
    return loss;
  }

  std::vector<std::vector<int>> EpochBatches(int batch_size,
                                             Rng* rng) override {
    return view_->EpochBatches(batch_size, rng);
  }

  double FullLossGradient(std::span<const float> w,
                          std::span<float> grad) override {
    return BatchLossGradient(w, view_->indices(), grad);
  }

 private:
  Model* model_;
  const ClientView* view_;
};

}  // namespace

NnFederatedProblem::NnFederatedProblem(const ModelConfig& model_config,
                                       const Dataset* train,
                                       const Dataset* test,
                                       Partition partition, int num_workers)
    : train_(train), test_(test), partition_(std::move(partition)) {
  FEDADMM_CHECK(train_ != nullptr && test_ != nullptr);
  FEDADMM_CHECK_MSG(!partition_.empty(), "empty partition");
  FEDADMM_CHECK_MSG(num_workers >= 1, "need at least one worker");
  views_.reserve(partition_.size());
  for (const auto& indices : partition_) {
    FEDADMM_CHECK_MSG(!indices.empty(),
                      "every client needs at least one sample");
    views_.emplace_back(train_, indices);
  }
  models_.reserve(static_cast<size_t>(num_workers));
  auto prototype = BuildModel(model_config);
  dim_ = prototype->NumParameters();
  for (int i = 0; i < num_workers; ++i) {
    models_.push_back(i == 0 ? std::move(prototype)
                             : models_[0]->Clone());
  }
}

std::unique_ptr<LocalProblem> NnFederatedProblem::MakeLocalProblem(
    int client, int worker) {
  FEDADMM_CHECK(client >= 0 && client < num_clients());
  FEDADMM_CHECK(worker >= 0 && worker < num_workers());
  return std::make_unique<NnLocalProblem>(
      models_[static_cast<size_t>(worker)].get(),
      &views_[static_cast<size_t>(client)]);
}

EvalResult NnFederatedProblem::Evaluate(std::span<const float> theta,
                                        int worker) {
  FEDADMM_CHECK(worker >= 0 && worker < num_workers());
  Model* model = models_[static_cast<size_t>(worker)].get();
  model->SetParameters(theta);

  EvalResult result;
  const int n = test_->size();
  if (n == 0) return result;
  int correct_weighted = 0;
  double loss_sum = 0.0;
  std::vector<int> batch;
  for (int start = 0; start < n; start += eval_batch_size_) {
    const int end = std::min(n, start + eval_batch_size_);
    batch.resize(static_cast<size_t>(end - start));
    for (int i = start; i < end; ++i) {
      batch[static_cast<size_t>(i - start)] = i;
    }
    const Tensor inputs = test_->MakeBatch(batch);
    const std::vector<int> labels = test_->MakeLabelBatch(batch);
    double acc = 0.0;
    const double loss = model->EvalLoss(inputs, labels, &acc);
    loss_sum += loss * static_cast<double>(end - start);
    correct_weighted +=
        static_cast<int>(std::lround(acc * static_cast<double>(end - start)));
  }
  result.accuracy = static_cast<double>(correct_weighted) / n;
  result.loss = loss_sum / n;
  return result;
}

std::vector<float> NnFederatedProblem::InitialParameters(Rng* rng) {
  models_[0]->Initialize(rng);
  std::vector<float> theta;
  models_[0]->GetParameters(&theta);
  return theta;
}

}  // namespace fedadmm
