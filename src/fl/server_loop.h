/// \file server_loop.h
/// \brief The federation engine: composable stages under three execution
/// modes.
///
/// This replaces the old ~200-line `Simulation::Run()` monolith. The loop
/// composes four stages per round/wave —
///
///   selection → CommPipeline (downlink) → ClientExecutor (fan-out)
///             → admission (straggler policy) → CommPipeline (uplink)
///             → aggregation → metrics
///
/// — and schedules them two ways:
///
///   * **sync**: one lockstep pass per round, exactly the historical
///     control flow (same RNG forks, same float operations, same
///     accounting order), so trajectories are bitwise identical to the
///     monolith.
///   * **event-driven** (buffered / async): each dispatched client becomes
///     a `ClientCompletionEvent` on a `sys/ShardedEventQueue` — one heap
///     per aggregation worker (`SimulationConfig::num_shards`), merged on
///     (time, sequence), which pops identically to a single global heap at
///     every W — scheduled at its own `ComputeClientTiming` finish (as
///     shaped by the straggler
///     policy, reused as the per-event admission predicate). The server
///     pops events in simulated-time order: async aggregates every
///     admitted arrival via `FederatedAlgorithm::AggregateOne`; buffered
///     collects `buffer_size` admitted arrivals, discounts them by the
///     staleness weight and applies one batched `ServerUpdate`. Every
///     aggregation emits one `RoundRecord` whose `sim_seconds` is the
///     triggering event's absolute time. A full wave of consecutive drops
///     with nothing to aggregate emits an all-dropped record (NaN
///     train_loss), so a starved deadline still terminates after
///     `max_rounds` records.
///
/// Determinism: parallel client execution only happens within a dispatch
/// wave (all members share one θ snapshot and per-(wave, client) RNG
/// forks); everything else runs serially in event order, which the queue
/// resolves by (time, dispatch sequence). Hence all three modes replay
/// bitwise for a fixed seed, independent of thread count.

#ifndef FEDADMM_FL_SERVER_LOOP_H_
#define FEDADMM_FL_SERVER_LOOP_H_

#include <memory>
#include <vector>

#include "fl/client_executor.h"
#include "fl/comm_pipeline.h"
#include "fl/round_context.h"
#include "fl/simulation.h"
#include "obs/trace.h"
#include "sys/event_queue.h"
#include "util/stopwatch.h"

namespace fedadmm {

class SlabLog;

/// \brief Executes one federated training session for `Simulation`.
///
/// Borrow-only: problem/algorithm/selector/system model/codecs/observer —
/// and the θ output buffer, which the loop mutates in place so observers
/// can read the live model mid-run — must outlive the loop.
class ServerLoop {
 public:
  ServerLoop(FederatedProblem* problem, FederatedAlgorithm* algorithm,
             ClientSelector* selector, const SimulationConfig& config,
             const SystemModel* system_model, UpdateCodec* uplink_codec,
             UpdateCodec* downlink_codec, IngestSource* ingest,
             const RoundObserver* observer, std::vector<float>* theta);

  /// Detaches the reduction pool lent to the algorithm: the pool dies with
  /// this loop, but the algorithm object outlives it and may serve direct
  /// calls (diagnostics, invariant probes) afterwards.
  ~ServerLoop();

  /// Runs the configured execution mode to completion.
  Result<History> Run();

 private:
  /// Lockstep rounds; bitwise identical to the historical monolith.
  Result<History> RunSync();
  /// Event-queue driven buffered/async modes; requires a system model.
  Result<History> RunEventDriven();

  /// Draws θ⁰ and calls the algorithm's Setup (shared by both paths).
  void InitializeModel();

  /// Shared record tail for both paths: evaluates on the eval_every
  /// cadence (NaN sentinels otherwise), stamps wall seconds, appends to
  /// `history`, notifies the observer and logs. Returns true when the
  /// record's evaluated accuracy reached the configured target (caller
  /// stops). `record.round` must be set; `watch` is restarted.
  bool FinalizeRecord(RoundRecord record, Stopwatch* watch,
                      History* history);

  /// Appends one JSONL object for `record` to the opt-in round trace
  /// (no-op when `SimulationConfig::round_trace_path` is empty). Wall
  /// fields are zeroed in deterministic-only mode.
  void WriteRoundTrace(const RoundRecord& record);

  /// Dispatches `clients` at simulated time `now` against the current θ:
  /// downlink encode + billing, parallel client execution, uplink size
  /// prediction, admission judgment, and one completion event per client,
  /// pushed onto its shard's heap.
  void DispatchWave(const std::vector<int>& clients, int wave, double now,
                    int theta_version, ShardedEventQueue* queue);

  /// Picks a replacement client for a freed slot: the selector's draw for
  /// `wave` filtered by in-flight status, falling back to the first idle
  /// client id. Returns -1 when every client is busy.
  int PickReplacement(int wave);

  /// The event loop's checkpointable locals, borrowed by the (de)serialize
  /// helpers below (the loop owns them; the helpers read or overwrite).
  struct EventLoopState {
    ShardedEventQueue* queue = nullptr;
    std::vector<ClientCompletionEvent>* buffer = nullptr;
    int* wave_counter = nullptr;
    int* server_version = nullptr;
    int* concurrency = nullptr;
    int* pending_dropped = nullptr;
    int* pending_partial = nullptr;
    int* drops_since_aggregate = nullptr;
  };

  /// Opens (or resumes) the checkpoint log when `checkpoint_path` is set;
  /// null otherwise. Never truncates an existing log — groups stack.
  Result<std::unique_ptr<SlabLog>> OpenCheckpointLog();

  /// Appends one committed sync-mode checkpoint group: θ, selection RNG,
  /// algorithm extras, `history`, the pre-drawn next cohort, and every
  /// touched store slab.
  Status CheckpointSync(SlabLog* log, const History& history,
                        const std::vector<int>& pending_selected,
                        bool have_pending);

  /// Restores sync-mode state from the newest committed group. Returns
  /// false (untouched outputs) when no committed group exists — the fresh
  /// start; errors only on a malformed committed group.
  Result<bool> TryRestoreSync(History* history,
                              std::vector<int>* pending_selected,
                              bool* have_pending);

  /// Event-mode twins: the blob additionally carries the dispatch
  /// sequence, pending download billing, wave/version counters, the
  /// aggregation buffer, and the full event queue.
  Status CheckpointEventDriven(SlabLog* log, const History& history,
                               const EventLoopState& state);
  Result<bool> TryRestoreEventDriven(History* history,
                                     const EventLoopState& state);

  FederatedProblem* problem_;
  FederatedAlgorithm* algorithm_;
  ClientSelector* selector_;
  const SimulationConfig& config_;
  const SystemModel* system_model_;
  const RoundObserver* observer_;
  /// Kept only for the checkpoint pre-flight: codec state (error-feedback
  /// residuals) is not serialized, so checkpointing rejects codec runs.
  UpdateCodec* uplink_codec_;
  UpdateCodec* downlink_codec_;
  /// Serve-mode wave source (fl/ingest.h); null for in-process execution.
  IngestSource* ingest_;

  Rng master_;
  Rng selection_rng_;
  Rng init_rng_;
  CommPipeline pipeline_;
  ClientExecutor executor_;

  /// Borrowed live model buffer (owned by Simulation).
  std::vector<float>& theta_;

  /// Opt-in per-round JSONL trace (closed/no-op unless configured).
  obs::RoundTraceWriter round_trace_;

  // Event-mode state (unused by sync).
  std::vector<char> in_flight_;
  int64_t sequence_ = 0;
  int64_t pending_download_bytes_ = 0;
  int64_t pending_download_bytes_raw_ = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_SERVER_LOOP_H_
