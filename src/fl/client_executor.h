/// \file client_executor.h
/// \brief The engine's client stage: thread-pool fan-out of ClientUpdate.
///
/// Runs the local work of a dispatch wave's clients across a fixed worker
/// pool. Per-client randomness is forked from the master stream keyed by
/// (wave, client) — tag 0xC11E47, exactly the old `Simulation::Run()`
/// scheme with `wave == round` — so trajectories are bitwise independent of
/// the thread count and of scheduling order. Clients within a wave all
/// train against the same θ snapshot, which is what makes the fan-out safe:
/// the algorithm's thread-safety contract only requires distinct client ids
/// per concurrent batch.

#ifndef FEDADMM_FL_CLIENT_EXECUTOR_H_
#define FEDADMM_FL_CLIENT_EXECUTOR_H_

#include <vector>

#include "fl/algorithm.h"
#include "fl/problem.h"
#include "fl/types.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedadmm {

/// \brief Executes client updates for dispatch waves on a worker pool.
class ClientExecutor {
 public:
  /// Pointers are borrowed. `num_threads <= 0` picks the hardware default;
  /// the pool is clamped to the problem's worker-slot count. `num_shards`
  /// (clamped to >= 1) is the aggregation-server worker count: waves run
  /// in shard-major order so same-shard clients contend on their own
  /// shard's state store, not across shards — scheduling only, results
  /// are bitwise order-independent.
  ClientExecutor(FederatedProblem* problem, FederatedAlgorithm* algorithm,
                 const Rng& master, int num_threads, int num_shards = 1);

  /// Runs `algorithm->ClientUpdate` for every client in `clients` against
  /// `theta`, writing results into `*out` (resized, index-parallel to
  /// `clients`). Blocks until the wave completes.
  void RunWave(int wave, const std::vector<int>& clients,
               const std::vector<float>& theta,
               std::vector<UpdateMessage>* out);

  int num_threads() const { return pool_.num_threads(); }

  /// The worker pool, idle between waves — the engine lends it to the
  /// algorithm for blocked server-side reductions (AlgorithmContext::
  /// reduce_pool).
  ThreadPool* pool() { return &pool_; }

 private:
  FederatedProblem* problem_;
  FederatedAlgorithm* algorithm_;
  Rng master_;
  ThreadPool pool_;
  int num_shards_;
  /// Per-shard client-event wall-latency histograms
  /// (`client/event_seconds{shard=s}`) — cached registry handles, one per
  /// aggregation worker, so W-shard runs expose per-worker skew.
  std::vector<obs::Histogram*> shard_event_hist_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_CLIENT_EXECUTOR_H_
