/// \file history_csv.h
/// \brief The canonical per-round CSV schema, shared by History::WriteCsv,
/// the benches and the examples.
///
/// Every consumer used to hand-roll its own header/row writing; by the
/// time the schema grew past a dozen columns the copies had started to
/// drift.
/// This file owns the one column list and the one formatter:
///
///   * `RoundCsvColumns()` / `RoundCsvRow()` — the canonical RoundRecord
///     serialization (doubles at max_digits10, so files round-trip
///     bitwise);
///   * `HistoryCsvWriter` — streams rows prefixed by fixed *context*
///     columns (preset, policy, codec, ... — whatever axes a bench sweeps);
///   * `ReadHistoryCsv` — parses a file written with no context columns
///     back into a `History` (the round-trip used by tests and by offline
///     analysis scripts).

#ifndef FEDADMM_FL_HISTORY_CSV_H_
#define FEDADMM_FL_HISTORY_CSV_H_

#include <string>
#include <vector>

#include "fl/types.h"
#include "util/csv.h"
#include "util/status.h"

namespace fedadmm {

/// \brief The canonical per-round column names, in serialization order.
const std::vector<std::string>& RoundCsvColumns();

/// \brief Formats one record as fields parallel to `RoundCsvColumns()`.
/// Integers print exactly; doubles print at max_digits10 (bitwise
/// round-trippable, NaN prints as "nan").
std::vector<std::string> RoundCsvRow(const RoundRecord& record);

/// \brief Parses fields produced by `RoundCsvRow` back into a record.
/// Returns InvalidArgument on a field-count mismatch or unparsable number.
Result<RoundRecord> RoundFromCsvRow(const std::vector<std::string>& fields);

/// \brief Streams per-round rows, each prefixed by fixed context columns.
class HistoryCsvWriter {
 public:
  /// Opens `path` and writes the header: `context_columns` followed by
  /// `RoundCsvColumns()`. An empty context list yields the plain
  /// History::WriteCsv schema. With `deterministic_only` the host-dependent
  /// `wall_seconds` column is written as 0, so identical seeds produce
  /// byte-identical files — the benches' double-run diff depends on it.
  Status Open(const std::string& path,
              std::vector<std::string> context_columns = {},
              bool deterministic_only = false);

  /// Writes one row. `context` must match the opened context column count.
  Status Append(const std::vector<std::string>& context,
                const RoundRecord& record);

  /// `Append` for every record of `history`.
  Status AppendHistory(const std::vector<std::string>& context,
                       const History& history);

  /// Flushes and closes the file.
  Status Close();

 private:
  CsvWriter writer_;
  size_t num_context_columns_ = 0;
  bool deterministic_only_ = false;
};

/// \brief Reads a CSV written with no context columns (History::WriteCsv)
/// back into a History. The header must match `RoundCsvColumns()` exactly.
Result<History> ReadHistoryCsv(const std::string& path);

}  // namespace fedadmm

#endif  // FEDADMM_FL_HISTORY_CSV_H_
