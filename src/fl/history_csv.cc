#include "fl/history_csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace fedadmm {
namespace {

std::string FormatInt(int64_t v) { return std::to_string(v); }

// max_digits10 for double: the shortest form that always round-trips.
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<int64_t> ParseInt(const std::string& field) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (field.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("history csv: bad integer field '" +
                                   field + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(const std::string& field) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (field.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("history csv: bad numeric field '" +
                                   field + "'");
  }
  return v;
}

}  // namespace

const std::vector<std::string>& RoundCsvColumns() {
  static const std::vector<std::string>* const kColumns =
      new std::vector<std::string>(
          {"round", "num_selected", "train_loss", "test_accuracy",
           "test_loss", "upload_bytes", "download_bytes", "upload_bytes_raw",
           "download_bytes_raw", "wall_seconds", "sim_seconds", "num_dropped",
           "num_admitted_partial", "staleness_mean", "staleness_max",
           "state_bytes_resident"});
  return *kColumns;
}

std::vector<std::string> RoundCsvRow(const RoundRecord& r) {
  return {FormatInt(r.round),
          FormatInt(r.num_selected),
          FormatDouble(r.train_loss),
          FormatDouble(r.test_accuracy),
          FormatDouble(r.test_loss),
          FormatInt(r.upload_bytes),
          FormatInt(r.download_bytes),
          FormatInt(r.upload_bytes_raw),
          FormatInt(r.download_bytes_raw),
          FormatDouble(r.wall_seconds),
          FormatDouble(r.sim_seconds),
          FormatInt(r.num_dropped),
          FormatInt(r.num_admitted_partial),
          FormatDouble(r.staleness_mean),
          FormatInt(r.staleness_max),
          FormatInt(r.state_bytes_resident)};
}

Result<RoundRecord> RoundFromCsvRow(const std::vector<std::string>& fields) {
  if (fields.size() != RoundCsvColumns().size()) {
    return Status::InvalidArgument(
        "history csv: expected " +
        std::to_string(RoundCsvColumns().size()) + " fields, got " +
        std::to_string(fields.size()));
  }
  RoundRecord r;
  size_t i = 0;
  FEDADMM_ASSIGN_OR_RETURN(const int64_t round, ParseInt(fields[i++]));
  r.round = static_cast<int>(round);
  FEDADMM_ASSIGN_OR_RETURN(const int64_t selected, ParseInt(fields[i++]));
  r.num_selected = static_cast<int>(selected);
  FEDADMM_ASSIGN_OR_RETURN(r.train_loss, ParseDouble(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.test_accuracy, ParseDouble(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.test_loss, ParseDouble(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.upload_bytes, ParseInt(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.download_bytes, ParseInt(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.upload_bytes_raw, ParseInt(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.download_bytes_raw, ParseInt(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.wall_seconds, ParseDouble(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(r.sim_seconds, ParseDouble(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(const int64_t dropped, ParseInt(fields[i++]));
  r.num_dropped = static_cast<int>(dropped);
  FEDADMM_ASSIGN_OR_RETURN(const int64_t partial, ParseInt(fields[i++]));
  r.num_admitted_partial = static_cast<int>(partial);
  FEDADMM_ASSIGN_OR_RETURN(r.staleness_mean, ParseDouble(fields[i++]));
  FEDADMM_ASSIGN_OR_RETURN(const int64_t stale_max, ParseInt(fields[i++]));
  r.staleness_max = static_cast<int>(stale_max);
  FEDADMM_ASSIGN_OR_RETURN(r.state_bytes_resident, ParseInt(fields[i++]));
  return r;
}

Status HistoryCsvWriter::Open(const std::string& path,
                              std::vector<std::string> context_columns,
                              bool deterministic_only) {
  num_context_columns_ = context_columns.size();
  deterministic_only_ = deterministic_only;
  FEDADMM_RETURN_IF_ERROR(writer_.Open(path));
  std::vector<std::string> header = std::move(context_columns);
  const std::vector<std::string>& round_columns = RoundCsvColumns();
  header.insert(header.end(), round_columns.begin(), round_columns.end());
  return writer_.WriteRow(header);
}

Status HistoryCsvWriter::Append(const std::vector<std::string>& context,
                                const RoundRecord& record) {
  if (context.size() != num_context_columns_) {
    return Status::InvalidArgument(
        "HistoryCsvWriter: context field count mismatch");
  }
  std::vector<std::string> row = context;
  RoundRecord to_write = record;
  if (deterministic_only_) to_write.wall_seconds = 0.0;
  std::vector<std::string> fields = RoundCsvRow(to_write);
  row.insert(row.end(), std::make_move_iterator(fields.begin()),
             std::make_move_iterator(fields.end()));
  return writer_.WriteRow(row);
}

Status HistoryCsvWriter::AppendHistory(
    const std::vector<std::string>& context, const History& history) {
  for (const RoundRecord& record : history.records()) {
    FEDADMM_RETURN_IF_ERROR(Append(context, record));
  }
  return Status::OK();
}

Status HistoryCsvWriter::Close() { return writer_.Close(); }

Result<History> ReadHistoryCsv(const std::string& path) {
  FEDADMM_ASSIGN_OR_RETURN(const auto rows, ReadCsvFile(path));
  if (rows.empty()) {
    return Status::InvalidArgument("history csv: empty file " + path);
  }
  if (rows[0] != RoundCsvColumns()) {
    return Status::InvalidArgument("history csv: unexpected header in " +
                                   path);
  }
  History history;
  for (size_t i = 1; i < rows.size(); ++i) {
    FEDADMM_ASSIGN_OR_RETURN(const RoundRecord record,
                             RoundFromCsvRow(rows[i]));
    history.Add(record);
  }
  return history;
}

}  // namespace fedadmm
