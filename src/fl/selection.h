/// \file selection.h
/// \brief Client activation schemes.
///
/// The paper's experiments select a uniform fraction C = 0.1 of clients per
/// round. The analysis (Remark 2) only requires infinitely-often
/// participation, so a Bernoulli scheme with per-client probabilities is
/// also provided, along with full participation (needed by FedPD).

#ifndef FEDADMM_FL_SELECTION_H_
#define FEDADMM_FL_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "sys/profiles.h"
#include "util/rng.h"

namespace fedadmm {

/// \brief Strategy choosing the active set S_t each round.
class ClientSelector {
 public:
  virtual ~ClientSelector() = default;

  /// Returns the (non-empty) set of active client ids for round `round`.
  virtual std::vector<int> Select(int round, Rng* rng) = 0;

  /// Total client count m.
  virtual int num_clients() const = 0;

  virtual std::string name() const = 0;
};

/// \brief Uniformly samples max(1, round(C*m)) clients without replacement
/// (the paper's scheme with C = 0.1).
class UniformFractionSelector : public ClientSelector {
 public:
  UniformFractionSelector(int num_clients, double fraction);

  std::vector<int> Select(int round, Rng* rng) override;
  int num_clients() const override { return num_clients_; }
  std::string name() const override;

  /// Clients per round |S_t|.
  int clients_per_round() const { return clients_per_round_; }

 private:
  int num_clients_;
  double fraction_;
  int clients_per_round_;
};

/// \brief Independent Bernoulli participation with per-client probabilities
/// (arbitrary activation per Remark 2). Redraws if the set comes up empty so
/// that every round makes progress.
class BernoulliSelector : public ClientSelector {
 public:
  /// `probabilities[i]` in (0, 1] is client i's participation probability.
  explicit BernoulliSelector(std::vector<double> probabilities);

  std::vector<int> Select(int round, Rng* rng) override;
  int num_clients() const override {
    return static_cast<int>(probabilities_.size());
  }
  std::string name() const override { return "Bernoulli"; }

 private:
  std::vector<double> probabilities_;
};

/// \brief Decorator restricting any base selector to the clients the fleet
/// model reports reachable this round (device availability / churn).
///
/// The decorator intersects the base selection with an availability draw
/// keyed by (round, attempt); if the intersection is empty it retries with a
/// fresh draw-and-selection, and after `kMaxAttempts` falls back to the
/// unfiltered base selection so every round makes progress (trace-driven
/// availability never changes across attempts). Fully deterministic given
/// the selection stream.
class AvailabilityFilterSelector : public ClientSelector {
 public:
  /// Both pointers are borrowed and must outlive the selector. The fleet
  /// must cover exactly the base selector's client population.
  AvailabilityFilterSelector(ClientSelector* base, const FleetModel* fleet);

  std::vector<int> Select(int round, Rng* rng) override;
  int num_clients() const override { return base_->num_clients(); }
  std::string name() const override;

 private:
  static constexpr int kMaxAttempts = 64;

  ClientSelector* base_;
  const FleetModel* fleet_;
};

/// \brief All clients participate every round (FedPD's requirement).
class FullParticipationSelector : public ClientSelector {
 public:
  explicit FullParticipationSelector(int num_clients);

  std::vector<int> Select(int round, Rng* rng) override;
  int num_clients() const override { return num_clients_; }
  std::string name() const override { return "FullParticipation"; }

 private:
  int num_clients_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_SELECTION_H_
