#include "fl/comm_pipeline.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace fedadmm {
namespace {

// Fork tags for the codec RNG streams (see the header on tag disjointness).
constexpr uint64_t kUplinkCodecTag = 0x7C0DEC01;
constexpr uint64_t kDownlinkCodecTag = 0x7C0DEC02;

// Wire billing + codec latency instruments (cached registry handles).
struct CommMetrics {
  obs::Counter* uplink_wire_bytes;
  obs::Counter* uplink_raw_bytes;
  obs::Counter* downlink_broadcast_bytes;
  obs::Histogram* encode_uplink;
  obs::Histogram* encode_downlink;
};

CommMetrics& Metrics() {
  static CommMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    auto* m = new CommMetrics();
    m->uplink_wire_bytes = registry.counter("comm/uplink_wire_bytes");
    m->uplink_raw_bytes = registry.counter("comm/uplink_raw_bytes");
    m->downlink_broadcast_bytes =
        registry.counter("comm/downlink_broadcast_bytes");
    m->encode_uplink = registry.histogram("comm/encode_uplink_seconds");
    m->encode_downlink = registry.histogram("comm/encode_downlink_seconds");
    return m;
  }();
  return *metrics;
}

}  // namespace

DownlinkPlan CommPipeline::PrepareDownlink(int wave,
                                           const std::vector<float>& theta,
                                           int64_t download_per_client_raw) {
  DownlinkPlan plan;
  plan.per_client_bytes_raw = download_per_client_raw;
  plan.per_client_bytes = download_per_client_raw;
  if (downlink_ == nullptr) return plan;

  obs::TraceScope scope("encode_downlink", "comm", Metrics().encode_downlink);
  scope.set_arg("wave", wave);
  const int64_t raw_theta_bytes =
      static_cast<int64_t>(theta.size()) * static_cast<int64_t>(sizeof(float));
  Rng down_rng = master_.Fork(kDownlinkCodecTag, static_cast<uint64_t>(wave));
  Payload payload = downlink_->Encode(kBroadcastStream, theta, &down_rng);
  plan.per_client_bytes =
      payload.WireBytes() + (download_per_client_raw - raw_theta_bytes);
  plan.broadcast = downlink_->Decode(payload);
  plan.use_broadcast = true;
  if (obs::MetricsEnabled()) {
    Metrics().downlink_broadcast_bytes->Add(payload.WireBytes());
  }
  // Keep the wire form: the serving frontend broadcasts these exact bytes,
  // so a remote client decodes precisely what the in-process loop decoded.
  plan.encoded = std::make_shared<const std::vector<uint8_t>>(
      std::move(payload.bytes));
  return plan;
}

void CommPipeline::PredictUplinkBytes(
    std::vector<UpdateMessage>* updates) const {
  if (uplink_ == nullptr) return;
  for (UpdateMessage& msg : *updates) {
    int64_t wire = 0;
    if (!msg.delta.empty()) {
      wire += uplink_->WireBytes(static_cast<int64_t>(msg.delta.size()));
    }
    if (!msg.delta2.empty()) {
      wire += uplink_->WireBytes(static_cast<int64_t>(msg.delta2.size()));
    }
    msg.wire_bytes = wire;
  }
}

void CommPipeline::EncodeUplink(int wave, UpdateMessage* msg) {
  if (uplink_ == nullptr) return;
  obs::TraceScope scope("encode_uplink", "comm", Metrics().encode_uplink);
  scope.set_arg("client", msg->client_id);
  Rng up_rng = master_.Fork(kUplinkCodecTag, static_cast<uint64_t>(wave),
                            static_cast<uint64_t>(msg->client_id));
  const int64_t primary_stream = 2 * static_cast<int64_t>(msg->client_id);
  int64_t wire = 0;
  if (!msg->delta.empty()) {
    const Payload payload =
        uplink_->Encode(primary_stream, msg->delta, &up_rng);
    wire += payload.WireBytes();
    msg->delta = uplink_->Decode(payload);
  }
  if (!msg->delta2.empty()) {
    const Payload payload =
        uplink_->Encode(primary_stream + 1, msg->delta2, &up_rng);
    wire += payload.WireBytes();
    msg->delta2 = uplink_->Decode(payload);
  }
  FEDADMM_CHECK_MSG(wire == msg->wire_bytes,
                    "uplink codec: WireBytes() disagrees with Encode()");
  if (obs::MetricsEnabled()) {
    Metrics().uplink_wire_bytes->Add(wire);
    Metrics().uplink_raw_bytes->Add(msg->RawBytes());
  }
}

void CommPipeline::EncodeUplinkAll(int wave,
                                   std::vector<UpdateMessage>* updates) {
  for (UpdateMessage& msg : *updates) EncodeUplink(wave, &msg);
}

}  // namespace fedadmm
