#include "fl/local_solver.h"

#include "tensor/vec.h"

namespace fedadmm {

int SampleEpochs(const LocalTrainSpec& spec, Rng* rng) {
  FEDADMM_CHECK_MSG(spec.max_epochs >= 1, "max_epochs must be >= 1");
  if (!spec.variable_epochs) return spec.max_epochs;
  return static_cast<int>(rng->UniformInt(1, spec.max_epochs));
}

LocalSolveResult RunLocalSgd(LocalProblem* problem,
                             const LocalTrainSpec& spec, int epochs,
                             std::span<float> w, Rng* rng,
                             const GradientTransform& transform) {
  FEDADMM_CHECK(problem != nullptr);
  FEDADMM_CHECK(static_cast<int64_t>(w.size()) == problem->dim());
  FEDADMM_CHECK_MSG(epochs >= 1, "epochs must be >= 1");

  LocalSolveResult result;
  std::vector<float> grad(w.size());

  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto batches = problem->EpochBatches(spec.batch_size, rng);
    double loss_sum = 0.0;
    int steps = 0;
    for (const auto& batch : batches) {
      const double loss = problem->BatchLossGradient(w, batch, grad);
      if (transform) transform(w, grad);
      vec::Axpy(-spec.learning_rate, grad, w);
      loss_sum += loss;
      ++steps;
    }
    result.steps_run += steps;
    ++result.epochs_run;
    result.mean_loss = steps > 0 ? loss_sum / steps : 0.0;

    if (spec.epsilon > 0.0) {
      // Inexactness check of Eq. (6) on the full local gradient.
      problem->FullLossGradient(w, grad);
      if (transform) transform(w, grad);
      result.final_grad_norm_sq = vec::SquaredL2Norm(grad);
      if (result.final_grad_norm_sq <= spec.epsilon) return result;
    }
  }

  // Report the attained inexactness even when no epsilon target was set.
  problem->FullLossGradient(w, grad);
  if (transform) transform(w, grad);
  result.final_grad_norm_sq = vec::SquaredL2Norm(grad);
  return result;
}

}  // namespace fedadmm
