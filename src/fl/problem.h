/// \file problem.h
/// \brief Abstractions separating federated *algorithms* from federated
/// *problems*.
///
/// A `FederatedProblem` owns the data and loss landscape: it can build a
/// `LocalProblem` for any client (the view a selected client trains on) and
/// can evaluate a flat parameter vector on held-out data. Algorithms
/// (FedAvg, FedADMM, ...) only ever see flat vectors and `LocalProblem`
/// gradients, so the same algorithm code runs on deep CNNs and on analytic
/// quadratic objectives (used for convergence validation).

#ifndef FEDADMM_FL_PROBLEM_H_
#define FEDADMM_FL_PROBLEM_H_

#include <memory>
#include <span>
#include <vector>

#include "fl/types.h"
#include "util/rng.h"

namespace fedadmm {

/// \brief A client's local objective f_i, exposed through batch gradients.
class LocalProblem {
 public:
  virtual ~LocalProblem() = default;

  /// Parameter dimension d.
  virtual int64_t dim() const = 0;

  /// Number of local samples n_i.
  virtual int num_samples() const = 0;

  /// Computes the mean loss over `batch` at parameters `w` and writes the
  /// gradient of that mean loss into `grad` (overwritten, size d).
  virtual double BatchLossGradient(std::span<const float> w,
                                   const std::vector<int>& batch,
                                   std::span<float> grad) = 0;

  /// Minibatch index lists for one local epoch. `batch_size <= 0` means one
  /// full batch (paper's B = ∞).
  virtual std::vector<std::vector<int>> EpochBatches(int batch_size,
                                                     Rng* rng) = 0;

  /// Loss and gradient over all local data (used by FedSGD and by the
  /// inexactness check of Eq. (6)).
  virtual double FullLossGradient(std::span<const float> w,
                                  std::span<float> grad) = 0;
};

/// \brief The global learning task: clients plus held-out evaluation.
///
/// Implementations must support concurrent `MakeLocalProblem` /
/// local-problem usage for *distinct* `worker` slots (the simulator trains
/// selected clients in parallel, one worker slot per thread).
class FederatedProblem {
 public:
  virtual ~FederatedProblem() = default;

  /// Number of clients m.
  virtual int num_clients() const = 0;

  /// Parameter dimension d.
  virtual int64_t dim() const = 0;

  /// Number of worker slots usable concurrently.
  virtual int num_workers() const = 0;

  /// Builds the local view of `client` bound to `worker`'s scratch
  /// resources. The returned object is only valid while no other local
  /// problem uses the same worker slot.
  virtual std::unique_ptr<LocalProblem> MakeLocalProblem(int client,
                                                         int worker) = 0;

  /// Evaluates parameters on the held-out set using `worker`'s resources.
  virtual EvalResult Evaluate(std::span<const float> theta, int worker) = 0;

  /// Draws the initial global model θ⁰.
  virtual std::vector<float> InitialParameters(Rng* rng) = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_PROBLEM_H_
