#include "fl/staleness.h"

#include <cmath>
#include <cstdlib>

namespace fedadmm {

StalenessWeightFn ConstantStalenessWeight() {
  return [](int) { return 1.0; };
}

StalenessWeightFn PolynomialStalenessWeight(double alpha) {
  FEDADMM_CHECK_MSG(alpha >= 0.0,
                    "PolynomialStalenessWeight: alpha must be >= 0");
  return [alpha](int staleness) {
    return std::pow(1.0 + static_cast<double>(staleness < 0 ? 0 : staleness),
                    -alpha);
  };
}

Result<StalenessWeightFn> MakeStalenessWeight(const std::string& spec) {
  if (spec == "constant") return ConstantStalenessWeight();
  const std::string kPoly = "poly:";
  if (spec.rfind(kPoly, 0) == 0) {
    const std::string arg = spec.substr(kPoly.size());
    char* end = nullptr;
    const double alpha = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || alpha < 0.0 ||
        !std::isfinite(alpha)) {
      return Status::InvalidArgument(
          "MakeStalenessWeight: bad alpha in spec '" + spec + "'");
    }
    return PolynomialStalenessWeight(alpha);
  }
  return Status::InvalidArgument("MakeStalenessWeight: unknown spec '" +
                                 spec + "' (want constant | poly:<alpha>)");
}

}  // namespace fedadmm
