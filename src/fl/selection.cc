#include "fl/selection.h"

#include <cmath>

#include "util/status.h"

namespace fedadmm {

UniformFractionSelector::UniformFractionSelector(int num_clients,
                                                 double fraction)
    : num_clients_(num_clients), fraction_(fraction) {
  FEDADMM_CHECK_MSG(num_clients >= 1, "need at least one client");
  FEDADMM_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                    "fraction must be in (0, 1]");
  clients_per_round_ = std::max(
      1, static_cast<int>(std::lround(fraction * num_clients)));
  clients_per_round_ = std::min(clients_per_round_, num_clients_);
}

std::vector<int> UniformFractionSelector::Select(int round, Rng* rng) {
  (void)round;
  return rng->SampleWithoutReplacement(num_clients_, clients_per_round_)
      .ValueOrDie();
}

std::string UniformFractionSelector::name() const {
  return "UniformFraction(C=" + std::to_string(fraction_) + ")";
}

BernoulliSelector::BernoulliSelector(std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  FEDADMM_CHECK_MSG(!probabilities_.empty(), "need at least one client");
  for (double p : probabilities_) {
    FEDADMM_CHECK_MSG(p > 0.0 && p <= 1.0,
                      "participation probabilities must be in (0, 1]");
  }
}

std::vector<int> BernoulliSelector::Select(int round, Rng* rng) {
  (void)round;
  std::vector<int> selected;
  // Redraw on an empty set: the analysis needs progress every round, and
  // P(empty) > 0 for small probabilities.
  while (selected.empty()) {
    for (size_t i = 0; i < probabilities_.size(); ++i) {
      if (rng->Bernoulli(probabilities_[i])) {
        selected.push_back(static_cast<int>(i));
      }
    }
  }
  return selected;
}

AvailabilityFilterSelector::AvailabilityFilterSelector(ClientSelector* base,
                                                       const FleetModel* fleet)
    : base_(base), fleet_(fleet) {
  FEDADMM_CHECK_MSG(base != nullptr && fleet != nullptr,
                    "AvailabilityFilterSelector: null base or fleet");
  FEDADMM_CHECK_MSG(base->num_clients() == fleet->num_clients(),
                    "AvailabilityFilterSelector: fleet and base selector "
                    "disagree on client count");
}

std::vector<int> AvailabilityFilterSelector::Select(int round, Rng* rng) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::vector<int> base = base_->Select(round, rng);
    // The availability stream is keyed by (round, attempt), never by how
    // many draws the base selector consumed.
    const Rng stream =
        rng->Fork(0x5E1AAB1E, static_cast<uint64_t>(round),
                  static_cast<uint64_t>(attempt));
    std::vector<int> reachable;
    for (int client : base) {
      if (fleet_->IsAvailable(client, round, stream)) {
        reachable.push_back(client);
      }
    }
    if (!reachable.empty()) return reachable;
  }
  // Pathological availability (e.g. an all-zero trace window): proceed with
  // the unfiltered selection rather than stalling the round.
  return base_->Select(round, rng);
}

std::string AvailabilityFilterSelector::name() const {
  return "Available(" + fleet_->name() + ", " + base_->name() + ")";
}

FullParticipationSelector::FullParticipationSelector(int num_clients)
    : num_clients_(num_clients) {
  FEDADMM_CHECK_MSG(num_clients >= 1, "need at least one client");
}

std::vector<int> FullParticipationSelector::Select(int round, Rng* rng) {
  (void)round;
  (void)rng;
  std::vector<int> all(static_cast<size_t>(num_clients_));
  for (int i = 0; i < num_clients_; ++i) all[static_cast<size_t>(i)] = i;
  return all;
}

}  // namespace fedadmm
