/// \file ingest.h
/// \brief The seam between the federation engine and a serving frontend.
///
/// With an `IngestSource` attached (Simulation::set_ingest), the sync
/// server loop stops *simulating* the client phase in-process and instead
/// collects the wave from whatever the source feeds it — in src/serve, a
/// wire-protocol frontend whose clients connect, pull the broadcast, and
/// push encoded updates over a Transport. The engine keeps everything else:
/// selection, downlink encode + billing, the straggler judgment, download
/// billing, partial-admission scaling, aggregation, and metrics run
/// unchanged, so a frontend that reproduces the client computation exactly
/// yields a bitwise-identical θ trajectory (pinned by
/// tests/serve/frontend_equivalence_test.cc).
///
/// Contract:
///   * Serve mode is sync-only, incompatible with checkpointing, and
///     requires a deterministic, stateless uplink codec (or none): the
///     engine cannot re-encode what it never computed, and a remote
///     encoder cannot share the server's Rng forks or residual history.
///   * `CollectWave(round)` returns one `UpdateMessage` per cohort member,
///     in selection order, *including* clients the straggler policy will
///     reject — the loop's own `SystemModel::JudgeRound` remains the
///     single judge, and the frontend's connection-level admission
///     predicate (the same per-client policy function) merely mirrors its
///     verdicts into ACK frames.
///   * Messages carry decoded payloads (the frontend decodes each upload
///     exactly once, on the owning shard worker) with `wire_bytes` stamped
///     to the actual frame payload size (-1 when no uplink codec ran), so
///     byte accounting matches `CommPipeline::PredictUplinkBytes`.

#ifndef FEDADMM_FL_INGEST_H_
#define FEDADMM_FL_INGEST_H_

#include <cstdint>
#include <vector>

#include "fl/round_context.h"
#include "fl/types.h"
#include "util/status.h"

namespace fedadmm {

/// \brief Where the sync engine's client updates come from in serve mode.
class IngestSource {
 public:
  virtual ~IngestSource() = default;

  /// Called once per run, after θ⁰ is drawn and before round 0: the run
  /// shape the source must serve. Reject mismatches with Status (e.g. a
  /// frontend configured for a different dim or client population).
  virtual Status StartServing(int num_clients, int64_t dim) = 0;

  /// Opens `round` for the given cohort: publish the downlink (the
  /// encoded broadcast in `downlink.encoded` when a downlink codec ran,
  /// raw `theta` otherwise) and prepare one collection slot per cohort
  /// member. Returns immediately; clients pull and push concurrently with
  /// the loop's aggregate/finalize work.
  virtual Status BeginRound(int round, const std::vector<int>& cohort,
                            const DownlinkPlan& downlink,
                            const std::vector<float>& theta) = 0;

  /// Blocks until every cohort member's upload for `round` resolved;
  /// returns the messages in selection order (see the class contract).
  virtual Result<std::vector<UpdateMessage>> CollectWave(int round) = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_INGEST_H_
