/// \file local_solver.h
/// \brief Shared local SGD loop used by FedAvg, FedProx and FedADMM.
///
/// All three methods run the same minibatch SGD over the client's data; they
/// differ only in the extra term added to the batch gradient:
///   * FedAvg:   g
///   * FedProx:  g + ρ(w − θ)
///   * FedADMM:  g + y + ρ(w − θ)       (Alg. 1, line 17)
/// The extra term is injected through `GradientTransform`, which also makes
/// the paper's reduction claims directly testable: with the transforms
/// aligned, the three solvers produce identical iterates given identical
/// batch sequences (Section III-B).

#ifndef FEDADMM_FL_LOCAL_SOLVER_H_
#define FEDADMM_FL_LOCAL_SOLVER_H_

#include <functional>
#include <span>
#include <vector>

#include "fl/problem.h"

namespace fedadmm {

/// \brief Hyperparameters of the local training loop.
struct LocalTrainSpec {
  /// Client learning rate η_i.
  float learning_rate = 0.1f;
  /// Minibatch size B; <= 0 means full batch (paper's B = ∞).
  int batch_size = 10;
  /// Maximum local epochs E.
  int max_epochs = 5;
  /// System heterogeneity (Section V-A): when true, each selected client
  /// runs U{1, ..., max_epochs} epochs instead of exactly max_epochs.
  bool variable_epochs = false;
  /// Optional inexactness target ε of Eq. (6): when > 0, local training
  /// stops after any epoch where the squared norm of the full transformed
  /// gradient is <= epsilon (checked at epoch granularity).
  double epsilon = -1.0;
};

/// Adds the algorithm-specific term to the batch gradient, in place.
/// Receives the current local iterate `w` and the batch gradient `grad`.
using GradientTransform =
    std::function<void(std::span<const float> w, std::span<float> grad)>;

/// \brief Outcome of a local solve.
struct LocalSolveResult {
  /// Mean batch loss over the final epoch (the paper reports train loss).
  double mean_loss = 0.0;
  int epochs_run = 0;
  int steps_run = 0;
  /// Squared norm of the transformed gradient at the final iterate,
  /// evaluated on the full local data — the attained ε_i of Eq. (6).
  double final_grad_norm_sq = 0.0;
};

/// \brief Runs epochs of minibatch SGD on `problem`, updating `w` in place.
///
/// `epochs` is the resolved epoch count for this round (callers sample it
/// when `variable_epochs` is on). If `spec.epsilon > 0`, training may stop
/// earlier once the inexactness criterion is met. The final gradient norm
/// is always measured so callers can report attained inexactness.
LocalSolveResult RunLocalSgd(LocalProblem* problem, const LocalTrainSpec& spec,
                             int epochs, std::span<float> w, Rng* rng,
                             const GradientTransform& transform);

/// \brief Resolves the epoch count for one (round, client) pair: either the
/// fixed `spec.max_epochs` or U{1..max_epochs} under system heterogeneity.
int SampleEpochs(const LocalTrainSpec& spec, Rng* rng);

}  // namespace fedadmm

#endif  // FEDADMM_FL_LOCAL_SOLVER_H_
