#include "fl/server_loop.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "state/checkpoint.h"
#include "state/client_state_store.h"
#include "state/slab_log.h"
#include "util/file_io.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedadmm {
namespace {

// Fork tags for the selection and init streams; the codec tags live in
// fl/comm_pipeline.cc and the client tag in fl/client_executor.cc. All five
// are pairwise distinct, so no stage can perturb another's stream.
constexpr uint64_t kSelectionTag = 0x5E1EC7;
constexpr uint64_t kInitTag = 0x1417;

// Mean training loss over aggregated updates; NaN when nothing aggregated
// (the record's established skipped-metric sentinel).
double MeanTrainLoss(double loss_sum, size_t count) {
  return count == 0 ? std::numeric_limits<double>::quiet_NaN()
                    : loss_sum / static_cast<double>(count);
}

// Scales both payload vectors in place (deadline partial admissions and
// staleness discounts).
void ScalePayload(float scale, UpdateMessage* msg) {
  for (float& v : msg->delta) v *= scale;
  for (float& v : msg->delta2) v *= scale;
}

// Fraction-aware download billing: a client dropped before its download
// completed is billed only the bytes that reached it by the cut-off.
int64_t BilledBytes(double fraction, int64_t per_client) {
  if (fraction >= 1.0) return per_client;
  return static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(per_client)));
}

// Cached handles into the global metrics registry (stable for the process
// lifetime). The per-round phase histograms are the engine's time budget:
// select → dispatch (downlink encode + client wave + size prediction) →
// aggregate (admission + uplink encode + ServerUpdate) → finalize (eval +
// bookkeeping).
struct EngineMetrics {
  obs::Counter* rounds;
  obs::Counter* clients_selected;
  obs::Counter* clients_dropped;
  obs::Counter* clients_admitted_partial;
  obs::Gauge* state_bytes_resident;
  obs::Histogram* phase_select;
  obs::Histogram* phase_dispatch;
  obs::Histogram* phase_aggregate;
  obs::Histogram* phase_finalize;
};

EngineMetrics& Metrics() {
  static EngineMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->rounds = registry.counter("server/rounds_count");
    m->clients_selected = registry.counter("server/clients_selected_count");
    m->clients_dropped = registry.counter("server/clients_dropped_count");
    m->clients_admitted_partial =
        registry.counter("server/clients_admitted_partial_count");
    m->state_bytes_resident = registry.gauge("server/state_bytes_resident");
    m->phase_select = registry.histogram("server/phase/select_seconds");
    m->phase_dispatch = registry.histogram("server/phase/dispatch_seconds");
    m->phase_aggregate = registry.histogram("server/phase/aggregate_seconds");
    m->phase_finalize = registry.histogram("server/phase/finalize_seconds");
    return m;
  }();
  return *metrics;
}

// Checkpoint engine-blob mode tags: a sync blob must never restore an
// event-mode run (and vice versa) — the layouts differ after the common
// head.
constexpr uint8_t kCheckpointSyncTag = 1;
constexpr uint8_t kCheckpointEventTag = 2;

void WriteRoundRecord(const RoundRecord& r, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(r.round));
  w->U32(static_cast<uint32_t>(r.num_selected));
  w->F64(r.train_loss);
  w->F64(r.test_accuracy);
  w->F64(r.test_loss);
  w->I64(r.upload_bytes);
  w->I64(r.download_bytes);
  w->I64(r.upload_bytes_raw);
  w->I64(r.download_bytes_raw);
  w->F64(r.wall_seconds);
  w->F64(r.sim_seconds);
  w->U32(static_cast<uint32_t>(r.num_dropped));
  w->U32(static_cast<uint32_t>(r.num_admitted_partial));
  w->F64(r.staleness_mean);
  w->U32(static_cast<uint32_t>(r.staleness_max));
  w->I64(r.state_bytes_resident);
}

Result<RoundRecord> ReadRoundRecord(ByteReader* reader) {
  RoundRecord r;
  FEDADMM_ASSIGN_OR_RETURN(uint32_t round, reader->U32());
  r.round = static_cast<int>(round);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t num_selected, reader->U32());
  r.num_selected = static_cast<int>(num_selected);
  FEDADMM_ASSIGN_OR_RETURN(r.train_loss, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(r.test_accuracy, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(r.test_loss, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(r.upload_bytes, reader->I64());
  FEDADMM_ASSIGN_OR_RETURN(r.download_bytes, reader->I64());
  FEDADMM_ASSIGN_OR_RETURN(r.upload_bytes_raw, reader->I64());
  FEDADMM_ASSIGN_OR_RETURN(r.download_bytes_raw, reader->I64());
  FEDADMM_ASSIGN_OR_RETURN(r.wall_seconds, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(r.sim_seconds, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t num_dropped, reader->U32());
  r.num_dropped = static_cast<int>(num_dropped);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t num_partial, reader->U32());
  r.num_admitted_partial = static_cast<int>(num_partial);
  FEDADMM_ASSIGN_OR_RETURN(r.staleness_mean, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t staleness_max, reader->U32());
  r.staleness_max = static_cast<int>(staleness_max);
  FEDADMM_ASSIGN_OR_RETURN(r.state_bytes_resident, reader->I64());
  return {std::move(r)};
}

void WriteHistoryBlob(const History& history, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(history.size()));
  for (const RoundRecord& r : history.records()) WriteRoundRecord(r, w);
}

Result<History> ReadHistoryBlob(ByteReader* reader) {
  History history;
  FEDADMM_ASSIGN_OR_RETURN(uint32_t count, reader->U32());
  for (uint32_t i = 0; i < count; ++i) {
    FEDADMM_ASSIGN_OR_RETURN(RoundRecord record, ReadRoundRecord(reader));
    history.Add(record);
  }
  return {std::move(history)};
}

}  // namespace

ServerLoop::ServerLoop(FederatedProblem* problem,
                       FederatedAlgorithm* algorithm,
                       ClientSelector* selector,
                       const SimulationConfig& config,
                       const SystemModel* system_model,
                       UpdateCodec* uplink_codec, UpdateCodec* downlink_codec,
                       IngestSource* ingest, const RoundObserver* observer,
                       std::vector<float>* theta)
    : problem_(problem),
      algorithm_(algorithm),
      selector_(selector),
      config_(config),
      system_model_(system_model),
      observer_(observer),
      uplink_codec_(uplink_codec),
      downlink_codec_(downlink_codec),
      ingest_(ingest),
      master_(config.seed),
      selection_rng_(master_.Fork(kSelectionTag)),
      init_rng_(master_.Fork(kInitTag)),
      pipeline_(uplink_codec, downlink_codec, master_),
      executor_(problem, algorithm, master_, config.num_threads,
                config.num_shards),
      theta_(*theta) {}

ServerLoop::~ServerLoop() { algorithm_->DetachReducePool(); }

void ServerLoop::InitializeModel() {
  theta_ = problem_->InitialParameters(&init_rng_);
  AlgorithmContext ctx;
  ctx.num_clients = problem_->num_clients();
  ctx.dim = problem_->dim();
  ctx.state_store = config_.state_store;
  // Lend the client-phase pool for blocked server-side reductions: it is
  // idle whenever ServerUpdate / AggregateOne runs (waves are joined before
  // aggregation in every mode).
  ctx.reduce_pool = executor_.pool();
  ctx.num_shards = config_.num_shards;
  algorithm_->Setup(ctx, theta_);
}

bool ServerLoop::FinalizeRecord(RoundRecord record, Stopwatch* watch,
                                History* history) {
  obs::TraceScope scope("finalize", "engine", Metrics().phase_finalize);
  scope.set_arg("round", record.round);
  const int round = record.round;
  const bool last_round = (round == config_.max_rounds - 1);
  const bool evaluate = last_round || (round % config_.eval_every == 0);
  if (evaluate) {
    const EvalResult eval = problem_->Evaluate(theta_, /*worker=*/0);
    record.test_accuracy = eval.accuracy;
    record.test_loss = eval.loss;
  } else {
    record.test_accuracy = std::numeric_limits<double>::quiet_NaN();
    record.test_loss = std::numeric_limits<double>::quiet_NaN();
  }
  record.wall_seconds = watch->ElapsedSeconds();
  // Stamp the state-cost surface: what the algorithm's per-client store
  // holds resident at the end of this round.
  record.state_bytes_resident = algorithm_->StateBytesResident();
  watch->Reset();
  history->Add(record);
  if (obs::MetricsEnabled()) {
    EngineMetrics& m = Metrics();
    m.rounds->Add(1);
    m.clients_selected->Add(record.num_selected);
    m.clients_dropped->Add(record.num_dropped);
    m.clients_admitted_partial->Add(record.num_admitted_partial);
    m.state_bytes_resident->Set(record.state_bytes_resident);
  }
  if (round_trace_.is_open()) WriteRoundTrace(record);
  if (observer_ && *observer_) (*observer_)(record);
  if (config_.log_rounds && evaluate) {
    if (config_.mode == ExecutionMode::kSync) {
      FEDADMM_LOG(Info) << algorithm_->name() << " round " << round
                        << " acc=" << record.test_accuracy
                        << " loss=" << record.train_loss;
    } else {
      FEDADMM_LOG(Info) << algorithm_->name() << " ["
                        << ExecutionModeName(config_.mode) << "] round "
                        << round << " t=" << record.sim_seconds
                        << " acc=" << record.test_accuracy
                        << " stale=" << record.staleness_mean;
    }
  }
  return evaluate && config_.target_accuracy > 0.0 &&
         record.test_accuracy >= config_.target_accuracy;
}

void ServerLoop::WriteRoundTrace(const RoundRecord& record) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("round").Int(record.round);
  w.Key("num_selected").Int(record.num_selected);
  w.Key("num_dropped").Int(record.num_dropped);
  w.Key("num_admitted_partial").Int(record.num_admitted_partial);
  w.Key("train_loss").Double(record.train_loss);
  w.Key("test_accuracy").Double(record.test_accuracy);
  w.Key("test_loss").Double(record.test_loss);
  w.Key("sim_seconds").Double(record.sim_seconds);
  w.Key("upload_bytes").Int(record.upload_bytes);
  w.Key("download_bytes").Int(record.download_bytes);
  w.Key("upload_bytes_raw").Int(record.upload_bytes_raw);
  w.Key("download_bytes_raw").Int(record.download_bytes_raw);
  w.Key("staleness_mean").Double(record.staleness_mean);
  w.Key("staleness_max").Int(record.staleness_max);
  w.Key("state_bytes_resident").Int(record.state_bytes_resident);
  // The only host-dependent field; zeroed in deterministic-only mode so
  // same-seed traces diff byte-identical (mirrors the history CSV).
  w.Key("wall_seconds")
      .Double(round_trace_.deterministic_only() ? 0.0 : record.wall_seconds);
  w.EndObject();
  const Status status = round_trace_.Append(w.str());
  if (!status.ok()) {
    // A broken trace sink must not abort training; warn once and stop
    // writing.
    FEDADMM_LOG(Warning) << "round trace disabled: " << status.message();
    (void)round_trace_.Close();
  }
}

Result<std::unique_ptr<SlabLog>> ServerLoop::OpenCheckpointLog() {
  if (config_.checkpoint_path.empty()) {
    return {std::unique_ptr<SlabLog>()};
  }
  // Never truncate: groups stack, and recovery (which already ran by the
  // time this opens in restore mode) picks the newest committed one. A
  // torn tail is cut by Open so appends resume after the last intact
  // record.
  return SlabLog::Open(config_.checkpoint_path, /*truncate=*/false);
}

Status ServerLoop::CheckpointSync(SlabLog* log, const History& history,
                                  const std::vector<int>& pending_selected,
                                  bool have_pending) {
  ByteWriter writer;
  writer.U8(kCheckpointSyncTag);
  writer.Floats(theta_);
  writer.String(selection_rng_.SerializeState());
  writer.String(algorithm_->SerializeExtraState());
  WriteHistoryBlob(history, &writer);
  // The next round's cohort is drawn *before* this checkpoint (the
  // prefetch restructure), so the serialized RNG has already moved past
  // it; the cohort itself must ride along or the restored run would skip
  // it.
  writer.U8(have_pending ? 1 : 0);
  writer.U32(static_cast<uint32_t>(pending_selected.size()));
  for (const int client : pending_selected) {
    writer.U32(static_cast<uint32_t>(client));
  }
  return AppendSimulationCheckpoint(log, history.size(), writer.Take(),
                                    algorithm_->mutable_state_store());
}

Result<bool> ServerLoop::TryRestoreSync(History* history,
                                        std::vector<int>* pending_selected,
                                        bool* have_pending) {
  auto loaded = LoadLatestSimulationCheckpoint(config_.checkpoint_path);
  if (!loaded.ok()) {
    if (loaded.status().IsNotFound() || loaded.status().IsIoError()) {
      // Missing file, no committed group, or an unreadable one: start
      // fresh — the crash-before-first-checkpoint semantic.
      return {false};
    }
    return loaded.status();
  }
  const SimulationCheckpoint& checkpoint = loaded.ValueOrDie();
  ByteReader reader(checkpoint.engine_blob);
  FEDADMM_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
  if (tag != kCheckpointSyncTag) {
    return Status::InvalidArgument(
        "Simulation: checkpoint in '" + config_.checkpoint_path +
        "' was written by a different execution mode");
  }
  FEDADMM_ASSIGN_OR_RETURN(std::vector<float> theta, reader.Floats());
  if (theta.size() != theta_.size()) {
    return Status::InvalidArgument(
        "Simulation: checkpoint θ dim " + std::to_string(theta.size()) +
        " != problem dim " + std::to_string(theta_.size()));
  }
  theta_ = std::move(theta);
  FEDADMM_ASSIGN_OR_RETURN(std::string rng_state, reader.String());
  FEDADMM_RETURN_IF_ERROR(selection_rng_.RestoreState(rng_state));
  FEDADMM_ASSIGN_OR_RETURN(std::string extra, reader.String());
  FEDADMM_RETURN_IF_ERROR(algorithm_->RestoreExtraState(extra));
  FEDADMM_ASSIGN_OR_RETURN(*history, ReadHistoryBlob(&reader));
  FEDADMM_ASSIGN_OR_RETURN(uint8_t have, reader.U8());
  *have_pending = have != 0;
  FEDADMM_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  pending_selected->clear();
  pending_selected->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FEDADMM_ASSIGN_OR_RETURN(uint32_t client, reader.U32());
    pending_selected->push_back(static_cast<int>(client));
  }
  if (ClientStateStore* store = algorithm_->mutable_state_store()) {
    FEDADMM_RETURN_IF_ERROR(RestoreStoreContents(checkpoint, store));
  }
  return {true};
}

Status ServerLoop::CheckpointEventDriven(SlabLog* log, const History& history,
                                         const EventLoopState& state) {
  ByteWriter writer;
  writer.U8(kCheckpointEventTag);
  writer.Floats(theta_);
  writer.String(selection_rng_.SerializeState());
  writer.String(algorithm_->SerializeExtraState());
  WriteHistoryBlob(history, &writer);
  writer.I64(sequence_);
  writer.I64(pending_download_bytes_);
  writer.I64(pending_download_bytes_raw_);
  writer.U32(static_cast<uint32_t>(*state.wave_counter));
  writer.U32(static_cast<uint32_t>(*state.server_version));
  writer.U32(static_cast<uint32_t>(*state.concurrency));
  writer.U32(static_cast<uint32_t>(*state.pending_dropped));
  writer.U32(static_cast<uint32_t>(*state.pending_partial));
  writer.U32(static_cast<uint32_t>(*state.drops_since_aggregate));
  writer.U32(static_cast<uint32_t>(state.buffer->size()));
  for (const ClientCompletionEvent& event : *state.buffer) {
    SerializeClientCompletionEvent(event, &writer);
  }
  writer.U32(static_cast<uint32_t>(state.queue->size()));
  for (int s = 0; s < state.queue->num_shards(); ++s) {
    for (const ClientCompletionEvent& event : state.queue->shard(s).events()) {
      SerializeClientCompletionEvent(event, &writer);
    }
  }
  return AppendSimulationCheckpoint(log, history.size(), writer.Take(),
                                    algorithm_->mutable_state_store());
}

Result<bool> ServerLoop::TryRestoreEventDriven(History* history,
                                               const EventLoopState& state) {
  auto loaded = LoadLatestSimulationCheckpoint(config_.checkpoint_path);
  if (!loaded.ok()) {
    if (loaded.status().IsNotFound() || loaded.status().IsIoError()) {
      return {false};
    }
    return loaded.status();
  }
  const SimulationCheckpoint& checkpoint = loaded.ValueOrDie();
  ByteReader reader(checkpoint.engine_blob);
  FEDADMM_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
  if (tag != kCheckpointEventTag) {
    return Status::InvalidArgument(
        "Simulation: checkpoint in '" + config_.checkpoint_path +
        "' was written by a different execution mode");
  }
  FEDADMM_ASSIGN_OR_RETURN(std::vector<float> theta, reader.Floats());
  if (theta.size() != theta_.size()) {
    return Status::InvalidArgument(
        "Simulation: checkpoint θ dim " + std::to_string(theta.size()) +
        " != problem dim " + std::to_string(theta_.size()));
  }
  theta_ = std::move(theta);
  FEDADMM_ASSIGN_OR_RETURN(std::string rng_state, reader.String());
  FEDADMM_RETURN_IF_ERROR(selection_rng_.RestoreState(rng_state));
  FEDADMM_ASSIGN_OR_RETURN(std::string extra, reader.String());
  FEDADMM_RETURN_IF_ERROR(algorithm_->RestoreExtraState(extra));
  FEDADMM_ASSIGN_OR_RETURN(*history, ReadHistoryBlob(&reader));
  FEDADMM_ASSIGN_OR_RETURN(sequence_, reader.I64());
  FEDADMM_ASSIGN_OR_RETURN(pending_download_bytes_, reader.I64());
  FEDADMM_ASSIGN_OR_RETURN(pending_download_bytes_raw_, reader.I64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t wave_counter, reader.U32());
  *state.wave_counter = static_cast<int>(wave_counter);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t server_version, reader.U32());
  *state.server_version = static_cast<int>(server_version);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t concurrency, reader.U32());
  *state.concurrency = static_cast<int>(concurrency);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t pending_dropped, reader.U32());
  *state.pending_dropped = static_cast<int>(pending_dropped);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t pending_partial, reader.U32());
  *state.pending_partial = static_cast<int>(pending_partial);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t drops, reader.U32());
  *state.drops_since_aggregate = static_cast<int>(drops);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t buffered, reader.U32());
  state.buffer->clear();
  for (uint32_t i = 0; i < buffered; ++i) {
    FEDADMM_ASSIGN_OR_RETURN(ClientCompletionEvent event,
                             DeserializeClientCompletionEvent(&reader));
    state.buffer->push_back(std::move(event));
  }
  FEDADMM_ASSIGN_OR_RETURN(uint32_t queued, reader.U32());
  for (uint32_t i = 0; i < queued; ++i) {
    FEDADMM_ASSIGN_OR_RETURN(ClientCompletionEvent event,
                             DeserializeClientCompletionEvent(&reader));
    // in_flight_ is derivable: exactly the queued (not yet completed)
    // clients occupy slots.
    in_flight_[static_cast<size_t>(event.client_id)] = 1;
    state.queue->Push(std::move(event));
  }
  if (ClientStateStore* store = algorithm_->mutable_state_store()) {
    FEDADMM_RETURN_IF_ERROR(RestoreStoreContents(checkpoint, store));
  }
  return {true};
}

Result<History> ServerLoop::Run() {
  if (config_.max_rounds <= 0) {
    return Status::InvalidArgument("Simulation: max_rounds must be > 0");
  }
  if (selector_->num_clients() != problem_->num_clients()) {
    return Status::InvalidArgument(
        "Simulation: selector and problem disagree on client count");
  }
  if (config_.eval_every < 1) {
    return Status::InvalidArgument("Simulation: eval_every must be >= 1");
  }
  if (config_.num_shards < 1) {
    return Status::InvalidArgument(
        "Simulation: num_shards must be >= 1 (1 = unsharded server)");
  }
  // Fail fast on a bad spec — config-level or algorithm-default — since
  // Setup runs deep inside the first round and can only CHECK.
  const std::string effective_store = config_.state_store.empty()
                                          ? algorithm_->DefaultStateStoreSpec()
                                          : config_.state_store;
  if (!effective_store.empty()) {
    auto probe = MakeClientStateStore(effective_store);
    if (!probe.ok()) return probe.status();
  }
  if (!config_.checkpoint_path.empty()) {
    if (config_.checkpoint_every < 1) {
      return Status::InvalidArgument(
          "Simulation: checkpoint_every must be >= 1");
    }
    // Codec state (error-feedback residuals, codec RNG forks) is not part
    // of the checkpoint blob; restoring around it would silently change
    // the trajectory. Fail fast instead.
    if (uplink_codec_ != nullptr || downlink_codec_ != nullptr) {
      return Status::InvalidArgument(
          "Simulation: checkpoint_path does not cover codec state "
          "(error-feedback residuals); detach the uplink/downlink codecs "
          "or disable checkpointing");
    }
  }
  if (ingest_ != nullptr) {
    // Serve mode replaces the in-process client phase with wire-protocol
    // collection (fl/ingest.h); the preconditions that keep the trajectory
    // reproducible are checked here, before any round runs.
    if (config_.mode != ExecutionMode::kSync) {
      return Status::InvalidArgument(
          "Simulation: an ingest source requires sync mode (event modes "
          "schedule the client phase in-process)");
    }
    if (!config_.checkpoint_path.empty()) {
      return Status::InvalidArgument(
          "Simulation: checkpoint_path does not cover frontend session "
          "state; detach the ingest source or disable checkpointing");
    }
    if (uplink_codec_ != nullptr &&
        (!uplink_codec_->deterministic() || uplink_codec_->stateful())) {
      return Status::InvalidArgument(
          "Simulation: serve mode needs a deterministic, stateless uplink "
          "codec ('" + uplink_codec_->name() +
          "' is not): remote encoders cannot share the server's Rng forks "
          "or residual history");
    }
  }
  if (!config_.round_trace_path.empty()) {
    FEDADMM_RETURN_IF_ERROR(round_trace_.Open(
        config_.round_trace_path, config_.round_trace_deterministic_only));
  }
  if (config_.mode == ExecutionMode::kSync) {
    Result<History> history = RunSync();
    FEDADMM_RETURN_IF_ERROR(round_trace_.Close());
    return history;
  }
  if (system_model_ == nullptr) {
    return Status::InvalidArgument(
        "Simulation: mode '" + ExecutionModeName(config_.mode) +
        "' needs a system model (event times come from the virtual clock)");
  }
  // Let methods whose aggregation semantics break under per-arrival or
  // small-batch updates reject the run up front (FedADMM with a fixed η
  // silently overshoots m-fold; FedPD cannot form its full-population
  // mean).
  FEDADMM_RETURN_IF_ERROR(algorithm_->ValidateForEventMode());
  Result<History> history = RunEventDriven();
  FEDADMM_RETURN_IF_ERROR(round_trace_.Close());
  return history;
}

Result<History> ServerLoop::RunSync() {
  InitializeModel();
  if (ingest_) {
    FEDADMM_RETURN_IF_ERROR(
        ingest_->StartServing(problem_->num_clients(), problem_->dim()));
  }

  History history;
  VirtualClock clock;
  // The next round's cohort, drawn one round ahead (between dispatch and
  // aggregate) so the state store can prefetch its cold slabs while the
  // server aggregates/evaluates. The selection stream still sees exactly
  // the call sequence Select(0), Select(1), ... — trajectories stay
  // bitwise identical to the lockstep draw.
  std::vector<int> selected;
  bool have_selected = false;
  FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<SlabLog> checkpoint_log,
                           OpenCheckpointLog());
  if (checkpoint_log && config_.restore_from_checkpoint) {
    FEDADMM_ASSIGN_OR_RETURN(
        const bool restored,
        TryRestoreSync(&history, &selected, &have_selected));
    if (restored && system_model_ && !history.empty()) {
      // The clock is derivable: sim_seconds of the last record is exactly
      // where the virtual clock stood.
      clock.Advance(history.records().back().sim_seconds);
    }
  }
  for (int round = history.size(); round < config_.max_rounds; ++round) {
    Stopwatch watch;
    RoundContext ctx;
    ctx.round = round;
    ctx.num_shards = config_.num_shards;
    if (have_selected) {
      ctx.selected = std::move(selected);
      have_selected = false;
    } else {
      obs::TraceScope scope("select", "engine", Metrics().phase_select);
      scope.set_arg("round", round);
      ctx.selected = selector_->Select(round, &selection_rng_);
    }
    FEDADMM_CHECK_MSG(!ctx.selected.empty(), "selector returned empty set");

    obs::TraceScope dispatch_scope("dispatch", "engine",
                                   Metrics().phase_dispatch);
    dispatch_scope.set_arg("round", round);
    // Downlink: the server encodes θ once per round; every selected client
    // trains on the decoded broadcast (what it actually received) and is
    // billed the compressed size. Algorithm extras beyond θ (e.g.
    // SCAFFOLD's control variate) stay uncompressed.
    ctx.downlink = pipeline_.PrepareDownlink(
        round, theta_, algorithm_->DownloadBytesPerClient());

    if (ingest_) {
      // Serve mode: open the round to the frontend's sessions. Clients
      // pull the broadcast and push updates while the loop prefetches the
      // next cohort below; collection joins after the prefetch so the
      // selection stream keeps the exact Select(0), Select(1), ... order.
      FEDADMM_RETURN_IF_ERROR(
          ingest_->BeginRound(round, ctx.selected, ctx.downlink, theta_));
    } else {
      executor_.RunWave(round, ctx.selected,
                        ctx.downlink.ThetaForClients(theta_), &ctx.updates);

      // Predict each upload's wire size before the straggler judgment: the
      // virtual clock bills bytes, and WireBytes() gives the exact size
      // without materializing payloads. Actual encoding happens after the
      // judgment so stateful codecs only see admitted uploads. (In serve
      // mode the frontend stamps the actual frame payload sizes instead.)
      pipeline_.PredictUplinkBytes(&ctx.updates);
    }
    dispatch_scope.Stop();

    // Draw the next cohort now and hint the store: an out-of-core backend
    // faults those slabs on the executor pool (idle until the next wave)
    // while the serial aggregate/finalize phases below run.
    if (round + 1 < config_.max_rounds) {
      obs::TraceScope scope("select", "engine", Metrics().phase_select);
      scope.set_arg("round", round + 1);
      selected = selector_->Select(round + 1, &selection_rng_);
      have_selected = true;
      if (ClientStateStore* store = algorithm_->mutable_state_store()) {
        store->PrefetchClients(selected, executor_.pool());
      }
    }

    if (ingest_) {
      // Join the wave: one message per cohort member, in selection order,
      // decoded exactly once on the frontend's shard workers. The straggler
      // judgment below stays the single source of truth on fates.
      FEDADMM_ASSIGN_OR_RETURN(ctx.updates, ingest_->CollectWave(round));
    }

    obs::TraceScope aggregate_scope("aggregate", "engine",
                                    Metrics().phase_aggregate);
    aggregate_scope.set_arg("round", round);

    RoundRecord record;
    record.round = round;
    record.num_selected = static_cast<int>(ctx.selected.size());
    int64_t download_bytes = static_cast<int64_t>(ctx.selected.size()) *
                             ctx.downlink.per_client_bytes;
    int64_t download_bytes_raw = static_cast<int64_t>(ctx.selected.size()) *
                                 ctx.downlink.per_client_bytes_raw;

    if (system_model_) {
      // Time the round on the virtual clock and let the straggler policy
      // drop (or scale down) late updates before aggregation.
      const RoundJudgment judgment = system_model_->JudgeRound(
          ctx.updates, ctx.downlink.per_client_bytes);
      record.num_dropped = judgment.num_dropped;
      record.num_admitted_partial = judgment.num_admitted_partial;
      clock.Advance(judgment.round_seconds);
      // Bill only the downlink bytes the fleet actually received: a client
      // dropped while its broadcast was still in flight pays the received
      // fraction, not the full model.
      download_bytes = 0;
      download_bytes_raw = 0;
      std::vector<UpdateMessage> admitted;
      admitted.reserve(ctx.updates.size());
      for (size_t i = 0; i < ctx.updates.size(); ++i) {
        const StragglerDecision& decision = judgment.decisions[i];
        download_bytes += BilledBytes(decision.download_fraction,
                                      ctx.downlink.per_client_bytes);
        download_bytes_raw += BilledBytes(decision.download_fraction,
                                          ctx.downlink.per_client_bytes_raw);
        if (decision.fate == ClientFate::kDropped) continue;
        UpdateMessage msg = std::move(ctx.updates[i]);
        if (decision.fate == ClientFate::kAdmittedPartial) {
          // The client shipped its iterate at the deadline: model the
          // shorter SGD path as a proportionally smaller delta. Per-client
          // algorithm state keeps the full pass — see the modeling note on
          // DeadlineAdmitPartialPolicy.
          ScalePayload(static_cast<float>(decision.work_fraction), &msg);
        }
        admitted.push_back(std::move(msg));
      }
      ctx.updates = std::move(admitted);
    }
    record.sim_seconds = clock.now();

    // Uplink: encode what the server actually receives — dropped uploads
    // must not feed error-feedback residuals, and a partially-admitted
    // client encodes its scaled (deadline) delta. Serve-mode payloads were
    // already encoded client-side and decoded once on the shard workers;
    // re-encoding here would apply the lossy codec twice.
    if (!ingest_) pipeline_.EncodeUplinkAll(round, &ctx.updates);

    // An all-dropped round wastes its deadline but leaves θ untouched.
    if (!ctx.updates.empty()) {
      algorithm_->ServerUpdate(ctx.updates, round, &theta_);
    }
    aggregate_scope.Stop();

    double loss_sum = 0.0;
    int64_t upload = 0;
    int64_t upload_raw = 0;
    for (const UpdateMessage& msg : ctx.updates) {
      loss_sum += msg.train_loss;
      upload += msg.UploadBytes();
      upload_raw += msg.RawBytes();
    }
    record.train_loss = MeanTrainLoss(loss_sum, ctx.updates.size());
    record.upload_bytes = upload;
    record.upload_bytes_raw = upload_raw;
    record.download_bytes = download_bytes;
    record.download_bytes_raw = download_bytes_raw;
    // Sync aggregation is always fresh; the NaN mean marks an all-dropped
    // round, mirroring train_loss.
    record.staleness_mean =
        ctx.updates.empty() ? std::numeric_limits<double>::quiet_NaN() : 0.0;
    record.staleness_max = 0;

    // Every exit path leaves a committed group behind: the cadence, the
    // final round, and the early accuracy stop all checkpoint before the
    // loop moves on.
    const bool stop = FinalizeRecord(std::move(record), &watch, &history);
    if (checkpoint_log &&
        (stop || round + 1 == config_.max_rounds ||
         history.size() % config_.checkpoint_every == 0)) {
      FEDADMM_RETURN_IF_ERROR(CheckpointSync(checkpoint_log.get(), history,
                                             selected, have_selected));
    }
    if (stop) break;
  }
  return history;
}

void ServerLoop::DispatchWave(const std::vector<int>& clients, int wave,
                              double now, int theta_version,
                              ShardedEventQueue* queue) {
  obs::TraceScope scope("dispatch", "engine", Metrics().phase_dispatch);
  scope.set_arg("wave", wave);
  RoundContext ctx;
  ctx.round = wave;
  ctx.num_shards = config_.num_shards;
  ctx.selected = clients;
  ctx.downlink = pipeline_.PrepareDownlink(
      wave, theta_, algorithm_->DownloadBytesPerClient());
  executor_.RunWave(wave, ctx.selected, ctx.downlink.ThetaForClients(theta_),
                    &ctx.updates);
  pipeline_.PredictUplinkBytes(&ctx.updates);

  const FleetModel& fleet = system_model_->fleet();
  const StragglerPolicy& policy = system_model_->policy();
  for (size_t i = 0; i < ctx.updates.size(); ++i) {
    const int client = ctx.selected[i];
    ClientCompletionEvent event = MakeClientCompletionEvent(
        fleet.profile(client), policy, now, ctx.downlink.per_client_bytes,
        std::move(ctx.updates[i]), wave, theta_version, sequence_++);
    pending_download_bytes_ += BilledBytes(event.decision.download_fraction,
                                           ctx.downlink.per_client_bytes);
    pending_download_bytes_raw_ += BilledBytes(
        event.decision.download_fraction, ctx.downlink.per_client_bytes_raw);
    in_flight_[static_cast<size_t>(client)] = 1;
    queue->Push(std::move(event));
  }
}

int ServerLoop::PickReplacement(int wave) {
  obs::TraceScope scope("select", "engine", Metrics().phase_select);
  scope.set_arg("wave", wave);
  const std::vector<int> candidates = selector_->Select(wave, &selection_rng_);
  for (const int client : candidates) {
    if (!in_flight_[static_cast<size_t>(client)]) return client;
  }
  for (size_t client = 0; client < in_flight_.size(); ++client) {
    if (!in_flight_[client]) return static_cast<int>(client);
  }
  return -1;
}

Result<History> ServerLoop::RunEventDriven() {
  InitializeModel();
  in_flight_.assign(static_cast<size_t>(problem_->num_clients()), 0);

  const StalenessWeightFn weight = config_.staleness_weight
                                       ? config_.staleness_weight
                                       : ConstantStalenessWeight();

  History history;
  // One event heap per aggregation worker; pops merge on (time, sequence),
  // identically to a single global heap at every W — so the sharded queue
  // serves all W (including 1) without touching the trajectory.
  ShardedEventQueue queue(config_.num_shards);
  int wave_counter = 0;
  int server_version = 0;
  int concurrency = 0;
  std::vector<ClientCompletionEvent> buffer;
  int pending_dropped = 0;
  int pending_partial = 0;
  int drops_since_aggregate = 0;
  const EventLoopState state{&queue,
                             &buffer,
                             &wave_counter,
                             &server_version,
                             &concurrency,
                             &pending_dropped,
                             &pending_partial,
                             &drops_since_aggregate};

  FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<SlabLog> checkpoint_log,
                           OpenCheckpointLog());
  bool restored = false;
  if (checkpoint_log && config_.restore_from_checkpoint) {
    FEDADMM_ASSIGN_OR_RETURN(restored,
                             TryRestoreEventDriven(&history, state));
  }

  if (!restored) {
    // The initial wave fixes the engine's concurrency: one in-flight
    // client per slot, each freed slot refilled on completion.
    const std::vector<int> initial =
        selector_->Select(wave_counter, &selection_rng_);
    FEDADMM_CHECK_MSG(!initial.empty(), "selector returned empty set");
    concurrency = static_cast<int>(initial.size());
    DispatchWave(initial, wave_counter++, /*now=*/0.0, server_version,
                 &queue);
  }

  const int buffer_target =
      config_.mode == ExecutionMode::kAsync
          ? 1
          : (config_.buffer_size > 0
                 ? std::min(config_.buffer_size, concurrency)
                 : std::max(1, concurrency / 2));

  int records_at_last_checkpoint = history.size();
  Stopwatch watch;

  // One iteration per event; one RoundRecord per aggregation (or per
  // starved wave of drops). The queue only empties if every client is
  // simultaneously in flight and none can be replaced, which the
  // replacement fallback prevents; the guard keeps the loop total anyway.
  while (history.size() < config_.max_rounds && !queue.empty()) {
    // The loop top is the quiescent point: no event half-processed, the
    // queue and buffer complete. Checkpoint here on the cadence.
    if (checkpoint_log && history.size() > records_at_last_checkpoint &&
        history.size() % config_.checkpoint_every == 0) {
      FEDADMM_RETURN_IF_ERROR(
          CheckpointEventDriven(checkpoint_log.get(), history, state));
      records_at_last_checkpoint = history.size();
    }
    ClientCompletionEvent event = queue.Pop();
    const double now = event.time;
    in_flight_[static_cast<size_t>(event.client_id)] = 0;

    bool aggregated = false;
    if (event.decision.fate == ClientFate::kDropped) {
      ++pending_dropped;
      ++drops_since_aggregate;
    } else {
      drops_since_aggregate = 0;
      if (event.decision.fate == ClientFate::kAdmittedPartial) {
        ++pending_partial;
        ScalePayload(static_cast<float>(event.decision.work_fraction),
                     &event.message);
      }
      // Serial, in event order: stateful codecs see a deterministic
      // schedule regardless of thread count.
      pipeline_.EncodeUplink(event.wave, &event.message);
      buffer.push_back(std::move(event));
      aggregated = static_cast<int>(buffer.size()) >= buffer_target;
    }

    // A full wave of consecutive deadline misses forces a flush: aggregate
    // whatever the buffer holds (a timeout flush), or — with an empty
    // buffer — emit the all-dropped record (NaN train_loss, θ untouched).
    // Either way the run keeps emitting records and terminates even when
    // every completion event misses the deadline forever.
    const bool force_flush =
        !aggregated && drops_since_aggregate >= concurrency;

    if (aggregated || force_flush) {
      obs::TraceScope aggregate_scope("aggregate", "engine",
                                      Metrics().phase_aggregate);
      const int round = history.size();
      aggregate_scope.set_arg("round", round);
      RoundRecord record;
      record.round = round;
      record.num_selected = static_cast<int>(buffer.size());
      record.num_dropped = pending_dropped;
      record.num_admitted_partial = pending_partial;
      record.sim_seconds = now;
      pending_dropped = 0;
      pending_partial = 0;
      drops_since_aggregate = 0;

      double loss_sum = 0.0;
      int64_t upload = 0;
      int64_t upload_raw = 0;
      double staleness_sum = 0.0;
      int staleness_max = 0;
      for (ClientCompletionEvent& e : buffer) {
        const int staleness = server_version - e.theta_version;
        staleness_sum += staleness;
        staleness_max = std::max(staleness_max, staleness);
        loss_sum += e.message.train_loss;
        upload += e.message.UploadBytes();
        upload_raw += e.message.RawBytes();
        // Discount stale payloads (FedBuff/FedAsync); the raw count still
        // reaches AggregateOne for methods that adapt further.
        const double w = weight(staleness);
        FEDADMM_CHECK_MSG(w >= 0.0 && std::isfinite(w),
                          "staleness weight must be finite and >= 0");
        if (w != 1.0) ScalePayload(static_cast<float>(w), &e.message);
      }
      record.train_loss = MeanTrainLoss(loss_sum, buffer.size());
      record.staleness_mean =
          buffer.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : staleness_sum / static_cast<double>(buffer.size());
      record.staleness_max = staleness_max;
      record.upload_bytes = upload;
      record.upload_bytes_raw = upload_raw;
      record.download_bytes = pending_download_bytes_;
      record.download_bytes_raw = pending_download_bytes_raw_;
      pending_download_bytes_ = 0;
      pending_download_bytes_raw_ = 0;

      if (config_.mode == ExecutionMode::kAsync && !buffer.empty()) {
        ClientCompletionEvent& e = buffer.front();
        algorithm_->AggregateOne(std::move(e.message), round,
                                 server_version - e.theta_version, &theta_);
        ++server_version;
      } else if (!buffer.empty()) {
        std::vector<UpdateMessage> batch;
        batch.reserve(buffer.size());
        for (ClientCompletionEvent& e : buffer) {
          batch.push_back(std::move(e.message));
        }
        algorithm_->ServerUpdate(batch, round, &theta_);
        ++server_version;
      }
      buffer.clear();
      aggregate_scope.Stop();

      // Both stop paths break before the replacement dispatch below, so
      // every billed download has been flushed into a record by the time
      // the loop exits — pending_download_bytes_ is always 0 on return.
      if (FinalizeRecord(record, &watch, &history)) break;
      if (history.size() >= config_.max_rounds) break;
    }

    // Refill the freed slot. After an async aggregation this dispatch sees
    // the fresh θ (and version), which is the whole point of the mode.
    const int replacement = PickReplacement(wave_counter);
    if (replacement >= 0) {
      DispatchWave({replacement}, wave_counter, now, server_version, &queue);
    }
    ++wave_counter;
  }
  // Final group off the cadence: max_rounds, target accuracy, and a
  // starved queue all land here, so a finished run restores as finished.
  if (checkpoint_log && history.size() > records_at_last_checkpoint) {
    FEDADMM_RETURN_IF_ERROR(
        CheckpointEventDriven(checkpoint_log.get(), history, state));
  }
  return history;
}

}  // namespace fedadmm
