/// \file nn_problem.h
/// \brief FederatedProblem backed by a neural network and a partitioned
/// dataset — the setting of all the paper's experiments.

#ifndef FEDADMM_FL_NN_PROBLEM_H_
#define FEDADMM_FL_NN_PROBLEM_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/problem.h"
#include "nn/model_zoo.h"

namespace fedadmm {

/// \brief Neural-network federated problem.
///
/// Holds per-worker model clones so that rounds can train clients in
/// parallel; all clones share the architecture, and parameters are loaded
/// from the flat vector on every batch, so clones never drift.
class NnFederatedProblem : public FederatedProblem {
 public:
  /// `train`/`test` must outlive the problem. `partition[i]` lists the
  /// training indices of client i.
  NnFederatedProblem(const ModelConfig& model_config, const Dataset* train,
                     const Dataset* test, Partition partition,
                     int num_workers);

  int num_clients() const override {
    return static_cast<int>(partition_.size());
  }
  int64_t dim() const override { return dim_; }
  int num_workers() const override {
    return static_cast<int>(models_.size());
  }

  std::unique_ptr<LocalProblem> MakeLocalProblem(int client,
                                                 int worker) override;
  EvalResult Evaluate(std::span<const float> theta, int worker) override;
  std::vector<float> InitialParameters(Rng* rng) override;

  /// Batch size used when streaming the test set through the model.
  void set_eval_batch_size(int n) { eval_batch_size_ = n; }

  /// The client views (for inspection/tests).
  const ClientView& client_view(int i) const {
    return views_[static_cast<size_t>(i)];
  }

 private:
  const Dataset* train_;
  const Dataset* test_;
  Partition partition_;
  std::vector<ClientView> views_;
  std::vector<std::unique_ptr<Model>> models_;  // one per worker
  int64_t dim_ = 0;
  int eval_batch_size_ = 256;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_NN_PROBLEM_H_
