#include "fl/quadratic_problem.h"

#include <cmath>

namespace fedadmm {
namespace {

/// LocalProblem over one quadratic client. Batches are pseudo-batches: the
/// gradient is always the exact client gradient, and each epoch takes
/// `pseudo_samples / batch` steps so epoch counts behave like SGD epochs.
class QuadraticLocalProblem : public LocalProblem {
 public:
  QuadraticLocalProblem(const QuadraticProblem* problem, int client,
                        int pseudo_samples)
      : problem_(problem), client_(client), pseudo_samples_(pseudo_samples) {}

  int64_t dim() const override { return problem_->dim(); }
  int num_samples() const override { return pseudo_samples_; }

  double BatchLossGradient(std::span<const float> w,
                           const std::vector<int>& batch,
                           std::span<float> grad) override {
    (void)batch;
    problem_->ClientGradient(client_, w, grad);
    return problem_->ClientObjective(client_, w);
  }

  std::vector<std::vector<int>> EpochBatches(int batch_size,
                                             Rng* rng) override {
    (void)rng;
    int steps = 1;
    if (batch_size > 0 && batch_size < pseudo_samples_) {
      steps = (pseudo_samples_ + batch_size - 1) / batch_size;
    }
    std::vector<std::vector<int>> batches(
        static_cast<size_t>(steps));
    for (auto& b : batches) b = {0};  // placeholder index; gradient is exact
    return batches;
  }

  double FullLossGradient(std::span<const float> w,
                          std::span<float> grad) override {
    problem_->ClientGradient(client_, w, grad);
    return problem_->ClientObjective(client_, w);
  }

 private:
  const QuadraticProblem* problem_;
  int client_;
  int pseudo_samples_;
};

}  // namespace

Result<std::vector<double>> SolveDense(std::vector<double> m, int n,
                                       std::vector<double> rhs) {
  FEDADMM_CHECK(static_cast<int>(m.size()) == n * n &&
                static_cast<int>(rhs.size()) == n);
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(m[static_cast<size_t>(r * n + col)]) >
          std::fabs(m[static_cast<size_t>(pivot * n + col)])) {
        pivot = r;
      }
    }
    if (std::fabs(m[static_cast<size_t>(pivot * n + col)]) < 1e-12) {
      return Status::InvalidArgument("SolveDense: singular matrix");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(m[static_cast<size_t>(col * n + c)],
                  m[static_cast<size_t>(pivot * n + c)]);
      }
      std::swap(rhs[static_cast<size_t>(col)],
                rhs[static_cast<size_t>(pivot)]);
    }
    const double diag = m[static_cast<size_t>(col * n + col)];
    for (int r = col + 1; r < n; ++r) {
      const double factor = m[static_cast<size_t>(r * n + col)] / diag;
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) {
        m[static_cast<size_t>(r * n + c)] -=
            factor * m[static_cast<size_t>(col * n + c)];
      }
      rhs[static_cast<size_t>(r)] -= factor * rhs[static_cast<size_t>(col)];
    }
  }
  // Back substitution.
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double acc = rhs[static_cast<size_t>(r)];
    for (int c = r + 1; c < n; ++c) {
      acc -= m[static_cast<size_t>(r * n + c)] * x[static_cast<size_t>(c)];
    }
    x[static_cast<size_t>(r)] = acc / m[static_cast<size_t>(r * n + r)];
  }
  return x;
}

QuadraticProblem::QuadraticProblem(const QuadraticSpec& spec) : spec_(spec) {
  FEDADMM_CHECK_MSG(spec.num_clients > 0 && spec.dim > 0,
                    "QuadraticSpec: invalid sizes");
  const int n = spec.dim;
  Rng master(spec.seed);
  a_.resize(static_cast<size_t>(spec.num_clients));
  b_.resize(static_cast<size_t>(spec.num_clients));

  std::vector<double> a_sum(static_cast<size_t>(n * n), 0.0);
  std::vector<double> b_sum(static_cast<size_t>(n), 0.0);

  for (int i = 0; i < spec.num_clients; ++i) {
    Rng rng = master.Fork(0xABCD, static_cast<uint64_t>(i));
    // A_i = Q Qᵀ / dim + c_i I with Q random: SPD with controlled floor.
    std::vector<double> q(static_cast<size_t>(n * n));
    for (auto& v : q) v = rng.Normal(0.0, 1.0);
    auto& a = a_[static_cast<size_t>(i)];
    a.assign(static_cast<size_t>(n * n), 0.0);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c <= r; ++c) {
        double acc = 0.0;
        for (int k = 0; k < n; ++k) {
          acc += q[static_cast<size_t>(r * n + k)] *
                 q[static_cast<size_t>(c * n + k)];
        }
        acc *= spec.curvature_spread / n;
        a[static_cast<size_t>(r * n + c)] = acc;
        a[static_cast<size_t>(c * n + r)] = acc;
      }
    }
    for (int r = 0; r < n; ++r) {
      a[static_cast<size_t>(r * n + r)] += spec.min_curvature;
    }
    // b_i = A_i x_i* with x_i* dispersed by `heterogeneity`.
    std::vector<double> local_opt(static_cast<size_t>(n));
    for (auto& v : local_opt) v = rng.Normal(0.0, spec.heterogeneity);
    auto& b = b_[static_cast<size_t>(i)];
    b.assign(static_cast<size_t>(n), 0.0);
    for (int r = 0; r < n; ++r) {
      double acc = 0.0;
      for (int c = 0; c < n; ++c) {
        acc += a[static_cast<size_t>(r * n + c)] *
               local_opt[static_cast<size_t>(c)];
      }
      b[static_cast<size_t>(r)] = acc;
    }
    for (int k = 0; k < n * n; ++k) a_sum[static_cast<size_t>(k)] += a[static_cast<size_t>(k)];
    for (int k = 0; k < n; ++k) b_sum[static_cast<size_t>(k)] += b[static_cast<size_t>(k)];

    // Gershgorin bound on the spectral radius of A_i.
    double bound = 0.0;
    for (int r = 0; r < n; ++r) {
      double row = 0.0;
      for (int c = 0; c < n; ++c) {
        row += std::fabs(a[static_cast<size_t>(r * n + c)]);
      }
      bound = std::max(bound, row);
    }
    lipschitz_bound_ = std::max(lipschitz_bound_, bound);
  }

  optimum_ = std::move(SolveDense(std::move(a_sum), n, std::move(b_sum)))
                 .ValueOrDie();
}

std::unique_ptr<LocalProblem> QuadraticProblem::MakeLocalProblem(int client,
                                                                 int worker) {
  (void)worker;
  FEDADMM_CHECK(client >= 0 && client < spec_.num_clients);
  return std::make_unique<QuadraticLocalProblem>(this, client,
                                                 spec_.pseudo_samples);
}

double QuadraticProblem::ClientObjective(int client,
                                         std::span<const float> w) const {
  const int n = spec_.dim;
  const auto& a = a_[static_cast<size_t>(client)];
  const auto& b = b_[static_cast<size_t>(client)];
  double quad = 0.0, lin = 0.0;
  for (int r = 0; r < n; ++r) {
    double aw = 0.0;
    for (int c = 0; c < n; ++c) {
      aw += a[static_cast<size_t>(r * n + c)] * w[static_cast<size_t>(c)];
    }
    quad += w[static_cast<size_t>(r)] * aw;
    lin += b[static_cast<size_t>(r)] * w[static_cast<size_t>(r)];
  }
  return 0.5 * quad - lin;
}

void QuadraticProblem::ClientGradient(int client, std::span<const float> w,
                                      std::span<float> grad) const {
  const int n = spec_.dim;
  FEDADMM_CHECK(static_cast<int>(grad.size()) == n);
  const auto& a = a_[static_cast<size_t>(client)];
  const auto& b = b_[static_cast<size_t>(client)];
  for (int r = 0; r < n; ++r) {
    double acc = 0.0;
    for (int c = 0; c < n; ++c) {
      acc += a[static_cast<size_t>(r * n + c)] * w[static_cast<size_t>(c)];
    }
    grad[static_cast<size_t>(r)] =
        static_cast<float>(acc - b[static_cast<size_t>(r)]);
  }
}

double QuadraticProblem::GlobalObjective(std::span<const float> w) const {
  double acc = 0.0;
  for (int i = 0; i < spec_.num_clients; ++i) acc += ClientObjective(i, w);
  return acc / spec_.num_clients;
}

double QuadraticProblem::DistanceToOptimum(std::span<const float> w) const {
  double acc = 0.0;
  for (int i = 0; i < spec_.dim; ++i) {
    const double d = static_cast<double>(w[static_cast<size_t>(i)]) -
                     optimum_[static_cast<size_t>(i)];
    acc += d * d;
  }
  return std::sqrt(acc);
}

EvalResult QuadraticProblem::Evaluate(std::span<const float> theta,
                                      int worker) {
  (void)worker;
  EvalResult result;
  result.loss = GlobalObjective(theta);
  result.accuracy = 1.0 / (1.0 + DistanceToOptimum(theta));
  return result;
}

std::vector<float> QuadraticProblem::InitialParameters(Rng* rng) {
  std::vector<float> theta(static_cast<size_t>(spec_.dim));
  for (auto& v : theta) v = static_cast<float>(rng->Normal(0.0, 1.0));
  return theta;
}

}  // namespace fedadmm
