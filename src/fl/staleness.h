/// \file staleness.h
/// \brief Staleness weighting for asynchronous and buffered aggregation.
///
/// In the event-driven execution modes (fl/server_loop.h) an update may
/// arrive after the server has already aggregated s other updates — it was
/// computed against a θ that is s versions old. A staleness weight
/// s ↦ w(s) ∈ [0, 1] discounts such updates before aggregation (FedBuff /
/// FedAsync style); the engine scales the update's payload vectors by w(s)
/// and additionally passes the raw s to `FederatedAlgorithm::AggregateOne`
/// for methods that want to adapt further.

#ifndef FEDADMM_FL_STALENESS_H_
#define FEDADMM_FL_STALENESS_H_

#include <functional>
#include <string>

#include "util/status.h"

namespace fedadmm {

/// \brief Maps an update's staleness (server versions elapsed since its
/// dispatch; >= 0) to a multiplicative weight in [0, 1].
using StalenessWeightFn = std::function<double(int staleness)>;

/// \brief w(s) = 1: stale updates count fully (the engine default).
StalenessWeightFn ConstantStalenessWeight();

/// \brief w(s) = (1 + s)^-alpha, the FedAsync polynomial discount.
/// Requires alpha >= 0.
StalenessWeightFn PolynomialStalenessWeight(double alpha);

/// \brief Builds a weight from a spec string: "constant" or "poly:<alpha>"
/// (e.g. "poly:0.5"). Returns InvalidArgument for anything else.
Result<StalenessWeightFn> MakeStalenessWeight(const std::string& spec);

}  // namespace fedadmm

#endif  // FEDADMM_FL_STALENESS_H_
