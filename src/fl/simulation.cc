#include "fl/simulation.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedadmm {

Simulation::Simulation(FederatedProblem* problem,
                       FederatedAlgorithm* algorithm,
                       ClientSelector* selector, SimulationConfig config)
    : problem_(problem),
      algorithm_(algorithm),
      selector_(selector),
      config_(config) {
  FEDADMM_CHECK(problem_ != nullptr && algorithm_ != nullptr &&
                selector_ != nullptr);
}

Result<History> Simulation::Run() {
  if (config_.max_rounds <= 0) {
    return Status::InvalidArgument("Simulation: max_rounds must be > 0");
  }
  if (selector_->num_clients() != problem_->num_clients()) {
    return Status::InvalidArgument(
        "Simulation: selector and problem disagree on client count");
  }
  if (config_.eval_every < 1) {
    return Status::InvalidArgument("Simulation: eval_every must be >= 1");
  }

  Rng master(config_.seed);
  Rng selection_rng = master.Fork(0x5E1EC7);
  Rng init_rng = master.Fork(0x1417);

  theta_ = problem_->InitialParameters(&init_rng);
  AlgorithmContext ctx;
  ctx.num_clients = problem_->num_clients();
  ctx.dim = problem_->dim();
  algorithm_->Setup(ctx, theta_);

  // Pool sizing: no point in more threads than a round has clients or the
  // problem has worker slots.
  int threads = config_.num_threads;
  if (threads <= 0) threads = ThreadPool::DefaultNumThreads();
  threads = std::min(threads, problem_->num_workers());
  threads = std::max(threads, 1);
  ThreadPool pool(threads);

  History history;
  VirtualClock clock;
  for (int round = 0; round < config_.max_rounds; ++round) {
    Stopwatch watch;
    const std::vector<int> selected = selector_->Select(round, &selection_rng);
    FEDADMM_CHECK_MSG(!selected.empty(), "selector returned empty set");

    std::vector<UpdateMessage> updates(selected.size());
    pool.ParallelFor(
        static_cast<int>(selected.size()), [&](int idx, int worker) {
          const int client = selected[static_cast<size_t>(idx)];
          auto local = problem_->MakeLocalProblem(client, worker);
          // Per-(round, client) stream: results do not depend on thread
          // scheduling.
          Rng client_rng = master.Fork(0xC11E47, static_cast<uint64_t>(round),
                                       static_cast<uint64_t>(client));
          updates[static_cast<size_t>(idx)] = algorithm_->ClientUpdate(
              client, round, theta_, local.get(), client_rng);
        });

    RoundRecord record;
    record.round = round;
    record.num_selected = static_cast<int>(selected.size());

    if (system_model_) {
      // Time the round on the virtual clock and let the straggler policy
      // drop (or scale down) late updates before aggregation.
      const RoundJudgment judgment = system_model_->JudgeRound(
          updates, algorithm_->DownloadBytesPerClient());
      record.num_dropped = judgment.num_dropped;
      record.num_admitted_partial = judgment.num_admitted_partial;
      clock.Advance(judgment.round_seconds);
      std::vector<UpdateMessage> admitted;
      admitted.reserve(updates.size());
      for (size_t i = 0; i < updates.size(); ++i) {
        const StragglerDecision& decision = judgment.decisions[i];
        if (decision.fate == ClientFate::kDropped) continue;
        UpdateMessage msg = std::move(updates[i]);
        if (decision.fate == ClientFate::kAdmittedPartial) {
          // The client shipped its iterate at the deadline: model the
          // shorter SGD path as a proportionally smaller delta. Per-client
          // algorithm state keeps the full pass — see the modeling note on
          // DeadlineAdmitPartialPolicy.
          const float scale = static_cast<float>(decision.work_fraction);
          for (float& v : msg.delta) v *= scale;
          for (float& v : msg.delta2) v *= scale;
        }
        admitted.push_back(std::move(msg));
      }
      updates = std::move(admitted);
    }
    record.sim_seconds = clock.now();

    // An all-dropped round wastes its deadline but leaves θ untouched.
    if (!updates.empty()) {
      algorithm_->ServerUpdate(updates, round, &theta_);
    }

    double loss_sum = 0.0;
    int64_t upload = 0;
    for (const UpdateMessage& msg : updates) {
      loss_sum += msg.train_loss;
      upload += msg.UploadBytes();
    }
    // An all-dropped round observed no training loss; NaN is the record's
    // established skipped-metric sentinel.
    record.train_loss =
        updates.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : loss_sum / static_cast<double>(updates.size());
    record.upload_bytes = upload;
    record.download_bytes = static_cast<int64_t>(selected.size()) *
                            algorithm_->DownloadBytesPerClient();

    const bool last_round = (round == config_.max_rounds - 1);
    const bool evaluate = last_round || (round % config_.eval_every == 0);
    if (evaluate) {
      const EvalResult eval = problem_->Evaluate(theta_, /*worker=*/0);
      record.test_accuracy = eval.accuracy;
      record.test_loss = eval.loss;
    } else {
      record.test_accuracy = std::numeric_limits<double>::quiet_NaN();
      record.test_loss = std::numeric_limits<double>::quiet_NaN();
    }
    record.wall_seconds = watch.ElapsedSeconds();
    history.Add(record);
    if (observer_) observer_(record);
    if (config_.log_rounds && evaluate) {
      FEDADMM_LOG(Info) << algorithm_->name() << " round " << round
                        << " acc=" << record.test_accuracy
                        << " loss=" << record.train_loss;
    }
    if (evaluate && config_.target_accuracy > 0.0 &&
        record.test_accuracy >= config_.target_accuracy) {
      break;
    }
  }
  return history;
}

}  // namespace fedadmm
