#include "fl/simulation.h"

#include "fl/server_loop.h"

namespace fedadmm {

const std::string& ExecutionModeName(ExecutionMode mode) {
  static const std::string* const kSync = new std::string("sync");
  static const std::string* const kBuffered = new std::string("buffered");
  static const std::string* const kAsync = new std::string("async");
  switch (mode) {
    case ExecutionMode::kSync:
      return *kSync;
    case ExecutionMode::kBuffered:
      return *kBuffered;
    case ExecutionMode::kAsync:
      return *kAsync;
  }
  return *kSync;
}

Result<ExecutionMode> ParseExecutionMode(const std::string& name) {
  if (name == "sync") return ExecutionMode::kSync;
  if (name == "buffered") return ExecutionMode::kBuffered;
  if (name == "async") return ExecutionMode::kAsync;
  return Status::InvalidArgument(
      "ParseExecutionMode: unknown mode '" + name +
      "' (want sync | buffered | async)");
}

Simulation::Simulation(FederatedProblem* problem,
                       FederatedAlgorithm* algorithm,
                       ClientSelector* selector, SimulationConfig config)
    : problem_(problem),
      algorithm_(algorithm),
      selector_(selector),
      config_(std::move(config)) {
  FEDADMM_CHECK(problem_ != nullptr && algorithm_ != nullptr &&
                selector_ != nullptr);
}

Result<History> Simulation::Run() {
  ServerLoop loop(problem_, algorithm_, selector_, config_, system_model_,
                  uplink_codec_, downlink_codec_, ingest_, &observer_,
                  &theta_);
  return loop.Run();
}

}  // namespace fedadmm
