#include "fl/simulation.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedadmm {
namespace {

// Fork tags for the codec RNG streams; distinct from the selection
// (0x5E1EC7), init (0x1417) and client (0xC11E47) tags so attaching a codec
// never perturbs the training streams.
constexpr uint64_t kUplinkCodecTag = 0x7C0DEC01;
constexpr uint64_t kDownlinkCodecTag = 0x7C0DEC02;

}  // namespace

Simulation::Simulation(FederatedProblem* problem,
                       FederatedAlgorithm* algorithm,
                       ClientSelector* selector, SimulationConfig config)
    : problem_(problem),
      algorithm_(algorithm),
      selector_(selector),
      config_(config) {
  FEDADMM_CHECK(problem_ != nullptr && algorithm_ != nullptr &&
                selector_ != nullptr);
}

Result<History> Simulation::Run() {
  if (config_.max_rounds <= 0) {
    return Status::InvalidArgument("Simulation: max_rounds must be > 0");
  }
  if (selector_->num_clients() != problem_->num_clients()) {
    return Status::InvalidArgument(
        "Simulation: selector and problem disagree on client count");
  }
  if (config_.eval_every < 1) {
    return Status::InvalidArgument("Simulation: eval_every must be >= 1");
  }

  Rng master(config_.seed);
  Rng selection_rng = master.Fork(0x5E1EC7);
  Rng init_rng = master.Fork(0x1417);

  theta_ = problem_->InitialParameters(&init_rng);
  AlgorithmContext ctx;
  ctx.num_clients = problem_->num_clients();
  ctx.dim = problem_->dim();
  algorithm_->Setup(ctx, theta_);

  // Pool sizing: no point in more threads than a round has clients or the
  // problem has worker slots.
  int threads = config_.num_threads;
  if (threads <= 0) threads = ThreadPool::DefaultNumThreads();
  threads = std::min(threads, problem_->num_workers());
  threads = std::max(threads, 1);
  ThreadPool pool(threads);

  History history;
  VirtualClock clock;
  for (int round = 0; round < config_.max_rounds; ++round) {
    Stopwatch watch;
    const std::vector<int> selected = selector_->Select(round, &selection_rng);
    FEDADMM_CHECK_MSG(!selected.empty(), "selector returned empty set");

    // Downlink: the server encodes θ once per round; every selected client
    // trains on the decoded broadcast (what it actually received) and is
    // billed the compressed size. Algorithm extras beyond θ (e.g.
    // SCAFFOLD's control variate) stay uncompressed.
    const int64_t raw_theta_bytes = static_cast<int64_t>(theta_.size()) *
                                    static_cast<int64_t>(sizeof(float));
    const int64_t download_per_client_raw =
        algorithm_->DownloadBytesPerClient();
    int64_t download_per_client = download_per_client_raw;
    std::vector<float> broadcast;
    const std::vector<float>* theta_for_clients = &theta_;
    if (downlink_codec_) {
      Rng down_rng =
          master.Fork(kDownlinkCodecTag, static_cast<uint64_t>(round));
      const Payload payload =
          downlink_codec_->Encode(kBroadcastStream, theta_, &down_rng);
      download_per_client =
          payload.WireBytes() + (download_per_client_raw - raw_theta_bytes);
      broadcast = downlink_codec_->Decode(payload);
      theta_for_clients = &broadcast;
    }

    std::vector<UpdateMessage> updates(selected.size());
    pool.ParallelFor(
        static_cast<int>(selected.size()), [&](int idx, int worker) {
          const int client = selected[static_cast<size_t>(idx)];
          auto local = problem_->MakeLocalProblem(client, worker);
          // Per-(round, client) stream: results do not depend on thread
          // scheduling.
          Rng client_rng = master.Fork(0xC11E47, static_cast<uint64_t>(round),
                                       static_cast<uint64_t>(client));
          updates[static_cast<size_t>(idx)] = algorithm_->ClientUpdate(
              client, round, *theta_for_clients, local.get(), client_rng);
        });

    if (uplink_codec_) {
      // Predict each upload's wire size before the straggler judgment: the
      // virtual clock bills bytes, and WireBytes() gives the exact size
      // without materializing payloads. Actual encoding happens after the
      // judgment (see below) so stateful codecs only see admitted uploads.
      // An empty payload vector (e.g. FedPD's non-communication rounds) is
      // no transfer at all — no header bytes are billed.
      for (UpdateMessage& msg : updates) {
        int64_t wire = 0;
        if (!msg.delta.empty()) {
          wire += uplink_codec_->WireBytes(
              static_cast<int64_t>(msg.delta.size()));
        }
        if (!msg.delta2.empty()) {
          wire += uplink_codec_->WireBytes(
              static_cast<int64_t>(msg.delta2.size()));
        }
        msg.wire_bytes = wire;
      }
    }

    RoundRecord record;
    record.round = round;
    record.num_selected = static_cast<int>(selected.size());

    if (system_model_) {
      // Time the round on the virtual clock and let the straggler policy
      // drop (or scale down) late updates before aggregation.
      const RoundJudgment judgment =
          system_model_->JudgeRound(updates, download_per_client);
      record.num_dropped = judgment.num_dropped;
      record.num_admitted_partial = judgment.num_admitted_partial;
      clock.Advance(judgment.round_seconds);
      std::vector<UpdateMessage> admitted;
      admitted.reserve(updates.size());
      for (size_t i = 0; i < updates.size(); ++i) {
        const StragglerDecision& decision = judgment.decisions[i];
        if (decision.fate == ClientFate::kDropped) continue;
        UpdateMessage msg = std::move(updates[i]);
        if (decision.fate == ClientFate::kAdmittedPartial) {
          // The client shipped its iterate at the deadline: model the
          // shorter SGD path as a proportionally smaller delta. Per-client
          // algorithm state keeps the full pass — see the modeling note on
          // DeadlineAdmitPartialPolicy.
          const float scale = static_cast<float>(decision.work_fraction);
          for (float& v : msg.delta) v *= scale;
          for (float& v : msg.delta2) v *= scale;
        }
        admitted.push_back(std::move(msg));
      }
      updates = std::move(admitted);
    }
    record.sim_seconds = clock.now();

    if (uplink_codec_) {
      // Uplink: encode what the server actually receives — dropped uploads
      // must not feed error-feedback residuals, and a partially-admitted
      // client encodes its scaled (deadline) delta. Serial and in index
      // order so stateful codecs see a deterministic schedule; each client
      // draws from its own forked stream, so thread count cannot matter.
      for (UpdateMessage& msg : updates) {
        Rng up_rng =
            master.Fork(kUplinkCodecTag, static_cast<uint64_t>(round),
                        static_cast<uint64_t>(msg.client_id));
        const int64_t primary_stream = 2 * static_cast<int64_t>(msg.client_id);
        int64_t wire = 0;
        if (!msg.delta.empty()) {
          const Payload payload =
              uplink_codec_->Encode(primary_stream, msg.delta, &up_rng);
          wire += payload.WireBytes();
          msg.delta = uplink_codec_->Decode(payload);
        }
        if (!msg.delta2.empty()) {
          const Payload payload =
              uplink_codec_->Encode(primary_stream + 1, msg.delta2, &up_rng);
          wire += payload.WireBytes();
          msg.delta2 = uplink_codec_->Decode(payload);
        }
        FEDADMM_CHECK_MSG(wire == msg.wire_bytes,
                          "uplink codec: WireBytes() disagrees with Encode()");
      }
    }

    // An all-dropped round wastes its deadline but leaves θ untouched.
    if (!updates.empty()) {
      algorithm_->ServerUpdate(updates, round, &theta_);
    }

    double loss_sum = 0.0;
    int64_t upload = 0;
    int64_t upload_raw = 0;
    for (const UpdateMessage& msg : updates) {
      loss_sum += msg.train_loss;
      upload += msg.UploadBytes();
      upload_raw += msg.RawBytes();
    }
    // An all-dropped round observed no training loss; NaN is the record's
    // established skipped-metric sentinel.
    record.train_loss =
        updates.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : loss_sum / static_cast<double>(updates.size());
    record.upload_bytes = upload;
    record.upload_bytes_raw = upload_raw;
    record.download_bytes =
        static_cast<int64_t>(selected.size()) * download_per_client;
    record.download_bytes_raw =
        static_cast<int64_t>(selected.size()) * download_per_client_raw;

    const bool last_round = (round == config_.max_rounds - 1);
    const bool evaluate = last_round || (round % config_.eval_every == 0);
    if (evaluate) {
      const EvalResult eval = problem_->Evaluate(theta_, /*worker=*/0);
      record.test_accuracy = eval.accuracy;
      record.test_loss = eval.loss;
    } else {
      record.test_accuracy = std::numeric_limits<double>::quiet_NaN();
      record.test_loss = std::numeric_limits<double>::quiet_NaN();
    }
    record.wall_seconds = watch.ElapsedSeconds();
    history.Add(record);
    if (observer_) observer_(record);
    if (config_.log_rounds && evaluate) {
      FEDADMM_LOG(Info) << algorithm_->name() << " round " << round
                        << " acc=" << record.test_accuracy
                        << " loss=" << record.train_loss;
    }
    if (evaluate && config_.target_accuracy > 0.0 &&
        record.test_accuracy >= config_.target_accuracy) {
      break;
    }
  }
  return history;
}

}  // namespace fedadmm
