/// \file algorithm.h
/// \brief Interface every federated optimization method implements.

#ifndef FEDADMM_FL_ALGORITHM_H_
#define FEDADMM_FL_ALGORITHM_H_

#include <span>
#include <string>
#include <vector>

#include "fl/problem.h"
#include "fl/types.h"
#include "util/rng.h"
#include "util/shard.h"

namespace fedadmm {

class ClientStateStore;
class ThreadPool;

/// \brief Static facts an algorithm needs before the first round.
struct AlgorithmContext {
  int num_clients = 0;
  int64_t dim = 0;
  /// Client-state backend spec for stateful algorithms (src/state —
  /// "dense" | "lazy" | "quantized:<b>"). Empty keeps the algorithm's own
  /// default. Stateless algorithms ignore it.
  std::string state_store;
  /// Optional worker pool for blocked server-side reductions
  /// (tensor/vec AxpyMany / BlockedMean). Borrowed; may be nullptr
  /// (serial). The engine lends its client-phase pool, which is idle
  /// whenever ServerUpdate / AggregateOne runs.
  ThreadPool* reduce_pool = nullptr;
  /// Aggregation-server worker count W (SimulationConfig::num_shards).
  /// Stateful algorithms partition their client-state store by the
  /// canonical client shard (util/shard.h) and form ServerUpdate as a
  /// hierarchical per-shard reduce (vec::AxpyManySharded). 1 = the
  /// unsharded server, bitwise identical to the pre-shard engine.
  int num_shards = 1;
};

/// \brief A federated optimization method (server + client logic).
///
/// Thread-safety contract: `ClientUpdate` is called concurrently for
/// *distinct* client ids within a round. Implementations may freely read
/// server-side state (it is only mutated in `ServerUpdate`) and may write
/// per-client state slots for their own client id.
class FederatedAlgorithm {
 public:
  virtual ~FederatedAlgorithm() = default;

  /// Display name, e.g. "FedADMM".
  virtual std::string name() const = 0;

  /// Called once before round 0 with the initial global model θ⁰.
  virtual void Setup(const AlgorithmContext& ctx,
                     std::span<const float> theta0) = 0;

  /// Executes the local work of `client_id` for round `round` given the
  /// downloaded global model `theta`, producing the upload message.
  /// `rng` is a per-(round, client) forked stream.
  virtual UpdateMessage ClientUpdate(int client_id, int round,
                                     std::span<const float> theta,
                                     LocalProblem* problem, Rng rng) = 0;

  /// Aggregates the round's messages into the global model, in place.
  virtual void ServerUpdate(const std::vector<UpdateMessage>& updates,
                            int round, std::vector<float>* theta) = 0;

  /// Applies a single update as it arrives — the asynchronous execution
  /// mode's aggregation hook (fl/server_loop.h). `staleness` is the number
  /// of server aggregations that happened between the update's dispatch and
  /// its arrival (0 = fresh); the engine has already scaled the payload by
  /// the configured staleness weight, so implementations only consult
  /// `staleness` when they want to adapt beyond that. The default wraps the
  /// message into a one-element batch and calls `ServerUpdate`, which
  /// preserves every batch method's semantics at |S_t| = 1 (FedAvg /
  /// FedProx / SCAFFOLD average over the batch, so a singleton batch is the
  /// plain per-update step).
  virtual void AggregateOne(UpdateMessage msg, int round, int staleness,
                            std::vector<float>* theta) {
    (void)staleness;
    std::vector<UpdateMessage> batch(1);
    batch[0] = std::move(msg);
    ServerUpdate(batch, round, theta);
  }

  /// Bytes each selected client downloads per round (θ, plus any extra
  /// server state the method broadcasts — SCAFFOLD's control variate).
  virtual int64_t DownloadBytesPerClient() const {
    return dim_ * static_cast<int64_t>(sizeof(float));
  }

  /// Bytes of server-visible per-client state currently resident
  /// (src/state ClientStateStore accounting). 0 for stateless methods.
  /// Surfaced per round as `RoundRecord::state_bytes_resident`.
  virtual int64_t StateBytesResident() const { return 0; }

  /// The state-store spec this method falls back to when
  /// `AlgorithmContext::state_store` is empty ("" for stateless methods).
  /// The engine probes the effective spec before Setup so a bad one fails
  /// fast with a Status instead of a CHECK mid-initialization.
  virtual std::string DefaultStateStoreSpec() const { return ""; }

  /// Called by the engine when the pool lent via AlgorithmContext is about
  /// to be destroyed. Post-run entry points (e.g. FedAdmm's
  /// MeanAugmentedModel in tests/examples) then take the serial reduction
  /// path, which is bitwise identical — the blocked kernels' boundaries do
  /// not depend on the pool.
  void DetachReducePool() { reduce_pool_ = nullptr; }

  /// Pre-flight check the engine runs before buffered / async execution.
  /// Methods whose aggregation semantics break under per-arrival or
  /// small-batch updates return InvalidArgument here so the run fails
  /// fast instead of silently diverging (or crashing mid-run).
  virtual Status ValidateForEventMode() const { return Status::OK(); }

  /// The method's client-state store, when it has one — the engine's
  /// handle for prefetch hints (`PrefetchClients` on the next cohort) and
  /// checkpoint passes (`ForEachTouched` / restore). nullptr for stateless
  /// methods.
  virtual ClientStateStore* mutable_state_store() { return nullptr; }

  /// Server-side scalars/vectors beyond θ and the state store that a
  /// checkpoint must carry (FedPD's communication coin + counters,
  /// SCAFFOLD's server control variate). Empty = nothing extra.
  virtual std::string SerializeExtraState() const { return {}; }

  /// Inverse of `SerializeExtraState`, called after Setup during restore.
  virtual Status RestoreExtraState(const std::string& blob) {
    if (!blob.empty()) {
      return Status::InvalidArgument(
          name() + ": unexpected extra checkpoint state (" +
          std::to_string(blob.size()) + " bytes)");
    }
    return Status::OK();
  }

 protected:
  /// Shard ids parallel to `updates`, for vec::AxpyManySharded — the one
  /// helper every sharded ServerUpdate shares, so the partition function
  /// cannot drift between methods. Cheap at W = 1 (all zeros, and the
  /// sharded kernel short-circuits anyway).
  std::vector<int> UpdateShards(
      const std::vector<UpdateMessage>& updates) const {
    std::vector<int> shards(updates.size());
    for (size_t i = 0; i < updates.size(); ++i) {
      shards[i] = ShardOfClient(updates[i].client_id, num_shards_);
    }
    return shards;
  }

  /// Cached from Setup for the default byte accounting.
  int num_clients_ = 0;
  int64_t dim_ = 0;
  /// Cached from Setup: pool for blocked reductions (may be nullptr).
  ThreadPool* reduce_pool_ = nullptr;
  /// Cached from Setup: aggregation worker count (1 = unsharded).
  int num_shards_ = 1;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ALGORITHM_H_
