#include "fl/types.h"

#include <cmath>

#include "fl/history_csv.h"

namespace fedadmm {

int History::RoundsToAccuracy(double target) const {
  for (const RoundRecord& r : records_) {
    if (!std::isnan(r.test_accuracy) && r.test_accuracy >= target) {
      return r.round + 1;  // rounds are 0-based internally; count is 1-based
    }
  }
  return -1;
}

double History::SimSecondsToAccuracy(double target) const {
  for (const RoundRecord& r : records_) {
    if (!std::isnan(r.test_accuracy) && r.test_accuracy >= target) {
      return r.sim_seconds;
    }
  }
  return -1.0;
}

double History::TotalSimSeconds() const {
  // sim_seconds is cumulative; the last record holds the run total.
  return records_.empty() ? 0.0 : records_.back().sim_seconds;
}

int History::TotalDropped() const {
  int total = 0;
  for (const RoundRecord& r : records_) total += r.num_dropped;
  return total;
}

double History::FinalAccuracy() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (!std::isnan(it->test_accuracy)) return it->test_accuracy;
  }
  return 0.0;
}

double History::BestAccuracy() const {
  double best = 0.0;
  for (const RoundRecord& r : records_) {
    if (!std::isnan(r.test_accuracy)) best = std::max(best, r.test_accuracy);
  }
  return best;
}

int64_t History::TotalUploadBytes() const {
  int64_t total = 0;
  for (const RoundRecord& r : records_) total += r.upload_bytes;
  return total;
}

int64_t History::TotalDownloadBytes() const {
  int64_t total = 0;
  for (const RoundRecord& r : records_) total += r.download_bytes;
  return total;
}

int64_t History::TotalUploadBytesRaw() const {
  int64_t total = 0;
  for (const RoundRecord& r : records_) total += r.upload_bytes_raw;
  return total;
}

int64_t History::TotalDownloadBytesRaw() const {
  int64_t total = 0;
  for (const RoundRecord& r : records_) total += r.download_bytes_raw;
  return total;
}

Status History::WriteCsv(const std::string& path) const {
  // The canonical schema lives in fl/history_csv.h; everything that writes
  // per-round rows (this method, the benches, the examples) shares it.
  HistoryCsvWriter writer;
  FEDADMM_RETURN_IF_ERROR(writer.Open(path));
  FEDADMM_RETURN_IF_ERROR(writer.AppendHistory({}, *this));
  return writer.Close();
}

}  // namespace fedadmm
