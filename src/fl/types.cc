#include "fl/types.h"

#include <cmath>

#include "util/csv.h"

namespace fedadmm {

int History::RoundsToAccuracy(double target) const {
  for (const RoundRecord& r : records_) {
    if (!std::isnan(r.test_accuracy) && r.test_accuracy >= target) {
      return r.round + 1;  // rounds are 0-based internally; count is 1-based
    }
  }
  return -1;
}

double History::FinalAccuracy() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (!std::isnan(it->test_accuracy)) return it->test_accuracy;
  }
  return 0.0;
}

double History::BestAccuracy() const {
  double best = 0.0;
  for (const RoundRecord& r : records_) {
    if (!std::isnan(r.test_accuracy)) best = std::max(best, r.test_accuracy);
  }
  return best;
}

int64_t History::TotalUploadBytes() const {
  int64_t total = 0;
  for (const RoundRecord& r : records_) total += r.upload_bytes;
  return total;
}

int64_t History::TotalDownloadBytes() const {
  int64_t total = 0;
  for (const RoundRecord& r : records_) total += r.download_bytes;
  return total;
}

Status History::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  FEDADMM_RETURN_IF_ERROR(writer.Open(path));
  FEDADMM_RETURN_IF_ERROR(writer.WriteRow(
      {"round", "num_selected", "train_loss", "test_accuracy", "test_loss",
       "upload_bytes", "download_bytes", "wall_seconds"}));
  for (const RoundRecord& r : records_) {
    FEDADMM_RETURN_IF_ERROR(writer.WriteNumericRow(
        {static_cast<double>(r.round), static_cast<double>(r.num_selected),
         r.train_loss, r.test_accuracy, r.test_loss,
         static_cast<double>(r.upload_bytes),
         static_cast<double>(r.download_bytes), r.wall_seconds}));
  }
  return writer.Close();
}

}  // namespace fedadmm
