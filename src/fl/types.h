/// \file types.h
/// \brief Shared value types of the federated simulation: update messages,
/// per-round records, and run histories.

#ifndef FEDADMM_FL_TYPES_H_
#define FEDADMM_FL_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedadmm {

/// \brief What a selected client uploads to the server in one round.
///
/// For FedAvg/FedProx/FedADMM the payload is a single vector in R^d
/// (`delta`); SCAFFOLD additionally uploads a control-variate delta
/// (`delta2`), doubling its upload size — the accounting reflects that.
struct UpdateMessage {
  int client_id = -1;
  /// Primary payload (model delta, gradient, or augmented-model delta Δ_i).
  std::vector<float> delta;
  /// Secondary payload (SCAFFOLD control delta); empty otherwise.
  std::vector<float> delta2;

  /// Diagnostics (not part of the transmitted payload).
  double train_loss = 0.0;
  int epochs_run = 0;
  int steps_run = 0;
  /// Squared norm of the final local (transformed) gradient — the
  /// inexactness measure ε_i of Eq. (6) actually attained.
  double final_grad_norm_sq = 0.0;

  /// Bytes this update occupied on the wire after uplink encoding
  /// (src/comm); -1 when no codec ran and the raw fp32 size applies.
  int64_t wire_bytes = -1;

  /// Uncompressed float32 size of the payload vectors.
  int64_t RawBytes() const {
    return static_cast<int64_t>((delta.size() + delta2.size()) *
                                sizeof(float));
  }

  /// Bytes uploaded by this client: the encoded wire size when an uplink
  /// codec ran, the raw float32 size otherwise.
  int64_t UploadBytes() const {
    return wire_bytes >= 0 ? wire_bytes : RawBytes();
  }
};

/// \brief One row of a training run's history.
struct RoundRecord {
  int round = 0;
  int num_selected = 0;
  /// Mean training loss reported by the selected clients.
  double train_loss = 0.0;
  /// Global test metrics (NaN when evaluation was skipped this round).
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  /// Communication this round: bytes that actually crossed the (simulated)
  /// network, i.e. codec wire sizes when codecs are attached.
  int64_t upload_bytes = 0;
  int64_t download_bytes = 0;
  /// The same traffic at uncompressed float32 size. Equal to the wire
  /// columns when no codec is attached; the ratio raw/wire is the round's
  /// compression factor.
  int64_t upload_bytes_raw = 0;
  int64_t download_bytes_raw = 0;
  /// Wall-clock duration of the round (client phase + aggregation + eval).
  double wall_seconds = 0.0;
  /// Simulated deployment time elapsed at the end of this round, from the
  /// virtual clock (src/sys). 0 when no system model is attached.
  double sim_seconds = 0.0;
  /// Clients whose update missed the straggler deadline and was discarded.
  int num_dropped = 0;
  /// Clients admitted with only a fraction of their local work.
  int num_admitted_partial = 0;
  /// Staleness of the aggregated updates (server versions elapsed between
  /// an update's dispatch and its aggregation). Always 0 in sync mode —
  /// every update is fresh; NaN mean when the record aggregated nothing.
  double staleness_mean = 0.0;
  int staleness_max = 0;
  /// Bytes of server-visible per-client algorithm state resident at the
  /// end of this round (src/state ClientStateStore accounting; 0 for
  /// stateless methods). `dense` backends sit at m·d prices from round 0;
  /// `lazy`/`quantized` track the touched population.
  int64_t state_bytes_resident = 0;
};

/// \brief The full trajectory of one federated run.
class History {
 public:
  /// Appends a record.
  void Add(const RoundRecord& record) { records_.push_back(record); }

  /// All records.
  const std::vector<RoundRecord>& records() const { return records_; }
  /// Number of recorded rounds.
  int size() const { return static_cast<int>(records_.size()); }
  bool empty() const { return records_.empty(); }

  /// 1-based number of rounds needed to first reach `target` test accuracy;
  /// -1 if never reached (the paper prints this as "100+"). Rounds whose
  /// evaluation was skipped (NaN accuracy) are ignored.
  int RoundsToAccuracy(double target) const;

  /// Simulated seconds (virtual clock) at the end of the first round whose
  /// evaluated accuracy reaches `target`; -1 if never reached. Only
  /// meaningful when the run had a system model attached.
  double SimSecondsToAccuracy(double target) const;

  /// Simulated seconds at the end of the run (0 if empty / no system model).
  double TotalSimSeconds() const;

  /// Total clients dropped by the straggler policy across the run.
  int TotalDropped() const;

  /// Test accuracy of the last evaluated round (0 if none).
  double FinalAccuracy() const;

  /// Best test accuracy across the run (0 if none).
  double BestAccuracy() const;

  /// Total wire bytes uploaded across the run.
  int64_t TotalUploadBytes() const;
  /// Total wire bytes downloaded across the run.
  int64_t TotalDownloadBytes() const;
  /// Total uncompressed-equivalent bytes uploaded across the run.
  int64_t TotalUploadBytesRaw() const;
  /// Total uncompressed-equivalent bytes downloaded across the run.
  int64_t TotalDownloadBytesRaw() const;

  /// Writes the history as CSV with a header row.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<RoundRecord> records_;
};

/// \brief Result of evaluating a model on held-out data.
struct EvalResult {
  /// Top-1 accuracy for classification; a monotone proxy in [0, 1] for
  /// synthetic convex problems (see QuadraticProblem).
  double accuracy = 0.0;
  /// Mean loss / objective value.
  double loss = 0.0;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_TYPES_H_
