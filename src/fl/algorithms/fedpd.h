/// \file fedpd.h
/// \brief FedPD (Zhang et al., IEEE TSP 2021) — related-work extension.
///
/// FedPD is the other primal-dual FL method the paper discusses (Section
/// II). It requires *full* client participation: every round all clients
/// update (w_i, y_i) against their local copy of the global model, and with
/// probability p the round ends with a global aggregation
/// θ = (1/m) Σ (w_i + y_i/ρ); otherwise no communication happens and
/// clients continue locally. Use with FullParticipationSelector. It is
/// implemented here so the paper's qualitative claim — that the global
/// update frequency is throttled by p and all clients bear compute cost
/// every round — can be measured (see the FedPD integration test and the
/// Table I notes in EXPERIMENTS.md).
///
/// Communication accounting: on non-communication rounds clients upload
/// nothing (empty delta), so the simulator's byte counters reflect FedPD's
/// sporadic communication pattern.

#ifndef FEDADMM_FL_ALGORITHMS_FEDPD_H_
#define FEDADMM_FL_ALGORITHMS_FEDPD_H_

#include <memory>

#include "fl/algorithm.h"
#include "fl/local_solver.h"
#include "state/client_state_store.h"

namespace fedadmm {

/// \brief Primal-dual method with probabilistic global aggregation.
class FedPd : public FederatedAlgorithm {
 public:
  /// `rho` is the augmented-Lagrangian coefficient; `comm_probability` is
  /// the per-round probability p of a global aggregation.
  FedPd(const LocalTrainSpec& local, float rho, double comm_probability,
        uint64_t seed = 99)
      : local_(local),
        rho_(rho),
        comm_probability_(comm_probability),
        coin_rng_(seed) {}

  std::string name() const override { return "FedPD"; }
  void Setup(const AlgorithmContext& ctx,
             std::span<const float> theta0) override;
  UpdateMessage ClientUpdate(int client_id, int round,
                             std::span<const float> theta,
                             LocalProblem* problem, Rng rng) override;
  void ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                    std::vector<float>* theta) override;
  /// FedPD aggregates θ = (1/m) Σ (w_i + y_i/ρ) over the *full* population;
  /// a single arriving update cannot reconstitute that mean, so per-update
  /// aggregation (async / buffered modes) is rejected outright.
  void AggregateOne(UpdateMessage msg, int round, int staleness,
                    std::vector<float>* theta) override;

  /// Event modes fail fast: partial batches cannot form the full-population
  /// mean FedPD's server step requires.
  Status ValidateForEventMode() const override;

  /// Resident bytes of the (w_i, y_i) store.
  int64_t StateBytesResident() const override;

  /// Fallback when `SimulationConfig::state_store` is empty.
  std::string DefaultStateStoreSpec() const override { return "dense"; }

  /// Number of aggregation (communication) rounds so far.
  int communication_rounds() const { return comm_rounds_; }

  /// Engine handle for prefetch hints and checkpoint passes.
  ClientStateStore* mutable_state_store() override { return store_.get(); }

  /// Checkpoints the communication coin stream and round counters — the
  /// server-side state a restored run needs to keep the same aggregation
  /// schedule.
  std::string SerializeExtraState() const override;
  Status RestoreExtraState(const std::string& blob) override;

 private:
  /// Store slots: client primal iterate w_i and dual variable y_i.
  static constexpr int kSlotModel = 0;
  static constexpr int kSlotDual = 1;

  LocalTrainSpec local_;
  float rho_;
  double comm_probability_;
  Rng coin_rng_;
  int comm_rounds_ = 0;
  bool communicate_this_round_ = false;

  /// Per-client primal/dual state (persistent across rounds).
  std::unique_ptr<ClientStateStore> store_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ALGORITHMS_FEDPD_H_
