#include "fl/algorithms/scaffold.h"

#include "tensor/vec.h"
#include "util/file_io.h"

namespace fedadmm {

void Scaffold::Setup(const AlgorithmContext& ctx,
                     std::span<const float> theta0) {
  (void)theta0;
  num_clients_ = ctx.num_clients;
  dim_ = ctx.dim;
  reduce_pool_ = ctx.reduce_pool;
  num_shards_ = ctx.num_shards;
  server_c_.assign(static_cast<size_t>(dim_), 0.0f);
  // Controls are zero-initialized as the paper recommends — the slot
  // default, so sparse backends keep untouched clients free.
  std::vector<StateSlotSpec> slots(1);
  slots[kSlotControl].dim = ctx.dim;
  auto store = MakeConfiguredClientStateStore(
      ctx.state_store, DefaultStateStoreSpec(), ctx.num_clients,
      std::move(slots), ctx.num_shards);
  FEDADMM_CHECK_MSG(store.ok(), store.status().ToString());
  store_ = std::move(store).ValueOrDie();
}

UpdateMessage Scaffold::ClientUpdate(int client_id, int round,
                                     std::span<const float> theta,
                                     LocalProblem* problem, Rng rng) {
  (void)round;
  std::span<float> c_i = store_->MutableView(client_id, kSlotControl);
  const std::vector<float>& c = server_c_;

  std::vector<float> w(theta.begin(), theta.end());
  const int epochs = SampleEpochs(local_, &rng);
  // grad += c - c_i (variance-reduction correction).
  auto transform = [&c, c_i](std::span<const float> w_now,
                             std::span<float> grad) {
    (void)w_now;
    const size_t n = grad.size();
    for (size_t i = 0; i < n; ++i) grad[i] += c[i] - c_i[i];
  };
  const LocalSolveResult result =
      RunLocalSgd(problem, local_, epochs, w, &rng, transform);

  UpdateMessage msg;
  msg.client_id = client_id;
  msg.delta.resize(theta.size());
  vec::Sub(w, theta, msg.delta);

  // Option II control refresh: c_i+ = c_i - c + (θ - w+) / (K η_l).
  const float k_steps = static_cast<float>(std::max(1, result.steps_run));
  const float inv = 1.0f / (k_steps * local_.learning_rate);
  std::vector<float> c_i_new(c_i.size());
  for (size_t i = 0; i < c_i.size(); ++i) {
    c_i_new[i] = c_i[i] - c[i] + (theta[i] - w[i]) * inv;
  }
  msg.delta2.resize(c_i.size());
  vec::Sub(c_i_new, c_i, msg.delta2);
  vec::Copy(c_i_new, c_i);
  store_->Release(client_id);

  msg.train_loss = result.mean_loss;
  msg.epochs_run = result.epochs_run;
  msg.steps_run = result.steps_run;
  msg.final_grad_norm_sq = result.final_grad_norm_sq;
  return msg;
}

void Scaffold::ServerUpdate(const std::vector<UpdateMessage>& updates,
                            int round, std::vector<float>* theta) {
  (void)round;
  FEDADMM_CHECK(!updates.empty());
  const float inv_s = 1.0f / static_cast<float>(updates.size());
  std::vector<std::span<const float>> deltas;
  std::vector<std::span<const float>> control_deltas;
  deltas.reserve(updates.size());
  control_deltas.reserve(updates.size());
  for (const UpdateMessage& msg : updates) {
    FEDADMM_CHECK_MSG(!msg.delta2.empty(),
                      "SCAFFOLD requires control deltas in messages");
    deltas.push_back(msg.delta);
    control_deltas.push_back(msg.delta2);
  }
  // Both server accumulators take the hierarchical per-shard reduce (flat
  // and bitwise-legacy at W = 1).
  const std::vector<int> shards = UpdateShards(updates);
  // θ += η_g * avg(Δw)
  vec::AxpyManySharded(server_lr_ * inv_s, deltas, shards, num_shards_,
                       *theta, reduce_pool_);
  // c += (|S|/m) * avg(Δc)
  const float scale = static_cast<float>(updates.size()) /
                      static_cast<float>(num_clients_) * inv_s;
  vec::AxpyManySharded(scale, control_deltas, shards, num_shards_, server_c_,
                       reduce_pool_);
}

int64_t Scaffold::StateBytesResident() const {
  return store_ ? store_->bytes_resident() : 0;
}

std::string Scaffold::SerializeExtraState() const {
  ByteWriter writer;
  writer.Floats(server_c_);
  return writer.Take();
}

Status Scaffold::RestoreExtraState(const std::string& blob) {
  ByteReader reader(blob);
  FEDADMM_ASSIGN_OR_RETURN(std::vector<float> server_c, reader.Floats());
  if (static_cast<int64_t>(server_c.size()) != dim_ || !reader.empty()) {
    return Status::InvalidArgument(
        "Scaffold::RestoreExtraState: server control blob does not match "
        "dim " +
        std::to_string(dim_));
  }
  server_c_ = std::move(server_c);
  return Status::OK();
}

}  // namespace fedadmm
