/// \file fedprox.h
/// \brief FedProx baseline (Li et al., MLSys 2020).

#ifndef FEDADMM_FL_ALGORITHMS_FEDPROX_H_
#define FEDADMM_FL_ALGORITHMS_FEDPROX_H_

#include "fl/algorithm.h"
#include "fl/local_solver.h"

namespace fedadmm {

/// \brief FedAvg plus a proximal term: local steps follow
/// ∇f_i(w, b) + ρ(w − θ), anchoring clients to the global model.
///
/// Equivalent to FedADMM's local problem with y_i ≡ 0 (Section III-B). The
/// paper highlights that FedProx's performance is sensitive to ρ, which
/// Table V / bench_table5 reproduce. Variable local epochs are enabled by
/// default (FedProx tolerates variable work, like FedADMM).
///
/// Async / buffered modes use the inherited `AggregateOne` default
/// (singleton-batch `ServerUpdate`); the proximal anchor makes stale
/// arrivals gentler than FedAvg's, since every local step was pulled
/// toward the θ the client downloaded.
class FedProx : public FederatedAlgorithm {
 public:
  FedProx(const LocalTrainSpec& local, float rho, float server_lr = 1.0f)
      : local_(local), rho_(rho), server_lr_(server_lr) {}

  std::string name() const override { return "FedProx"; }
  void Setup(const AlgorithmContext& ctx,
             std::span<const float> theta0) override;
  UpdateMessage ClientUpdate(int client_id, int round,
                             std::span<const float> theta,
                             LocalProblem* problem, Rng rng) override;
  void ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                    std::vector<float>* theta) override;

  float rho() const { return rho_; }

 private:
  LocalTrainSpec local_;
  float rho_;
  float server_lr_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ALGORITHMS_FEDPROX_H_
