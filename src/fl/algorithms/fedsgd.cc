#include "fl/algorithms/fedsgd.h"

#include "tensor/vec.h"

namespace fedadmm {

void FedSgd::Setup(const AlgorithmContext& ctx,
                   std::span<const float> theta0) {
  (void)theta0;
  num_clients_ = ctx.num_clients;
  dim_ = ctx.dim;
  reduce_pool_ = ctx.reduce_pool;
}

UpdateMessage FedSgd::ClientUpdate(int client_id, int round,
                                   std::span<const float> theta,
                                   LocalProblem* problem, Rng rng) {
  (void)round;
  (void)rng;
  UpdateMessage msg;
  msg.client_id = client_id;
  msg.delta.resize(theta.size());
  msg.train_loss = problem->FullLossGradient(theta, msg.delta);
  msg.epochs_run = 0;
  msg.steps_run = 1;
  msg.final_grad_norm_sq = vec::SquaredL2Norm(msg.delta);
  return msg;
}

void FedSgd::ServerUpdate(const std::vector<UpdateMessage>& updates,
                          int round, std::vector<float>* theta) {
  (void)round;
  FEDADMM_CHECK(!updates.empty());
  const float step =
      -learning_rate_ / static_cast<float>(updates.size());
  std::vector<std::span<const float>> deltas;
  deltas.reserve(updates.size());
  for (const UpdateMessage& msg : updates) deltas.push_back(msg.delta);
  vec::AxpyMany(step, deltas, *theta, reduce_pool_);
}

}  // namespace fedadmm
