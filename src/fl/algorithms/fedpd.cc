#include "fl/algorithms/fedpd.h"

#include "tensor/vec.h"
#include "util/file_io.h"

namespace fedadmm {

void FedPd::Setup(const AlgorithmContext& ctx,
                  std::span<const float> theta0) {
  num_clients_ = ctx.num_clients;
  dim_ = ctx.dim;
  reduce_pool_ = ctx.reduce_pool;
  num_shards_ = ctx.num_shards;
  std::vector<StateSlotSpec> slots(2);
  slots[kSlotModel].dim = ctx.dim;
  slots[kSlotModel].init.assign(theta0.begin(), theta0.end());
  slots[kSlotDual].dim = ctx.dim;
  auto store = MakeConfiguredClientStateStore(
      ctx.state_store, DefaultStateStoreSpec(), ctx.num_clients,
      std::move(slots), ctx.num_shards);
  FEDADMM_CHECK_MSG(store.ok(), store.status().ToString());
  store_ = std::move(store).ValueOrDie();
  comm_rounds_ = 0;
  // Decide the first round's communication coin up front; subsequent coins
  // are flipped in ServerUpdate so ClientUpdate can see a consistent value.
  communicate_this_round_ = coin_rng_.Bernoulli(comm_probability_);
}

UpdateMessage FedPd::ClientUpdate(int client_id, int round,
                                  std::span<const float> theta,
                                  LocalProblem* problem, Rng rng) {
  (void)round;
  std::span<float> w = store_->MutableView(client_id, kSlotModel);
  std::span<float> y = store_->MutableView(client_id, kSlotDual);
  const float rho = rho_;

  // Warm-start from the stored local model; anchor to the *current* θ.
  auto transform = [y, rho, theta](std::span<const float> w_now,
                                   std::span<float> grad) {
    const size_t n = grad.size();
    for (size_t i = 0; i < n; ++i) {
      grad[i] += y[i] + rho * (w_now[i] - theta[i]);
    }
  };
  const int epochs = SampleEpochs(local_, &rng);
  const LocalSolveResult result =
      RunLocalSgd(problem, local_, epochs, w, &rng, transform);
  // Dual ascent: y_i += ρ (w_i − θ).
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] += rho * (w[i] - theta[i]);
  }

  UpdateMessage msg;
  msg.client_id = client_id;
  msg.train_loss = result.mean_loss;
  msg.epochs_run = result.epochs_run;
  msg.steps_run = result.steps_run;
  msg.final_grad_norm_sq = result.final_grad_norm_sq;
  if (communicate_this_round_) {
    // Upload the augmented model w_i + y_i/ρ for global averaging.
    msg.delta.resize(w.size());
    for (size_t i = 0; i < w.size(); ++i) {
      msg.delta[i] = w[i] + y[i] / rho;
    }
  }
  store_->Release(client_id);
  return msg;
}

void FedPd::ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                         std::vector<float>* theta) {
  (void)round;
  if (communicate_this_round_) {
    FEDADMM_CHECK_MSG(static_cast<int>(updates.size()) == num_clients_,
                      "FedPD requires full participation");
    vec::Zero(*theta);
    const float inv_m = 1.0f / static_cast<float>(num_clients_);
    std::vector<std::span<const float>> deltas;
    deltas.reserve(updates.size());
    for (const UpdateMessage& msg : updates) deltas.push_back(msg.delta);
    // θ = (1/m) Σ (w_i + y_i/ρ) as per-shard partials (flat at W = 1).
    vec::AxpyManySharded(inv_m, deltas, UpdateShards(updates), num_shards_,
                         *theta, reduce_pool_);
    ++comm_rounds_;
  }
  communicate_this_round_ = coin_rng_.Bernoulli(comm_probability_);
}

void FedPd::AggregateOne(UpdateMessage msg, int round, int staleness,
                         std::vector<float>* theta) {
  (void)msg;
  (void)round;
  (void)staleness;
  (void)theta;
  FEDADMM_CHECK_MSG(false,
                    "FedPD requires full participation and cannot aggregate "
                    "per-update; use ExecutionMode::kSync");
}

Status FedPd::ValidateForEventMode() const {
  return Status::InvalidArgument(
      "FedPD aggregates θ = (1/m) Σ (w_i + y_i/ρ) over the full population; "
      "buffered/async partial batches cannot form that mean. Use "
      "ExecutionMode::kSync with FullParticipationSelector");
}

int64_t FedPd::StateBytesResident() const {
  return store_ ? store_->bytes_resident() : 0;
}

std::string FedPd::SerializeExtraState() const {
  // The coin stream decides *future* aggregation rounds: without it a
  // restored run would re-seed and draw a different communication
  // schedule than the uninterrupted one.
  ByteWriter writer;
  writer.String(coin_rng_.SerializeState());
  writer.U32(static_cast<uint32_t>(comm_rounds_));
  writer.U8(communicate_this_round_ ? 1 : 0);
  return writer.Take();
}

Status FedPd::RestoreExtraState(const std::string& blob) {
  ByteReader reader(blob);
  FEDADMM_ASSIGN_OR_RETURN(std::string coin_state, reader.String());
  FEDADMM_RETURN_IF_ERROR(coin_rng_.RestoreState(coin_state));
  FEDADMM_ASSIGN_OR_RETURN(uint32_t comm_rounds, reader.U32());
  comm_rounds_ = static_cast<int>(comm_rounds);
  FEDADMM_ASSIGN_OR_RETURN(uint8_t communicate, reader.U8());
  communicate_this_round_ = communicate != 0;
  if (!reader.empty()) {
    return Status::InvalidArgument(
        "FedPd::RestoreExtraState: trailing bytes in checkpoint blob");
  }
  return Status::OK();
}

}  // namespace fedadmm
