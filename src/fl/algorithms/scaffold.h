/// \file scaffold.h
/// \brief SCAFFOLD baseline (Karimireddy et al., ICML 2020).

#ifndef FEDADMM_FL_ALGORITHMS_SCAFFOLD_H_
#define FEDADMM_FL_ALGORITHMS_SCAFFOLD_H_

#include <memory>

#include "fl/algorithm.h"
#include "fl/local_solver.h"
#include "state/client_state_store.h"

namespace fedadmm {

/// \brief Stochastic controlled averaging with client/server control
/// variates.
///
/// Client steps follow w ← w − η_l (∇f_i(w, b) − c_i + c); after K steps the
/// client control is refreshed with option II of the SCAFFOLD paper,
/// c_i⁺ = c_i − c + (θ − w⁺) / (K η_l), and the client uploads *two* vectors
/// (Δw, Δc) — doubling upload size relative to FedAvg/Prox/ADMM, which the
/// byte accounting and DownloadBytesPerClient reflect (clients also fetch
/// the server control c). Controls are zero-initialized as the paper
/// recommends; epochs are fixed at E (no system-heterogeneity variant, per
/// the paper's setup).
///
/// Async / buffered modes use the inherited `AggregateOne` default: at
/// |S_t| = 1 the base `ServerUpdate` applies θ ← θ + η_g Δw and
/// c ← c + (1/m) Δc, exactly the paper's running-mean control refresh
/// applied one arrival at a time.
class Scaffold : public FederatedAlgorithm {
 public:
  Scaffold(const LocalTrainSpec& local, float server_lr = 1.0f)
      : local_(local), server_lr_(server_lr) {}

  std::string name() const override { return "SCAFFOLD"; }
  void Setup(const AlgorithmContext& ctx,
             std::span<const float> theta0) override;
  UpdateMessage ClientUpdate(int client_id, int round,
                             std::span<const float> theta,
                             LocalProblem* problem, Rng rng) override;
  void ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                    std::vector<float>* theta) override;

  /// θ and c are both broadcast: 2d floats.
  int64_t DownloadBytesPerClient() const override {
    return 2 * dim_ * static_cast<int64_t>(sizeof(float));
  }

  /// Resident bytes of the client-control store.
  int64_t StateBytesResident() const override;

  /// Fallback when `SimulationConfig::state_store` is empty.
  std::string DefaultStateStoreSpec() const override { return "dense"; }

  /// Server control variate (tests).
  const std::vector<float>& server_control() const { return server_c_; }
  /// Client control variate (tests). A state-store view: untouched clients
  /// read the zero initialization.
  std::span<const float> client_control(int i) const {
    return store_->View(i, kSlotControl);
  }

  /// Engine handle for prefetch hints and checkpoint passes.
  ClientStateStore* mutable_state_store() override { return store_.get(); }

  /// Checkpoints the server control variate c.
  std::string SerializeExtraState() const override;
  Status RestoreExtraState(const std::string& blob) override;

 private:
  /// Store slot: the client control variate c_i.
  static constexpr int kSlotControl = 0;

  LocalTrainSpec local_;
  float server_lr_;
  std::vector<float> server_c_;
  std::unique_ptr<ClientStateStore> store_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ALGORITHMS_SCAFFOLD_H_
