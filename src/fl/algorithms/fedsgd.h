/// \file fedsgd.h
/// \brief FedSGD baseline: one full-batch gradient per selected client.

#ifndef FEDADMM_FL_ALGORITHMS_FEDSGD_H_
#define FEDADMM_FL_ALGORITHMS_FEDSGD_H_

#include "fl/algorithm.h"

namespace fedadmm {

/// \brief The communication-per-step extreme of federated optimization:
/// each selected client uploads its exact local gradient at θ and the
/// server takes a single SGD step with the averaged gradient. Equivalent to
/// FedAvg with E = 1 and B = ∞ plus a server learning rate. Under the
/// async execution mode the inherited `AggregateOne` default turns this
/// into plain incremental SGD: one gradient step per arriving client.
class FedSgd : public FederatedAlgorithm {
 public:
  /// `learning_rate` is the server step applied to the averaged gradient.
  explicit FedSgd(float learning_rate) : learning_rate_(learning_rate) {}

  std::string name() const override { return "FedSGD"; }
  void Setup(const AlgorithmContext& ctx,
             std::span<const float> theta0) override;
  UpdateMessage ClientUpdate(int client_id, int round,
                             std::span<const float> theta,
                             LocalProblem* problem, Rng rng) override;
  void ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                    std::vector<float>* theta) override;

 private:
  float learning_rate_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ALGORITHMS_FEDSGD_H_
