#include "fl/algorithms/fedavg.h"

#include "tensor/vec.h"

namespace fedadmm {

void FedAvg::Setup(const AlgorithmContext& ctx,
                   std::span<const float> theta0) {
  (void)theta0;
  num_clients_ = ctx.num_clients;
  dim_ = ctx.dim;
  reduce_pool_ = ctx.reduce_pool;
}

UpdateMessage FedAvg::ClientUpdate(int client_id, int round,
                                   std::span<const float> theta,
                                   LocalProblem* problem, Rng rng) {
  (void)round;
  std::vector<float> w(theta.begin(), theta.end());
  const int epochs = SampleEpochs(local_, &rng);
  const LocalSolveResult result = RunLocalSgd(
      problem, local_, epochs, w, &rng, /*transform=*/nullptr);

  UpdateMessage msg;
  msg.client_id = client_id;
  msg.delta.resize(theta.size());
  vec::Sub(w, theta, msg.delta);
  msg.train_loss = result.mean_loss;
  msg.epochs_run = result.epochs_run;
  msg.steps_run = result.steps_run;
  msg.final_grad_norm_sq = result.final_grad_norm_sq;
  return msg;
}

void FedAvg::ServerUpdate(const std::vector<UpdateMessage>& updates,
                          int round, std::vector<float>* theta) {
  (void)round;
  FEDADMM_CHECK(!updates.empty());
  const float step = server_lr_ / static_cast<float>(updates.size());
  std::vector<std::span<const float>> deltas;
  deltas.reserve(updates.size());
  for (const UpdateMessage& msg : updates) deltas.push_back(msg.delta);
  vec::AxpyMany(step, deltas, *theta, reduce_pool_);
}

}  // namespace fedadmm
