/// \file fedavg.h
/// \brief FedAvg baseline (McMahan et al., AISTATS 2017).

#ifndef FEDADMM_FL_ALGORITHMS_FEDAVG_H_
#define FEDADMM_FL_ALGORITHMS_FEDAVG_H_

#include "fl/algorithm.h"
#include "fl/local_solver.h"

namespace fedadmm {

/// \brief Selected clients run E epochs of local SGD from θ and upload the
/// model delta w⁺ − θ; the server averages deltas into θ.
///
/// Per the paper's experimental setup, FedAvg runs a *fixed* number of
/// local epochs (no system-heterogeneity accommodation); callers wanting
/// variable work should use FedProx or FedADMM.
///
/// Async / buffered modes use the inherited `AggregateOne` default: a
/// singleton batch of the base `ServerUpdate`, i.e. θ ← θ + η_g Δ_i per
/// arrival. That is the textbook FedAsync step — and it inherits FedAvg's
/// drift sensitivity, since each arrival pulls θ a full server step toward
/// one client's non-IID optimum.
class FedAvg : public FederatedAlgorithm {
 public:
  explicit FedAvg(const LocalTrainSpec& local, float server_lr = 1.0f)
      : local_(local), server_lr_(server_lr) {}

  std::string name() const override { return "FedAvg"; }
  void Setup(const AlgorithmContext& ctx,
             std::span<const float> theta0) override;
  UpdateMessage ClientUpdate(int client_id, int round,
                             std::span<const float> theta,
                             LocalProblem* problem, Rng rng) override;
  void ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                    std::vector<float>* theta) override;

  const LocalTrainSpec& local_spec() const { return local_; }

 private:
  LocalTrainSpec local_;
  float server_lr_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ALGORITHMS_FEDAVG_H_
