/// \file round_context.h
/// \brief Per-round working state shared by the engine's stages.
///
/// One `RoundContext` is built per aggregation round (sync) or dispatch
/// wave (buffered / async): the selector's draw, the downlink plan produced
/// by `CommPipeline`, and the in-flight update messages. Splitting this out
/// of the old `Simulation::Run()` monolith lets the stages — selection,
/// downlink, client execution, admission, uplink, aggregation — compose
/// without sharing a 200-line function body.

#ifndef FEDADMM_FL_ROUND_CONTEXT_H_
#define FEDADMM_FL_ROUND_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fl/types.h"
#include "util/shard.h"

namespace fedadmm {

/// \brief What the server broadcast this wave and what it cost per client.
struct DownlinkPlan {
  /// Decoded broadcast the clients actually train on; empty when no
  /// downlink codec is attached (clients read θ directly).
  std::vector<float> broadcast;
  /// True when `broadcast` holds the decoded (lossy) θ.
  bool use_broadcast = false;
  /// The encoded broadcast wire bytes when a downlink codec ran; null
  /// otherwise. Shared so a serving frontend (src/serve) can fan the exact
  /// in-loop-encoded payload out to every session's MODEL frame without
  /// copying it per client.
  std::shared_ptr<const std::vector<uint8_t>> encoded;
  /// Wire bytes each selected client downloads (codec-compressed θ plus any
  /// uncompressed algorithm extras).
  int64_t per_client_bytes = 0;
  /// The same download at uncompressed fp32 size.
  int64_t per_client_bytes_raw = 0;

  /// The parameter vector clients train on: the decoded broadcast when a
  /// downlink codec ran, `theta` itself otherwise.
  const std::vector<float>& ThetaForClients(
      const std::vector<float>& theta) const {
    return use_broadcast ? broadcast : theta;
  }
};

/// \brief One round's (or dispatch wave's) working state.
struct RoundContext {
  /// Round index (sync) or wave id (event modes); keys all RNG streams.
  int round = 0;
  /// Aggregation-server worker count this wave runs under
  /// (SimulationConfig::num_shards; 1 = unsharded).
  int num_shards = 1;
  /// The selector's draw for this round/wave.
  std::vector<int> selected;
  /// Downlink billing + broadcast for this round/wave.
  DownlinkPlan downlink;
  /// Client updates, parallel to `selected` until admission filters them.
  std::vector<UpdateMessage> updates;

  /// Selected clients per shard (size num_shards) — the wave's worker
  /// load-balance, for diagnostics and the shard-scale bench.
  std::vector<int> ShardLoads() const {
    std::vector<int> loads(static_cast<size_t>(num_shards < 1 ? 1
                                                              : num_shards),
                           0);
    for (const int client : selected) {
      ++loads[static_cast<size_t>(ShardOfClient(
          client, static_cast<int>(loads.size())))];
    }
    return loads;
  }
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_ROUND_CONTEXT_H_
