/// \file quadratic_problem.h
/// \brief Analytic convex federated problem for convergence validation.
///
/// Client i holds the strongly convex quadratic
///   f_i(w) = 0.5 * wᵀ A_i w − b_iᵀ w,
/// with A_i symmetric positive definite. The global optimum
/// θ* = (Σ A_i)⁻¹ Σ b_i is computable in closed form, so tests and the
/// Table I complexity bench can measure exact distances to optimality —
/// something the deep-learning problems cannot provide.
///
/// Heterogeneity is controllable: `heterogeneity` scales how far apart the
/// per-client optima A_i⁻¹ b_i are, mimicking non-IID data.

#ifndef FEDADMM_FL_QUADRATIC_PROBLEM_H_
#define FEDADMM_FL_QUADRATIC_PROBLEM_H_

#include <memory>
#include <vector>

#include "fl/problem.h"

namespace fedadmm {

/// \brief Configuration of the synthetic quadratic federation.
struct QuadraticSpec {
  int num_clients = 10;
  int dim = 20;
  /// Smallest eigenvalue floor of each A_i (strong convexity).
  double min_curvature = 0.5;
  /// Largest additional random curvature (L ≈ min_curvature + spread).
  double curvature_spread = 1.5;
  /// Scale of the dispersion of per-client optima (0 = identical clients).
  double heterogeneity = 1.0;
  uint64_t seed = 7;
  /// Pseudo-samples per client: local "epochs" take this many GD steps and
  /// `num_samples()` reports it.
  int pseudo_samples = 8;
};

/// \brief The federated quadratic problem.
class QuadraticProblem : public FederatedProblem {
 public:
  explicit QuadraticProblem(const QuadraticSpec& spec);

  int num_clients() const override { return spec_.num_clients; }
  int64_t dim() const override { return spec_.dim; }
  int num_workers() const override { return 1 << 16; }  // stateless workers

  std::unique_ptr<LocalProblem> MakeLocalProblem(int client,
                                                 int worker) override;
  /// accuracy = 1 / (1 + ||θ − θ*||); loss = global objective value.
  EvalResult Evaluate(std::span<const float> theta, int worker) override;
  std::vector<float> InitialParameters(Rng* rng) override;

  /// The closed-form optimum of Σ f_i.
  const std::vector<double>& optimum() const { return optimum_; }

  /// Global objective Σ_i f_i(w) / m.
  double GlobalObjective(std::span<const float> w) const;

  /// Euclidean distance ||w − θ*||.
  double DistanceToOptimum(std::span<const float> w) const;

  /// Largest per-client Lipschitz constant (max eigenvalue bound of A_i,
  /// via Gershgorin) — useful for choosing ρ > (1+√5)L in tests.
  double LipschitzBound() const { return lipschitz_bound_; }

  /// f_i(w) for one client (tests).
  double ClientObjective(int client, std::span<const float> w) const;
  /// ∇f_i(w) for one client (tests).
  void ClientGradient(int client, std::span<const float> w,
                      std::span<float> grad) const;

 private:
  QuadraticSpec spec_;
  /// A_i stored row-major [dim, dim]; b_i [dim].
  std::vector<std::vector<double>> a_;
  std::vector<std::vector<double>> b_;
  std::vector<double> optimum_;
  double lipschitz_bound_ = 0.0;
};

/// \brief Solves the dense symmetric system M x = rhs by Gaussian
/// elimination with partial pivoting. Returns InvalidArgument if singular.
Result<std::vector<double>> SolveDense(std::vector<double> m, int n,
                                       std::vector<double> rhs);

}  // namespace fedadmm

#endif  // FEDADMM_FL_QUADRATIC_PROBLEM_H_
