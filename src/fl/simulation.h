/// \file simulation.h
/// \brief Public entry point of the federated training engine.
///
/// `Simulation` validates its inputs and delegates to the event-driven
/// federation engine (fl/server_loop.h), which composes four stages —
/// selection, `CommPipeline` (codec billing), `ClientExecutor` (thread-pool
/// fan-out) and aggregation — under one of three execution modes:
///
///   * `kSync`     — the paper's synchronous loop (Fig. 1 / Fig. 2): every
///                   selected client reports before the server aggregates.
///                   Bitwise identical to the historical monolithic
///                   `Simulation::Run()`, with or without a system model.
///   * `kBuffered` — FedBuff-style semi-synchronous: the server aggregates
///                   as soon as `buffer_size` uploads arrive; late updates
///                   carry a staleness counter and are discounted by the
///                   pluggable staleness weight. Requires a system model.
///   * `kAsync`    — every completion event triggers an immediate
///                   `FederatedAlgorithm::AggregateOne`. Requires a system
///                   model.
///
/// All three modes are deterministic for a fixed seed across thread counts.

#ifndef FEDADMM_FL_SIMULATION_H_
#define FEDADMM_FL_SIMULATION_H_

#include <functional>
#include <memory>
#include <string>

#include "comm/codec.h"
#include "fl/algorithm.h"
#include "fl/ingest.h"
#include "fl/problem.h"
#include "fl/selection.h"
#include "fl/staleness.h"
#include "fl/types.h"
#include "sys/system_model.h"
#include "util/thread_pool.h"

namespace fedadmm {

/// \brief How the server schedules client work and aggregation.
enum class ExecutionMode {
  /// Wait for the whole round (the historical behaviour; the default).
  kSync = 0,
  /// Aggregate once `buffer_size` uploads arrived (semi-synchronous).
  kBuffered = 1,
  /// Aggregate every upload the instant it arrives (fully asynchronous).
  kAsync = 2,
};

/// Canonical mode name: "sync", "buffered" or "async".
const std::string& ExecutionModeName(ExecutionMode mode);

/// Parses a mode name; InvalidArgument for anything unknown.
Result<ExecutionMode> ParseExecutionMode(const std::string& name);

/// \brief Run-level knobs of the simulator.
struct SimulationConfig {
  /// Maximum number of rounds T. In the event-driven modes a "round" is one
  /// aggregation (buffer flush / async arrival), so budgets should scale by
  /// the per-round client count for a fair cross-mode comparison.
  int max_rounds = 100;
  /// Stop early once test accuracy reaches this value (disabled if <= 0).
  double target_accuracy = -1.0;
  /// Evaluate every k-th round (1 = every round). The final round is always
  /// evaluated.
  int eval_every = 1;
  /// Master seed: drives selection and all per-(round, client) streams.
  uint64_t seed = 1;
  /// Worker threads for the client phase; <= 0 picks
  /// min(hardware_concurrency, clients per round).
  int num_threads = 0;
  /// Emit an INFO log line per evaluated round.
  bool log_rounds = false;
  /// Execution semantics (see ExecutionMode). `kBuffered` and `kAsync`
  /// require a system model: event times come from the virtual clock.
  ExecutionMode mode = ExecutionMode::kSync;
  /// Buffered mode: aggregate once this many uploads arrived. <= 0 picks
  /// half the initial wave (FedBuff's K = |S|/2 heuristic); clamped to the
  /// wave size.
  int buffer_size = 0;
  /// Staleness discount applied to late updates in buffered/async modes
  /// (fl/staleness.h); null means constant 1 (no discount).
  StalenessWeightFn staleness_weight;
  /// Client-state backend for stateful algorithms (src/state):
  /// "dense" | "lazy" | "quantized:<b>" | "sharded:<W>:<inner>". Empty
  /// keeps each algorithm's own default (dense). `lazy` and `quantized`
  /// keep resident state proportional to the *touched* client population —
  /// the lever that makes 100k-client fleets affordable under 1%
  /// participation; see `RoundRecord::state_bytes_resident` and
  /// bench_state_scale.
  std::string state_store;
  /// Aggregation-server worker count W (>= 1). Each worker owns the
  /// client-id partition `client % W` (util/shard.h): its slice of the
  /// client-state store, its per-worker event heap, and its partial of the
  /// hierarchical server reduce (vec::AxpyManySharded), combined in fixed
  /// shard order. Every W is deterministic across thread counts; W = 1 is
  /// bitwise identical to the pre-shard engine, and different W agree up
  /// to float-summation regrouping (see bench_shard_scale). An explicit
  /// `sharded:` state_store spec overrides this knob's store partition.
  int num_shards = 1;
  /// When non-empty, append crash-safe checkpoints of the whole simulation
  /// (θ, RNG streams, history, per-client state, and — in event modes —
  /// the in-flight event queue) to this slab-log file (state/checkpoint.h).
  /// Each checkpoint is a meta..commit record group; a SIGKILL anywhere
  /// replays from the last *committed* group, bit-identically to the
  /// uninterrupted run. Incompatible with uplink/downlink codecs (their
  /// error-feedback residuals are not serialized — the run fails fast).
  std::string checkpoint_path;
  /// Checkpoint cadence: append a group every k-th record (>= 1). The
  /// final record is always checkpointed so a finished run restores as
  /// finished.
  int checkpoint_every = 1;
  /// Resume from the newest committed group in `checkpoint_path`. A
  /// missing file or a file without one committed group starts fresh
  /// (round 0) — the crash-before-first-checkpoint semantic.
  bool restore_from_checkpoint = false;
  /// When non-empty, append one JSON object per RoundRecord to this file
  /// (JSONL): the obs round trace. Purely additive — the training
  /// trajectory is bitwise identical with or without it.
  std::string round_trace_path;
  /// Zero the wall-clock fields in the round trace so two runs of the same
  /// seed produce byte-identical trace files (mirrors the history CSV's
  /// deterministic mode). Simulated-time fields are kept: they ARE
  /// deterministic.
  bool round_trace_deterministic_only = false;
};

/// \brief Optional per-round observer (round index, record) — benches use it
/// to stream convergence paths.
using RoundObserver = std::function<void(const RoundRecord&)>;

/// \brief Runs one federated training session.
class Simulation {
 public:
  /// All pointers are borrowed and must outlive the simulation.
  Simulation(FederatedProblem* problem, FederatedAlgorithm* algorithm,
             ClientSelector* selector, SimulationConfig config);

  /// Executes up to `max_rounds` rounds; returns the history.
  Result<History> Run();

  /// Installs a per-round observer.
  void set_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  /// Attaches a system-heterogeneity model (borrowed, may be nullptr).
  /// When set, every round is timed on the virtual clock
  /// (`RoundRecord::sim_seconds`) and the model's straggler policy may drop
  /// or partially admit updates before aggregation; in the event-driven
  /// modes the policy doubles as the per-event admission predicate. When
  /// unset the sync training trajectory is bitwise identical to a build
  /// without src/sys.
  void set_system_model(const SystemModel* model) { system_model_ = model; }

  /// Attaches an uplink codec (borrowed, may be nullptr): every client
  /// update is encoded to a wire payload, its exact byte size is billed
  /// (`RoundRecord::upload_bytes`, and the virtual clock when a system
  /// model is attached), and the server aggregates the decoded — lossy —
  /// reconstruction. Only updates the straggler policy admits are encoded
  /// (a dropped upload never feeds error-feedback residuals; partial
  /// admissions encode their scaled delta), in deterministic order.
  /// With the identity codec (or none) the trajectory and accounting are
  /// bitwise unchanged.
  void set_uplink_codec(UpdateCodec* codec) { uplink_codec_ = codec; }

  /// Attaches a downlink codec (borrowed, may be nullptr): the server
  /// encodes the θ broadcast once per dispatch wave, clients train on the
  /// decoded broadcast, and per-client download bytes bill the compressed
  /// size (algorithm extras beyond θ — e.g. SCAFFOLD's control variate —
  /// stay uncompressed).
  void set_downlink_codec(UpdateCodec* codec) { downlink_codec_ = codec; }

  /// Attaches a serving frontend (borrowed, may be nullptr): client waves
  /// are collected from the ingest source — wire-protocol sessions — in
  /// place of the in-process executor (fl/ingest.h). Sync mode only;
  /// incompatible with checkpointing and with stochastic or stateful
  /// uplink codecs (the run fails fast otherwise).
  void set_ingest(IngestSource* ingest) { ingest_ = ingest; }

  /// Final global model (valid after Run).
  const std::vector<float>& theta() const { return theta_; }

 private:
  FederatedProblem* problem_;
  FederatedAlgorithm* algorithm_;
  ClientSelector* selector_;
  SimulationConfig config_;
  RoundObserver observer_;
  const SystemModel* system_model_ = nullptr;
  UpdateCodec* uplink_codec_ = nullptr;
  UpdateCodec* downlink_codec_ = nullptr;
  IngestSource* ingest_ = nullptr;
  std::vector<float> theta_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_SIMULATION_H_
