/// \file simulation.h
/// \brief The federated training loop (Fig. 1 / Fig. 2 of the paper).
///
/// Each round: the selector draws S_t, the selected clients run
/// `algorithm->ClientUpdate` in parallel (one worker slot per thread),
/// the server aggregates via `algorithm->ServerUpdate`, communication is
/// accounted, and the global model is evaluated on the test set.

#ifndef FEDADMM_FL_SIMULATION_H_
#define FEDADMM_FL_SIMULATION_H_

#include <functional>
#include <memory>

#include "fl/algorithm.h"
#include "fl/problem.h"
#include "fl/selection.h"
#include "fl/types.h"
#include "sys/system_model.h"
#include "util/thread_pool.h"

namespace fedadmm {

/// \brief Run-level knobs of the simulator.
struct SimulationConfig {
  /// Maximum number of rounds T.
  int max_rounds = 100;
  /// Stop early once test accuracy reaches this value (disabled if <= 0).
  double target_accuracy = -1.0;
  /// Evaluate every k-th round (1 = every round). The final round is always
  /// evaluated.
  int eval_every = 1;
  /// Master seed: drives selection and all per-(round, client) streams.
  uint64_t seed = 1;
  /// Worker threads for the client phase; <= 0 picks
  /// min(hardware_concurrency, clients per round).
  int num_threads = 0;
  /// Emit an INFO log line per evaluated round.
  bool log_rounds = false;
};

/// \brief Optional per-round observer (round index, record) — benches use it
/// to stream convergence paths.
using RoundObserver = std::function<void(const RoundRecord&)>;

/// \brief Runs one federated training session.
class Simulation {
 public:
  /// All pointers are borrowed and must outlive the simulation.
  Simulation(FederatedProblem* problem, FederatedAlgorithm* algorithm,
             ClientSelector* selector, SimulationConfig config);

  /// Executes up to `max_rounds` rounds; returns the history.
  Result<History> Run();

  /// Installs a per-round observer.
  void set_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  /// Attaches a system-heterogeneity model (borrowed, may be nullptr).
  /// When set, every round is timed on the virtual clock
  /// (`RoundRecord::sim_seconds`) and the model's straggler policy may drop
  /// or partially admit updates before aggregation. When unset the training
  /// trajectory is bitwise identical to a build without src/sys.
  void set_system_model(const SystemModel* model) { system_model_ = model; }

  /// Final global model (valid after Run).
  const std::vector<float>& theta() const { return theta_; }

 private:
  FederatedProblem* problem_;
  FederatedAlgorithm* algorithm_;
  ClientSelector* selector_;
  SimulationConfig config_;
  RoundObserver observer_;
  const SystemModel* system_model_ = nullptr;
  std::vector<float> theta_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_SIMULATION_H_
