/// \file comm_pipeline.h
/// \brief The engine's communication stage: codec billing + RNG forking.
///
/// Owns everything the old `Simulation::Run()` inlined about the wire:
/// encoding the θ broadcast (downlink), predicting and encoding client
/// uploads (uplink), and the stream-keyed RNG forks that keep stochastic
/// codecs bitwise reproducible. The fork tags are distinct from the
/// selection (0x5E1EC7), init (0x1417) and client (0xC11E47) tags, so
/// attaching a codec never perturbs the training streams; per-(wave,
/// client) forks keep results independent of thread scheduling, and the
/// per-client wire streams (2·client_id for the primary payload,
/// 2·client_id + 1 for the secondary) give stateful codecs — error
/// feedback — a stable residual slot per logical sender.

#ifndef FEDADMM_FL_COMM_PIPELINE_H_
#define FEDADMM_FL_COMM_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "comm/codec.h"
#include "fl/round_context.h"
#include "fl/types.h"
#include "util/rng.h"

namespace fedadmm {

/// \brief Downlink/uplink codec application with exact byte billing.
class CommPipeline {
 public:
  /// Codecs are borrowed and may be nullptr (that direction is then raw
  /// fp32 and billed at raw size). `master` seeds the codec fork streams.
  CommPipeline(UpdateCodec* uplink, UpdateCodec* downlink, const Rng& master)
      : uplink_(uplink), downlink_(downlink), master_(master) {}

  /// Encodes θ once for `wave` and returns the plan: clients train on the
  /// decoded broadcast and are billed the compressed size; algorithm extras
  /// beyond θ (`extra_bytes_raw` = DownloadBytesPerClient − raw θ bytes,
  /// e.g. SCAFFOLD's control variate) stay uncompressed.
  DownlinkPlan PrepareDownlink(int wave, const std::vector<float>& theta,
                               int64_t download_per_client_raw);

  /// Stamps `wire_bytes` on every message from `WireBytes()` — the exact
  /// upload size without materializing payloads, so admission and the
  /// virtual clock can bill bytes before any encoding happens. An empty
  /// payload vector (e.g. FedPD's non-communication rounds) is no transfer
  /// at all: no header bytes are billed. No-op without an uplink codec
  /// (`wire_bytes` stays -1 = raw fp32).
  void PredictUplinkBytes(std::vector<UpdateMessage>* updates) const;

  /// Encodes one admitted upload and replaces its payload with the decoded
  /// — lossy — reconstruction. Called serially in a deterministic order so
  /// stateful codecs see a stable schedule; the RNG is forked per
  /// (wave, client), so thread count cannot matter. CHECK-fails if the
  /// encoded size disagrees with the `PredictUplinkBytes` stamp. No-op
  /// without an uplink codec.
  void EncodeUplink(int wave, UpdateMessage* msg);

  /// `EncodeUplink` over a batch, in index order (the sync path).
  void EncodeUplinkAll(int wave, std::vector<UpdateMessage>* updates);

  bool has_uplink() const { return uplink_ != nullptr; }
  bool has_downlink() const { return downlink_ != nullptr; }

 private:
  UpdateCodec* uplink_;
  UpdateCodec* downlink_;
  Rng master_;
};

}  // namespace fedadmm

#endif  // FEDADMM_FL_COMM_PIPELINE_H_
