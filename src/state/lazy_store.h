/// \file lazy_store.h
/// \brief Slab-chunked backend: untouched clients cost zero bytes.

#ifndef FEDADMM_STATE_LAZY_STORE_H_
#define FEDADMM_STATE_LAZY_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "state/client_state_store.h"
#include "util/aligned.h"

namespace fedadmm {

/// \brief Materialize-on-first-mutable-touch storage over chunked slabs.
///
/// Per slot, touched clients get a `dim`-float block carved from bump-
/// allocated slabs (~`kTargetSlabBytes` each, never relocated, so spans
/// stay stable for the lifetime of the configuration). `View` of an
/// untouched client returns the slot's shared initial value without
/// materializing anything — under 1% participation and churn that is the
/// overwhelmingly common access, which is why resident bytes track the
/// *touched* population instead of m.
///
/// `bytes_resident()` counts touched blocks (touched (client, slot) pairs ×
/// slot bytes); the open slab's unused tail (< one slab per slot) and the
/// O(m) pointer index are excluded, matching the store-equivalence test's
/// touched-clients × slot-bytes accounting.
class LazyStateStore final : public ClientStateStore {
 public:
  /// Slab granularity: big enough to amortize allocation, small enough
  /// that the open slab's tail stays negligible.
  static constexpr int64_t kTargetSlabBytes = 1 << 20;

  std::string name() const override { return "lazy"; }

  void Configure(int num_clients, std::vector<StateSlotSpec> slots) override;
  std::span<const float> View(int client_id, int slot) const override;
  std::span<float> MutableView(int client_id, int slot) override;
  void Release(int client_id) const override;
  void ForEachTouched(const TouchedStateVisitor& visitor) const override;
  int64_t bytes_resident() const override { return resident_bytes_; }
  int num_touched_clients() const override {
    return static_cast<int>(touched_clients_);
  }

  int num_clients() const override { return num_clients_; }
  int num_slots() const override { return static_cast<int>(slots_.size()); }
  int64_t slot_dim(int slot) const override {
    return slots_[static_cast<size_t>(slot)].dim;
  }

 private:
  struct Slot {
    int64_t dim = 0;
    /// Shared initial value (always `dim` floats; zeros when unspecified).
    std::vector<float> init;
    /// Per-client block pointer; nullptr = untouched.
    std::vector<float*> blocks;
    /// Bump-allocated slabs of `slab_blocks` blocks each. Each slab's base
    /// is 64-byte aligned; moving the outer vector moves only heap
    /// buffers, so carved block pointers stay stable as slabs are added.
    std::vector<AlignedVector<float>> slabs;
    int64_t slab_blocks = 0;
    /// Blocks already carved from the last slab.
    int64_t used_in_slab = 0;
  };

  /// Carves (and initializes) the block for `(client_id, slot)`.
  /// Caller must hold `mutex_` and have checked the block is absent.
  float* Materialize(int client_id, Slot* slot);

  int num_clients_ = 0;
  std::vector<Slot> slots_;
  /// Per-client flag: any slot materialized.
  std::vector<char> client_touched_;
  int64_t touched_clients_ = 0;
  int64_t resident_bytes_ = 0;
  /// Guards slab bookkeeping and the counters during materialization; the
  /// per-client block pointers themselves are only ever written by their
  /// owning client's thread (distinct-client contract).
  std::mutex mutex_;
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_LAZY_STORE_H_
