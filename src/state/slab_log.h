/// \file slab_log.h
/// \brief Append-only, CRC-framed record log — the disk tier's substrate.
///
/// One file, one record grammar, two users:
///
///   * the tiered store (state/tiered_store.h) appends evicted client
///     slabs and faults them back by offset — its in-memory directory maps
///     (client, slot) → the offset this log returned;
///   * the simulation checkpoint (state/checkpoint.h) appends
///     meta + slab + commit record groups; recovery replays the last group
///     whose commit landed.
///
/// Record layout (all little-endian, `util/file_io.h` encoding):
///
///   u32 magic        'SLBG'
///   u8  type         1 = slab, 2 = meta, 3 = commit
///   u32 client       slab records; 0 otherwise
///   u32 slot         slab records; 0 otherwise
///   i64 value        commit: the committed round; meta: free tag; else 0
///   u64 payload_len
///   u32 payload_crc  CRC-32 of the payload bytes
///   u32 header_crc   CRC-32 of the 33 header bytes above
///   ...payload...
///
/// Both CRCs must validate before a record is surfaced; `Scan` stops at
/// the first byte that fails (torn tail from a SIGKILL mid-append, or a
/// flipped bit) and reports the valid prefix length, so a reopened log
/// resumes appending over the garbage instead of replaying it.
///
/// Thread-safety: `Append` calls must be externally serialized; `ReadAt`
/// is safe concurrently with other reads (positional I/O). The tiered
/// store holds its own mutex around both.

#ifndef FEDADMM_STATE_SLAB_LOG_H_
#define FEDADMM_STATE_SLAB_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/file_io.h"
#include "util/status.h"

namespace fedadmm {

/// \brief The CRC-framed record log.
class SlabLog {
 public:
  enum class RecordType : uint8_t { kSlab = 1, kMeta = 2, kCommit = 3 };

  /// One decoded record (header + payload + its file span).
  struct Record {
    RecordType type = RecordType::kSlab;
    int client = 0;
    int slot = 0;
    int64_t value = 0;
    std::string payload;
    /// File offset of the record's first header byte.
    int64_t offset = 0;
  };

  /// Opens `path` (creating it when absent). `truncate` wipes existing
  /// contents — the tiered store's scratch mode. Without `truncate` the
  /// valid prefix is scanned and any torn tail is cut off, so appends
  /// resume exactly after the last intact record — the checkpoint mode.
  static Result<std::unique_ptr<SlabLog>> Open(const std::string& path,
                                               bool truncate);

  /// Appends one record; returns the offset later `ReadAt` calls use.
  Result<int64_t> Append(RecordType type, int client, int slot, int64_t value,
                         std::span<const uint8_t> payload);

  /// `Append` with a float payload stored as raw fp32 bit patterns.
  Result<int64_t> AppendFloats(RecordType type, int client, int slot,
                               std::span<const float> payload);

  /// Reads and validates the record at `offset`; IoError on any mismatch
  /// (bad magic, bad CRC, truncated payload).
  Status ReadAt(int64_t offset, Record* out) const;

  /// Decodes a slab record's payload into `out` (fp32 bit copy); the
  /// payload length must be exactly `out.size()` floats.
  Status ReadFloatsAt(int64_t offset, std::span<float> out) const;

  /// Visits every valid record from the start in file order (visitor may
  /// be null to just measure); returns the end offset of the valid prefix.
  /// A torn or corrupt record stops the scan without an error — that is
  /// the recovery semantic, not a failure.
  Result<int64_t> Scan(const std::function<void(const Record&)>& visitor) const;

  /// Makes all appended records durable (fdatasync).
  Status Sync();

  int64_t end_offset() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }

 private:
  SlabLog() = default;

  /// Reads one record at `offset`; sets `*valid` false (without an error
  /// Status) when the bytes there are not an intact record.
  Status ReadRecord(int64_t offset, Record* out, bool* valid) const;

  RandomAccessFile file_;
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_SLAB_LOG_H_
