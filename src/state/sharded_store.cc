#include "state/sharded_store.h"

#include <algorithm>
#include <utility>

#include "util/shard.h"
#include "util/status.h"

namespace fedadmm {

ShardedStateStore::ShardedStateStore(int num_shards,
                                     const std::string& inner_spec)
    : num_shards_(num_shards), inner_spec_(inner_spec) {
  FEDADMM_CHECK_MSG(num_shards >= 2,
                    "ShardedStateStore: num_shards >= 2 (the factory "
                    "normalizes W = 1 to the inner backend)");
  // Validate the inner spec eagerly — and reject nesting: one partition
  // level is the design, and "sharded:2:sharded:..." would silently break
  // the modulo ownership invariant.
  FEDADMM_CHECK_MSG(inner_spec.rfind("sharded:", 0) != 0,
                    "ShardedStateStore: inner spec must be unsharded");
  auto probe = MakeClientStateStore(inner_spec);
  FEDADMM_CHECK_MSG(probe.ok(), probe.status().ToString());
}

std::string ShardedStateStore::name() const {
  return "sharded:" + std::to_string(num_shards_) + ":" + inner_spec_;
}

void ShardedStateStore::Configure(int num_clients,
                                  std::vector<StateSlotSpec> slots) {
  FEDADMM_CHECK_MSG(num_clients > 0, "ShardedStateStore: num_clients > 0");
  num_clients_ = num_clients;
  num_slots_ = static_cast<int>(slots.size());
  const int active = std::min(num_shards_, num_clients);
  shards_.clear();
  shards_.reserve(static_cast<size_t>(active));
  for (int s = 0; s < active; ++s) {
    // Shard s owns clients {c : c % active == s}: the first
    // (num_clients % active) shards carry one extra client.
    const int local_clients = (num_clients - s + active - 1) / active;
    auto shard = MakeClientStateStore(inner_spec_);
    FEDADMM_CHECK_MSG(shard.ok(), shard.status().ToString());
    shards_.push_back(std::move(shard).ValueOrDie());
    // Identity before geometry: backends with external resources (the
    // tiered store's log segment) need the shard id to disambiguate them
    // before Configure creates anything on disk.
    shards_.back()->SetShardContext(s, active);
    shards_.back()->Configure(local_clients, slots);  // each shard gets a copy
  }
}

int ShardedStateStore::ShardFor(int client_id) const {
  return ShardOfClient(client_id, num_active_shards());
}

int ShardedStateStore::LocalIndex(int client_id) const {
  return client_id / num_active_shards();
}

std::span<const float> ShardedStateStore::View(int client_id,
                                               int slot) const {
  return shards_[static_cast<size_t>(ShardFor(client_id))]->View(
      LocalIndex(client_id), slot);
}

std::span<float> ShardedStateStore::MutableView(int client_id, int slot) {
  return shards_[static_cast<size_t>(ShardFor(client_id))]->MutableView(
      LocalIndex(client_id), slot);
}

void ShardedStateStore::Release(int client_id) const {
  shards_[static_cast<size_t>(ShardFor(client_id))]->Release(
      LocalIndex(client_id));
}

void ShardedStateStore::ForEachTouched(
    const TouchedStateVisitor& visitor) const {
  // Inner stores iterate their own slice in (local, slot) order; the
  // global contract wants (client, slot) order across shards. Buffer every
  // visit (with a copy — inner spans may die at the end of their callback)
  // and replay sorted. local * W + shard is monotone per shard, so a sort
  // of the concatenation restores the global order.
  struct Entry {
    int client = 0;
    int slot = 0;
    std::vector<float> value;
  };
  std::vector<Entry> entries;
  const int active = num_active_shards();
  for (int s = 0; s < active; ++s) {
    shards_[static_cast<size_t>(s)]->ForEachTouched(
        [&entries, s, active](int local, int slot,
                              std::span<const float> value) {
          Entry e;
          e.client = local * active + s;
          e.slot = slot;
          e.value.assign(value.begin(), value.end());
          entries.push_back(std::move(e));
        });
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.client != b.client) return a.client < b.client;
              return a.slot < b.slot;
            });
  for (const Entry& e : entries) {
    visitor(e.client, e.slot, {e.value.data(), e.value.size()});
  }
}

void ShardedStateStore::PrefetchClients(const std::vector<int>& clients,
                                        ThreadPool* pool) {
  const int active = num_active_shards();
  if (active == 0) return;
  std::vector<std::vector<int>> by_shard(static_cast<size_t>(active));
  for (const int client : clients) {
    by_shard[static_cast<size_t>(ShardFor(client))].push_back(
        LocalIndex(client));
  }
  for (int s = 0; s < active; ++s) {
    if (by_shard[static_cast<size_t>(s)].empty()) continue;
    shards_[static_cast<size_t>(s)]->PrefetchClients(
        by_shard[static_cast<size_t>(s)], pool);
  }
}

int64_t ShardedStateStore::bytes_resident() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->bytes_resident();
  return total;
}

int64_t ShardedStateStore::bytes_resident_shard(int shard) const {
  return shards_[static_cast<size_t>(shard)]->bytes_resident();
}

int ShardedStateStore::num_touched_clients() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->num_touched_clients();
  return total;
}

int64_t ShardedStateStore::slot_dim(int slot) const {
  FEDADMM_CHECK_MSG(!shards_.empty(), "ShardedStateStore: not configured");
  return shards_.front()->slot_dim(slot);
}

}  // namespace fedadmm
