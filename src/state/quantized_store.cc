#include "state/quantized_store.h"

#include <cstring>
#include <utility>

#include "comm/identity.h"
#include "comm/quantize.h"
#include "state/store_metrics.h"

namespace fedadmm {

QuantizedStateStore::QuantizedStateStore(int bits) : bits_(bits) {
  FEDADMM_CHECK_MSG((bits >= 1 && bits <= 16) || bits == 32,
                    "QuantizedStateStore: bits in 1..16 or 32");
  if (bits == 32) {
    codec_ = std::make_unique<IdentityCodec>();
  } else {
    codec_ = std::make_unique<UniformQuantCodec>(bits);
  }
}

std::string QuantizedStateStore::name() const {
  return "quantized:" + std::to_string(bits_);
}

void QuantizedStateStore::Configure(int num_clients,
                                    std::vector<StateSlotSpec> specs) {
  FEDADMM_CHECK_MSG(num_clients > 0, "QuantizedStateStore: num_clients > 0");
  num_clients_ = num_clients;
  slots_.clear();
  slots_.reserve(specs.size());
  for (StateSlotSpec& spec : specs) {
    FEDADMM_CHECK_MSG(spec.dim > 0, "QuantizedStateStore: slot dim > 0");
    FEDADMM_CHECK_MSG(
        spec.init.empty() ||
            spec.init.size() == static_cast<size_t>(spec.dim),
        "QuantizedStateStore: init size must match slot dim");
    Slot slot;
    slot.dim = spec.dim;
    slot.init = std::move(spec.init);
    if (slot.init.empty()) {
      slot.init.assign(static_cast<size_t>(spec.dim), 0.0f);
    }
    slot.cold.resize(static_cast<size_t>(num_clients));
    slot.hot.resize(static_cast<size_t>(num_clients));
    slots_.push_back(std::move(slot));
  }
  client_touched_.assign(static_cast<size_t>(num_clients), 0);
  resident_bytes_.store(0, std::memory_order_relaxed);
  touched_clients_.store(0, std::memory_order_relaxed);
}

QuantizedStateStore::Hot* QuantizedStateStore::EnsureHot(int client_id,
                                                         int slot) const {
  Slot& s = slots_[static_cast<size_t>(slot)];
  std::unique_ptr<Hot>& hot = s.hot[static_cast<size_t>(client_id)];
  if (hot == nullptr) {
    const std::unique_ptr<Payload>& cold =
        s.cold[static_cast<size_t>(client_id)];
    auto entry = std::make_unique<Hot>();
    entry->data = cold ? codec_->Decode(*cold) : s.init;
    FEDADMM_CHECK_MSG(
        entry->data.size() == static_cast<size_t>(s.dim),
        "QuantizedStateStore: decoded size mismatch");
    resident_bytes_.fetch_add(
        s.dim * static_cast<int64_t>(sizeof(float)),
        std::memory_order_relaxed);
    hot = std::move(entry);
  }
  return hot.get();
}

std::span<const float> QuantizedStateStore::View(int client_id,
                                                 int slot) const {
  std::lock_guard<std::mutex> lock(StripeFor(client_id));
  const Slot& s = slots_[static_cast<size_t>(slot)];
  if (s.hot[static_cast<size_t>(client_id)] == nullptr &&
      s.cold[static_cast<size_t>(client_id)] == nullptr) {
    // Never touched: read the shared initial value at zero cost.
    return {s.init.data(), static_cast<size_t>(s.dim)};
  }
  const Hot* hot = EnsureHot(client_id, slot);
  return {hot->data.data(), hot->data.size()};
}

std::span<float> QuantizedStateStore::MutableView(int client_id, int slot) {
  state_internal::NoteMutableTouch();
  std::lock_guard<std::mutex> lock(StripeFor(client_id));
  Hot* hot = EnsureHot(client_id, slot);
  hot->dirty = true;
  if (!client_touched_[static_cast<size_t>(client_id)]) {
    client_touched_[static_cast<size_t>(client_id)] = 1;
    touched_clients_.fetch_add(1, std::memory_order_relaxed);
  }
  return {hot->data.data(), hot->data.size()};
}

void QuantizedStateStore::Release(int client_id) const {
  state_internal::NoteRelease();
  std::lock_guard<std::mutex> lock(StripeFor(client_id));
  for (Slot& s : slots_) {
    std::unique_ptr<Hot>& hot = s.hot[static_cast<size_t>(client_id)];
    if (hot == nullptr) continue;
    std::unique_ptr<Payload>& cold = s.cold[static_cast<size_t>(client_id)];
    // `dirty` only means MutableView was handed out, not that bytes
    // changed: a read-modify cycle that writes back unchanged values used
    // to re-quantize on every release. When the hot bytes still equal the
    // cold payload's decode, keeping the payload is exactly lossless (the
    // client observed Decode(cold) and wrote it back verbatim) — so skip
    // the encode and the payload churn. Decode + memcmp is cheaper than
    // the encode's scale scan + grid + pack, needs no idempotence
    // assumption from the codec, and keeps resident accounting still.
    bool persist = hot->dirty;
    if (persist && cold != nullptr) {
      const std::vector<float> prior = codec_->Decode(*cold);
      persist = prior.size() != hot->data.size() ||
                (!prior.empty() &&
                 std::memcmp(prior.data(), hot->data.data(),
                             prior.size() * sizeof(float)) != 0);
    }
    if (persist) {
      // Stream id is informational for the stateless quantizers used here.
      const int64_t stream =
          static_cast<int64_t>(client_id) * num_slots() +
          static_cast<int64_t>(&s - slots_.data());
      Payload packed = codec_->Encode(stream, hot->data, /*rng=*/nullptr);
      int64_t delta = packed.WireBytes();
      if (cold) delta -= cold->WireBytes();
      cold = std::make_unique<Payload>(std::move(packed));
      resident_bytes_.fetch_add(delta, std::memory_order_relaxed);
    }
    resident_bytes_.fetch_sub(
        s.dim * static_cast<int64_t>(sizeof(float)),
        std::memory_order_relaxed);
    hot.reset();
  }
}

void QuantizedStateStore::ForEachTouched(
    const TouchedStateVisitor& visitor) const {
  for (int c = 0; c < num_clients_; ++c) {
    if (!client_touched_[static_cast<size_t>(c)]) continue;
    for (int s = 0; s < num_slots(); ++s) {
      const Slot& slot = slots_[static_cast<size_t>(s)];
      const Hot* hot = slot.hot[static_cast<size_t>(c)].get();
      if (hot != nullptr) {
        visitor(c, s, {hot->data.data(), hot->data.size()});
        continue;
      }
      const Payload* cold = slot.cold[static_cast<size_t>(c)].get();
      if (cold == nullptr) continue;
      // Decode into a temporary: the span is only valid for the visit.
      const std::vector<float> decoded = codec_->Decode(*cold);
      visitor(c, s, {decoded.data(), decoded.size()});
    }
  }
}

}  // namespace fedadmm
