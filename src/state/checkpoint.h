/// \file checkpoint.h
/// \brief Crash-safe simulation checkpoints over the slab log.
///
/// A checkpoint is one record *group* appended to a `SlabLog`:
///
///   kMeta   (value = round, payload = opaque engine blob)
///   kSlab*  (one per touched (client, slot), payload = raw fp32 slab)
///   kCommit (value = round)
///
/// The commit record is the transaction boundary: recovery scans the whole
/// file and keeps the *last* group whose commit landed with a matching
/// round, so a SIGKILL anywhere — mid-meta, mid-slab, even mid-commit —
/// degrades to "resume from the previous checkpoint", never to reading a
/// half-written state. The log is append-only; successive checkpoints of
/// the same run stack in one file and recovery always picks the newest
/// committed one.
///
/// The engine blob is opaque here: `fl/server_loop.cc` packs whatever its
/// mode needs (theta, RNG streams, history, algorithm extras, the event
/// queue) with `util/file_io.h` and hands the bytes down. This layer owns
/// only the store contents and the commit protocol.

#ifndef FEDADMM_STATE_CHECKPOINT_H_
#define FEDADMM_STATE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "state/client_state_store.h"
#include "state/slab_log.h"
#include "util/status.h"

namespace fedadmm {

/// \brief One recovered checkpoint group.
struct SimulationCheckpoint {
  /// The committed round (rounds completed when the group was written).
  int64_t round = 0;
  /// The engine's opaque state blob (the kMeta payload).
  std::string engine_blob;

  /// One persisted store slab.
  struct Slab {
    int client = 0;
    int slot = 0;
    std::vector<float> value;
  };
  /// Touched store contents in increasing (client, slot) order.
  std::vector<Slab> slabs;
};

/// \brief Appends one committed checkpoint group for `round` and syncs.
/// `store` may be null (stateless algorithms checkpoint zero slabs).
Status AppendSimulationCheckpoint(SlabLog* log, int64_t round,
                                  const std::string& engine_blob,
                                  const ClientStateStore* store);

/// \brief Scans `path` and returns the newest complete group. NotFound
/// when the file is missing, empty, or holds no committed group (torn or
/// corrupt tails are silently skipped — that is the recovery semantic).
Result<SimulationCheckpoint> LoadLatestSimulationCheckpoint(
    const std::string& path);

/// \brief Copies `checkpoint.slabs` into a Configure-d `store` (geometry
/// must match: InvalidArgument on client/slot/dim out of range).
Status RestoreStoreContents(const SimulationCheckpoint& checkpoint,
                            ClientStateStore* store);

}  // namespace fedadmm

#endif  // FEDADMM_STATE_CHECKPOINT_H_
