/// \file buffer_pool.h
/// \brief Fixed-capacity frame pool with pinning and second-chance
/// eviction.
///
/// The memory half of the tiered store: every (client, slot) slab lives in
/// at most one *frame* of `frame_floats` floats, keyed by a caller-chosen
/// u64. `Pin` returns the frame resident — faulting is the caller's job on
/// a miss (the pool hands out the frame, the tiered store fills it from
/// the slab log) — and pins it against eviction until `Unpin`.
///
/// Eviction is second-chance (clock): a hit sets the frame's reference
/// bit; the hand clears set bits and evicts the first unpinned,
/// unreferenced frame it meets. Dirty victims are handed to the write-back
/// callback (the tiered store appends them to its log and updates the
/// directory) before the frame is recycled.
///
/// Pins may temporarily exceed capacity: when every frame is pinned the
/// pool allocates *overflow* frames rather than deadlocking the wave that
/// needs them (a cohort larger than the pool, or a diagnostics pass
/// viewing the whole fleet). `Unpin` trims back — overflow frames release
/// their buffers once evictable — so `resident_bytes` returns to
/// `capacity_frames × frame_bytes` as soon as the pressure passes.
///
/// Not thread-safe: the tiered store serializes all calls under its own
/// mutex (the write-back callback runs under that same lock).

#ifndef FEDADMM_STATE_BUFFER_POOL_H_
#define FEDADMM_STATE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/aligned.h"

namespace fedadmm {

/// \brief The frame pool. See the file comment for semantics.
class BufferPool {
 public:
  /// One resident slab. `data` holds `frame_floats` capacity; the caller
  /// tracks how many are meaningful (slot dims vary).
  struct Frame {
    AlignedVector<float> data;
    uint64_t key = 0;
    bool pinned = false;
    bool dirty = false;
    bool referenced = false;
  };

  /// Receives an evicted dirty slab before its frame is recycled.
  using WriteBack =
      std::function<void(uint64_t key, std::span<const float> data)>;

  /// `capacity_frames >= 1`; `frame_floats >= 1`. `write_back` may be null
  /// (dirty evictions are then dropped — only sound for caches of
  /// reconstructible data).
  BufferPool(int64_t capacity_frames, int64_t frame_floats,
             WriteBack write_back);

  /// Returns `key`'s frame, pinned. `*hit` reports whether it was already
  /// resident; on a miss the returned frame's contents are undefined and
  /// the caller must fill them. Idempotent on an already-pinned key.
  Frame* Pin(uint64_t key, bool* hit);

  /// Returns `key`'s frame *unpinned* (prefetch admission): resident on
  /// return but evictable at any time. Same miss semantics as `Pin`.
  Frame* Admit(uint64_t key, bool* hit);

  /// The resident frame for `key`, or nullptr. Sets the reference bit.
  Frame* Find(uint64_t key);

  /// Unpins `key`'s frame (no-op when absent or unpinned); `dirty` ORs
  /// into the frame's dirty bit. Trims overflow frames back to capacity.
  void Unpin(uint64_t key, bool dirty);

  /// Evicts `key` immediately if resident and unpinned (write-back applies).
  void Evict(uint64_t key);

  /// Drops every frame and counter (Configure-time wipe). No write-back.
  void Clear();

  /// Frames currently holding a slab (<= capacity once no overflow pins
  /// are outstanding).
  int64_t resident_frames() const { return resident_frames_; }
  int64_t capacity_frames() const { return capacity_frames_; }
  int64_t frame_floats() const { return frame_floats_; }
  int64_t frame_bytes() const {
    return frame_floats_ * static_cast<int64_t>(sizeof(float));
  }
  /// `resident_frames × frame_bytes` — the store's byte accounting.
  int64_t resident_bytes() const { return resident_frames_ * frame_bytes(); }

  // Lifetime counters (reset by Clear).
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t write_backs() const { return write_backs_; }

 private:
  /// Hands back a frame for a missing key: a free frame, an eviction
  /// victim, or a fresh overflow frame.
  size_t AcquireFrame();
  /// Runs the clock hand; returns the victim index or SIZE_MAX when every
  /// frame is pinned.
  size_t FindVictim();
  /// Writes back (if dirty) and detaches `index` from the map.
  void EvictIndex(size_t index);
  /// Releases overflow buffers while more than `capacity_frames_` frames
  /// hold data and evictable frames exist.
  void TrimOverflow();

  int64_t capacity_frames_;
  int64_t frame_floats_;
  WriteBack write_back_;

  // unique_ptr keeps Frame* stable across overflow growth of the vector.
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<size_t> free_;
  std::unordered_map<uint64_t, size_t> map_;
  size_t clock_hand_ = 0;
  int64_t resident_frames_ = 0;

  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t write_backs_ = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_BUFFER_POOL_H_
