#include "state/dense_store.h"

#include <cstring>

#include "state/store_metrics.h"

namespace fedadmm {

void DenseStateStore::Configure(int num_clients,
                                std::vector<StateSlotSpec> specs) {
  FEDADMM_CHECK_MSG(num_clients > 0, "DenseStateStore: num_clients > 0");
  num_clients_ = num_clients;
  slots_.clear();
  slots_.reserve(specs.size());
  for (StateSlotSpec& spec : specs) {
    FEDADMM_CHECK_MSG(spec.dim > 0, "DenseStateStore: slot dim > 0");
    FEDADMM_CHECK_MSG(
        spec.init.empty() ||
            spec.init.size() == static_cast<size_t>(spec.dim),
        "DenseStateStore: init size must match slot dim");
    Slot slot;
    slot.dim = spec.dim;
    const size_t dim = static_cast<size_t>(spec.dim);
    slot.arena.assign(static_cast<size_t>(num_clients) * dim, 0.0f);
    FEDADMM_CHECK_MSG(IsAligned(slot.arena.data()),
                      "DenseStateStore: arena not 64-byte aligned");
    if (!spec.init.empty()) {
      for (int c = 0; c < num_clients; ++c) {
        std::memcpy(slot.arena.data() + static_cast<size_t>(c) * dim,
                    spec.init.data(), dim * sizeof(float));
      }
    }
    slots_.push_back(std::move(slot));
  }
}

std::span<const float> DenseStateStore::View(int client_id, int slot) const {
  const Slot& s = slots_[static_cast<size_t>(slot)];
  return {s.arena.data() +
              static_cast<size_t>(client_id) * static_cast<size_t>(s.dim),
          static_cast<size_t>(s.dim)};
}

std::span<float> DenseStateStore::MutableView(int client_id, int slot) {
  state_internal::NoteMutableTouch();
  Slot& s = slots_[static_cast<size_t>(slot)];
  return {s.arena.data() +
              static_cast<size_t>(client_id) * static_cast<size_t>(s.dim),
          static_cast<size_t>(s.dim)};
}

void DenseStateStore::Release(int client_id) const {
  (void)client_id;
  state_internal::NoteRelease();
}

void DenseStateStore::ForEachTouched(
    const TouchedStateVisitor& visitor) const {
  for (int c = 0; c < num_clients_; ++c) {
    for (int s = 0; s < num_slots(); ++s) {
      visitor(c, s, View(c, s));
    }
  }
}

int64_t DenseStateStore::bytes_resident() const {
  int64_t bytes = 0;
  for (const Slot& s : slots_) {
    bytes += static_cast<int64_t>(s.arena.size()) *
             static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace fedadmm
