#include "state/client_state_store.h"

#include <cstdlib>

#include "state/dense_store.h"
#include "state/lazy_store.h"
#include "state/quantized_store.h"
#include "state/sharded_store.h"

namespace fedadmm {
namespace {

constexpr char kQuantizedPrefix[] = "quantized:";
constexpr char kShardedPrefix[] = "sharded:";

}  // namespace

Result<std::unique_ptr<ClientStateStore>> MakeClientStateStore(
    const std::string& spec) {
  if (spec == "dense") return {std::make_unique<DenseStateStore>()};
  if (spec == "lazy") return {std::make_unique<LazyStateStore>()};
  if (spec.rfind(kQuantizedPrefix, 0) == 0) {
    const std::string arg = spec.substr(sizeof(kQuantizedPrefix) - 1);
    char* end = nullptr;
    const long bits = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0' ||
        !((bits >= 1 && bits <= 16) || bits == 32)) {
      return Status::InvalidArgument(
          "MakeClientStateStore: bad quantized bits '" + arg +
          "' (want 1..16 or 32)");
    }
    return {std::make_unique<QuantizedStateStore>(static_cast<int>(bits))};
  }
  if (spec.rfind(kShardedPrefix, 0) == 0) {
    const std::string arg = spec.substr(sizeof(kShardedPrefix) - 1);
    const size_t colon = arg.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "MakeClientStateStore: want sharded:<W>:<inner spec>, got '" +
          spec + "'");
    }
    const std::string count = arg.substr(0, colon);
    const std::string inner = arg.substr(colon + 1);
    char* end = nullptr;
    const long shards = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || shards < 1) {
      return Status::InvalidArgument(
          "MakeClientStateStore: bad shard count '" + count + "' (want >= 1)");
    }
    if (inner.rfind(kShardedPrefix, 0) == 0) {
      return Status::InvalidArgument(
          "MakeClientStateStore: sharded specs do not nest ('" + spec + "')");
    }
    // Validate the inner spec through the same factory so error text stays
    // uniform; W = 1 then *is* the inner store — one partition of
    // everything, bitwise the unsharded backend.
    FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<ClientStateStore> probe,
                             MakeClientStateStore(inner));
    if (shards == 1) return {std::move(probe)};
    return {std::make_unique<ShardedStateStore>(static_cast<int>(shards),
                                                inner)};
  }
  return Status::InvalidArgument(
      "MakeClientStateStore: unknown spec '" + spec +
      "' (want dense | lazy | quantized:<bits> | sharded:<W>:<inner>)");
}

Result<std::unique_ptr<ClientStateStore>> MakeConfiguredClientStateStore(
    const std::string& override_spec, const std::string& fallback_spec,
    int num_clients, std::vector<StateSlotSpec> slots, int num_shards) {
  std::string spec = override_spec.empty() ? fallback_spec : override_spec;
  // The engine's num_shards partitions whatever backend was chosen, but an
  // explicit sharded: spec keeps its own W.
  if (num_shards > 1 && spec.rfind(kShardedPrefix, 0) != 0) {
    spec = std::string(kShardedPrefix) + std::to_string(num_shards) + ":" +
           spec;
  }
  FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<ClientStateStore> store,
                           MakeClientStateStore(spec));
  store->Configure(num_clients, std::move(slots));
  return {std::move(store)};
}

const std::vector<std::string>& ClientStateStoreExampleSpecs() {
  static const std::vector<std::string>* const kSpecs =
      new std::vector<std::string>(
          {"dense", "lazy", "quantized:8", "quantized:32", "sharded:4:lazy"});
  return *kSpecs;
}

}  // namespace fedadmm
