#include "state/client_state_store.h"

#include <cstdlib>

#include "state/dense_store.h"
#include "state/lazy_store.h"
#include "state/quantized_store.h"
#include "state/sharded_store.h"
#include "state/tiered_store.h"

namespace fedadmm {
namespace {

constexpr char kQuantizedPrefix[] = "quantized:";
constexpr char kShardedPrefix[] = "sharded:";
constexpr char kTieredPrefix[] = "tiered:";

// The one grammar string every factory error quotes, so a bad spec always
// tells the caller both what it said and what would have parsed.
constexpr char kSpecGrammar[] =
    "dense | lazy | quantized:<bits 1..16|32> | "
    "tiered:<capacity_mb|<n>f>:<path>[:dense] | sharded:<W>:<inner>";

Status SpecError(const std::string& spec, const std::string& why) {
  return Status::InvalidArgument("MakeClientStateStore: " + why +
                                 " in spec '" + spec +
                                 "' (accepted: " + kSpecGrammar + ")");
}

// Parses the tiered capacity token: "<n>" = n MiB of pool, "<n>f" = exactly
// n frames (the test hook — MiB granularity is useless at toy dims).
bool ParseCapacityToken(const std::string& token, TieredStoreOptions* out) {
  std::string digits = token;
  bool frames = false;
  if (!digits.empty() && digits.back() == 'f') {
    frames = true;
    digits.pop_back();
  }
  char* end = nullptr;
  const long long n = std::strtoll(digits.c_str(), &end, 10);
  if (digits.empty() || end == nullptr || *end != '\0' || n < 1) return false;
  out->capacity_token = token;
  if (frames) {
    out->capacity_frames = static_cast<int64_t>(n);
  } else {
    out->capacity_bytes = static_cast<int64_t>(n) * (int64_t{1} << 20);
  }
  return true;
}

Result<std::unique_ptr<ClientStateStore>> MakeTieredStore(
    const std::string& spec) {
  const std::string arg = spec.substr(sizeof(kTieredPrefix) - 1);
  const size_t colon = arg.find(':');
  if (colon == std::string::npos) {
    return SpecError(spec, "tiered needs a capacity and a path");
  }
  TieredStoreOptions options;
  if (!ParseCapacityToken(arg.substr(0, colon), &options)) {
    return SpecError(spec, "bad tiered capacity '" + arg.substr(0, colon) +
                               "' (want MiB >= 1, or '<n>f' frames)");
  }
  std::string rest = arg.substr(colon + 1);
  // Only the raw-fp32 inner exists: slabs must round-trip bitwise through
  // the log, which a codec inner cannot promise. The ":dense" suffix is
  // accepted and normalized away (short form is canonical in name()).
  constexpr char kDenseSuffix[] = ":dense";
  const size_t suffix_len = sizeof(kDenseSuffix) - 1;
  if (rest.size() > suffix_len &&
      rest.compare(rest.size() - suffix_len, suffix_len, kDenseSuffix) == 0) {
    rest.resize(rest.size() - suffix_len);
  } else {
    const size_t tail_colon = rest.rfind(':');
    const std::string tail =
        tail_colon == std::string::npos ? "" : rest.substr(tail_colon + 1);
    if (tail == "lazy" || rest.find(":quantized:") != std::string::npos ||
        rest.find(":tiered:") != std::string::npos ||
        rest.find(":sharded:") != std::string::npos) {
      return SpecError(spec,
                       "tiered inner must be dense (slabs are raw fp32; "
                       "codec inners cannot replay bitwise)");
    }
  }
  if (rest.empty()) {
    return SpecError(spec, "tiered needs a non-empty slab-log path");
  }
  options.path = rest;
  return {std::make_unique<TieredStateStore>(std::move(options))};
}

}  // namespace

Result<std::unique_ptr<ClientStateStore>> MakeClientStateStore(
    const std::string& spec) {
  if (spec == "dense") return {std::make_unique<DenseStateStore>()};
  if (spec == "lazy") return {std::make_unique<LazyStateStore>()};
  if (spec.rfind(kQuantizedPrefix, 0) == 0) {
    const std::string arg = spec.substr(sizeof(kQuantizedPrefix) - 1);
    char* end = nullptr;
    const long bits = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0' ||
        !((bits >= 1 && bits <= 16) || bits == 32)) {
      return SpecError(spec, "bad quantized bits '" + arg +
                                 "' (want 1..16 or 32)");
    }
    return {std::make_unique<QuantizedStateStore>(static_cast<int>(bits))};
  }
  if (spec.rfind(kTieredPrefix, 0) == 0) return MakeTieredStore(spec);
  if (spec.rfind(kShardedPrefix, 0) == 0) {
    const std::string arg = spec.substr(sizeof(kShardedPrefix) - 1);
    const size_t colon = arg.find(':');
    if (colon == std::string::npos) {
      return SpecError(spec, "sharded needs a worker count and an inner spec");
    }
    const std::string count = arg.substr(0, colon);
    const std::string inner = arg.substr(colon + 1);
    char* end = nullptr;
    const long shards = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || shards < 1) {
      return SpecError(spec, "bad shard count '" + count + "' (want >= 1)");
    }
    if (inner.rfind(kShardedPrefix, 0) == 0) {
      return SpecError(spec, "sharded specs do not nest");
    }
    // Validate the inner spec through the same factory so error text stays
    // uniform; W = 1 then *is* the inner store — one partition of
    // everything, bitwise the unsharded backend.
    FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<ClientStateStore> probe,
                             MakeClientStateStore(inner));
    if (shards == 1) return {std::move(probe)};
    return {std::make_unique<ShardedStateStore>(static_cast<int>(shards),
                                                inner)};
  }
  return SpecError(spec, "unknown spec");
}

Result<std::unique_ptr<ClientStateStore>> MakeConfiguredClientStateStore(
    const std::string& override_spec, const std::string& fallback_spec,
    int num_clients, std::vector<StateSlotSpec> slots, int num_shards) {
  std::string spec = override_spec.empty() ? fallback_spec : override_spec;
  // The engine's num_shards partitions whatever backend was chosen, but an
  // explicit sharded: spec keeps its own W.
  if (num_shards > 1 && spec.rfind(kShardedPrefix, 0) != 0) {
    spec = std::string(kShardedPrefix) + std::to_string(num_shards) + ":" +
           spec;
  }
  FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<ClientStateStore> store,
                           MakeClientStateStore(spec));
  store->Configure(num_clients, std::move(slots));
  return {std::move(store)};
}

const std::vector<std::string>& ClientStateStoreExampleSpecs() {
  static const std::vector<std::string>* const kSpecs =
      new std::vector<std::string>(
          {"dense", "lazy", "quantized:8", "quantized:32",
           "tiered:64:/tmp/fedadmm_state.slab", "sharded:4:lazy"});
  return *kSpecs;
}

}  // namespace fedadmm
