#include "state/client_state_store.h"

#include <cstdlib>

#include "state/dense_store.h"
#include "state/lazy_store.h"
#include "state/quantized_store.h"

namespace fedadmm {
namespace {

constexpr char kQuantizedPrefix[] = "quantized:";

}  // namespace

Result<std::unique_ptr<ClientStateStore>> MakeClientStateStore(
    const std::string& spec) {
  if (spec == "dense") return {std::make_unique<DenseStateStore>()};
  if (spec == "lazy") return {std::make_unique<LazyStateStore>()};
  if (spec.rfind(kQuantizedPrefix, 0) == 0) {
    const std::string arg = spec.substr(sizeof(kQuantizedPrefix) - 1);
    char* end = nullptr;
    const long bits = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0' ||
        !((bits >= 1 && bits <= 16) || bits == 32)) {
      return Status::InvalidArgument(
          "MakeClientStateStore: bad quantized bits '" + arg +
          "' (want 1..16 or 32)");
    }
    return {std::make_unique<QuantizedStateStore>(static_cast<int>(bits))};
  }
  return Status::InvalidArgument(
      "MakeClientStateStore: unknown spec '" + spec +
      "' (want dense | lazy | quantized:<bits>)");
}

Result<std::unique_ptr<ClientStateStore>> MakeConfiguredClientStateStore(
    const std::string& override_spec, const std::string& fallback_spec,
    int num_clients, std::vector<StateSlotSpec> slots) {
  const std::string& spec =
      override_spec.empty() ? fallback_spec : override_spec;
  FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<ClientStateStore> store,
                           MakeClientStateStore(spec));
  store->Configure(num_clients, std::move(slots));
  return {std::move(store)};
}

const std::vector<std::string>& ClientStateStoreExampleSpecs() {
  static const std::vector<std::string>* const kSpecs =
      new std::vector<std::string>(
          {"dense", "lazy", "quantized:8", "quantized:32"});
  return *kSpecs;
}

}  // namespace fedadmm
