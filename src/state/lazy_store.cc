#include "state/lazy_store.h"

#include <algorithm>
#include <cstring>

#include "state/store_metrics.h"

namespace fedadmm {

void LazyStateStore::Configure(int num_clients,
                               std::vector<StateSlotSpec> specs) {
  FEDADMM_CHECK_MSG(num_clients > 0, "LazyStateStore: num_clients > 0");
  num_clients_ = num_clients;
  slots_.clear();
  slots_.reserve(specs.size());
  for (StateSlotSpec& spec : specs) {
    FEDADMM_CHECK_MSG(spec.dim > 0, "LazyStateStore: slot dim > 0");
    FEDADMM_CHECK_MSG(
        spec.init.empty() ||
            spec.init.size() == static_cast<size_t>(spec.dim),
        "LazyStateStore: init size must match slot dim");
    Slot slot;
    slot.dim = spec.dim;
    slot.init = std::move(spec.init);
    if (slot.init.empty()) {
      slot.init.assign(static_cast<size_t>(spec.dim), 0.0f);
    }
    slot.blocks.assign(static_cast<size_t>(num_clients), nullptr);
    slot.slab_blocks = std::max<int64_t>(
        1, kTargetSlabBytes /
               (spec.dim * static_cast<int64_t>(sizeof(float))));
    slot.used_in_slab = slot.slab_blocks;  // force a slab on first touch
    slots_.push_back(std::move(slot));
  }
  client_touched_.assign(static_cast<size_t>(num_clients), 0);
  touched_clients_ = 0;
  resident_bytes_ = 0;
}

float* LazyStateStore::Materialize(int client_id, Slot* slot) {
  if (slot->used_in_slab == slot->slab_blocks) {
    slot->slabs.emplace_back(
        static_cast<size_t>(slot->slab_blocks * slot->dim), 0.0f);
    FEDADMM_CHECK_MSG(IsAligned(slot->slabs.back().data()),
                      "LazyStateStore: slab not 64-byte aligned");
    slot->used_in_slab = 0;
  }
  float* block = slot->slabs.back().data() +
                 static_cast<size_t>(slot->used_in_slab * slot->dim);
  ++slot->used_in_slab;
  std::memcpy(block, slot->init.data(),
              static_cast<size_t>(slot->dim) * sizeof(float));
  resident_bytes_ += slot->dim * static_cast<int64_t>(sizeof(float));
  if (!client_touched_[static_cast<size_t>(client_id)]) {
    client_touched_[static_cast<size_t>(client_id)] = 1;
    ++touched_clients_;
  }
  return block;
}

std::span<const float> LazyStateStore::View(int client_id, int slot) const {
  const Slot& s = slots_[static_cast<size_t>(slot)];
  const float* block = s.blocks[static_cast<size_t>(client_id)];
  if (block == nullptr) {
    return {s.init.data(), static_cast<size_t>(s.dim)};
  }
  return {block, static_cast<size_t>(s.dim)};
}

std::span<float> LazyStateStore::MutableView(int client_id, int slot) {
  state_internal::NoteMutableTouch();
  Slot& s = slots_[static_cast<size_t>(slot)];
  float*& entry = s.blocks[static_cast<size_t>(client_id)];
  if (entry == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    // No double-check needed: only this client's (serial) calls write its
    // entry, so it cannot have appeared since the unlocked read.
    entry = Materialize(client_id, &s);
  }
  return {entry, static_cast<size_t>(s.dim)};
}

void LazyStateStore::Release(int client_id) const {
  (void)client_id;
  state_internal::NoteRelease();
}

void LazyStateStore::ForEachTouched(const TouchedStateVisitor& visitor) const {
  for (int c = 0; c < num_clients_; ++c) {
    if (!client_touched_[static_cast<size_t>(c)]) continue;
    for (int s = 0; s < num_slots(); ++s) {
      const Slot& slot = slots_[static_cast<size_t>(s)];
      const float* block = slot.blocks[static_cast<size_t>(c)];
      if (block == nullptr) continue;
      visitor(c, s, {block, static_cast<size_t>(slot.dim)});
    }
  }
}

}  // namespace fedadmm
