#include "state/slab_log.h"

#include <cstring>
#include <utility>

namespace fedadmm {
namespace {

constexpr uint32_t kMagic = 0x47424C53u;  // 'SLBG' little-endian
// magic(4) + type(1) + client(4) + slot(4) + value(8) + payload_len(8) +
// payload_crc(4); the trailing header_crc(4) covers these 33 bytes.
constexpr size_t kHeaderBody = 33;
constexpr size_t kHeaderSize = kHeaderBody + 4;

bool ValidType(uint8_t type) {
  return type >= static_cast<uint8_t>(SlabLog::RecordType::kSlab) &&
         type <= static_cast<uint8_t>(SlabLog::RecordType::kCommit);
}

}  // namespace

Result<std::unique_ptr<SlabLog>> SlabLog::Open(const std::string& path,
                                               bool truncate) {
  std::unique_ptr<SlabLog> log(new SlabLog());
  FEDADMM_RETURN_IF_ERROR(log->file_.Open(path, truncate));
  if (!truncate && log->file_.size() > 0) {
    // Recovery: find the valid prefix and drop any torn tail so the next
    // append lands right after the last intact record.
    FEDADMM_ASSIGN_OR_RETURN(int64_t valid_end, log->Scan(nullptr));
    if (valid_end < log->file_.size()) {
      FEDADMM_RETURN_IF_ERROR(log->file_.Truncate(valid_end));
    }
  }
  return log;
}

Result<int64_t> SlabLog::Append(RecordType type, int client, int slot,
                                int64_t value,
                                std::span<const uint8_t> payload) {
  ByteWriter header;
  header.U32(kMagic);
  header.U8(static_cast<uint8_t>(type));
  header.U32(static_cast<uint32_t>(client));
  header.U32(static_cast<uint32_t>(slot));
  header.I64(value);
  header.U64(payload.size());
  header.U32(Crc32(payload.data(), payload.size()));
  header.U32(Crc32(header.str().data(), header.size()));
  int64_t offset = 0;
  FEDADMM_RETURN_IF_ERROR(
      file_.Append(header.str().data(), header.size(), &offset));
  if (!payload.empty()) {
    FEDADMM_RETURN_IF_ERROR(file_.Append(payload.data(), payload.size()));
  }
  return offset;
}

Result<int64_t> SlabLog::AppendFloats(RecordType type, int client, int slot,
                                      std::span<const float> payload) {
  return Append(type, client, slot, /*value=*/0,
                {reinterpret_cast<const uint8_t*>(payload.data()),
                 payload.size() * sizeof(float)});
}

Status SlabLog::ReadRecord(int64_t offset, Record* out, bool* valid) const {
  *valid = false;
  if (offset < 0 || offset + static_cast<int64_t>(kHeaderSize) >
                        file_.size()) {
    return Status::OK();  // past the end: not a record, not an I/O error
  }
  uint8_t header[kHeaderSize];
  FEDADMM_RETURN_IF_ERROR(file_.ReadAt(offset, header, kHeaderSize));
  ByteReader reader(
      std::string_view(reinterpret_cast<const char*>(header), kHeaderSize));
  FEDADMM_ASSIGN_OR_RETURN(uint32_t magic, reader.U32());
  FEDADMM_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t client, reader.U32());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t slot, reader.U32());
  FEDADMM_ASSIGN_OR_RETURN(int64_t value, reader.I64());
  FEDADMM_ASSIGN_OR_RETURN(uint64_t payload_len, reader.U64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t payload_crc, reader.U32());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t header_crc, reader.U32());
  if (magic != kMagic || !ValidType(type) ||
      header_crc != Crc32(header, kHeaderBody)) {
    return Status::OK();
  }
  const int64_t payload_end =
      offset + static_cast<int64_t>(kHeaderSize + payload_len);
  if (payload_end > file_.size()) return Status::OK();  // torn payload
  std::string payload(payload_len, '\0');
  if (payload_len > 0) {
    FEDADMM_RETURN_IF_ERROR(file_.ReadAt(
        offset + static_cast<int64_t>(kHeaderSize), payload.data(),
        payload_len));
  }
  if (payload_crc != Crc32(payload.data(), payload.size())) {
    return Status::OK();
  }
  out->type = static_cast<RecordType>(type);
  out->client = static_cast<int>(client);
  out->slot = static_cast<int>(slot);
  out->value = value;
  out->payload = std::move(payload);
  out->offset = offset;
  *valid = true;
  return Status::OK();
}

Status SlabLog::ReadAt(int64_t offset, Record* out) const {
  bool valid = false;
  FEDADMM_RETURN_IF_ERROR(ReadRecord(offset, out, &valid));
  if (!valid) {
    return Status::IoError("SlabLog: no valid record at offset " +
                           std::to_string(offset) + " in '" + path() + "'");
  }
  return Status::OK();
}

Status SlabLog::ReadFloatsAt(int64_t offset, std::span<float> out) const {
  Record record;
  FEDADMM_RETURN_IF_ERROR(ReadAt(offset, &record));
  if (record.payload.size() != out.size() * sizeof(float)) {
    return Status::IoError(
        "SlabLog: slab payload at offset " + std::to_string(offset) +
        " holds " + std::to_string(record.payload.size() / sizeof(float)) +
        " floats, want " + std::to_string(out.size()));
  }
  std::memcpy(out.data(), record.payload.data(), record.payload.size());
  return Status::OK();
}

Result<int64_t> SlabLog::Scan(
    const std::function<void(const Record&)>& visitor) const {
  int64_t offset = 0;
  Record record;
  while (true) {
    bool valid = false;
    FEDADMM_RETURN_IF_ERROR(ReadRecord(offset, &record, &valid));
    if (!valid) break;
    offset += static_cast<int64_t>(kHeaderSize + record.payload.size());
    if (visitor) visitor(record);
  }
  return offset;
}

Status SlabLog::Sync() { return file_.Sync(); }

}  // namespace fedadmm
