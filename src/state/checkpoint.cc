#include "state/checkpoint.h"

#include <cstring>
#include <utility>

namespace fedadmm {

Status AppendSimulationCheckpoint(SlabLog* log, int64_t round,
                                  const std::string& engine_blob,
                                  const ClientStateStore* store) {
  FEDADMM_CHECK_MSG(log != nullptr, "AppendSimulationCheckpoint: null log");
  const std::span<const uint8_t> meta_bytes{
      reinterpret_cast<const uint8_t*>(engine_blob.data()),
      engine_blob.size()};
  FEDADMM_RETURN_IF_ERROR(
      log->Append(SlabLog::RecordType::kMeta, 0, 0, round, meta_bytes)
          .status());
  Status slab_status = Status::OK();
  if (store != nullptr) {
    store->ForEachTouched([log, &slab_status](int client, int slot,
                                              std::span<const float> value) {
      if (!slab_status.ok()) return;
      slab_status = log->AppendFloats(SlabLog::RecordType::kSlab, client,
                                      slot, value)
                        .status();
    });
  }
  FEDADMM_RETURN_IF_ERROR(slab_status);
  FEDADMM_RETURN_IF_ERROR(
      log->Append(SlabLog::RecordType::kCommit, 0, 0, round, {}).status());
  return log->Sync();
}

Result<SimulationCheckpoint> LoadLatestSimulationCheckpoint(
    const std::string& path) {
  FEDADMM_ASSIGN_OR_RETURN(std::unique_ptr<SlabLog> log,
                           SlabLog::Open(path, /*truncate=*/false));
  SimulationCheckpoint latest;
  bool have_latest = false;
  SimulationCheckpoint pending;
  bool in_group = false;
  bool group_ok = true;
  FEDADMM_RETURN_IF_ERROR(
      log->Scan([&](const SlabLog::Record& record) {
           switch (record.type) {
             case SlabLog::RecordType::kMeta:
               pending = SimulationCheckpoint();
               pending.round = record.value;
               pending.engine_blob = record.payload;
               in_group = true;
               group_ok = true;
               break;
             case SlabLog::RecordType::kSlab: {
               if (!in_group) break;
               if (record.payload.size() % sizeof(float) != 0) {
                 group_ok = false;
                 break;
               }
               SimulationCheckpoint::Slab slab;
               slab.client = record.client;
               slab.slot = record.slot;
               slab.value.resize(record.payload.size() / sizeof(float));
               std::memcpy(slab.value.data(), record.payload.data(),
                           record.payload.size());
               pending.slabs.push_back(std::move(slab));
               break;
             }
             case SlabLog::RecordType::kCommit:
               if (in_group && group_ok && record.value == pending.round) {
                 latest = std::move(pending);
                 have_latest = true;
               }
               in_group = false;
               break;
           }
         })
          .status());
  if (!have_latest) {
    return Status::NotFound(
        "LoadLatestSimulationCheckpoint: no committed checkpoint group in '" +
        path + "'");
  }
  return {std::move(latest)};
}

Status RestoreStoreContents(const SimulationCheckpoint& checkpoint,
                            ClientStateStore* store) {
  FEDADMM_CHECK_MSG(store != nullptr, "RestoreStoreContents: null store");
  int previous_client = -1;
  for (const SimulationCheckpoint::Slab& slab : checkpoint.slabs) {
    if (slab.client < 0 || slab.client >= store->num_clients() ||
        slab.slot < 0 || slab.slot >= store->num_slots()) {
      return Status::InvalidArgument(
          "RestoreStoreContents: slab (client " + std::to_string(slab.client) +
          ", slot " + std::to_string(slab.slot) +
          ") outside the configured geometry");
    }
    if (static_cast<int64_t>(slab.value.size()) !=
        store->slot_dim(slab.slot)) {
      return Status::InvalidArgument(
          "RestoreStoreContents: slab (client " + std::to_string(slab.client) +
          ", slot " + std::to_string(slab.slot) + ") has dim " +
          std::to_string(slab.value.size()) + ", store wants " +
          std::to_string(store->slot_dim(slab.slot)));
    }
    if (previous_client >= 0 && slab.client != previous_client) {
      store->Release(previous_client);
    }
    std::span<float> view = store->MutableView(slab.client, slab.slot);
    std::memcpy(view.data(), slab.value.data(),
                slab.value.size() * sizeof(float));
    previous_client = slab.client;
  }
  if (previous_client >= 0) store->Release(previous_client);
  return Status::OK();
}

}  // namespace fedadmm
