/// \file tiered_store.h
/// \brief Out-of-core ClientStateStore: buffer pool over an append-only
/// slab log.
///
/// The fourth backend (`tiered:<capacity>:<path>[:dense]`): cold client
/// slabs live in a per-store slab-log file (state/slab_log.h), hot ones in
/// a fixed-capacity `BufferPool` (state/buffer_pool.h), and an in-memory
/// directory maps (client, slot) → log offset. Resident bytes become a
/// knob — `capacity` MiB (or an exact `<n>f` frame count, the test hook) —
/// instead of a function of the touched population, which is what lets a
/// fleet whose touched state dwarfs RAM keep training.
///
///   * `View`/`MutableView` pin the slab's frame until `Release` (spans
///     die at Release, like the quantized backend). Untouched slots read
///     the shared init value without touching the pool.
///   * A miss on a logged slab faults it back with one positional read; a
///     dirty eviction appends the slab and repoints the directory — the
///     log is append-only scratch, reclaimed when the store dies.
///   * `PrefetchClients` faults a cohort's cold slabs on the executor pool
///     *unpinned*, so the engine overlaps next round's log reads with this
///     round's aggregate/finalize phases and hot-path misses stay the
///     measured exception.
///   * Pins beyond capacity overflow (never deadlock) and trim back on
///     release; `bytes_resident` is always `resident frames × frame
///     bytes`.
///
/// Under `sharded:<W>:tiered:...` each worker's inner store receives
/// `SetShardContext` and suffixes its log path with `.seg<shard>`, so W
/// workers own W independent log segments, and its pool metrics carry the
/// `{shard=s}` label.
///
/// Values are bitwise: slabs are raw fp32, so `tiered:` replays `dense`
/// exactly at any pool size and thread count (log *layout* varies with
/// eviction order; contents do not).
///
/// Thread-safety: the distinct-client contract is served by one store
/// mutex — every public call serializes, and prefetch tasks take the same
/// lock, so a concurrent wave-fault simply turns the prefetch into a hit.

#ifndef FEDADMM_STATE_TIERED_STORE_H_
#define FEDADMM_STATE_TIERED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "state/buffer_pool.h"
#include "state/client_state_store.h"
#include "state/slab_log.h"

namespace fedadmm {

/// \brief Parsed `tiered:` spec (factory-validated).
struct TieredStoreOptions {
  /// The spec's capacity token, verbatim, for `name()` round-trips
  /// ("64" = MiB, "8f" = exact frames).
  std::string capacity_token;
  /// Exactly one of the two is positive.
  int64_t capacity_bytes = 0;
  int64_t capacity_frames = 0;
  /// Slab-log path (the shard context may suffix `.seg<s>`).
  std::string path;
};

/// \brief The out-of-core backend. See the file comment.
class TieredStateStore final : public ClientStateStore {
 public:
  explicit TieredStateStore(TieredStoreOptions options);
  ~TieredStateStore() override;

  std::string name() const override;

  void SetShardContext(int shard, int num_shards) override;

  void Configure(int num_clients, std::vector<StateSlotSpec> slots) override;
  std::span<const float> View(int client_id, int slot) const override;
  std::span<float> MutableView(int client_id, int slot) override;
  void Release(int client_id) const override;
  void ForEachTouched(const TouchedStateVisitor& visitor) const override;
  int64_t bytes_resident() const override;
  int num_touched_clients() const override;

  void PrefetchClients(const std::vector<int>& clients,
                       ThreadPool* pool) override;

  int num_clients() const override { return num_clients_; }
  int num_slots() const override { return num_slots_; }
  int64_t slot_dim(int slot) const override;

  // Pool introspection (tests, bench reporting).
  int64_t pool_capacity_frames() const;
  int64_t pool_frame_bytes() const;
  int64_t pool_hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t pool_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  int64_t pool_creates() const {
    return creates_.load(std::memory_order_relaxed);
  }
  int64_t pool_evictions() const;
  int64_t pool_write_backs() const;
  int64_t prefetch_issued() const {
    return prefetch_issued_.load(std::memory_order_relaxed);
  }
  int64_t prefetch_late() const {
    return prefetch_late_.load(std::memory_order_relaxed);
  }

 private:
  /// (client, slot) → pool key.
  uint64_t KeyOf(int client_id, int slot) const {
    return static_cast<uint64_t>(client_id) *
               static_cast<uint64_t>(num_slots_) +
           static_cast<uint64_t>(slot);
  }

  /// Pins (client, slot)'s frame, faulting from the log or seeding from
  /// the init value; `create` says whether an untouched slot may
  /// materialize. Caller holds `mu_`.
  BufferPool::Frame* PinSlab(int client_id, int slot, bool create) const;

  /// Admits one client's cold on-disk slabs unpinned (prefetch body).
  void FaultClientLocked(int client_id) const;

  /// Marks `client_id` touched (first materialization).
  void NoteClientTouched(int client_id) const;

  /// Cached obs handles (per-shard labels resolved at Configure).
  struct PoolObs {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* creates = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* write_backs = nullptr;
    obs::Counter* prefetch_issued = nullptr;
    obs::Counter* prefetch_late = nullptr;
    obs::Gauge* resident_bytes = nullptr;
  };

  TieredStoreOptions options_;
  int shard_ = 0;
  int shard_count_ = 1;
  std::string segment_path_;

  int num_clients_ = 0;
  int num_slots_ = 0;
  int64_t frame_floats_ = 0;
  std::vector<StateSlotSpec> slots_;

  mutable std::mutex mu_;
  mutable std::unique_ptr<SlabLog> log_;
  mutable std::unique_ptr<BufferPool> pool_;
  /// dir_[slot][client] = log offset of the latest slab, -1 if never
  /// written back.
  mutable std::vector<std::vector<int64_t>> dir_;
  mutable std::vector<uint8_t> client_touched_;
  /// prefetch_epoch_[client] == epoch_ marks membership in the latest
  /// prefetched cohort: a hot-path miss on such a client is a *late*
  /// prefetch, counted separately.
  mutable std::vector<int64_t> prefetch_epoch_;
  int64_t epoch_ = 0;

  mutable std::atomic<int> touched_clients_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> creates_{0};
  mutable std::atomic<int64_t> prefetch_issued_{0};
  mutable std::atomic<int64_t> prefetch_late_{0};
  PoolObs obs_;
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_TIERED_STORE_H_
