/// \file sharded_store.h
/// \brief Client-id-partitioned wrapper over any ClientStateStore backend.

#ifndef FEDADMM_STATE_SHARDED_STORE_H_
#define FEDADMM_STATE_SHARDED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "state/client_state_store.h"

namespace fedadmm {

/// \brief W inner stores, one per aggregation worker, addressed by the
/// canonical client partition (util/shard.h).
///
/// Spec: `"sharded:<W>:<inner>"` with W >= 2 and `<inner>` any unsharded
/// backend spec (`dense` | `lazy` | `quantized:<b>`); `sharded:1:<inner>`
/// is normalized to `<inner>` by the factory. Client `c` lives in shard
/// `c % W` at local index `c / W`, so each worker owns an (almost) equal,
/// churn-stable slice of the fleet and per-client calls for distinct
/// clients on the same shard stay as parallel as the inner backend allows
/// — with the bonus that clients on *different* shards never contend on an
/// inner lock at all. `Configure` clamps W to the client count so tiny
/// fleets still give every shard at least one client.
///
/// The wrapper is storage-transparent: views return exactly what the inner
/// backend returns, so a sharded run's floats are bitwise identical to the
/// same backend unsharded. `bytes_resident` sums the shards;
/// `bytes_resident_shard` exposes the per-worker accounting the sharded
/// server reports.
///
/// `ForEachTouched` must visit in increasing global (client, slot) order,
/// but each inner store only iterates its own slice; the wrapper buffers
/// every touched value (copying it) and replays the merged order. That
/// costs O(touched · d) transient memory — fine for the checkpoint-style
/// passes the hook exists for, wrong for a hot loop.
class ShardedStateStore final : public ClientStateStore {
 public:
  /// `num_shards >= 2`; `inner_spec` must be a valid unsharded spec
  /// (CHECK-validated eagerly).
  ShardedStateStore(int num_shards, const std::string& inner_spec);

  std::string name() const override;

  void Configure(int num_clients, std::vector<StateSlotSpec> slots) override;
  std::span<const float> View(int client_id, int slot) const override;
  std::span<float> MutableView(int client_id, int slot) override;
  void Release(int client_id) const override;
  void ForEachTouched(const TouchedStateVisitor& visitor) const override;
  int64_t bytes_resident() const override;
  int num_touched_clients() const override;

  /// Groups `clients` by owning shard and forwards each group (as local
  /// indices) to that shard's inner store, sharing the one executor pool.
  void PrefetchClients(const std::vector<int>& clients,
                       ThreadPool* pool) override;

  int num_clients() const override { return num_clients_; }
  int num_slots() const override { return num_slots_; }
  int64_t slot_dim(int slot) const override;

  /// Declared worker count (the spec's W, before any Configure clamp).
  int num_shards() const { return num_shards_; }
  /// Shards actually instantiated by the last Configure: min(W, clients).
  int num_active_shards() const { return static_cast<int>(shards_.size()); }
  /// Resident bytes of one shard's slice — the per-worker accounting
  /// surface. `shard` in [0, num_active_shards()).
  int64_t bytes_resident_shard(int shard) const;

 private:
  /// Shard owning `client_id` (respecting the Configure clamp).
  int ShardFor(int client_id) const;
  /// `client_id`'s index within its shard's inner store.
  int LocalIndex(int client_id) const;

  int num_shards_;
  std::string inner_spec_;
  int num_clients_ = 0;
  int num_slots_ = 0;
  std::vector<std::unique_ptr<ClientStateStore>> shards_;
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_SHARDED_STORE_H_
