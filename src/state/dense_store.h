/// \file dense_store.h
/// \brief Eager arena backend: the historical layout behind the store API.

#ifndef FEDADMM_STATE_DENSE_STORE_H_
#define FEDADMM_STATE_DENSE_STORE_H_

#include <string>
#include <vector>

#include "state/client_state_store.h"
#include "util/aligned.h"

namespace fedadmm {

/// \brief One contiguous `m × dim` arena per slot, fully materialized at
/// `Configure`.
///
/// Memory is O(m·d) from round 0 — exactly the hand-rolled
/// vector-of-vectors the stateful algorithms used to carry, but laid out
/// contiguously per slot. Values read and written through this backend are
/// bitwise identical to that historical representation, which the
/// deterministic-replay and store-equivalence tests pin. `View`,
/// `MutableView` and `Release` are trivially thread-safe for distinct
/// clients: every client owns a disjoint arena range and nothing is ever
/// (re)allocated after `Configure`.
class DenseStateStore final : public ClientStateStore {
 public:
  std::string name() const override { return "dense"; }

  void Configure(int num_clients, std::vector<StateSlotSpec> slots) override;
  std::span<const float> View(int client_id, int slot) const override;
  std::span<float> MutableView(int client_id, int slot) override;
  void Release(int client_id) const override;
  void ForEachTouched(const TouchedStateVisitor& visitor) const override;
  int64_t bytes_resident() const override;
  int num_touched_clients() const override { return num_clients_; }

  int num_clients() const override { return num_clients_; }
  int num_slots() const override { return static_cast<int>(slots_.size()); }
  int64_t slot_dim(int slot) const override {
    return slots_[static_cast<size_t>(slot)].dim;
  }

 private:
  struct Slot {
    int64_t dim = 0;
    /// `num_clients × dim` floats, client-major; the arena base is 64-byte
    /// aligned (kernel fast case) with no stride padding (layout and
    /// `bytes_resident` are pinned by the equivalence tests).
    AlignedVector<float> arena;
  };

  int num_clients_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_DENSE_STORE_H_
