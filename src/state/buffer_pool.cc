#include "state/buffer_pool.h"

#include <limits>
#include <utility>

#include "util/status.h"

namespace fedadmm {
namespace {

constexpr size_t kNoVictim = std::numeric_limits<size_t>::max();

}  // namespace

BufferPool::BufferPool(int64_t capacity_frames, int64_t frame_floats,
                       WriteBack write_back)
    : capacity_frames_(capacity_frames),
      frame_floats_(frame_floats),
      write_back_(std::move(write_back)) {
  FEDADMM_CHECK_MSG(capacity_frames >= 1, "BufferPool: capacity_frames >= 1");
  FEDADMM_CHECK_MSG(frame_floats >= 1, "BufferPool: frame_floats >= 1");
}

BufferPool::Frame* BufferPool::Pin(uint64_t key, bool* hit) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    Frame* frame = frames_[it->second].get();
    frame->pinned = true;
    frame->referenced = true;
    ++hits_;
    *hit = true;
    return frame;
  }
  ++misses_;
  *hit = false;
  const size_t index = AcquireFrame();
  Frame* frame = frames_[index].get();
  frame->key = key;
  frame->pinned = true;
  frame->dirty = false;
  frame->referenced = true;
  map_.emplace(key, index);
  return frame;
}

BufferPool::Frame* BufferPool::Admit(uint64_t key, bool* hit) {
  Frame* frame = Pin(key, hit);
  frame->pinned = false;
  return frame;
}

BufferPool::Frame* BufferPool::Find(uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  Frame* frame = frames_[it->second].get();
  frame->referenced = true;
  return frame;
}

void BufferPool::Unpin(uint64_t key, bool dirty) {
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  Frame* frame = frames_[it->second].get();
  frame->dirty = frame->dirty || dirty;
  if (!frame->pinned) return;
  frame->pinned = false;
  TrimOverflow();
}

void BufferPool::Evict(uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end() || frames_[it->second]->pinned) return;
  const size_t index = it->second;
  EvictIndex(index);
  free_.push_back(index);
  --resident_frames_;
}

void BufferPool::Clear() {
  frames_.clear();
  free_.clear();
  map_.clear();
  clock_hand_ = 0;
  resident_frames_ = 0;
  hits_ = misses_ = evictions_ = write_backs_ = 0;
}

size_t BufferPool::AcquireFrame() {
  if (!free_.empty()) {
    const size_t index = free_.back();
    free_.pop_back();
    Frame* frame = frames_[index].get();
    if (frame->data.empty()) {
      frame->data.resize(static_cast<size_t>(frame_floats_));
    }
    ++resident_frames_;
    return index;
  }
  if (static_cast<int64_t>(frames_.size()) >= capacity_frames_) {
    const size_t victim = FindVictim();
    if (victim != kNoVictim) {
      EvictIndex(victim);
      return victim;  // resident count unchanged: slab swapped, not freed
    }
  }
  // Every frame is pinned (or the pool is still filling): allocate. Beyond
  // capacity this is an overflow frame; Unpin trims it back.
  auto frame = std::make_unique<Frame>();
  frame->data.resize(static_cast<size_t>(frame_floats_));
  frames_.push_back(std::move(frame));
  ++resident_frames_;
  return frames_.size() - 1;
}

size_t BufferPool::FindVictim() {
  const size_t n = frames_.size();
  if (n == 0) return kNoVictim;
  // Two sweeps suffice: the first clears every set reference bit it
  // passes, so the second meets an unreferenced, unpinned frame unless all
  // frames are pinned.
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame* frame = frames_[clock_hand_].get();
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame->pinned || frame->data.empty()) continue;
    if (frame->referenced) {
      frame->referenced = false;
      continue;
    }
    return index;
  }
  return kNoVictim;
}

void BufferPool::EvictIndex(size_t index) {
  Frame* frame = frames_[index].get();
  if (frame->dirty && write_back_) {
    write_back_(frame->key,
                {frame->data.data(), static_cast<size_t>(frame_floats_)});
    ++write_backs_;
  }
  frame->dirty = false;
  map_.erase(frame->key);
  ++evictions_;
}

void BufferPool::TrimOverflow() {
  while (resident_frames_ > capacity_frames_) {
    const size_t victim = FindVictim();
    if (victim == kNoVictim) return;
    EvictIndex(victim);
    // Overflow trim really frees the buffer: resident bytes shrink back
    // to the configured capacity, not just the mapping.
    Frame* frame = frames_[victim].get();
    AlignedVector<float>().swap(frame->data);
    free_.push_back(victim);
    --resident_frames_;
  }
}

}  // namespace fedadmm
