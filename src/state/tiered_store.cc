#include "state/tiered_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "state/store_metrics.h"
#include "util/file_io.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fedadmm {
namespace {

// Keep prefetch tasks coarse: one lock acquisition per client already
// serializes the faults, so more tasks than ~2 per worker only adds queue
// churn.
constexpr size_t kMinClientsPerPrefetchTask = 64;

}  // namespace

TieredStateStore::TieredStateStore(TieredStoreOptions options)
    : options_(std::move(options)), segment_path_(options_.path) {
  FEDADMM_CHECK_MSG(
      options_.capacity_bytes > 0 || options_.capacity_frames > 0,
      "TieredStateStore: capacity must be positive");
  FEDADMM_CHECK_MSG(!options_.path.empty(),
                    "TieredStateStore: log path must be non-empty");
}

TieredStateStore::~TieredStateStore() {
  // The slab log is spill scratch, not durable state (checkpoints own
  // durability); reclaim it with the store.
  log_.reset();
  if (!segment_path_.empty()) RemoveFileIfExists(segment_path_);
}

std::string TieredStateStore::name() const {
  // Short form is canonical; the parser also accepts a ":dense" suffix.
  return "tiered:" + options_.capacity_token + ":" + options_.path;
}

void TieredStateStore::SetShardContext(int shard, int num_shards) {
  shard_ = shard;
  shard_count_ = num_shards;
  segment_path_ = num_shards > 1
                      ? options_.path + ".seg" + std::to_string(shard)
                      : options_.path;
}

void TieredStateStore::Configure(int num_clients,
                                 std::vector<StateSlotSpec> specs) {
  std::lock_guard<std::mutex> lock(mu_);
  FEDADMM_CHECK_MSG(num_clients > 0, "TieredStateStore: num_clients > 0");
  num_clients_ = num_clients;
  num_slots_ = static_cast<int>(specs.size());
  slots_.clear();
  slots_.reserve(specs.size());
  frame_floats_ = 0;
  for (StateSlotSpec& spec : specs) {
    FEDADMM_CHECK_MSG(spec.dim > 0, "TieredStateStore: slot dim > 0");
    FEDADMM_CHECK_MSG(
        spec.init.empty() || spec.init.size() == static_cast<size_t>(spec.dim),
        "TieredStateStore: init size must match slot dim");
    if (spec.init.empty()) {
      spec.init.assign(static_cast<size_t>(spec.dim), 0.0f);
    }
    frame_floats_ = std::max(frame_floats_, spec.dim);
    slots_.push_back(std::move(spec));
  }
  FEDADMM_CHECK_MSG(num_slots_ > 0, "TieredStateStore: at least one slot");

  const int64_t frame_bytes =
      frame_floats_ * static_cast<int64_t>(sizeof(float));
  const int64_t frames =
      options_.capacity_frames > 0
          ? options_.capacity_frames
          : std::max<int64_t>(options_.capacity_bytes / frame_bytes, 1);

  auto log = SlabLog::Open(segment_path_, /*truncate=*/true);
  FEDADMM_CHECK_MSG(log.ok(), log.status().ToString());
  log_ = std::move(log).ValueOrDie();

  pool_ = std::make_unique<BufferPool>(
      frames, frame_floats_,
      [this](uint64_t key, std::span<const float> data) {
        // Dirty eviction: append the slab, repoint the directory. Runs
        // under mu_ (every pool call sits under the store lock).
        const int client = static_cast<int>(key / num_slots_);
        const int slot = static_cast<int>(key % num_slots_);
        const int64_t dim = slots_[static_cast<size_t>(slot)].dim;
        auto offset = log_->AppendFloats(
            SlabLog::RecordType::kSlab, client, slot,
            data.subspan(0, static_cast<size_t>(dim)));
        FEDADMM_CHECK_MSG(offset.ok(), offset.status().ToString());
        dir_[static_cast<size_t>(slot)][static_cast<size_t>(client)] =
            offset.ValueOrDie();
        if (obs_.write_backs != nullptr && obs::MetricsEnabled()) {
          obs_.write_backs->Add(1);
          obs_.evictions->Add(1);
        }
      });

  dir_.assign(static_cast<size_t>(num_slots_),
              std::vector<int64_t>(static_cast<size_t>(num_clients), -1));
  client_touched_.assign(static_cast<size_t>(num_clients), 0);
  prefetch_epoch_.assign(static_cast<size_t>(num_clients), -1);
  epoch_ = 0;
  touched_clients_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  creates_.store(0, std::memory_order_relaxed);
  prefetch_issued_.store(0, std::memory_order_relaxed);
  prefetch_late_.store(0, std::memory_order_relaxed);

  // Resolve the obs handles once; under a shard context the names carry
  // the per-worker label so W segments expose W counter families.
  auto& registry = obs::MetricsRegistry::Global();
  const auto named = [this](const char* base) {
    return shard_count_ > 1 ? obs::ShardLabel(base, shard_)
                            : std::string(base);
  };
  obs_.hits = registry.counter(named("state/pool/hits_count"));
  obs_.misses = registry.counter(named("state/pool/misses_count"));
  obs_.creates = registry.counter(named("state/pool/creates_count"));
  obs_.evictions = registry.counter(named("state/pool/evictions_count"));
  obs_.write_backs = registry.counter(named("state/pool/write_backs_count"));
  obs_.prefetch_issued =
      registry.counter(named("state/pool/prefetch_issued_count"));
  obs_.prefetch_late =
      registry.counter(named("state/pool/prefetch_late_count"));
  obs_.resident_bytes = registry.gauge(named("state/pool/resident_bytes"));
}

void TieredStateStore::NoteClientTouched(int client_id) const {
  if (!client_touched_[static_cast<size_t>(client_id)]) {
    client_touched_[static_cast<size_t>(client_id)] = 1;
    touched_clients_.fetch_add(1, std::memory_order_relaxed);
  }
}

BufferPool::Frame* TieredStateStore::PinSlab(int client_id, int slot,
                                             bool create) const {
  const uint64_t key = KeyOf(client_id, slot);
  const int64_t offset =
      dir_[static_cast<size_t>(slot)][static_cast<size_t>(client_id)];
  const bool materialized = offset >= 0 || pool_->Find(key) != nullptr;
  if (!materialized && !create) return nullptr;
  bool hit = false;
  BufferPool::Frame* frame = pool_->Pin(key, &hit);
  const StateSlotSpec& spec = slots_[static_cast<size_t>(slot)];
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.hits != nullptr && obs::MetricsEnabled()) obs_.hits->Add(1);
  } else if (offset >= 0) {
    // Cold fault: one positional read off the slab log.
    const Status status = log_->ReadFloatsAt(
        offset, {frame->data.data(), static_cast<size_t>(spec.dim)});
    FEDADMM_CHECK_MSG(status.ok(), status.ToString());
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.misses != nullptr && obs::MetricsEnabled()) obs_.misses->Add(1);
    if (prefetch_epoch_[static_cast<size_t>(client_id)] == epoch_) {
      // This client was in the latest prefetched cohort but its slab was
      // not resident when the wave needed it.
      prefetch_late_.fetch_add(1, std::memory_order_relaxed);
      if (obs_.prefetch_late != nullptr && obs::MetricsEnabled()) {
        obs_.prefetch_late->Add(1);
      }
    }
  } else {
    // First materialization: seed from the slot's shared init value.
    std::memcpy(frame->data.data(), spec.init.data(),
                static_cast<size_t>(spec.dim) * sizeof(float));
    creates_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.creates != nullptr && obs::MetricsEnabled()) {
      obs_.creates->Add(1);
    }
  }
  return frame;
}

std::span<const float> TieredStateStore::View(int client_id, int slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const StateSlotSpec& spec = slots_[static_cast<size_t>(slot)];
  BufferPool::Frame* frame = PinSlab(client_id, slot, /*create=*/false);
  if (frame == nullptr) {
    // Never touched: the shared initial value, at zero pool cost.
    return {spec.init.data(), static_cast<size_t>(spec.dim)};
  }
  return {frame->data.data(), static_cast<size_t>(spec.dim)};
}

std::span<float> TieredStateStore::MutableView(int client_id, int slot) {
  state_internal::NoteMutableTouch();
  std::lock_guard<std::mutex> lock(mu_);
  const StateSlotSpec& spec = slots_[static_cast<size_t>(slot)];
  BufferPool::Frame* frame = PinSlab(client_id, slot, /*create=*/true);
  frame->dirty = true;
  NoteClientTouched(client_id);
  return {frame->data.data(), static_cast<size_t>(spec.dim)};
}

void TieredStateStore::Release(int client_id) const {
  state_internal::NoteRelease();
  std::lock_guard<std::mutex> lock(mu_);
  for (int slot = 0; slot < num_slots_; ++slot) {
    pool_->Unpin(KeyOf(client_id, slot), /*dirty=*/false);
  }
  if (obs_.resident_bytes != nullptr && obs::MetricsEnabled()) {
    obs_.resident_bytes->Set(pool_->resident_bytes());
  }
}

void TieredStateStore::ForEachTouched(
    const TouchedStateVisitor& visitor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<float> scratch;
  for (int client = 0; client < num_clients_; ++client) {
    if (!client_touched_[static_cast<size_t>(client)]) continue;
    for (int slot = 0; slot < num_slots_; ++slot) {
      const StateSlotSpec& spec = slots_[static_cast<size_t>(slot)];
      const int64_t offset =
          dir_[static_cast<size_t>(slot)][static_cast<size_t>(client)];
      BufferPool::Frame* frame = pool_->Find(KeyOf(client, slot));
      if (frame != nullptr) {
        visitor(client, slot,
                {frame->data.data(), static_cast<size_t>(spec.dim)});
      } else if (offset >= 0) {
        scratch.resize(static_cast<size_t>(spec.dim));
        const Status status =
            log_->ReadFloatsAt(offset, {scratch.data(), scratch.size()});
        FEDADMM_CHECK_MSG(status.ok(), status.ToString());
        visitor(client, slot, {scratch.data(), scratch.size()});
      }
    }
  }
}

int64_t TieredStateStore::bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_ ? pool_->resident_bytes() : 0;
}

int TieredStateStore::num_touched_clients() const {
  return touched_clients_.load(std::memory_order_relaxed);
}

int64_t TieredStateStore::slot_dim(int slot) const {
  FEDADMM_CHECK_MSG(slot >= 0 && slot < num_slots_,
                    "TieredStateStore: slot out of range");
  return slots_[static_cast<size_t>(slot)].dim;
}

int64_t TieredStateStore::pool_capacity_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_ ? pool_->capacity_frames() : 0;
}

int64_t TieredStateStore::pool_frame_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_ ? pool_->frame_bytes() : 0;
}

int64_t TieredStateStore::pool_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_ ? pool_->evictions() : 0;
}

int64_t TieredStateStore::pool_write_backs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_ ? pool_->write_backs() : 0;
}

void TieredStateStore::FaultClientLocked(int client_id) const {
  for (int slot = 0; slot < num_slots_; ++slot) {
    const int64_t offset =
        dir_[static_cast<size_t>(slot)][static_cast<size_t>(client_id)];
    if (offset < 0) continue;
    const uint64_t key = KeyOf(client_id, slot);
    if (pool_->Find(key) != nullptr) continue;
    bool hit = false;
    BufferPool::Frame* frame = pool_->Admit(key, &hit);
    const StateSlotSpec& spec = slots_[static_cast<size_t>(slot)];
    const Status status = log_->ReadFloatsAt(
        offset, {frame->data.data(), static_cast<size_t>(spec.dim)});
    FEDADMM_CHECK_MSG(status.ok(), status.ToString());
    prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.prefetch_issued != nullptr && obs::MetricsEnabled()) {
      obs_.prefetch_issued->Add(1);
    }
  }
}

void TieredStateStore::PrefetchClients(const std::vector<int>& clients,
                                       ThreadPool* pool) {
  std::vector<int> cold;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr) return;
    ++epoch_;
    cold.reserve(clients.size());
    for (const int client : clients) {
      prefetch_epoch_[static_cast<size_t>(client)] = epoch_;
      for (int slot = 0; slot < num_slots_; ++slot) {
        if (dir_[static_cast<size_t>(slot)][static_cast<size_t>(client)] >=
                0 &&
            pool_->Find(KeyOf(client, slot)) == nullptr) {
          cold.push_back(client);
          break;
        }
      }
    }
  }
  if (cold.empty()) return;
  if (pool == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int client : cold) FaultClientLocked(client);
    return;
  }
  const size_t per_task =
      std::max(kMinClientsPerPrefetchTask,
               cold.size() / (2 * static_cast<size_t>(
                                      std::max(pool->num_threads(), 1))));
  for (size_t begin = 0; begin < cold.size(); begin += per_task) {
    const size_t end = std::min(begin + per_task, cold.size());
    std::vector<int> chunk(cold.begin() + static_cast<ptrdiff_t>(begin),
                           cold.begin() + static_cast<ptrdiff_t>(end));
    pool->Submit([this, chunk = std::move(chunk)]() {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int client : chunk) FaultClientLocked(client);
    });
  }
}

}  // namespace fedadmm
