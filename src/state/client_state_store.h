/// \file client_state_store.h
/// \brief Server-visible per-client algorithm state at fleet scale.
///
/// FedADMM's defining cost is per-client state: every client i carries a
/// primal/dual pair (w_i, y_i) that must persist across rounds for the
/// method's robustness under partial participation (likewise FedPD's local
/// pair and SCAFFOLD's control variate c_i). Stored eagerly, that state is
/// O(m·d) from round 0 — which caps fleet size long before the event
/// engine or the system model do. A `ClientStateStore` abstracts the
/// layout so algorithms address state by (client, slot) while the backend
/// decides what is actually resident:
///
///   * `dense`          — one eager arena per slot; bitwise identical to
///                        the historical hand-rolled vector-of-vectors,
///                        O(m·d) bytes from Configure.
///   * `lazy`           — chunked slabs materialized on first *mutable*
///                        touch; untouched clients cost 0 bytes and read
///                        the slot's shared initial value. The common case
///                        under partial participation and churn: resident
///                        bytes track the touched population, not m.
///   * `quantized:<b>`  — cold state is stored through the src/comm
///                        quantizers at b bits (b in 1..16, or 32 = raw
///                        fp32, lossless) and decoded on touch; hot
///                        (in-flight) clients hold fp32 until `Release`.
///
/// A *slot* is one R^dim state vector per client (FedADMM registers two:
/// model and dual). Slots are registered once via `Configure` with a shared
/// initial value; every client logically starts there, and backends only
/// pay for clients that diverge.
///
/// Thread-safety contract (matches `FederatedAlgorithm::ClientUpdate`):
/// `View` / `MutableView` / `Release` may run concurrently for *distinct*
/// client ids; calls for the same client are serial. `Configure`,
/// `ForEachTouched` and the metrics are server-side and must not overlap
/// client calls. Spans stay valid until the next `Configure`, except that
/// `quantized` spans die at that client's `Release`.

#ifndef FEDADMM_STATE_CLIENT_STATE_STORE_H_
#define FEDADMM_STATE_CLIENT_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedadmm {

class ThreadPool;

/// \brief Geometry + shared initial value of one per-client state vector.
struct StateSlotSpec {
  /// Vector length of this slot (the model dimension d for FL state).
  int64_t dim = 0;
  /// Initial value every client starts from; empty means all zeros. When
  /// non-empty its size must equal `dim`.
  std::vector<float> init;
};

/// \brief Visitor for `ForEachTouched`: (client_id, slot, current value).
using TouchedStateVisitor =
    std::function<void(int client_id, int slot, std::span<const float>)>;

/// \brief Abstract per-(client, slot) float-vector storage.
class ClientStateStore {
 public:
  virtual ~ClientStateStore() = default;

  /// Canonical spec string ("dense", "lazy", "quantized:8", ...) —
  /// round-trips through `MakeClientStateStore`.
  virtual std::string name() const = 0;

  /// (Re)configures geometry and wipes all contents. Must be called before
  /// any view. `slots[s].init` is the shared initial value of slot s.
  virtual void Configure(int num_clients, std::vector<StateSlotSpec> slots) = 0;

  /// Read-only view of `(client_id, slot)`. Untouched clients see the
  /// slot's initial value; lazy backends do NOT materialize on read.
  /// (Logically const: the quantized backend may decode into an internal
  /// cache.)
  virtual std::span<const float> View(int client_id, int slot) const = 0;

  /// Mutable view; materializes the client's slot on first touch (seeded
  /// from the slot's initial value).
  virtual std::span<float> MutableView(int client_id, int slot) = 0;

  /// Declares all spans previously handed out for `client_id` dead. The
  /// quantized backend re-encodes dirty hot state back to its cold form and
  /// drops the fp32 copy; dense/lazy are no-ops. Safe on untouched clients.
  virtual void Release(int client_id) const = 0;

  /// Visits every materialized `(client, slot)` pair in increasing
  /// (client, slot) order — the basis for future eviction / checkpointing
  /// passes. Untouched clients are skipped. The visited span is only
  /// guaranteed valid for the duration of the callback (the quantized
  /// backend decodes cold entries into a temporary).
  virtual void ForEachTouched(const TouchedStateVisitor& visitor) const = 0;

  /// Bytes of client state currently resident in memory: arena bytes for
  /// `dense`, touched-block bytes for `lazy`, cold payload + hot fp32 bytes
  /// for `quantized`. Excludes the O(m) pointer index every sparse backend
  /// needs (8–16 bytes/client, independent of d).
  virtual int64_t bytes_resident() const = 0;

  /// Number of distinct clients with at least one materialized slot
  /// (`dense`: always m after Configure).
  virtual int num_touched_clients() const = 0;

  /// Registered geometry (valid after Configure).
  virtual int num_clients() const = 0;
  virtual int num_slots() const = 0;
  virtual int64_t slot_dim(int slot) const = 0;

  /// Tells a backend which worker partition it serves, *before* Configure.
  /// The sharded wrapper calls this on each inner store so backends with
  /// external resources can disambiguate them (the tiered store suffixes
  /// its log path `.seg<shard>` and labels its metrics `{shard=s}`).
  /// Default: ignored — in-memory backends are shard-agnostic.
  virtual void SetShardContext(int shard, int num_shards) {
    (void)shard;
    (void)num_shards;
  }

  /// Hints that `clients` will be touched by the next wave. Out-of-core
  /// backends fault their cold slabs into memory — on `pool` when given
  /// (overlapping the caller's work), synchronously otherwise — so the
  /// wave's views hit. In-memory backends ignore it. Safe concurrently
  /// with per-client calls; copies `clients` before returning.
  virtual void PrefetchClients(const std::vector<int>& clients,
                               ThreadPool* pool) {
    (void)clients;
    (void)pool;
  }
};

/// \brief Builds a store from a spec string:
///   * "dense"            — eager arena, O(m·d) from Configure;
///   * "lazy"             — slab-chunked, materialize on first mutable
///                          touch;
///   * "quantized:<b>"    — cold state through the src/comm quantizers,
///                          b in 1..16 (uniform b-bit grid) or 32 (raw
///                          fp32, lossless);
///   * "tiered:<c>:<p>[:dense]"
///                        — out-of-core: a `<c>` MiB buffer pool (or
///                          `<n>f` = exactly n frames, the test hook)
///                          over an append-only slab log at path `<p>`
///                          (state/tiered_store.h). The inner is always
///                          dense — slabs are raw fp32 so replay is
///                          bitwise; codec inners are rejected.
///   * "sharded:<W>:<s>"  — client-id partition over W copies of the
///                          unsharded spec `<s>` (state/sharded_store.h);
///                          W = 1 normalizes to `<s>` itself.
/// Returns InvalidArgument for anything else; every error quotes the
/// offending spec and this grammar.
Result<std::unique_ptr<ClientStateStore>> MakeClientStateStore(
    const std::string& spec);

/// \brief Resolves the effective spec (`override_spec` when non-empty, the
/// algorithm's `fallback_spec` otherwise), builds the store and runs
/// `Configure` — the one code path every stateful algorithm's Setup uses,
/// so spec resolution and error handling cannot drift between them.
/// `num_shards > 1` wraps the resolved spec in the client-id partition
/// (`sharded:<num_shards>:<spec>`) unless the spec already chose its own
/// sharding — an explicit `sharded:` spec always wins over the engine
/// knob.
Result<std::unique_ptr<ClientStateStore>> MakeConfiguredClientStateStore(
    const std::string& override_spec, const std::string& fallback_spec,
    int num_clients, std::vector<StateSlotSpec> slots, int num_shards = 1);

/// Example specs for help strings and sweeps.
const std::vector<std::string>& ClientStateStoreExampleSpecs();

}  // namespace fedadmm

#endif  // FEDADMM_STATE_CLIENT_STATE_STORE_H_
