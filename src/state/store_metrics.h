/// \file store_metrics.h
/// \brief Internal obs instruments of the concrete state-store backends.
///
/// One shared set of counters — `state/mutable_touches_count` and
/// `state/releases_count` — bumped by every concrete backend's
/// `MutableView` / `Release`. The sharded wrapper forwards to its inner
/// stores, which do the counting, so nothing is double-counted. Resident
/// bytes are a per-round gauge stamped by the server loop
/// (`server/state_bytes_resident`), not here: the stores' own
/// `bytes_resident()` is the source of truth and the loop already reads it.
///
/// Counters, not clocks: a store touch is far too hot (and too cheap) for
/// per-call timing; counts per round are what the skew analysis needs.

#ifndef FEDADMM_STATE_STORE_METRICS_H_
#define FEDADMM_STATE_STORE_METRICS_H_

#include "obs/metrics.h"

namespace fedadmm::state_internal {

/// Bumps `state/mutable_touches_count` (no-op while metrics are disabled).
inline void NoteMutableTouch() {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().counter("state/mutable_touches_count");
  counter->Add(1);
}

/// Bumps `state/releases_count` (no-op while metrics are disabled).
inline void NoteRelease() {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().counter("state/releases_count");
  counter->Add(1);
}

}  // namespace fedadmm::state_internal

#endif  // FEDADMM_STATE_STORE_METRICS_H_
