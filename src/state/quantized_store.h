/// \file quantized_store.h
/// \brief Cold client state compressed through the src/comm quantizers.

#ifndef FEDADMM_STATE_QUANTIZED_STORE_H_
#define FEDADMM_STATE_QUANTIZED_STORE_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/codec.h"
#include "state/client_state_store.h"

namespace fedadmm {

/// \brief Hot/cold storage: in-flight clients hold fp32, everyone else a
/// quantized payload.
///
/// Cold state lives as the wire form of an `UpdateCodec` — `quantized:<b>`
/// with b in 1..16 uses the deterministic uniform b-bit grid
/// (`UniformQuantCodec`, per-chunk scale, worst-case error scale/(2^b−1)
/// per coordinate); b = 32 stores raw fp32 through `IdentityCodec` and is
/// lossless, so `quantized:32` replays bitwise identically to `dense`.
/// `MutableView` decodes the cold payload (or copies the slot's initial
/// value) into a hot fp32 entry and marks it dirty; `Release` re-encodes
/// dirty hot entries back to cold and drops the fp32 copy, so only the
/// in-flight population ever pays fp32 prices. A dirty entry whose bytes
/// still equal its cold payload's decode is written back by *keeping* the
/// payload (decode + memcmp, no re-encode): unchanged write-back cycles —
/// every read-modify round that converges — stop re-quantizing on each
/// release, and resident accounting stays still. `View` of a cold client
/// also decodes into the hot cache (clean) — call `Release` when done to
/// drop it; `View` of a never-touched client reads the shared initial
/// value at zero cost.
///
/// Like all backends, concurrent use is only allowed for distinct client
/// ids; internally a striped mutex array serializes per-client transitions
/// while keeping independent clients parallel.
class QuantizedStateStore final : public ClientStateStore {
 public:
  /// `bits` in 1..16 (uniform quantizer) or 32 (identity / lossless).
  explicit QuantizedStateStore(int bits);

  std::string name() const override;

  void Configure(int num_clients, std::vector<StateSlotSpec> slots) override;
  std::span<const float> View(int client_id, int slot) const override;
  std::span<float> MutableView(int client_id, int slot) override;
  void Release(int client_id) const override;
  void ForEachTouched(const TouchedStateVisitor& visitor) const override;
  int64_t bytes_resident() const override {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  int num_touched_clients() const override {
    return static_cast<int>(touched_clients_.load(std::memory_order_relaxed));
  }

  int num_clients() const override { return num_clients_; }
  int num_slots() const override { return static_cast<int>(slots_.size()); }
  int64_t slot_dim(int slot) const override {
    return slots_[static_cast<size_t>(slot)].dim;
  }

  int bits() const { return bits_; }

 private:
  struct Hot {
    std::vector<float> data;
    bool dirty = false;
  };
  struct Slot {
    int64_t dim = 0;
    std::vector<float> init;
    /// Per-client quantized payload; nullptr = never persisted.
    std::vector<std::unique_ptr<Payload>> cold;
    /// Per-client decoded fp32 copy; nullptr = not currently hot.
    std::vector<std::unique_ptr<Hot>> hot;
  };

  /// Ensures `(client_id, slot)` is hot; caller holds the client's stripe.
  Hot* EnsureHot(int client_id, int slot) const;
  std::mutex& StripeFor(int client_id) const {
    return stripes_[static_cast<size_t>(client_id) % kStripes];
  }

  static constexpr size_t kStripes = 64;

  int bits_;
  /// Codec state is never mutated by Encode for the quantizers used here,
  /// so sharing one instance across stripes is safe.
  std::unique_ptr<UpdateCodec> codec_;
  int num_clients_ = 0;
  mutable std::vector<Slot> slots_;
  mutable std::vector<char> client_touched_;
  mutable std::array<std::mutex, kStripes> stripes_;
  mutable std::atomic<int64_t> resident_bytes_{0};
  mutable std::atomic<int64_t> touched_clients_{0};
};

}  // namespace fedadmm

#endif  // FEDADMM_STATE_QUANTIZED_STORE_H_
