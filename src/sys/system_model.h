/// \file system_model.h
/// \brief The façade the simulator talks to: fleet + straggler policy.
///
/// A `SystemModel` owns a `FleetModel` and a `StragglerPolicy` and, given a
/// round's uploaded messages, produces the round's simulated duration and a
/// per-update verdict (admit / admit-partial / drop). It is stateless
/// across rounds — the simulator owns the `VirtualClock` — so the same
/// model can be shared by sequential runs.

#ifndef FEDADMM_SYS_SYSTEM_MODEL_H_
#define FEDADMM_SYS_SYSTEM_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fl/types.h"
#include "sys/profiles.h"
#include "sys/straggler.h"
#include "sys/virtual_clock.h"

namespace fedadmm {

/// \brief One round's system-level outcome.
struct RoundJudgment {
  /// Verdicts, parallel to the update vector passed to `JudgeRound`.
  std::vector<StragglerDecision> decisions;
  /// Simulated duration of the round (the policy-shaped critical path).
  double round_seconds = 0.0;
  int num_dropped = 0;
  int num_admitted_partial = 0;
};

/// \brief Bundles the fleet and the straggler policy behind one interface.
class SystemModel {
 public:
  SystemModel(FleetModel fleet, std::unique_ptr<StragglerPolicy> policy)
      : fleet_(std::move(fleet)), policy_(std::move(policy)) {
    FEDADMM_CHECK_MSG(policy_ != nullptr, "SystemModel: policy is required");
  }

  const FleetModel& fleet() const { return fleet_; }
  const StragglerPolicy& policy() const { return *policy_; }

  /// "<fleet>/<policy>", e.g. "cellular/deadline-drop".
  std::string name() const { return fleet_.name() + "/" + policy_->name(); }

  /// Times every update against its client's profile and applies the
  /// straggler policy. `download_bytes_per_client` is what each client
  /// pulled before training (algorithm-dependent; SCAFFOLD downloads 2d).
  RoundJudgment JudgeRound(const std::vector<UpdateMessage>& updates,
                           int64_t download_bytes_per_client) const;

 private:
  FleetModel fleet_;
  std::unique_ptr<StragglerPolicy> policy_;
};

/// \brief Builds the policy named by `name` ("wait-for-all",
/// "deadline-drop", "deadline-admit-partial"); deadline policies require
/// `deadline_seconds` > 0. Returns InvalidArgument for unknown names.
Result<std::unique_ptr<StragglerPolicy>> MakeStragglerPolicy(
    const std::string& name, double deadline_seconds);

}  // namespace fedadmm

#endif  // FEDADMM_SYS_SYSTEM_MODEL_H_
