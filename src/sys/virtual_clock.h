/// \file virtual_clock.h
/// \brief Simulated-time accounting for federated rounds.
///
/// `RoundRecord::wall_seconds` measures the host machine, which says nothing
/// about deployment time: a simulator crunches a straggler's 10 epochs as
/// fast as a flagship's. The virtual clock instead derives each client's
/// round duration from its `ClientSystemProfile` — download, compute at
/// `steps_per_second`, upload — and advances by the round's critical path
/// (as shaped by the straggler policy). Pure arithmetic: bitwise
/// deterministic and free of host-speed effects.

#ifndef FEDADMM_SYS_VIRTUAL_CLOCK_H_
#define FEDADMM_SYS_VIRTUAL_CLOCK_H_

#include <cstdint>
#include <vector>

#include "sys/profiles.h"

namespace fedadmm {

/// \brief Per-phase simulated duration of one client's round.
struct ClientTiming {
  double download_seconds = 0.0;
  double compute_seconds = 0.0;
  double upload_seconds = 0.0;

  /// Sequential phases: the client downloads θ, trains, then uploads.
  double TotalSeconds() const {
    return download_seconds + compute_seconds + upload_seconds;
  }
};

/// \brief Converts a client's actual work and payload sizes into simulated
/// durations using its profile. Each transfer pays the link latency once.
ClientTiming ComputeClientTiming(const ClientSystemProfile& profile,
                                 int steps_run, int64_t upload_bytes,
                                 int64_t download_bytes);

/// \brief The round's critical path: the slowest client's total (0 if none).
double CriticalPathSeconds(const std::vector<ClientTiming>& timings);

/// \brief Monotone simulated-time accumulator for one training run.
class VirtualClock {
 public:
  /// Advances by `seconds` (must be >= 0).
  void Advance(double seconds);

  /// Simulated seconds elapsed since construction.
  double now() const { return now_; }

 private:
  double now_ = 0.0;
};

}  // namespace fedadmm

#endif  // FEDADMM_SYS_VIRTUAL_CLOCK_H_
