/// \file event_queue.h
/// \brief Schedulable client-completion events for the federation engine.
///
/// The synchronous simulator collapses a round's per-client timings into a
/// single critical-path maximum. The event-driven execution modes
/// (fl/server_loop.h) instead keep every client's finish time as its own
/// *event*: when a client is dispatched, its `ClientTiming` (from
/// `ComputeClientTiming`) plus the straggler policy's verdict fix the
/// absolute simulated second at which the server stops tracking it, and the
/// resulting `ClientCompletionEvent` is pushed onto an `EventQueue`. The
/// server loop pops events in time order and reacts — aggregate
/// immediately (async), buffer until K arrivals (buffered), or count a
/// drop — so slow clients never stall fast ones.
///
/// Determinism: events are ordered by (time, sequence). `sequence` is the
/// monotone dispatch counter, so ties between clients finishing at the same
/// simulated instant resolve by dispatch order — never by host scheduling.
///
/// The sharded aggregation server keeps one heap per worker instead
/// (`ShardedEventQueue`): pushes route by the canonical client partition
/// (util/shard.h) and pops take the global (time, sequence) minimum across
/// the shard heads. Because (time, sequence) is a total order — sequence is
/// unique — the merged pop order is *identical* to a single global heap at
/// every W, so swapping queue implementations never changes a trajectory.

#ifndef FEDADMM_SYS_EVENT_QUEUE_H_
#define FEDADMM_SYS_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "fl/types.h"
#include "sys/profiles.h"
#include "sys/straggler.h"
#include "sys/virtual_clock.h"
#include "util/status.h"

namespace fedadmm {

class ByteReader;
class ByteWriter;

/// \brief One client's upload arriving (or being cut off) at the server.
struct ClientCompletionEvent {
  /// Absolute simulated second at which the server stops tracking the
  /// client: dispatch time + the policy's finish_seconds.
  double time = 0.0;
  /// Monotone dispatch counter; deterministic tie-break for equal times.
  int64_t sequence = 0;
  int client_id = -1;
  /// Dispatch wave (RNG stream key: every dispatch batch gets a fresh wave
  /// id, so per-(wave, client) forks never collide).
  int wave = 0;
  /// Server aggregation count at dispatch time; staleness at aggregation is
  /// the server's current count minus this.
  int theta_version = 0;
  /// Simulated per-phase durations of the client's round.
  ClientTiming timing;
  /// The straggler policy's verdict, reused as the admission predicate.
  StragglerDecision decision;
  /// The computed update (against the θ snapshot downloaded at dispatch).
  UpdateMessage message;
};

/// \brief Serializes every field of `event` (timing, decision, and the
/// full update message) in the `util/file_io.h` encoding — the in-flight
/// half of an event-mode checkpoint.
void SerializeClientCompletionEvent(const ClientCompletionEvent& event,
                                    ByteWriter* writer);

/// \brief Inverse of `SerializeClientCompletionEvent`.
Result<ClientCompletionEvent> DeserializeClientCompletionEvent(
    ByteReader* reader);

/// \brief Builds a completion event: times the client's actual work via
/// `ComputeClientTiming`, applies `policy` as the admission predicate, and
/// stamps the absolute completion time `dispatch_seconds +
/// decision.finish_seconds`.
ClientCompletionEvent MakeClientCompletionEvent(
    const ClientSystemProfile& profile, const StragglerPolicy& policy,
    double dispatch_seconds, int64_t download_bytes, UpdateMessage message,
    int wave, int theta_version, int64_t sequence);

/// \brief Min-heap of completion events ordered by (time, sequence).
class EventQueue {
 public:
  /// Inserts an event.
  void Push(ClientCompletionEvent event);

  /// Removes and returns the earliest event. CHECK-fails when empty.
  ClientCompletionEvent Pop();

  /// The earliest event without removing it. CHECK-fails when empty.
  const ClientCompletionEvent& Peek() const;

  bool empty() const { return heap_.empty(); }
  int size() const { return static_cast<int>(heap_.size()); }

  /// All queued events in heap-internal (unspecified) order — the
  /// checkpoint writer's snapshot surface. Restore by re-Pushing each;
  /// (time, sequence) is a total order, so the rebuilt heap pops
  /// identically regardless of the snapshot order.
  const std::vector<ClientCompletionEvent>& events() const { return heap_; }

 private:
  // std::priority_queue hides the top element from moves; a plain vector
  // with push_heap/pop_heap keeps Pop() a move, not a copy.
  std::vector<ClientCompletionEvent> heap_;
};

/// \brief W per-worker event heaps merged on (time, sequence).
///
/// Each shard owns the arrivals of its client-id partition
/// (`ShardOfClient`, util/shard.h). `Pop`/`Peek` select the earliest shard
/// head by (time, sequence) — an O(W) scan, trivial next to the per-event
/// aggregation work — which reproduces the exact pop order of one global
/// heap. W = 1 *is* one global heap.
class ShardedEventQueue {
 public:
  /// `num_shards` is clamped to at least 1.
  explicit ShardedEventQueue(int num_shards);

  /// Inserts an event into the heap of the shard owning its client id.
  void Push(ClientCompletionEvent event);

  /// Removes and returns the globally earliest event. CHECK-fails when
  /// empty.
  ClientCompletionEvent Pop();

  /// The globally earliest event without removing it. CHECK-fails when
  /// empty.
  const ClientCompletionEvent& Peek() const;

  bool empty() const { return size_ == 0; }
  int size() const { return size_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Events currently queued on one shard (load-balance introspection).
  int shard_size(int shard) const {
    return shards_[static_cast<size_t>(shard)].size();
  }
  /// One shard's heap (checkpoint snapshots via `EventQueue::events`).
  const EventQueue& shard(int shard) const {
    return shards_[static_cast<size_t>(shard)];
  }

 private:
  /// Index of the shard holding the globally earliest head. CHECK-fails
  /// when every shard is empty.
  int EarliestShard() const;

  std::vector<EventQueue> shards_;
  int size_ = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_SYS_EVENT_QUEUE_H_
