#include "sys/profiles.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/csv.h"

namespace fedadmm {
namespace {

// Stream tag for availability draws (see Rng::Fork).
constexpr uint64_t kAvailabilityTag = 0xA7A11AB1E;

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

// Log-normal compute throughput with median `median` steps/sec and
// log-stddev `sigma`, clamped to a sane device range.
double LogNormalSpeed(double median, double sigma, Rng* rng) {
  return Clamp(median * std::exp(rng->Normal(0.0, sigma)), 2.0, 1.0e4);
}

Result<double> ParseDouble(const std::string& field, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0' || !std::isfinite(v)) {
    return Status::InvalidArgument(std::string("FleetModel: bad ") + what +
                                   " value '" + field + "'");
  }
  return v;
}

Result<double> ParsePositive(const std::string& field, const char* what) {
  double v = 0.0;
  FEDADMM_ASSIGN_OR_RETURN(v, ParseDouble(field, what));
  if (v <= 0.0) {
    return Status::InvalidArgument(std::string("FleetModel: ") + what +
                                   " must be > 0, got '" + field + "'");
  }
  return v;
}

Result<int> ParseClientId(const std::string& field) {
  char* end = nullptr;
  const long v = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0' || v < 0) {
    return Status::InvalidArgument("FleetModel: bad client id '" + field +
                                   "'");
  }
  return static_cast<int>(v);
}

}  // namespace

FleetModel::FleetModel(std::vector<ClientSystemProfile> profiles,
                       std::string name)
    : profiles_(std::move(profiles)), name_(std::move(name)) {
  FEDADMM_CHECK_MSG(!profiles_.empty(), "FleetModel needs >= 1 client");
  for (const ClientSystemProfile& p : profiles_) {
    FEDADMM_CHECK_MSG(p.device.steps_per_second > 0.0 &&
                          p.network.upload_bytes_per_second > 0.0 &&
                          p.network.download_bytes_per_second > 0.0 &&
                          p.network.latency_seconds >= 0.0,
                      "FleetModel: rates must be positive");
    FEDADMM_CHECK_MSG(
        p.device.availability > 0.0 && p.device.availability <= 1.0,
        "FleetModel: availability must be in (0, 1]");
  }
}

Result<FleetModel> FleetModel::FromPreset(const std::string& preset,
                                          int num_clients, uint64_t seed) {
  if (num_clients < 1) {
    return Status::InvalidArgument("FleetModel: num_clients must be >= 1");
  }
  Rng rng = Rng(seed).Fork(0xF1EE7, static_cast<uint64_t>(num_clients));
  std::vector<ClientSystemProfile> profiles(
      static_cast<size_t>(num_clients));
  if (preset == "uniform") {
    // Defaults already describe an identical mid-range fleet.
  } else if (preset == "lognormal-speed") {
    for (ClientSystemProfile& p : profiles) {
      p.device.steps_per_second = LogNormalSpeed(100.0, 0.8, &rng);
    }
  } else if (preset == "cellular") {
    for (ClientSystemProfile& p : profiles) {
      p.device.steps_per_second = LogNormalSpeed(100.0, 0.5, &rng);
      p.device.availability = 0.8;
      if (rng.Bernoulli(0.4)) {  // metered cellular link
        p.network.upload_bytes_per_second = 2.5e5;
        p.network.download_bytes_per_second = 1.0e6;
        p.network.latency_seconds = 0.1;
      } else {  // wifi
        p.network.upload_bytes_per_second = 2.0e6;
        p.network.download_bytes_per_second = 1.0e7;
        p.network.latency_seconds = 0.02;
      }
    }
  } else if (preset == "cross-device-churn") {
    for (ClientSystemProfile& p : profiles) {
      p.device.steps_per_second = LogNormalSpeed(80.0, 1.0, &rng);
      p.device.availability = rng.Uniform(0.1, 0.6);
      p.network.upload_bytes_per_second = 5.0e5 * std::exp(
          rng.Normal(0.0, 0.5));
      p.network.download_bytes_per_second =
          4.0 * p.network.upload_bytes_per_second;
      p.network.latency_seconds = rng.Uniform(0.02, 0.15);
    }
  } else {
    return Status::InvalidArgument("FleetModel: unknown preset '" + preset +
                                   "'");
  }
  return FleetModel(std::move(profiles), preset);
}

Result<FleetModel> FleetModel::FromTraceCsv(const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  FEDADMM_ASSIGN_OR_RETURN(rows, ReadCsvFile(path));
  if (rows.size() < 2) {
    return Status::InvalidArgument("FleetModel: trace CSV needs a header and "
                                   "at least one client row: " +
                                   path);
  }
  // Validate the header: hand-written files with reordered columns would
  // otherwise parse silently into the wrong profile fields.
  const std::vector<std::string> expected = {
      "client",           "steps_per_second", "upload_bytes_per_second",
      "download_bytes_per_second", "latency_seconds", "availability"};
  const std::vector<std::string>& header = rows[0];
  if (header.size() < expected.size() || header.size() > expected.size() + 1 ||
      (header.size() == expected.size() + 1 && header.back() != "trace")) {
    return Status::InvalidArgument(
        "FleetModel: unexpected trace CSV header in " + path);
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (header[i] != expected[i]) {
      return Status::InvalidArgument("FleetModel: trace CSV column " +
                                     std::to_string(i) + " must be '" +
                                     expected[i] + "', got '" + header[i] +
                                     "'");
    }
  }
  std::vector<ClientSystemProfile> profiles(rows.size() - 1);
  std::vector<bool> seen(rows.size() - 1, false);
  for (size_t i = 1; i < rows.size(); ++i) {
    const std::vector<std::string>& row = rows[i];
    if (row.size() < 6 || row.size() > 7) {
      return Status::InvalidArgument(
          "FleetModel: trace CSV rows need 6-7 fields, got " +
          std::to_string(row.size()));
    }
    int client = -1;
    FEDADMM_ASSIGN_OR_RETURN(client, ParseClientId(row[0]));
    if (client >= static_cast<int>(profiles.size())) {
      return Status::InvalidArgument("FleetModel: client id '" + row[0] +
                                     "' out of range");
    }
    if (seen[static_cast<size_t>(client)]) {
      return Status::InvalidArgument("FleetModel: duplicate client id " +
                                     row[0]);
    }
    seen[static_cast<size_t>(client)] = true;
    ClientSystemProfile& p = profiles[static_cast<size_t>(client)];
    FEDADMM_ASSIGN_OR_RETURN(p.device.steps_per_second,
                             ParsePositive(row[1], "steps_per_second"));
    FEDADMM_ASSIGN_OR_RETURN(p.network.upload_bytes_per_second,
                             ParsePositive(row[2], "upload_bytes_per_second"));
    FEDADMM_ASSIGN_OR_RETURN(
        p.network.download_bytes_per_second,
        ParsePositive(row[3], "download_bytes_per_second"));
    FEDADMM_ASSIGN_OR_RETURN(p.network.latency_seconds,
                             ParseDouble(row[4], "latency_seconds"));
    if (p.network.latency_seconds < 0.0) {
      return Status::InvalidArgument("FleetModel: negative latency for " +
                                     row[0]);
    }
    FEDADMM_ASSIGN_OR_RETURN(p.device.availability,
                             ParsePositive(row[5], "availability"));
    if (p.device.availability > 1.0) {
      return Status::InvalidArgument("FleetModel: availability > 1 for " +
                                     row[0]);
    }
    if (row.size() == 7) {
      for (char c : row[6]) {
        if (c != '0' && c != '1') {
          return Status::InvalidArgument(
              "FleetModel: trace must be a string of 0/1, got '" + row[6] +
              "'");
        }
        p.device.availability_trace.push_back(c == '1' ? 1 : 0);
      }
    }
  }
  return FleetModel(std::move(profiles), "trace:" + path);
}

Status FleetModel::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  FEDADMM_RETURN_IF_ERROR(writer.Open(path));
  FEDADMM_RETURN_IF_ERROR(writer.WriteRow(
      {"client", "steps_per_second", "upload_bytes_per_second",
       "download_bytes_per_second", "latency_seconds", "availability",
       "trace"}));
  char buf[64];
  for (int i = 0; i < num_clients(); ++i) {
    const ClientSystemProfile& p = profiles_[static_cast<size_t>(i)];
    std::vector<std::string> row;
    row.push_back(std::to_string(i));
    const double values[] = {
        p.device.steps_per_second, p.network.upload_bytes_per_second,
        p.network.download_bytes_per_second, p.network.latency_seconds,
        p.device.availability};
    for (double v : values) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      row.emplace_back(buf);
    }
    std::string trace;
    for (uint8_t b : p.device.availability_trace) trace += (b ? '1' : '0');
    row.push_back(trace);
    FEDADMM_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

const ClientSystemProfile& FleetModel::profile(int client) const {
  FEDADMM_CHECK_MSG(client >= 0 && client < num_clients(),
                    "FleetModel: client id out of range");
  return profiles_[static_cast<size_t>(client)];
}

bool FleetModel::IsAvailable(int client, int round, const Rng& stream) const {
  const DeviceProfile& device = profile(client).device;
  if (!device.availability_trace.empty()) {
    const size_t n = device.availability_trace.size();
    return device.availability_trace[static_cast<size_t>(round) % n] != 0;
  }
  Rng draw = stream.Fork(kAvailabilityTag, static_cast<uint64_t>(client));
  return draw.Bernoulli(device.availability);
}

const std::vector<std::string>& FleetPresetNames() {
  static const std::vector<std::string> kNames = {
      "uniform", "lognormal-speed", "cellular", "cross-device-churn"};
  return kNames;
}

}  // namespace fedadmm
