/// \file straggler.h
/// \brief What the server does about clients that miss the round deadline.
///
/// Three policies bracket the design space:
///   * `WaitForAllPolicy` — synchronous FL: the round lasts as long as the
///     slowest client; nothing is ever lost.
///   * `DeadlineDropPolicy` — the server closes the round at a deadline and
///     discards updates that did not arrive. This is how FedAvg/SCAFFOLD
///     deployments must treat stragglers: their update encodes a full E
///     epochs or nothing.
///   * `DeadlineAdmitPartialPolicy` — the server closes the round at the
///     deadline but admits whatever fraction of the local work a straggler
///     finished (the client uploads its current iterate). FedADMM's
///     variable-epoch tolerance (Section V-A) makes such partial updates
///     useful rather than harmful, which is where its advantage over the
///     fixed-work baselines shows up in time-to-accuracy.
///
/// Policies are pure functions of `ClientTiming`, so round outcomes are
/// bitwise deterministic given the simulation seed.

#ifndef FEDADMM_SYS_STRAGGLER_H_
#define FEDADMM_SYS_STRAGGLER_H_

#include <string>
#include <vector>

#include "sys/virtual_clock.h"

namespace fedadmm {

/// \brief How the server treated one client's update.
enum class ClientFate {
  /// The update arrived in time and is aggregated as-is.
  kAdmitted = 0,
  /// The client missed the deadline; the fraction of its local work that
  /// fit before the cut-off is aggregated (delta scaled by work_fraction).
  kAdmittedPartial = 1,
  /// The update is discarded; the client's round was wasted.
  kDropped = 2,
};

/// \brief Verdict for one client.
struct StragglerDecision {
  ClientFate fate = ClientFate::kAdmitted;
  /// Fraction of the client's compute admitted (1 unless kAdmittedPartial).
  double work_fraction = 1.0;
  /// When the server stopped waiting for this client (seconds into the
  /// round): its finish time, or the deadline if it overran.
  double finish_seconds = 0.0;
  /// Fraction of the downlink broadcast the client had received when the
  /// server stopped tracking it. 1 unless the client was dropped while its
  /// download was still in flight (time-proportional approximation of the
  /// bytes on the wire by the cut-off); download accounting bills only this
  /// fraction — a client that never finished pulling θ is not billed a full
  /// broadcast.
  double download_fraction = 1.0;
};

/// \brief Server-side straggler handling strategy.
class StragglerPolicy {
 public:
  virtual ~StragglerPolicy() = default;

  /// Judges one client from its simulated timing.
  virtual StragglerDecision Judge(const ClientTiming& timing) const = 0;

  /// The round's simulated duration given every client's verdict.
  virtual double RoundSeconds(
      const std::vector<StragglerDecision>& decisions) const = 0;

  virtual std::string name() const = 0;
};

/// \brief Fully synchronous: admit everything, wait for the slowest client.
class WaitForAllPolicy : public StragglerPolicy {
 public:
  StragglerDecision Judge(const ClientTiming& timing) const override;
  double RoundSeconds(
      const std::vector<StragglerDecision>& decisions) const override;
  std::string name() const override { return "wait-for-all"; }
};

/// \brief Close the round after `deadline_seconds`; discard late updates.
class DeadlineDropPolicy : public StragglerPolicy {
 public:
  explicit DeadlineDropPolicy(double deadline_seconds);

  StragglerDecision Judge(const ClientTiming& timing) const override;
  double RoundSeconds(
      const std::vector<StragglerDecision>& decisions) const override;
  std::string name() const override { return "deadline-drop"; }

  double deadline_seconds() const { return deadline_seconds_; }

 private:
  double deadline_seconds_;
};

/// \brief Close the round after `deadline_seconds`; admit the fraction of a
/// late client's compute that fit before the cut-off (reserving its upload
/// time), dropping it only when even the bare transfers overrun.
///
/// Modeling note: the simulator applies the admitted fraction by scaling
/// the already-computed upload *after* local training (first-order stand-in
/// for the client shipping its deadline iterate, where the SGD path length
/// is roughly proportional to steps). Per-client persistent state (FedADMM
/// duals y_i, SCAFFOLD controls c_i) still reflects the full local pass, so
/// absolute trajectories under this policy are approximate; cross-algorithm
/// comparisons remain fair because every method is scaled identically.
class DeadlineAdmitPartialPolicy : public StragglerPolicy {
 public:
  explicit DeadlineAdmitPartialPolicy(double deadline_seconds);

  StragglerDecision Judge(const ClientTiming& timing) const override;
  double RoundSeconds(
      const std::vector<StragglerDecision>& decisions) const override;
  std::string name() const override { return "deadline-admit-partial"; }

  double deadline_seconds() const { return deadline_seconds_; }

 private:
  double deadline_seconds_;
};

}  // namespace fedadmm

#endif  // FEDADMM_SYS_STRAGGLER_H_
