/// \file profiles.h
/// \brief Device/network capability profiles and the fleet model.
///
/// System heterogeneity (Section V-A of the paper) is more than variable
/// epoch counts: real federated fleets differ in compute throughput, link
/// bandwidth, latency and availability. A `FleetModel` assigns every client
/// a `ClientSystemProfile` — either sampled deterministically from a named
/// preset or loaded from a CSV trace — and is the single source of truth the
/// virtual clock (sys/virtual_clock.h), the straggler policies
/// (sys/straggler.h) and the availability-aware selector (fl/selection.h)
/// consult.

#ifndef FEDADMM_SYS_PROFILES_H_
#define FEDADMM_SYS_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace fedadmm {

/// \brief Compute capability and availability of one device.
struct DeviceProfile {
  /// Local SGD steps the device completes per simulated second.
  double steps_per_second = 100.0;
  /// Per-round participation probability in (0, 1]; ignored when
  /// `availability_trace` is non-empty.
  double availability = 1.0;
  /// Optional availability trace: round r consults
  /// `availability_trace[r % size]` (1 = reachable). Overrides
  /// `availability`.
  std::vector<uint8_t> availability_trace;
};

/// \brief Link capability of one device.
struct NetworkProfile {
  /// Uplink throughput in bytes per simulated second.
  double upload_bytes_per_second = 1.0e6;
  /// Downlink throughput in bytes per simulated second.
  double download_bytes_per_second = 5.0e6;
  /// One-way latency in seconds, paid once per transfer direction.
  double latency_seconds = 0.05;
};

/// \brief Everything the system model knows about one client's device.
struct ClientSystemProfile {
  DeviceProfile device;
  NetworkProfile network;
};

/// \brief A population of client profiles plus availability sampling.
///
/// Construction is fully deterministic: `FromPreset` draws every profile
/// from an Rng seeded only by (preset, seed), and `IsAvailable` forks
/// per-client streams from the caller-provided generator — results never
/// depend on query order.
class FleetModel {
 public:
  /// Builds a fleet from an explicit profile list (used by tests and by the
  /// CSV loader).
  explicit FleetModel(std::vector<ClientSystemProfile> profiles,
                      std::string name = "custom");

  /// Samples `num_clients` profiles from a named preset:
  ///   * "uniform":            identical mid-range devices, always available;
  ///   * "lognormal-speed":    log-normally distributed compute throughput
  ///                           (heavy slow tail), uniform network;
  ///   * "cellular":           bimodal wifi/cellular links, moderately
  ///                           variable compute, 80% availability;
  ///   * "cross-device-churn": wide compute spread and low, heterogeneous
  ///                           availability (cross-device FL).
  /// Returns InvalidArgument for an unknown preset name.
  static Result<FleetModel> FromPreset(const std::string& preset,
                                       int num_clients, uint64_t seed);

  /// Loads a fleet from a CSV written by `WriteCsv` (or by hand). Expected
  /// header: client,steps_per_second,upload_bytes_per_second,
  /// download_bytes_per_second,latency_seconds,availability,trace — where
  /// `trace` is an optional string of '0'/'1' characters (empty = use the
  /// probability). Rows must cover clients 0..m-1 exactly once.
  static Result<FleetModel> FromTraceCsv(const std::string& path);

  /// Writes the fleet in the `FromTraceCsv` format (round-trippable).
  Status WriteCsv(const std::string& path) const;

  /// Number of clients m.
  int num_clients() const { return static_cast<int>(profiles_.size()); }

  /// Profile of `client` (0 <= client < num_clients).
  const ClientSystemProfile& profile(int client) const;

  /// Whether `client` is reachable in `round`. Trace-driven profiles answer
  /// from the trace; probabilistic ones draw a Bernoulli from a per-client
  /// fork of `stream`, so the answer is independent of query order but
  /// varies with the stream (callers key it by round/attempt).
  bool IsAvailable(int client, int round, const Rng& stream) const;

  /// Preset name, "custom", or "trace:<path>".
  const std::string& name() const { return name_; }

 private:
  std::vector<ClientSystemProfile> profiles_;
  std::string name_;
};

/// Names accepted by `FleetModel::FromPreset`, for help strings and sweeps.
const std::vector<std::string>& FleetPresetNames();

}  // namespace fedadmm

#endif  // FEDADMM_SYS_PROFILES_H_
