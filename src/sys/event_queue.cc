#include "sys/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/file_io.h"
#include "util/shard.h"
#include "util/status.h"

namespace fedadmm {
namespace {

// Max-heap comparator inverted for a min-heap on (time, sequence).
bool Later(const ClientCompletionEvent& a, const ClientCompletionEvent& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.sequence > b.sequence;
}

}  // namespace

void SerializeClientCompletionEvent(const ClientCompletionEvent& event,
                                    ByteWriter* writer) {
  writer->F64(event.time);
  writer->I64(event.sequence);
  writer->U32(static_cast<uint32_t>(event.client_id));
  writer->U32(static_cast<uint32_t>(event.wave));
  writer->U32(static_cast<uint32_t>(event.theta_version));
  writer->F64(event.timing.download_seconds);
  writer->F64(event.timing.compute_seconds);
  writer->F64(event.timing.upload_seconds);
  writer->U8(static_cast<uint8_t>(event.decision.fate));
  writer->F64(event.decision.work_fraction);
  writer->F64(event.decision.finish_seconds);
  writer->F64(event.decision.download_fraction);
  writer->U32(static_cast<uint32_t>(event.message.client_id));
  writer->Floats(event.message.delta);
  writer->Floats(event.message.delta2);
  writer->F64(event.message.train_loss);
  writer->U32(static_cast<uint32_t>(event.message.epochs_run));
  writer->U32(static_cast<uint32_t>(event.message.steps_run));
  writer->F64(event.message.final_grad_norm_sq);
  writer->I64(event.message.wire_bytes);
}

Result<ClientCompletionEvent> DeserializeClientCompletionEvent(
    ByteReader* reader) {
  ClientCompletionEvent event;
  FEDADMM_ASSIGN_OR_RETURN(event.time, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(event.sequence, reader->I64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t client_id, reader->U32());
  event.client_id = static_cast<int>(client_id);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t wave, reader->U32());
  event.wave = static_cast<int>(wave);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t theta_version, reader->U32());
  event.theta_version = static_cast<int>(theta_version);
  FEDADMM_ASSIGN_OR_RETURN(event.timing.download_seconds, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(event.timing.compute_seconds, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(event.timing.upload_seconds, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(uint8_t fate, reader->U8());
  if (fate > static_cast<uint8_t>(ClientFate::kDropped)) {
    return Status::InvalidArgument(
        "DeserializeClientCompletionEvent: bad ClientFate " +
        std::to_string(fate));
  }
  event.decision.fate = static_cast<ClientFate>(fate);
  FEDADMM_ASSIGN_OR_RETURN(event.decision.work_fraction, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(event.decision.finish_seconds, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(event.decision.download_fraction, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t message_client, reader->U32());
  event.message.client_id = static_cast<int>(message_client);
  FEDADMM_ASSIGN_OR_RETURN(event.message.delta, reader->Floats());
  FEDADMM_ASSIGN_OR_RETURN(event.message.delta2, reader->Floats());
  FEDADMM_ASSIGN_OR_RETURN(event.message.train_loss, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(uint32_t epochs_run, reader->U32());
  event.message.epochs_run = static_cast<int>(epochs_run);
  FEDADMM_ASSIGN_OR_RETURN(uint32_t steps_run, reader->U32());
  event.message.steps_run = static_cast<int>(steps_run);
  FEDADMM_ASSIGN_OR_RETURN(event.message.final_grad_norm_sq, reader->F64());
  FEDADMM_ASSIGN_OR_RETURN(event.message.wire_bytes, reader->I64());
  return {std::move(event)};
}

ClientCompletionEvent MakeClientCompletionEvent(
    const ClientSystemProfile& profile, const StragglerPolicy& policy,
    double dispatch_seconds, int64_t download_bytes, UpdateMessage message,
    int wave, int theta_version, int64_t sequence) {
  ClientCompletionEvent event;
  event.client_id = message.client_id;
  event.wave = wave;
  event.theta_version = theta_version;
  event.sequence = sequence;
  event.timing = ComputeClientTiming(profile, message.steps_run,
                                     message.UploadBytes(), download_bytes);
  event.decision = policy.Judge(event.timing);
  event.time = dispatch_seconds + event.decision.finish_seconds;
  event.message = std::move(message);
  return event;
}

void EventQueue::Push(ClientCompletionEvent event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

ClientCompletionEvent EventQueue::Pop() {
  FEDADMM_CHECK_MSG(!heap_.empty(), "EventQueue: Pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  ClientCompletionEvent event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

const ClientCompletionEvent& EventQueue::Peek() const {
  FEDADMM_CHECK_MSG(!heap_.empty(), "EventQueue: Peek on empty queue");
  return heap_.front();
}

ShardedEventQueue::ShardedEventQueue(int num_shards)
    : shards_(static_cast<size_t>(std::max(1, num_shards))) {}

void ShardedEventQueue::Push(ClientCompletionEvent event) {
  const int shard = ShardOfClient(event.client_id, num_shards());
  shards_[static_cast<size_t>(shard)].Push(std::move(event));
  ++size_;
}

int ShardedEventQueue::EarliestShard() const {
  int best = -1;
  for (int s = 0; s < num_shards(); ++s) {
    if (shards_[static_cast<size_t>(s)].empty()) continue;
    if (best < 0 || Later(shards_[static_cast<size_t>(best)].Peek(),
                          shards_[static_cast<size_t>(s)].Peek())) {
      best = s;
    }
  }
  FEDADMM_CHECK_MSG(best >= 0, "ShardedEventQueue: empty queue");
  return best;
}

ClientCompletionEvent ShardedEventQueue::Pop() {
  ClientCompletionEvent event =
      shards_[static_cast<size_t>(EarliestShard())].Pop();
  --size_;
  return event;
}

const ClientCompletionEvent& ShardedEventQueue::Peek() const {
  return shards_[static_cast<size_t>(EarliestShard())].Peek();
}

}  // namespace fedadmm
