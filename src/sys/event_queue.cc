#include "sys/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/status.h"

namespace fedadmm {
namespace {

// Max-heap comparator inverted for a min-heap on (time, sequence).
bool Later(const ClientCompletionEvent& a, const ClientCompletionEvent& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.sequence > b.sequence;
}

}  // namespace

ClientCompletionEvent MakeClientCompletionEvent(
    const ClientSystemProfile& profile, const StragglerPolicy& policy,
    double dispatch_seconds, int64_t download_bytes, UpdateMessage message,
    int wave, int theta_version, int64_t sequence) {
  ClientCompletionEvent event;
  event.client_id = message.client_id;
  event.wave = wave;
  event.theta_version = theta_version;
  event.sequence = sequence;
  event.timing = ComputeClientTiming(profile, message.steps_run,
                                     message.UploadBytes(), download_bytes);
  event.decision = policy.Judge(event.timing);
  event.time = dispatch_seconds + event.decision.finish_seconds;
  event.message = std::move(message);
  return event;
}

void EventQueue::Push(ClientCompletionEvent event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

ClientCompletionEvent EventQueue::Pop() {
  FEDADMM_CHECK_MSG(!heap_.empty(), "EventQueue: Pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  ClientCompletionEvent event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

const ClientCompletionEvent& EventQueue::Peek() const {
  FEDADMM_CHECK_MSG(!heap_.empty(), "EventQueue: Peek on empty queue");
  return heap_.front();
}

}  // namespace fedadmm
