#include "sys/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/shard.h"
#include "util/status.h"

namespace fedadmm {
namespace {

// Max-heap comparator inverted for a min-heap on (time, sequence).
bool Later(const ClientCompletionEvent& a, const ClientCompletionEvent& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.sequence > b.sequence;
}

}  // namespace

ClientCompletionEvent MakeClientCompletionEvent(
    const ClientSystemProfile& profile, const StragglerPolicy& policy,
    double dispatch_seconds, int64_t download_bytes, UpdateMessage message,
    int wave, int theta_version, int64_t sequence) {
  ClientCompletionEvent event;
  event.client_id = message.client_id;
  event.wave = wave;
  event.theta_version = theta_version;
  event.sequence = sequence;
  event.timing = ComputeClientTiming(profile, message.steps_run,
                                     message.UploadBytes(), download_bytes);
  event.decision = policy.Judge(event.timing);
  event.time = dispatch_seconds + event.decision.finish_seconds;
  event.message = std::move(message);
  return event;
}

void EventQueue::Push(ClientCompletionEvent event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

ClientCompletionEvent EventQueue::Pop() {
  FEDADMM_CHECK_MSG(!heap_.empty(), "EventQueue: Pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  ClientCompletionEvent event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

const ClientCompletionEvent& EventQueue::Peek() const {
  FEDADMM_CHECK_MSG(!heap_.empty(), "EventQueue: Peek on empty queue");
  return heap_.front();
}

ShardedEventQueue::ShardedEventQueue(int num_shards)
    : shards_(static_cast<size_t>(std::max(1, num_shards))) {}

void ShardedEventQueue::Push(ClientCompletionEvent event) {
  const int shard = ShardOfClient(event.client_id, num_shards());
  shards_[static_cast<size_t>(shard)].Push(std::move(event));
  ++size_;
}

int ShardedEventQueue::EarliestShard() const {
  int best = -1;
  for (int s = 0; s < num_shards(); ++s) {
    if (shards_[static_cast<size_t>(s)].empty()) continue;
    if (best < 0 || Later(shards_[static_cast<size_t>(best)].Peek(),
                          shards_[static_cast<size_t>(s)].Peek())) {
      best = s;
    }
  }
  FEDADMM_CHECK_MSG(best >= 0, "ShardedEventQueue: empty queue");
  return best;
}

ClientCompletionEvent ShardedEventQueue::Pop() {
  ClientCompletionEvent event =
      shards_[static_cast<size_t>(EarliestShard())].Pop();
  --size_;
  return event;
}

const ClientCompletionEvent& ShardedEventQueue::Peek() const {
  return shards_[static_cast<size_t>(EarliestShard())].Peek();
}

}  // namespace fedadmm
