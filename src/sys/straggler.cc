#include "sys/straggler.h"

#include <algorithm>

#include "util/status.h"

namespace fedadmm {
namespace {

// The server stops waiting when the last tracked client does.
double MaxFinishSeconds(const std::vector<StragglerDecision>& decisions) {
  double finish = 0.0;
  for (const StragglerDecision& d : decisions) {
    finish = std::max(finish, d.finish_seconds);
  }
  return finish;
}

// Fraction of the broadcast received by `cutoff` seconds into the round,
// approximated as time-proportional over the download leg.
double ReceivedDownloadFraction(const ClientTiming& timing, double cutoff) {
  if (timing.download_seconds <= cutoff) return 1.0;
  if (timing.download_seconds <= 0.0) return 1.0;
  return std::max(0.0, cutoff / timing.download_seconds);
}

}  // namespace

StragglerDecision WaitForAllPolicy::Judge(const ClientTiming& timing) const {
  StragglerDecision d;
  d.fate = ClientFate::kAdmitted;
  d.finish_seconds = timing.TotalSeconds();
  return d;
}

double WaitForAllPolicy::RoundSeconds(
    const std::vector<StragglerDecision>& decisions) const {
  return MaxFinishSeconds(decisions);
}

DeadlineDropPolicy::DeadlineDropPolicy(double deadline_seconds)
    : deadline_seconds_(deadline_seconds) {
  FEDADMM_CHECK_MSG(deadline_seconds > 0.0,
                    "DeadlineDropPolicy: deadline must be > 0");
}

StragglerDecision DeadlineDropPolicy::Judge(const ClientTiming& timing) const {
  StragglerDecision d;
  const double total = timing.TotalSeconds();
  if (total <= deadline_seconds_) {
    d.fate = ClientFate::kAdmitted;
    d.finish_seconds = total;
  } else {
    d.fate = ClientFate::kDropped;
    d.finish_seconds = deadline_seconds_;  // the server waits out the round
    d.download_fraction = ReceivedDownloadFraction(timing, deadline_seconds_);
  }
  return d;
}

double DeadlineDropPolicy::RoundSeconds(
    const std::vector<StragglerDecision>& decisions) const {
  return MaxFinishSeconds(decisions);
}

DeadlineAdmitPartialPolicy::DeadlineAdmitPartialPolicy(double deadline_seconds)
    : deadline_seconds_(deadline_seconds) {
  FEDADMM_CHECK_MSG(deadline_seconds > 0.0,
                    "DeadlineAdmitPartialPolicy: deadline must be > 0");
}

StragglerDecision DeadlineAdmitPartialPolicy::Judge(
    const ClientTiming& timing) const {
  StragglerDecision d;
  const double total = timing.TotalSeconds();
  if (total <= deadline_seconds_) {
    d.fate = ClientFate::kAdmitted;
    d.finish_seconds = total;
    return d;
  }
  // The client must still fit its transfers before the cut-off; whatever
  // compute time remains bounds the admissible fraction of its local work.
  const double transfer = timing.download_seconds + timing.upload_seconds;
  const double compute_budget = deadline_seconds_ - transfer;
  if (compute_budget <= 0.0 || timing.compute_seconds <= 0.0) {
    d.fate = ClientFate::kDropped;
    d.download_fraction = ReceivedDownloadFraction(timing, deadline_seconds_);
  } else {
    d.fate = ClientFate::kAdmittedPartial;
    d.work_fraction = compute_budget / timing.compute_seconds;
  }
  d.finish_seconds = deadline_seconds_;
  return d;
}

double DeadlineAdmitPartialPolicy::RoundSeconds(
    const std::vector<StragglerDecision>& decisions) const {
  return MaxFinishSeconds(decisions);
}

}  // namespace fedadmm
