#include "sys/virtual_clock.h"

#include <algorithm>

#include "util/status.h"

namespace fedadmm {

ClientTiming ComputeClientTiming(const ClientSystemProfile& profile,
                                 int steps_run, int64_t upload_bytes,
                                 int64_t download_bytes) {
  FEDADMM_CHECK_MSG(steps_run >= 0 && upload_bytes >= 0 && download_bytes >= 0,
                    "ComputeClientTiming: negative work");
  const NetworkProfile& net = profile.network;
  ClientTiming t;
  if (download_bytes > 0) {
    t.download_seconds =
        net.latency_seconds +
        static_cast<double>(download_bytes) / net.download_bytes_per_second;
  }
  t.compute_seconds =
      static_cast<double>(steps_run) / profile.device.steps_per_second;
  if (upload_bytes > 0) {
    t.upload_seconds =
        net.latency_seconds +
        static_cast<double>(upload_bytes) / net.upload_bytes_per_second;
  }
  return t;
}

double CriticalPathSeconds(const std::vector<ClientTiming>& timings) {
  double critical = 0.0;
  for (const ClientTiming& t : timings) {
    critical = std::max(critical, t.TotalSeconds());
  }
  return critical;
}

void VirtualClock::Advance(double seconds) {
  FEDADMM_CHECK_MSG(seconds >= 0.0,
                    "VirtualClock: time must not run backwards");
  now_ += seconds;
}

}  // namespace fedadmm
