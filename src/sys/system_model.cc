#include "sys/system_model.h"

namespace fedadmm {

RoundJudgment SystemModel::JudgeRound(
    const std::vector<UpdateMessage>& updates,
    int64_t download_bytes_per_client) const {
  RoundJudgment judgment;
  judgment.decisions.reserve(updates.size());
  for (const UpdateMessage& msg : updates) {
    const ClientTiming timing =
        ComputeClientTiming(fleet_.profile(msg.client_id), msg.steps_run,
                            msg.UploadBytes(), download_bytes_per_client);
    const StragglerDecision decision = policy_->Judge(timing);
    if (decision.fate == ClientFate::kDropped) ++judgment.num_dropped;
    if (decision.fate == ClientFate::kAdmittedPartial) {
      ++judgment.num_admitted_partial;
    }
    judgment.decisions.push_back(decision);
  }
  judgment.round_seconds = policy_->RoundSeconds(judgment.decisions);
  return judgment;
}

Result<std::unique_ptr<StragglerPolicy>> MakeStragglerPolicy(
    const std::string& name, double deadline_seconds) {
  if (name == "wait-for-all") {
    return std::unique_ptr<StragglerPolicy>(new WaitForAllPolicy());
  }
  if (name == "deadline-drop" || name == "deadline-admit-partial") {
    if (deadline_seconds <= 0.0) {
      return Status::InvalidArgument("MakeStragglerPolicy: '" + name +
                                     "' needs deadline_seconds > 0");
    }
    if (name == "deadline-drop") {
      return std::unique_ptr<StragglerPolicy>(
          new DeadlineDropPolicy(deadline_seconds));
    }
    return std::unique_ptr<StragglerPolicy>(
        new DeadlineAdmitPartialPolicy(deadline_seconds));
  }
  return Status::InvalidArgument("MakeStragglerPolicy: unknown policy '" +
                                 name + "'");
}

}  // namespace fedadmm
