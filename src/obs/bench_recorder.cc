#include "obs/bench_recorder.h"

#include <cstdio>

#include "obs/json.h"

namespace fedadmm::obs {

BenchResult& BenchResult::AddMetric(const std::string& key, double value) {
  metrics_[key] = value;
  return *this;
}

BenchResult& BenchResult::AddMetric(const std::string& key, int64_t value) {
  metrics_[key] = static_cast<double>(value);
  return *this;
}

BenchResult& BenchResult::AddLatencyMetrics(const std::string& prefix,
                                            const std::string& unit_suffix,
                                            const HistogramStats& stats) {
  AddMetric(prefix + "_count", stats.count);
  AddMetric(prefix + "_p50" + unit_suffix, stats.Percentile(50));
  AddMetric(prefix + "_p90" + unit_suffix, stats.Percentile(90));
  AddMetric(prefix + "_p99" + unit_suffix, stats.Percentile(99));
  AddMetric(prefix + "_max" + unit_suffix,
            stats.count ? stats.max : stats.Mean());
  AddMetric(prefix + "_mean" + unit_suffix, stats.Mean());
  return *this;
}

void BenchRecorder::AddContext(const std::string& key,
                               const std::string& value) {
  context_[key] = value;
}

void BenchRecorder::AddContext(const std::string& key, int64_t value) {
  context_[key] = std::to_string(value);
}

BenchResult* BenchRecorder::AddResult(const std::string& name) {
  results_.push_back(std::make_unique<BenchResult>(name));
  return results_.back().get();
}

std::string BenchRecorder::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench_name_);
  w.Key("schema_version").Int(1);
  w.Key("context").BeginObject();
  for (const auto& [key, value] : context_) {
    w.Key(key).String(value);
  }
  w.EndObject();
  w.Key("results").BeginArray();
  for (const auto& result : results_) {
    w.BeginObject();
    w.Key("name").String(result->name());
    w.Key("metrics").BeginObject();
    for (const auto& [key, value] : result->metrics()) {
      w.Key(key).Double(value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status BenchRecorder::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("BenchRecorder: cannot open " + path);
  }
  const std::string doc = ToJson();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const int close_err = std::fclose(file);
  if (written != doc.size() || !newline_ok || close_err != 0) {
    return Status::IoError("BenchRecorder: short write to " + path);
  }
  return Status::OK();
}

}  // namespace fedadmm::obs
