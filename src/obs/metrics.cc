#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/json.h"

namespace fedadmm::obs {
namespace {

/// Bucket bounds are computed once: pow in a hot Record would be wasteful
/// and, worse, a per-call rounding hazard. Each decade is anchored at its
/// exact literal (1e-6 * pow(10, i/8) drifts a few ULPs below 1e-5, which
/// would push a sample sitting exactly on a decade edge one bucket high
/// and cost the edge-exactness the percentile tests pin down).
const std::array<double, HistogramStats::kNumBuckets>& BucketBounds() {
  static const auto bounds = [] {
    constexpr std::array<double, HistogramStats::kDecades> anchors = {
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1};
    std::array<double, HistogramStats::kNumBuckets> b{};
    for (int i = 0; i + 1 < HistogramStats::kNumBuckets; ++i) {
      const int decade = i / HistogramStats::kBucketsPerDecade;
      const int step = i % HistogramStats::kBucketsPerDecade;
      b[static_cast<size_t>(i)] =
          anchors[static_cast<size_t>(decade)] *
          std::pow(10.0, static_cast<double>(step) /
                             HistogramStats::kBucketsPerDecade);
    }
    b[HistogramStats::kNumBuckets - 1] =
        std::numeric_limits<double>::infinity();
    return b;
  }();
  return bounds;
}

}  // namespace

double HistogramStats::UpperBound(int i) {
  return BucketBounds()[static_cast<size_t>(i)];
}

int HistogramStats::BucketIndex(double seconds) {
  const auto& bounds = BucketBounds();
  const auto it =
      std::lower_bound(bounds.begin(), bounds.end() - 1, seconds);
  return static_cast<int>(it - bounds.begin());
}

double HistogramStats::Percentile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  const double fraction = std::clamp(q, 0.0, 100.0) / 100.0;
  // 1-based rank of the order statistic the percentile asks for; q = 0
  // still inspects the first sample.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(fraction * count)));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      // Bucket resolution, but never outside the exact extrema: the
      // overflow bucket reports max, a first-bucket rank cannot undercut
      // min, and a single-sample histogram collapses to that sample.
      return std::clamp(UpperBound(i), min, max);
    }
  }
  return max;
}

double HistogramStats::Mean() const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(count);
}

void HistogramStats::MergeFrom(const HistogramStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[static_cast<size_t>(i)] += other.buckets[static_cast<size_t>(i)];
  }
}

void Histogram::Record(double seconds) {
  const double sample = std::max(seconds, 0.0);
  const int bucket = HistogramStats::BucketIndex(sample);
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.count == 0) {
    stats_.min = sample;
    stats_.max = sample;
  } else {
    stats_.min = std::min(stats_.min, sample);
    stats_.max = std::max(stats_.max, sample);
  }
  ++stats_.count;
  stats_.sum += sample;
  ++stats_.buckets[static_cast<size_t>(bucket)];
}

HistogramStats Histogram::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = HistogramStats();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Stats());
  }
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

HistogramStats MetricsSnapshot::AggregateHistograms(
    std::string_view prefix) const {
  HistogramStats merged;
  for (const auto& [name, stats] : histograms) {
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      merged.MergeFrom(stats);
    }
  }
  return merged;
}

std::string ShardLabel(std::string_view base, int shard) {
  std::string name(base);
  name += "{shard=";
  name += std::to_string(shard);
  name += '}';
  return name;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, stats] : snapshot.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Int(stats.count);
    w.Key("sum_seconds").Double(stats.sum);
    w.Key("min_seconds").Double(stats.count ? stats.min : 0.0);
    w.Key("max_seconds").Double(stats.count ? stats.max : 0.0);
    w.Key("mean_seconds").Double(stats.Mean());
    w.Key("p50_seconds").Double(stats.Percentile(50));
    w.Key("p90_seconds").Double(stats.Percentile(90));
    w.Key("p99_seconds").Double(stats.Percentile(99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace fedadmm::obs
