/// \file json.h
/// \brief Minimal JSON writing and parsing for the observability rail.
///
/// The obs subsystem persists three artifact families — `BENCH_*.json`
/// perf baselines, chrome://tracing event files, and per-round JSONL
/// traces — and `tools/bench_diff` reads the first back. The environment
/// is offline and dependency-free, so this file owns the one JSON dialect
/// all of them share:
///
///   * `JsonWriter` — streaming writer with automatic comma/nesting
///     management. Doubles print at max_digits10 (bitwise
///     round-trippable); NaN/Inf — which JSON cannot represent — print as
///     `null`, mirroring how the CSV rail prints "nan".
///   * `JsonValue` / `ParseJson` — a recursive-descent parser for the
///     subset the writer emits (objects, arrays, strings, numbers, bools,
///     null). Object key order is preserved so diffs stay readable.
///
/// Neither side aims at full RFC 8259 (no \u surrogate pairs, no
/// scientific-notation edge policing beyond strtod) — both ends of every
/// artifact are this library.

#ifndef FEDADMM_OBS_JSON_H_
#define FEDADMM_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fedadmm::obs {

/// \brief Escapes `text` for inclusion inside a JSON string literal
/// (quotes, backslashes, control characters).
std::string EscapeJson(std::string_view text);

/// \brief Streaming JSON writer with automatic comma insertion.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("name").String("x").Key("v").Int(3).EndObject();
///   file << w.str();
///
/// Calls are CHECKed for gross misuse (value with no pending key inside an
/// object, unbalanced End*).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; the next call must produce its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  /// max_digits10 round-trippable; NaN/Inf emit `null`.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far.
  const std::string& str() const { return out_; }
  /// True once every Begin* has been balanced by its End*.
  bool complete() const { return frames_.empty() && wrote_value_; }

 private:
  enum class Frame { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Frame> frames_;
  /// Whether the current frame already holds at least one element.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
  bool wrote_value_ = false;
};

/// \brief A parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  /// Object members in source order.
  std::vector<std::pair<std::string, JsonValue>> members;
  /// Array elements in source order.
  std::vector<JsonValue> elements;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_null() const { return kind == Kind::kNull; }

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// \brief Parses one JSON document. Trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace fedadmm::obs

#endif  // FEDADMM_OBS_JSON_H_
