/// \file bench_compare.h
/// \brief The regression-gate logic behind `tools/bench_diff`.
///
/// Compares a freshly produced BENCH_*.json (obs/bench_recorder.h schema)
/// against the committed baseline and decides pass/fail. Library, not
/// binary, so the gate's semantics are unit-tested; the tool is a thin CLI
/// over `CompareBenchJson`.
///
/// Gating classes, chosen by metric-name suffix (the recorder's contract):
///
///   * **deterministic** (`*_bytes`, `*_count`, `*_rounds`,
///     `*_sim_seconds` — simulated time, byte ledgers, round counts):
///     identical binaries must reproduce these exactly, so they gate at
///     `deterministic_tolerance_pct` (default 0). Any drift is a real
///     behavior change, not noise.
///   * **wall clock** (`*_wall_seconds`, `*_us` — host-dependent
///     latencies): gate at `tolerance_pct` (default 25), failing only on
///     *regressions* (fresh > baseline); improvements always pass.
///   * everything else (accuracies, speedups) is informational — reported
///     as notes, never failed.
///
/// A result present in the baseline but missing from the fresh run fails
/// (silent coverage loss is itself a regression); new results are noted.
/// Context mismatches fail unless `require_context_match` is off — numbers
/// from different fleet presets / W / stores are not comparable.

#ifndef FEDADMM_OBS_BENCH_COMPARE_H_
#define FEDADMM_OBS_BENCH_COMPARE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fedadmm::obs {

/// \brief Knobs of one comparison.
struct BenchCompareOptions {
  /// Allowed upward drift of wall-clock metrics, in percent.
  double tolerance_pct = 25.0;
  /// Allowed drift (both directions) of deterministic metrics, in percent.
  double deterministic_tolerance_pct = 0.0;
  /// Fail when the `context` objects differ.
  bool require_context_match = true;
};

/// \brief Gating class of one metric.
enum class MetricClass {
  kDeterministic,
  kWallClock,
  kInformational,
};

/// Classifies a metric name by its suffix (see file comment).
MetricClass ClassifyMetric(std::string_view name);

/// \brief Outcome of one comparison.
struct BenchCompareReport {
  bool ok = false;
  /// Human-readable gate failures (empty when ok).
  std::vector<std::string> failures;
  /// Non-fatal observations (new results, informational drift).
  std::vector<std::string> notes;
  int metrics_compared = 0;
  int metrics_gated = 0;
};

/// \brief Compares two serialized BENCH_*.json documents.
/// Returns InvalidArgument when either document fails to parse or is not
/// the recorder schema.
Result<BenchCompareReport> CompareBenchJson(const std::string& baseline_json,
                                            const std::string& fresh_json,
                                            const BenchCompareOptions& options);

/// \brief File-path convenience wrapper over `CompareBenchJson`.
Result<BenchCompareReport> CompareBenchFiles(const std::string& baseline_path,
                                             const std::string& fresh_path,
                                             const BenchCompareOptions& options);

}  // namespace fedadmm::obs

#endif  // FEDADMM_OBS_BENCH_COMPARE_H_
