#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fedadmm::obs {

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (frames_.empty()) {
    FEDADMM_CHECK_MSG(!wrote_value_, "JsonWriter: two top-level values");
    return;
  }
  if (frames_.back() == Frame::kObject) {
    FEDADMM_CHECK_MSG(pending_key_, "JsonWriter: object value without Key()");
    pending_key_ = false;
    return;
  }
  if (has_elements_.back()) out_ += ',';
  has_elements_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  frames_.push_back(Frame::kObject);
  has_elements_.push_back(false);
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FEDADMM_CHECK_MSG(!frames_.empty() && frames_.back() == Frame::kObject &&
                        !pending_key_,
                    "JsonWriter: unbalanced EndObject");
  out_ += '}';
  frames_.pop_back();
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  frames_.push_back(Frame::kArray);
  has_elements_.push_back(false);
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FEDADMM_CHECK_MSG(!frames_.empty() && frames_.back() == Frame::kArray,
                    "JsonWriter: unbalanced EndArray");
  out_ += ']';
  frames_.pop_back();
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  FEDADMM_CHECK_MSG(!frames_.empty() && frames_.back() == Frame::kObject &&
                        !pending_key_,
                    "JsonWriter: Key() outside an object");
  if (has_elements_.back()) out_ += ',';
  has_elements_.back() = true;
  out_ += '"';
  out_ += EscapeJson(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  }
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  wrote_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  wrote_value_ = true;
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    FEDADMM_RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("ParseJson: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The writer only escapes control characters; anything else
          // (including surrogate pairs) is out of dialect.
          if (code > 0x7f) return Error("\\u escape beyond ASCII");
          *out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      FEDADMM_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      FEDADMM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      FEDADMM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace fedadmm::obs
