/// \file metrics.h
/// \brief Process-wide metrics registry: counters, gauges, and fixed-bucket
/// latency histograms with exact rank percentiles.
///
/// FedADMM's headline claims are about *system* behavior — where a
/// 1M-client sharded round spends its time, how many bytes cross the wire,
/// how resident state grows — yet until this subsystem the engine had no
/// way to see any of it. The registry is the one sink every layer reports
/// into:
///
///   * `Counter` — monotonically increasing int64 (events, wire bytes);
///   * `Gauge`   — last-written int64 (resident state bytes);
///   * `Histogram` — latency distribution over fixed log-spaced buckets
///     (1 µs … 100 s, 8 buckets/decade) with exact count/sum/min/max and
///     bucket-resolution p50/p90/p99 clamped to the exact extrema.
///
/// Metric names are flat strings; the `{key=value}` label convention
/// (`ShardLabel`) keys per-worker instances so W-shard runs expose
/// per-worker skew.
///
/// **Zero-perturbation contract.** The registry is disabled by default and
/// enabling it must not change any trajectory: instruments never touch RNG
/// streams or float math on the training path — they only read clocks and
/// bump counters. Hot call sites guard with `MetricsEnabled()` (one atomic
/// load) so a disabled registry costs nothing. Tests pin the stronger
/// property: enabled vs disabled runs leave θ bitwise identical.
///
/// Thread-safety: handle lookup and `Record`/`Add`/`Set` are thread-safe.
/// Handles are stable for the process lifetime — `ResetValues` zeroes
/// contents but never invalidates pointers, so call sites may cache them.

#ifndef FEDADMM_OBS_METRICS_H_
#define FEDADMM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fedadmm::obs {

/// \brief Monotonically increasing event/byte count.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-written instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Immutable summary of a histogram's contents.
///
/// Self-contained (carries its bucket counts), so per-shard stats merge
/// into fleet-wide stats without touching the live histograms.
struct HistogramStats {
  /// Log-spaced bucket upper bounds: bucket i covers
  /// (UpperBound(i-1), UpperBound(i)]; the last bucket is the +inf
  /// overflow. 8 buckets per decade over 1e-6 s .. 1e2 s.
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 8;
  static constexpr int kNumBuckets =
      kBucketsPerDecade * kDecades + 1;  // + overflow

  /// Upper bound of bucket `i` in seconds (+inf for the overflow bucket).
  static double UpperBound(int i);
  /// Index of the bucket a sample of `seconds` lands in.
  static int BucketIndex(double seconds);

  int64_t count = 0;
  double sum = 0.0;
  /// Exact extrema (min is +inf / max is -inf when empty).
  double min = 0.0;
  double max = 0.0;
  std::array<int64_t, kNumBuckets> buckets{};

  /// Exact-rank percentile at bucket resolution: the value at rank
  /// ceil(q/100 · count) (1-based, over the sorted samples) is bracketed by
  /// its bucket, whose upper bound is returned, clamped to the exact
  /// [min, max]. Hence a single-sample histogram returns that sample for
  /// every q, and q = 100 always returns the exact max. NaN when empty.
  double Percentile(double q) const;

  /// sum / count (NaN when empty).
  double Mean() const;

  /// Element-wise accumulation — the per-shard → fleet-wide merge.
  void MergeFrom(const HistogramStats& other);
};

/// \brief Thread-safe fixed-bucket latency histogram.
class Histogram {
 public:
  /// Records one sample (seconds). Negative samples clamp to 0.
  void Record(double seconds);

  /// Snapshot of the current contents.
  HistogramStats Stats() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  HistogramStats stats_;
};

/// \brief One registry entry family captured by `MetricsRegistry::Snapshot`.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// Merged stats of every histogram whose name starts with `prefix`
  /// (e.g. all `client/event_seconds{shard=*}` instances).
  HistogramStats AggregateHistograms(std::string_view prefix) const;
};

/// \brief Name → metric instance map. One process-wide instance
/// (`MetricsRegistry::Global()`); tests may build their own.
class MetricsRegistry {
 public:
  /// The process-wide registry all engine instruments report into.
  static MetricsRegistry& Global();

  /// Master switch; `false` (default) makes every instrument a no-op.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates the named metric. Pointers stay valid for the
  /// registry's lifetime (entries are never deleted).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Point-in-time copy of every metric, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every value. Handles stay valid; the enabled flag is
  /// untouched. Benches call this between runs to scope metrics per run.
  void ResetValues();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{false};
};

/// One atomic load — the guard every hot call site uses.
inline bool MetricsEnabled() { return MetricsRegistry::Global().enabled(); }

/// Canonical label spelling: "base{shard=3}". Keying per-shard metric
/// instances through one helper keeps the convention from drifting.
std::string ShardLabel(std::string_view base, int shard);

/// \brief Serializes a snapshot as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, mean, p50, p90, p99}}}`. Percentiles of empty histograms are
/// `null` (JSON has no NaN).
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace fedadmm::obs

#endif  // FEDADMM_OBS_METRICS_H_
