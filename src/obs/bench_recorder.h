/// \file bench_recorder.h
/// \brief The persisted perf rail: structured `BENCH_*.json` results.
///
/// Until this file the repo had **no recorded perf trajectory**: benches
/// printed tables to stdout and the numbers died with the terminal. A
/// `BenchRecorder` collects one bench binary's results — each a named row
/// with numeric metrics — plus the *config context* that makes trajectories
/// comparable across PRs (fleet preset, shard count W, store spec, codec,
/// round budget), and serializes them with a stable field order so
/// committed baselines diff cleanly under git.
///
/// Schema (schema_version 1):
///
///   {
///     "bench": "shard_scale",
///     "schema_version": 1,
///     "context": { "clients": "50000", "store": "lazy", ... },
///     "results": [
///       { "name": "W=4",
///         "metrics": { "final_accuracy": 0.93, "upload_bytes": 123, ... } }
///     ]
///   }
///
/// Metric-name suffix is the gating contract consumed by
/// `obs/bench_compare.h` (tools/bench_diff): deterministic metrics
/// (`*_bytes`, `*_count`, `*_rounds`, `*_sim_seconds*`) are gated exactly;
/// wall-clock metrics (`*_wall_seconds`, `*_us`) at a percentage
/// tolerance; everything else is informational. NaN metrics serialize as
/// `null` ("target never reached").
///
/// Context is sorted by key and metrics by name; results keep insertion
/// order (benches emit sweeps in a meaningful order).

#ifndef FEDADMM_OBS_BENCH_RECORDER_H_
#define FEDADMM_OBS_BENCH_RECORDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace fedadmm::obs {

/// \brief One result row: a name plus numeric metrics.
class BenchResult {
 public:
  explicit BenchResult(std::string name) : name_(std::move(name)) {}

  /// Adds (or overwrites) one metric. NaN serializes as null.
  BenchResult& AddMetric(const std::string& key, double value);
  BenchResult& AddMetric(const std::string& key, int64_t value);

  /// Unpacks a histogram into `<prefix>_count` plus
  /// `<prefix>_{p50,p90,p99,max,mean}<unit_suffix>` metrics. The suffix
  /// decides the gating class: "_wall_seconds" for host-dependent wall
  /// time, "_sim_seconds" for deterministic simulated time.
  BenchResult& AddLatencyMetrics(const std::string& prefix,
                                 const std::string& unit_suffix,
                                 const HistogramStats& stats);

  const std::string& name() const { return name_; }
  const std::map<std::string, double>& metrics() const { return metrics_; }

 private:
  std::string name_;
  std::map<std::string, double> metrics_;
};

/// \brief Collects one bench binary's context + results and writes the
/// BENCH_*.json document.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Sets one config-context entry (sorted by key on output).
  void AddContext(const std::string& key, const std::string& value);
  void AddContext(const std::string& key, int64_t value);

  /// Appends a result row; the returned pointer stays valid for the
  /// recorder's lifetime.
  BenchResult* AddResult(const std::string& name);

  /// The serialized document.
  std::string ToJson() const;

  /// Writes `ToJson()` to `path`.
  Status WriteFile(const std::string& path) const;

  const std::string& bench_name() const { return bench_name_; }

 private:
  std::string bench_name_;
  std::map<std::string, std::string> context_;
  std::vector<std::unique_ptr<BenchResult>> results_;
};

}  // namespace fedadmm::obs

#endif  // FEDADMM_OBS_BENCH_RECORDER_H_
