#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/json.h"

namespace fedadmm::obs {
namespace {

bool EndsWith(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("bench_compare: cannot open " + path);
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return Status::IoError("bench_compare: read error " + path);
  return content;
}

/// Validates the recorder schema and returns the document.
Result<JsonValue> ParseBenchDoc(const std::string& json, const char* which) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return Status::InvalidArgument(std::string("bench_compare: ") + which +
                                   " document: " +
                                   parsed.status().message());
  }
  JsonValue doc = std::move(parsed).ValueOrDie();
  if (!doc.is_object() || doc.Find("results") == nullptr ||
      !doc.Find("results")->is_array()) {
    return Status::InvalidArgument(std::string("bench_compare: ") + which +
                                   " is not a BENCH_*.json document");
  }
  return doc;
}

std::string MetricString(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

const JsonValue* FindResult(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& result : doc.Find("results")->elements) {
    const JsonValue* n = result.Find("name");
    if (n != nullptr && n->is_string() && n->string == name) return &result;
  }
  return nullptr;
}

}  // namespace

MetricClass ClassifyMetric(std::string_view name) {
  // Wall-clock suffixes first: "*_wall_seconds" must not fall through to
  // the deterministic "*_seconds" family.
  if (EndsWith(name, "_wall_seconds") || EndsWith(name, "_us")) {
    return MetricClass::kWallClock;
  }
  if (EndsWith(name, "_bytes") || EndsWith(name, "_count") ||
      EndsWith(name, "_rounds") || EndsWith(name, "_sim_seconds")) {
    return MetricClass::kDeterministic;
  }
  return MetricClass::kInformational;
}

Result<BenchCompareReport> CompareBenchJson(
    const std::string& baseline_json, const std::string& fresh_json,
    const BenchCompareOptions& options) {
  auto baseline_doc = ParseBenchDoc(baseline_json, "baseline");
  if (!baseline_doc.ok()) return baseline_doc.status();
  auto fresh_doc = ParseBenchDoc(fresh_json, "fresh");
  if (!fresh_doc.ok()) return fresh_doc.status();
  const JsonValue& baseline = baseline_doc.ValueOrDie();
  const JsonValue& fresh = fresh_doc.ValueOrDie();

  BenchCompareReport report;

  // Config context must match, or the trajectories are not comparable.
  if (options.require_context_match) {
    const JsonValue* base_ctx = baseline.Find("context");
    const JsonValue* fresh_ctx = fresh.Find("context");
    std::map<std::string, std::string> a, b;
    if (base_ctx != nullptr && base_ctx->is_object()) {
      for (const auto& [key, value] : base_ctx->members) {
        a[key] = value.is_string() ? value.string : MetricString(value.number);
      }
    }
    if (fresh_ctx != nullptr && fresh_ctx->is_object()) {
      for (const auto& [key, value] : fresh_ctx->members) {
        b[key] = value.is_string() ? value.string : MetricString(value.number);
      }
    }
    if (a != b) {
      report.failures.push_back(
          "config context differs between baseline and fresh run — "
          "trajectories are not comparable (rerun with the baseline's "
          "pinned knobs, or pass --allow-context-drift)");
    }
  }

  for (const JsonValue& base_result : baseline.Find("results")->elements) {
    const JsonValue* name_value = base_result.Find("name");
    if (name_value == nullptr || !name_value->is_string()) continue;
    const std::string& name = name_value->string;
    const JsonValue* fresh_result = FindResult(fresh, name);
    if (fresh_result == nullptr) {
      report.failures.push_back("result '" + name +
                                "' missing from fresh run (coverage loss)");
      continue;
    }
    const JsonValue* base_metrics = base_result.Find("metrics");
    const JsonValue* fresh_metrics = fresh_result->Find("metrics");
    if (base_metrics == nullptr || !base_metrics->is_object()) continue;

    for (const auto& [metric, base_value] : base_metrics->members) {
      const JsonValue* fresh_value =
          fresh_metrics ? fresh_metrics->Find(metric) : nullptr;
      const std::string where = name + "." + metric;
      const MetricClass cls = ClassifyMetric(metric);
      ++report.metrics_compared;

      // null = NaN at record time ("target never reached", empty
      // histogram). Gate only transitions into null.
      if (base_value.is_null()) {
        if (fresh_value != nullptr && !fresh_value->is_null()) {
          report.notes.push_back(where + ": newly measurable (was null)");
        }
        continue;
      }
      if (fresh_value == nullptr || fresh_value->is_null()) {
        if (cls == MetricClass::kInformational) {
          report.notes.push_back(where + ": no longer measured");
        } else {
          report.failures.push_back(where +
                                    ": gated metric missing from fresh run");
        }
        continue;
      }
      if (!base_value.is_number() || !fresh_value->is_number()) continue;

      const double base = base_value.number;
      const double now = fresh_value->number;
      switch (cls) {
        case MetricClass::kDeterministic: {
          ++report.metrics_gated;
          const double denom = std::max(std::fabs(base), 1e-12);
          const double drift_pct = std::fabs(now - base) / denom * 100.0;
          if (drift_pct > options.deterministic_tolerance_pct) {
            report.failures.push_back(
                where + ": deterministic metric drifted " +
                MetricString(drift_pct) + "% (" + MetricString(base) +
                " -> " + MetricString(now) + ")");
          }
          break;
        }
        case MetricClass::kWallClock: {
          if (base <= 0.0) {
            report.notes.push_back(where + ": wall baseline is 0, not gated");
            break;
          }
          ++report.metrics_gated;
          const double regression_pct = (now - base) / base * 100.0;
          if (regression_pct > options.tolerance_pct) {
            report.failures.push_back(
                where + ": wall-clock regression " +
                MetricString(regression_pct) + "% > " +
                MetricString(options.tolerance_pct) + "% (" +
                MetricString(base) + "s -> " + MetricString(now) + "s)");
          }
          break;
        }
        case MetricClass::kInformational: {
          if (base != now) {
            report.notes.push_back(where + ": " + MetricString(base) +
                                   " -> " + MetricString(now));
          }
          break;
        }
      }
    }
  }

  // New results are progress, not regressions — but say so.
  for (const JsonValue& fresh_result : fresh.Find("results")->elements) {
    const JsonValue* name_value = fresh_result.Find("name");
    if (name_value == nullptr || !name_value->is_string()) continue;
    if (FindResult(baseline, name_value->string) == nullptr) {
      report.notes.push_back("result '" + name_value->string +
                             "' is new (absent from baseline)");
    }
  }

  report.ok = report.failures.empty();
  return report;
}

Result<BenchCompareReport> CompareBenchFiles(
    const std::string& baseline_path, const std::string& fresh_path,
    const BenchCompareOptions& options) {
  auto baseline = ReadFileToString(baseline_path);
  if (!baseline.ok()) return baseline.status();
  auto fresh = ReadFileToString(fresh_path);
  if (!fresh.ok()) return fresh.status();
  return CompareBenchJson(baseline.ValueOrDie(), fresh.ValueOrDie(), options);
}

}  // namespace fedadmm::obs
