#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace fedadmm::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  events_.reserve(std::min<size_t>(max_events, 4096));
  max_events_ = max_events;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

int64_t TraceRecorder::NowMicros() const {
  std::chrono::steady_clock::time_point epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_;
  }
  if (epoch == std::chrono::steady_clock::time_point{}) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

int TraceRecorder::CurrentThreadIndex() {
  // Dense per-recorder indices keep the chrome timeline to a handful of
  // rows instead of one per OS tid ever seen.
  thread_local int index = -1;
  if (index < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    index = next_thread_index_++;
  }
  return index;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::vector<TraceEvent> events;
  size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    dropped = dropped_;
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String(e.category);
    w.Key("ph").String("X");
    w.Key("ts").Int(e.ts_us);
    w.Key("dur").Int(e.dur_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(e.tid);
    if (e.arg_name != nullptr && e.arg >= 0) {
      w.Key("args").BeginObject().Key(e.arg_name).Int(e.arg).EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.Key("droppedEvents").Int(static_cast<int64_t>(dropped));
  w.EndObject();

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("TraceRecorder: cannot open " + path);
  }
  const std::string& doc = w.str();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  const int close_err = std::fclose(file);
  if (written != doc.size() || close_err != 0) {
    return Status::IoError("TraceRecorder: short write to " + path);
  }
  return Status::OK();
}

TraceScope::TraceScope(const char* name, const char* category,
                       Histogram* histogram, bool force_timing)
    : name_(name), category_(category), histogram_(histogram) {
  record_trace_ = TraceRecorder::Global().enabled();
  active_ = record_trace_ || force_timing ||
            (histogram_ != nullptr && MetricsEnabled());
  if (active_) start_ = std::chrono::steady_clock::now();
}

double TraceScope::Stop() {
  if (!active_) return 0.0;
  active_ = false;
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start_).count();
  if (histogram_ != nullptr && MetricsEnabled()) {
    histogram_->Record(seconds);
  }
  if (record_trace_) {
    TraceRecorder& recorder = TraceRecorder::Global();
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       end - start_)
                       .count();
    event.ts_us = recorder.NowMicros() - event.dur_us;
    event.tid = recorder.CurrentThreadIndex();
    event.arg_name = arg_name_;
    event.arg = arg_;
    recorder.Record(event);
  }
  return seconds;
}

TraceScope::~TraceScope() {
  if (active_) Stop();
}

RoundTraceWriter::~RoundTraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RoundTraceWriter::Open(const std::string& path,
                              bool deterministic_only) {
  FEDADMM_CHECK_MSG(file_ == nullptr, "RoundTraceWriter: already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("RoundTraceWriter: cannot open " + path);
  }
  deterministic_only_ = deterministic_only;
  return Status::OK();
}

Status RoundTraceWriter::Append(const std::string& json_object) {
  FEDADMM_CHECK_MSG(file_ != nullptr, "RoundTraceWriter: not open");
  if (std::fwrite(json_object.data(), 1, json_object.size(), file_) !=
          json_object.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::IoError("RoundTraceWriter: write failed");
  }
  return Status::OK();
}

Status RoundTraceWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int err = std::fclose(file_);
  file_ = nullptr;
  if (err != 0) return Status::IoError("RoundTraceWriter: close failed");
  return Status::OK();
}

}  // namespace fedadmm::obs
