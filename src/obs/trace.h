/// \file trace.h
/// \brief Profiling spans: RAII `TraceScope`, a chrome://tracing recorder,
/// and the per-round JSONL trace writer.
///
/// Three sinks share one instrumentation point. A `TraceScope` placed
/// around an engine phase
///
///   * records its wall duration into a registry `Histogram` (when metrics
///     are enabled),
///   * appends a complete ("ph":"X") event to the global `TraceRecorder`
///     (when a trace capture is running), loadable in chrome://tracing or
///     https://ui.perfetto.dev for flame-style inspection of one
///     simulation,
///   * and hands the measured seconds back to the caller (`Stop`), which
///     the engine threads into the opt-in per-round JSONL trace.
///
/// When no sink is interested the scope never reads the clock — the
/// zero-perturbation contract of obs/metrics.h extends to tracing.
///
/// `RoundTraceWriter` appends one JSON object per line (JSONL): machines
/// grep/parse single rounds without loading whole documents, and the
/// `deterministic_only` flag zeroes wall-clock fields exactly like
/// `HistoryCsvWriter` so double-run diffs stay byte-identical.

#ifndef FEDADMM_OBS_TRACE_H_
#define FEDADMM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace fedadmm::obs {

/// \brief One completed span in the chrome trace_event format.
///
/// Names/categories are `const char*` by contract: instruments pass string
/// literals, so events store pointers, not strings — recording stays cheap
/// enough for per-client-event spans.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  /// Microseconds since `TraceRecorder::Start`.
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  /// Small dense thread index (registration order, not OS tid).
  int tid = 0;
  /// Optional single integer argument (e.g. client id); skipped when < 0
  /// or `arg_name` is null.
  const char* arg_name = nullptr;
  int64_t arg = -1;
};

/// \brief Global bounded in-memory trace capture.
///
/// `Start` clears and enables, `Stop` freezes; `WriteChromeTrace` emits a
/// `{"traceEvents": [...]}` document chrome://tracing loads directly. The
/// buffer is bounded (`max_events`): past the cap new events are counted
/// as dropped instead of growing without bound — a 1M-client round can
/// emit tens of thousands of spans per wave.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Clears the buffer and begins capturing. `max_events` bounds memory.
  void Start(size_t max_events = 1 << 20);
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event (thread-safe; no-op unless enabled).
  void Record(TraceEvent event);

  /// Microseconds since `Start` on the steady clock (0 before any Start).
  int64_t NowMicros() const;

  /// Dense per-thread index for the calling thread.
  int CurrentThreadIndex();

  size_t size() const;
  size_t dropped() const;

  /// Writes the capture as a chrome trace_event JSON document.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t max_events_ = 0;
  size_t dropped_ = 0;
  int next_thread_index_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<bool> enabled_{false};
};

/// \brief RAII wall-clock span feeding histogram + trace recorder.
///
/// Inactive (never reads the clock) unless metrics are enabled, a trace
/// capture is running, or the caller forces timing (`force_timing`, used
/// by the engine when only the per-round JSONL trace wants the number).
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category = "engine",
                      Histogram* histogram = nullptr,
                      bool force_timing = false);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attaches the optional integer argument emitted with the trace event.
  void set_arg(const char* arg_name, int64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  /// Ends the span early and returns its seconds (0 when inactive). The
  /// destructor then does nothing.
  double Stop();

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  const char* arg_name_ = nullptr;
  int64_t arg_ = -1;
  bool active_;
  bool record_trace_;
  std::chrono::steady_clock::time_point start_{};
};

/// \brief Appends one JSON object per line; wall fields are the caller's
/// responsibility to zero when `deterministic_only()` is set.
class RoundTraceWriter {
 public:
  ~RoundTraceWriter();

  /// Opens (truncates) `path`. With `deterministic_only` the caller must
  /// zero host-dependent fields — mirroring `HistoryCsvWriter`.
  Status Open(const std::string& path, bool deterministic_only = false);

  bool is_open() const { return file_ != nullptr; }
  bool deterministic_only() const { return deterministic_only_; }

  /// Writes one line (the serialized JSON object, no trailing newline).
  Status Append(const std::string& json_object);

  Status Close();

 private:
  std::FILE* file_ = nullptr;
  bool deterministic_only_ = false;
};

}  // namespace fedadmm::obs

#endif  // FEDADMM_OBS_TRACE_H_
