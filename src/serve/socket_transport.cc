#include "serve/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdint>
#include <utility>

#include "serve/frame.h"

namespace fedadmm::serve {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string("socket: ") + what + ": " +
                         strerror(errno));
}

/// Writes all of `data`, polling POLLOUT on EAGAIN. The fd is nonblocking
/// so a slow peer costs a poll, not a wedged thread.
Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (poll(&pfd, 1, /*timeout_ms=*/5000) <= 0) {
        return Status::IoError("socket: write stalled (peer not reading)");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

}  // namespace

class SocketTransport::SocketConnection : public Connection {
 public:
  explicit SocketConnection(int fd) : fd_(fd) {}

  Status SendFrame(
      std::shared_ptr<const std::vector<uint8_t>> frame) override {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ < 0) return Status::IoError("socket: connection closed");
    return WriteAll(fd_, frame->data(), frame->size());
  }

  int fd() const { return fd_; }

  /// Closes the socket; returns true on the closing transition.
  bool Close() {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ < 0) return false;
    close(fd_);
    fd_ = -1;
    return true;
  }

 private:
  std::mutex write_mutex_;
  int fd_;
};

class SocketTransport::SocketChannel : public ClientChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { Close(); }

  Status Send(const std::vector<uint8_t>& frame) override {
    if (fd_ < 0) return Status::IoError("socket: channel closed");
    return WriteAll(fd_, frame.data(), frame.size());
  }

  Result<bool> TryReceiveFrame(std::vector<uint8_t>* frame) override {
    // Serve buffered frames before touching the socket.
    FEDADMM_ASSIGN_OR_RETURN(bool ready, assembler_.Next(frame));
    if (ready) return true;
    if (fd_ < 0) return Status::IoError("socket: channel closed");
    uint8_t buf[16384];
    for (;;) {
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        FEDADMM_RETURN_IF_ERROR(assembler_.Push(buf, static_cast<size_t>(n)));
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        eof_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    FEDADMM_ASSIGN_OR_RETURN(ready, assembler_.Next(frame));
    if (ready) return true;
    if (eof_) return Status::IoError("socket: server closed the connection");
    return false;
  }

  void Close() override {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  bool eof_ = false;
  FrameAssembler assembler_;
};

SocketTransport::SocketTransport() = default;

SocketTransport::~SocketTransport() { Stop(); }

Status SocketTransport::Start(FrameSink* sink) {
  if (started_) return Status::FailedPrecondition("socket: already started");
  if (sink == nullptr) return Status::InvalidArgument("socket: null sink");
  sink_ = sink;

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 1024) < 0) return Errno("listen");

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // null ptr marks the listen socket
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }

  stop_.store(false, std::memory_order_release);
  reader_ = std::thread([this] { ReaderLoop(); });
  started_ = true;
  return Status::OK();
}

void SocketTransport::AcceptPending() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: drained
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<SocketConnection>(fd);
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      conn->Close();
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    by_fd_[fd] = conn.get();
    connections_.push_back(std::move(conn));
  }
}

void SocketTransport::Disconnect(SocketConnection* conn) {
  const int fd = conn->fd();
  if (fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    by_fd_.erase(fd);
  }
  if (conn->Close()) sink_->OnDisconnect(conn);
}

void SocketTransport::DrainReadable(SocketConnection* conn) {
  uint8_t buf[65536];
  for (;;) {
    const int fd = conn->fd();
    if (fd < 0) return;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      sink_->OnBytes(conn, buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    Disconnect(conn);  // EOF or hard error
    return;
  }
}

void SocketTransport::ReaderLoop() {
  struct epoll_event events[128];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, 128, /*timeout_ms=*/50);
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        AcceptPending();
      } else {
        DrainReadable(static_cast<SocketConnection*>(events[i].data.ptr));
      }
    }
  }
}

void SocketTransport::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (reader_.joinable()) reader_.join();
  std::vector<std::unique_ptr<SocketConnection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    by_fd_.clear();
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    if (conn->Close()) sink_->OnDisconnect(conn.get());
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
  started_ = false;
}

Result<std::unique_ptr<ClientChannel>> SocketTransport::Connect() {
  if (!started_) return Status::FailedPrecondition("socket: not started");
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    close(fd);
    return Errno("connect");
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Reads are nonblocking (TryReceiveFrame polls); writes block via
  // WriteAll's poll loop either way.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return std::unique_ptr<ClientChannel>(new SocketChannel(fd));
}

const std::string& SocketTransport::name() const {
  static const std::string* const kName = new std::string("socket");
  return *kName;
}

}  // namespace fedadmm::serve
