#include "serve/loadgen.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "comm/wire.h"
#include "serve/frame.h"

namespace fedadmm::serve {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Serializes a float vector as raw little-endian fp32 payload bytes.
std::vector<uint8_t> EncodeRawFloats(const std::vector<float>& v) {
  std::vector<uint8_t> out;
  if constexpr (wire::kHostIsLittleEndian) {
    out.resize(v.size() * sizeof(float));
    std::memcpy(out.data(), v.data(), out.size());
  } else {
    out.reserve(v.size() * sizeof(float));
    wire::Writer w(&out);
    for (const float x : v) w.PutF32(x);
  }
  return out;
}

/// Boundary-safe raw-fp32 parse (the client trusts the server no more
/// than the server trusts the client).
Status DecodeRawFloats(const uint8_t* data, size_t len, uint64_t dim,
                       std::vector<float>* out) {
  if (len != dim * sizeof(float)) {
    return Status::InvalidArgument(
        "loadgen: raw broadcast payload size does not match dim");
  }
  out->resize(dim);
  if constexpr (wire::kHostIsLittleEndian) {
    std::memcpy(out->data(), data, len);
  } else {
    wire::ReaderView r(data, len);
    for (float& v : *out) FEDADMM_RETURN_IF_ERROR(r.TryF32(&v));
  }
  return Status::OK();
}

}  // namespace

LoadGenerator::LoadGenerator(FederatedProblem* problem,
                             FederatedAlgorithm* algorithm, uint64_t seed,
                             int num_threads, int num_shards,
                             Frontend* frontend, Transport* transport,
                             LoadGenOptions options)
    : problem_(problem),
      frontend_(frontend),
      transport_(transport),
      options_(std::move(options)),
      executor_(problem, algorithm, Rng(seed), num_threads, num_shards),
      drivers_(options_.driver_threads),
      sessions_(static_cast<size_t>(problem->num_clients())) {}

LoadGenStats LoadGenerator::stats() const {
  LoadGenStats stats;
  stats.rounds = cells_.rounds.load();
  stats.model_frames = cells_.model_frames.load();
  stats.acks_accepted = cells_.acks_accepted.load();
  stats.acks_partial = cells_.acks_partial.load();
  stats.acks_rejected = cells_.acks_rejected.load();
  stats.throttle_retries = cells_.throttle_retries.load();
  return stats;
}

Status LoadGenerator::Run() {
  int next_round = 0;
  for (;;) {
    const RoundInfo info = frontend_->WaitRoundOpen(next_round);
    if (!info.open) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      return first_error_;
    }
    FEDADMM_RETURN_IF_ERROR(RunRound(info));
    next_round = info.round + 1;
  }
}

Status LoadGenerator::ParallelSessions(
    int n, const std::function<Status(int)>& body) {
  drivers_.ParallelFor(n, [&](int index, int /*worker*/) {
    if (failed_.load(std::memory_order_acquire)) return;
    Status status = body(index);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (first_error_.ok()) first_error_ = std::move(status);
      failed_.store(true, std::memory_order_release);
    }
  });
  std::lock_guard<std::mutex> lock(error_mutex_);
  return first_error_;
}

Status LoadGenerator::RunRound(const RoundInfo& info) {
  const std::vector<int>& cohort = info.cohort;
  const int n = static_cast<int>(cohort.size());

  // Phase 1: every cohort member has a live session (connect + HELLO
  // happens once per client, on its first selected round).
  FEDADMM_RETURN_IF_ERROR(ParallelSessions(
      n, [&](int i) { return EnsureSession(cohort[i]); }));

  // Phase 2: every session pulls the broadcast. One MODEL frame is kept
  // (slot 0) to decode θ exactly once for the whole wave — the sessions
  // all received byte-identical frames (the frontend shares one buffer).
  std::vector<uint8_t> model_frame;
  FEDADMM_RETURN_IF_ERROR(ParallelSessions(n, [&](int i) {
    std::vector<uint8_t> frame;
    FEDADMM_RETURN_IF_ERROR(Pull(cohort[i], info.round, &frame));
    cells_.model_frames.fetch_add(1);
    if (i == 0) model_frame = std::move(frame);
    return Status::OK();
  }));

  // Phase 3: decode θ once, then run the true local computation — the
  // same ClientExecutor fan-out and per-(round, client) RNG forks as the
  // in-process engine, so the wave is bitwise identical.
  std::vector<float> theta;
  FEDADMM_RETURN_IF_ERROR(DecodeModel(model_frame, info.round, &theta));
  std::vector<UpdateMessage> updates;
  executor_.RunWave(info.round, cohort, theta, &updates);

  // Phase 4 (fire hose): send EVERY update before draining any ACK — the
  // whole cohort lands on the ingest queues at once, which is what
  // exercises bounded-queue backpressure at 10k+ sessions.
  FEDADMM_RETURN_IF_ERROR(ParallelSessions(n, [&](int i) {
    return SendUpdate(cohort[i], info.round, updates[static_cast<size_t>(i)]);
  }));

  // Phase 5: drain terminal ACKs, resending on THROTTLED.
  FEDADMM_RETURN_IF_ERROR(ParallelSessions(
      n, [&](int i) { return AwaitAck(cohort[i], info.round); }));

  cells_.rounds.fetch_add(1);
  return Status::OK();
}

Status LoadGenerator::EnsureSession(int client) {
  Session& session = sessions_[static_cast<size_t>(client)];
  if (session.channel != nullptr) return Status::OK();
  FEDADMM_ASSIGN_OR_RETURN(session.channel, transport_->Connect());
  FEDADMM_RETURN_IF_ERROR(session.channel->Send(
      BuildHelloFrame(static_cast<uint32_t>(client))));
  std::vector<uint8_t> frame;
  FEDADMM_RETURN_IF_ERROR(PollFrame(&session, &frame));
  FrameHeader header;
  FEDADMM_RETURN_IF_ERROR(
      ParseFrameHeader(frame.data(), kFrameHeaderBytes, &header));
  if (header.type != FrameType::kWelcome) {
    return Status::IoError("loadgen: expected WELCOME, got frame type " +
                           std::to_string(static_cast<int>(header.type)));
  }
  uint64_t token = 0;
  uint32_t echoed_client = 0;
  FEDADMM_RETURN_IF_ERROR(ParseWelcomeBody(frame.data() + kFrameHeaderBytes,
                                           header.body_len, &token,
                                           &echoed_client));
  if (echoed_client != static_cast<uint32_t>(client)) {
    return Status::IoError("loadgen: WELCOME for the wrong client");
  }
  session.token = token;
  return Status::OK();
}

Status LoadGenerator::Pull(int client, int round,
                           std::vector<uint8_t>* model_frame) {
  Session& session = sessions_[static_cast<size_t>(client)];
  FEDADMM_RETURN_IF_ERROR(session.channel->Send(
      BuildPullFrame(session.token, static_cast<uint32_t>(round))));
  std::vector<uint8_t> frame;
  FEDADMM_RETURN_IF_ERROR(PollFrame(&session, &frame));
  FrameHeader header;
  FEDADMM_RETURN_IF_ERROR(
      ParseFrameHeader(frame.data(), kFrameHeaderBytes, &header));
  if (header.type == FrameType::kError) {
    ErrorBody error;
    FEDADMM_RETURN_IF_ERROR(ParseErrorBody(frame.data() + kFrameHeaderBytes,
                                           header.body_len, &error));
    return Status::IoError("loadgen: server error on PULL: " + error.message);
  }
  if (header.type != FrameType::kModel) {
    return Status::IoError("loadgen: expected MODEL, got frame type " +
                           std::to_string(static_cast<int>(header.type)));
  }
  *model_frame = std::move(frame);
  return Status::OK();
}

Status LoadGenerator::DecodeModel(const std::vector<uint8_t>& model_frame,
                                  int round, std::vector<float>* theta) {
  FrameHeader header;
  FEDADMM_RETURN_IF_ERROR(
      ParseFrameHeader(model_frame.data(), kFrameHeaderBytes, &header));
  ModelBody body;
  FEDADMM_RETURN_IF_ERROR(ParseModelBody(
      model_frame.data() + kFrameHeaderBytes, header.body_len, &body));
  if (body.round != static_cast<uint32_t>(round)) {
    return Status::IoError("loadgen: MODEL frame for the wrong round");
  }
  if (body.dim != static_cast<uint64_t>(problem_->dim())) {
    return Status::IoError("loadgen: MODEL dim does not match the problem");
  }
  if (body.encoded) {
    if (options_.downlink_codec == nullptr) {
      return Status::InvalidArgument(
          "loadgen: encoded broadcast but no downlink codec configured");
    }
    FEDADMM_ASSIGN_OR_RETURN(
        *theta, options_.downlink_codec->TryDecode(
                    body.payload, body.payload_len,
                    static_cast<int64_t>(body.dim)));
    return Status::OK();
  }
  return DecodeRawFloats(body.payload, body.payload_len, body.dim, theta);
}

Status LoadGenerator::SendUpdate(int client, int round,
                                 const UpdateMessage& msg) {
  Session& session = sessions_[static_cast<size_t>(client)];
  UpdateFrameHeader header;
  header.round = static_cast<uint32_t>(round);
  header.epochs_run = static_cast<uint32_t>(msg.epochs_run);
  header.steps_run = static_cast<uint32_t>(msg.steps_run);
  header.train_loss = msg.train_loss;
  header.final_grad_norm_sq = msg.final_grad_norm_sq;
  header.dim1 = msg.delta.size();
  header.dim2 = msg.delta2.size();

  // Encode with the client-side codec twin. Stream ids mirror the
  // engine's convention (2·client, 2·client+1); stateless codecs ignore
  // them, and only stateless codecs are allowed here (parallel encode).
  std::vector<uint8_t> payload1;
  std::vector<uint8_t> payload2;
  UpdateCodec* codec = options_.uplink_codec;
  if (codec != nullptr) {
    payload1 =
        std::move(codec->Encode(2 * client, msg.delta, nullptr).bytes);
    if (!msg.delta2.empty()) {
      payload2 = std::move(
          codec->Encode(2 * client + 1, msg.delta2, nullptr).bytes);
    }
  } else {
    payload1 = EncodeRawFloats(msg.delta);
    if (!msg.delta2.empty()) payload2 = EncodeRawFloats(msg.delta2);
  }
  header.payload1_len = static_cast<uint32_t>(payload1.size());
  header.payload2_len = static_cast<uint32_t>(payload2.size());

  session.update_frame = BuildUpdateFrame(
      session.token, header, payload1.data(),
      payload2.empty() ? nullptr : payload2.data());
  return session.channel->Send(session.update_frame);
}

Status LoadGenerator::AwaitAck(int client, int round) {
  Session& session = sessions_[static_cast<size_t>(client)];
  for (;;) {
    std::vector<uint8_t> frame;
    FEDADMM_RETURN_IF_ERROR(PollFrame(&session, &frame));
    FrameHeader header;
    FEDADMM_RETURN_IF_ERROR(
        ParseFrameHeader(frame.data(), kFrameHeaderBytes, &header));
    if (header.type == FrameType::kError) {
      ErrorBody error;
      FEDADMM_RETURN_IF_ERROR(ParseErrorBody(
          frame.data() + kFrameHeaderBytes, header.body_len, &error));
      return Status::IoError("loadgen: server error on UPDATE: " +
                             error.message);
    }
    if (header.type != FrameType::kAck) {
      return Status::IoError("loadgen: expected ACK, got frame type " +
                             std::to_string(static_cast<int>(header.type)));
    }
    AckBody ack;
    FEDADMM_RETURN_IF_ERROR(ParseAckBody(frame.data() + kFrameHeaderBytes,
                                         header.body_len, &ack));
    if (ack.round != static_cast<uint32_t>(round)) {
      return Status::IoError("loadgen: ACK for the wrong round");
    }
    switch (ack.status) {
      case AckStatus::kAccepted:
        cells_.acks_accepted.fetch_add(1);
        return Status::OK();
      case AckStatus::kPartial:
        cells_.acks_partial.fetch_add(1);
        return Status::OK();
      case AckStatus::kRejected:
        cells_.acks_rejected.fetch_add(1);
        return Status::OK();
      case AckStatus::kThrottled: {
        // Backpressure: honor retry_after, then resend the same frame.
        cells_.throttle_retries.fetch_add(1);
        const double wait = ack.retry_after_seconds;
        if (wait > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(wait));
        } else {
          std::this_thread::yield();
        }
        FEDADMM_RETURN_IF_ERROR(session.channel->Send(session.update_frame));
        continue;
      }
    }
    return Status::IoError("loadgen: unknown ACK status");
  }
}

Status LoadGenerator::PollFrame(Session* session,
                                std::vector<uint8_t>* frame) {
  const double deadline = NowSeconds() + options_.poll_timeout_seconds;
  int spins = 0;
  for (;;) {
    FEDADMM_ASSIGN_OR_RETURN(const bool got,
                             session->channel->TryReceiveFrame(frame));
    if (got) return Status::OK();
    if (NowSeconds() > deadline) {
      return Status::IoError(
          "loadgen: timed out waiting for a server frame");
    }
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace fedadmm::serve
