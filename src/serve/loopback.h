/// \file loopback.h
/// \brief In-memory transport: deterministic substrate for tests and the
/// load generator.
///
/// Client→server bytes are delivered synchronously: `ClientChannel::Send`
/// invokes the sink's `OnBytes` on the calling thread before returning, so
/// a driving thread observes every synchronous server reaction (WELCOME,
/// MODEL, THROTTLED ack, ERROR) on its very next `TryReceiveFrame` — no
/// sleeps, no races, and a double run replays the identical interleaving
/// per session. Server→client frames land in a per-connection inbox
/// (mutex-guarded deque of shared frame buffers, so a broadcast MODEL
/// frame is never copied per session).

#ifndef FEDADMM_SERVE_LOOPBACK_H_
#define FEDADMM_SERVE_LOOPBACK_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/transport.h"

namespace fedadmm::serve {

/// \brief In-memory Transport (see file comment).
class LoopbackTransport : public Transport {
 public:
  LoopbackTransport() = default;
  ~LoopbackTransport() override { Stop(); }

  Status Start(FrameSink* sink) override;
  Result<std::unique_ptr<ClientChannel>> Connect() override;
  void Stop() override;
  const std::string& name() const override;

 private:
  class LoopbackConnection;
  class LoopbackChannel;

  std::mutex mutex_;
  FrameSink* sink_ = nullptr;
  bool started_ = false;
  /// Owns every accepted connection until Stop (transport.h contract).
  std::vector<std::shared_ptr<LoopbackConnection>> connections_;
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_LOOPBACK_H_
