/// \file ingest_queue.h
/// \brief Bounded lock-free multi-producer queue feeding one shard worker.
///
/// The admission path runs on transport threads (many producers); each
/// aggregation shard owns one consumer worker. The ring is the Vyukov
/// bounded MPMC design: a power-of-two slot array whose per-slot sequence
/// numbers carry the full producer/consumer handshake, so `TryPush` is one
/// CAS on the tail and `TryPop` one CAS on the head — no mutex on the hot
/// path. A full ring makes `TryPush` return false immediately; that signal
/// IS the backpressure that turns into a THROTTLED ack upstream, which is
/// why the queue must never block producers.
///
/// The consumer side adds a tiny condvar layer (`PopWait`) so an idle
/// worker sleeps instead of spinning between waves; producers only touch
/// the mutex when a consumer advertised itself as waiting.

#ifndef FEDADMM_SERVE_INGEST_QUEUE_H_
#define FEDADMM_SERVE_INGEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fedadmm::serve {

/// \brief Vyukov-style bounded MPMC ring (used MPSC here).
template <typename T>
class IngestQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit IngestQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap *= 2;
    mask_ = cap - 1;
    slots_ = std::vector<Slot>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push; returns false when the ring is full (the
  /// caller's backpressure signal). Never blocks.
  bool TryPush(T&& item) {
    Slot* slot;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const size_t seq = slot->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(item);
    slot->sequence.store(pos + 1, std::memory_order_release);
    if (waiting_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      wait_cv_.notify_one();
    }
    return true;
  }

  /// Consumer pop; returns false when empty.
  bool TryPop(T* out) {
    Slot* slot;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const size_t seq = slot->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(slot->value);
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Consumer pop that sleeps while the ring is empty. Returns false only
  /// when `stop` became true and the ring is drained.
  bool PopWait(T* out, const std::atomic<bool>& stop) {
    for (;;) {
      if (TryPop(out)) return true;
      if (stop.load(std::memory_order_acquire)) {
        // One final drain: a producer may have pushed between the failed
        // TryPop and the stop read.
        return TryPop(out);
      }
      waiting_.fetch_add(1, std::memory_order_release);
      {
        std::unique_lock<std::mutex> lock(wait_mutex_);
        wait_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      waiting_.fetch_sub(1, std::memory_order_release);
    }
  }

 private:
  struct Slot {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<int> waiting_{0};
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_INGEST_QUEUE_H_
