/// \file socket_transport.h
/// \brief Real TCP transport (127.0.0.1, ephemeral port) for the serving
/// frontend.
///
/// One epoll reader thread accepts connections and drains readable
/// sockets, feeding raw fragments to the sink — so per-connection OnBytes
/// calls are naturally serialized. `Connection::SendFrame` writes from the
/// calling thread under a per-connection mutex, polling on EAGAIN: frame
/// writes from shard workers never interleave bytes. Equivalence tests
/// replay a whole training trace over this transport and demand bitwise
/// the same θ as the in-process engine — the transport must be a pure
/// byte pipe.
///
/// Linux-only (epoll, accept4); the build gates it accordingly.

#ifndef FEDADMM_SERVE_SOCKET_TRANSPORT_H_
#define FEDADMM_SERVE_SOCKET_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/transport.h"

namespace fedadmm::serve {

/// \brief TCP Transport (see file comment).
class SocketTransport : public Transport {
 public:
  // Out of line: members reference types completed in the .cc.
  SocketTransport();
  ~SocketTransport() override;

  Status Start(FrameSink* sink) override;
  Result<std::unique_ptr<ClientChannel>> Connect() override;
  void Stop() override;
  const std::string& name() const override;

  /// The ephemeral port the server bound (valid after Start).
  int port() const { return port_; }

 private:
  class SocketConnection;
  class SocketChannel;

  /// Epoll loop body (reader thread).
  void ReaderLoop();
  /// Accepts every pending connection on the listen socket.
  void AcceptPending();
  /// Drains one readable connection; tears it down on EOF/error.
  void DrainReadable(SocketConnection* conn);
  /// Closes `conn` (from the reader thread) and notifies the sink once.
  void Disconnect(SocketConnection* conn);

  FrameSink* sink_ = nullptr;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread reader_;

  std::mutex mutex_;
  /// Live fd → connection (reader thread only after Start).
  std::unordered_map<int, SocketConnection*> by_fd_;
  /// Owns every accepted connection until Stop (transport.h contract).
  std::vector<std::unique_ptr<SocketConnection>> connections_;
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_SOCKET_TRANSPORT_H_
