/// \file frontend.h
/// \brief The sessioned ingestion frontend: wire sessions in, engine waves
/// out.
///
/// `Frontend` sits between a `Transport` (serve/transport.h) and the sync
/// server loop (attached via `Simulation::set_ingest`). Per round it:
///
///   1. `BeginRound` — builds ONE shared MODEL frame (the loop's own
///      encoded broadcast when a downlink codec ran, raw θ otherwise) and
///      opens a collection slot per cohort member;
///   2. admits UPDATE frames on transport threads: parse with
///      Status-returning `wire::ReaderView` (a hostile byte sequence can
///      never abort the server), validate session/round/dims/payload
///      sizes, mirror the straggler policy as a connection-level predicate
///      (the per-client `StragglerPolicy::Judge` the loop will apply
///      again), then hand the frame to its aggregation shard
///      (`ShardOfClient`) through a bounded lock-free ingest queue. A full
///      queue is backpressure: the client gets ACK(THROTTLED,
///      retry_after) and resends — uploads are never silently dropped;
///   3. shard workers decode each payload exactly once (zero-copy views
///      into the owned frame buffer, riding the SIMD unpack kernels via
///      `UpdateCodec::TryDecode`), fill the wave slot, and ACK with the
///      mirrored verdict;
///   4. `CollectWave` blocks the loop until every cohort slot resolved
///      and returns the messages in selection order — including clients
///      the policy will reject, so `SystemModel::JudgeRound` inside the
///      loop stays the single source of truth and serve-mode θ is bitwise
///      the in-process trajectory.
///
/// A decode failure resolves the wave with a sticky error: `CollectWave`
/// returns Status (never aborts, never deadlocks) and the offending
/// session gets an ERROR frame.
///
/// Lifetime: start the transport with this frontend as sink before
/// `Simulation::Run`, call `FinishServing()` after the run returns (wakes
/// `WaitRoundOpen` waiters with open=false), and stop the transport
/// before destroying the frontend.

#ifndef FEDADMM_SERVE_FRONTEND_H_
#define FEDADMM_SERVE_FRONTEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "comm/codec.h"
#include "fl/ingest.h"
#include "obs/metrics.h"
#include "serve/frame.h"
#include "serve/ingest_queue.h"
#include "serve/transport.h"
#include "sys/system_model.h"

namespace fedadmm::serve {

/// \brief Frontend knobs.
struct FrontendOptions {
  /// Aggregation shards = ingest workers. Must equal the simulation's
  /// `num_shards` partition for the per-shard queues to mirror worker
  /// ownership (`ShardOfClient`).
  int num_shards = 1;
  /// Per-shard ingest queue capacity (rounded up to a power of two). The
  /// backpressure knob: smaller queues throttle earlier.
  int queue_capacity = 512;
  /// `retry_after_seconds` stamped into THROTTLED acks.
  double throttle_retry_seconds = 0.001;
  /// `CollectWave` gives up (IoError) after this long without the wave
  /// resolving — turns a wedged client fleet into a clean run failure.
  double collect_timeout_seconds = 120.0;
  /// Uplink codec twin (borrowed, may be null): decodes session payloads.
  /// Must be the same spec the clients encode with — and, for bitwise
  /// equivalence, the spec attached to the Simulation.
  UpdateCodec* uplink_codec = nullptr;
  /// Admission predicate source (borrowed, may be null = admit all). Use
  /// the same model attached to the Simulation so connection-level ACKs
  /// mirror the loop's judgment.
  const SystemModel* system_model = nullptr;
};

/// \brief Deterministic + informational byte/count ledger of one serving
/// run. The deterministic fields are pinned by the double-run test and
/// the bench rail; timing-dependent fields (throttle retries, raw
/// transport bytes) are informational only.
struct FrontendLedger {
  // Deterministic for a fixed trace (independent of thread interleaving).
  int64_t hello_count = 0;
  int64_t model_frames = 0;
  int64_t model_payload_bytes = 0;
  int64_t acks_accepted = 0;
  int64_t acks_partial = 0;
  int64_t acks_rejected = 0;
  int64_t ingested_payload_bytes = 0;
  int64_t malformed_frames = 0;
  int64_t protocol_errors = 0;
  int64_t decode_errors = 0;
  // Informational (depend on real-time interleaving).
  int64_t throttled = 0;
  int64_t bytes_in = 0;
  int64_t peak_sessions = 0;
};

/// \brief What `WaitRoundOpen` hands a client driver.
struct RoundInfo {
  /// False once `FinishServing` was called — drivers stop.
  bool open = false;
  int round = -1;
  std::vector<int> cohort;
};

/// \brief The serving frontend (see file comment).
class Frontend : public FrameSink, public IngestSource {
 public:
  explicit Frontend(FrontendOptions options);
  ~Frontend() override;

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // IngestSource (called by the server loop).
  Status StartServing(int num_clients, int64_t dim) override;
  Status BeginRound(int round, const std::vector<int>& cohort,
                    const DownlinkPlan& downlink,
                    const std::vector<float>& theta) override;
  Result<std::vector<UpdateMessage>> CollectWave(int round) override;

  // FrameSink (called by transport threads).
  void OnBytes(Connection* conn, const uint8_t* data, size_t len) override;
  void OnDisconnect(Connection* conn) override;

  /// Blocks until a round >= `min_round` is open (returns its cohort) or
  /// serving finished (open=false). Client-driver side.
  RoundInfo WaitRoundOpen(int min_round);

  /// Ends serving: wakes `WaitRoundOpen` waiters with open=false, drains
  /// and joins the shard workers. Idempotent; the destructor calls it.
  void FinishServing();

  /// Snapshot of the ledger.
  FrontendLedger ledger() const;

 private:
  /// One wave's collection state. Shard items pin it via shared_ptr, so a
  /// straggling worker resolves into the right (possibly superseded) wave.
  struct RoundState {
    int round = -1;
    std::vector<int> cohort;
    std::unordered_map<int, uint32_t> slot_of_client;
    std::shared_ptr<const std::vector<uint8_t>> model_frame;
    int64_t download_bytes_per_client = 0;
    int64_t dim = 0;

    std::mutex mutex;
    std::condition_variable cv;
    /// Wave slots, parallel to `cohort` (selection order).
    std::vector<UpdateMessage> slots;
    /// Per-slot claim state: 0 free, 1 in flight, 2 resolved. Claimed by
    /// CAS on the admission path — the duplicate-upload guard.
    std::unique_ptr<std::atomic<uint8_t>[]> claimed;
    /// Resolved slot count (guarded by `mutex`).
    size_t resolved = 0;
    /// Sticky first decode failure (guarded by `mutex`).
    Status error = Status::OK();
  };

  /// Per-connection session state, hung off `Connection::context()`.
  struct SessionState {
    FrameAssembler assembler;
    int client = -1;
    uint64_t token = 0;
    /// Poisoned stream: all further bytes are ignored.
    bool dead = false;
  };

  /// One admitted upload in flight to its shard worker.
  struct ShardItem {
    int client = -1;
    uint32_t slot = 0;
    /// Pre-computed mirrored verdict for the eventual ACK.
    AckBody ack;
    /// Owns the whole UPDATE frame; `body` views into it (zero-copy).
    std::shared_ptr<std::vector<uint8_t>> frame;
    UpdateBody body;
    Connection* conn = nullptr;
    std::shared_ptr<RoundState> state;
    /// Steady-clock seconds at admission (ingest latency histogram).
    double enqueue_seconds = 0.0;
  };

  SessionState* SessionFor(Connection* conn);
  /// Marks the stream dead, counts it, and sends one ERROR frame.
  void Poison(Connection* conn, SessionState* session, const Status& status);
  void SendError(Connection* conn, ErrorCode code, const Status& status);
  void SendError(Connection* conn, ErrorCode code, const char* message);

  void HandleFrame(Connection* conn, SessionState* session,
                   std::vector<uint8_t> frame);
  void HandleHello(Connection* conn, SessionState* session,
                   const uint8_t* body, size_t len);
  void HandlePull(Connection* conn, SessionState* session,
                  const uint8_t* body, size_t len);
  void HandleUpdate(Connection* conn, SessionState* session,
                    std::vector<uint8_t> frame);

  /// Shard worker: pops, decodes once, resolves the slot, ACKs.
  void WorkerLoop(int shard);
  /// Decodes both payloads of `item` into `msg`; Status on bad bytes.
  Status DecodeItem(const ShardItem& item, UpdateMessage* msg) const;

  /// Seconds on the steady clock (monotonic, informational only).
  static double NowSeconds();

  const FrontendOptions options_;

  // Run shape (set by StartServing).
  std::atomic<bool> serving_{false};
  int num_clients_ = 0;
  int64_t dim_ = 0;

  // Round state (guarded by round_mutex_).
  mutable std::mutex round_mutex_;
  std::condition_variable round_cv_;
  std::shared_ptr<RoundState> current_;
  bool finished_ = false;

  // Session registry (guarded by session_mutex_).
  mutable std::mutex session_mutex_;
  std::unordered_set<SessionState*> sessions_;
  int64_t active_sessions_ = 0;

  // Shard workers.
  std::vector<std::unique_ptr<IngestQueue<ShardItem>>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_workers_{false};

  // Ledger cells (atomics; snapshot via ledger()).
  struct Cells {
    std::atomic<int64_t> hello_count{0};
    std::atomic<int64_t> model_frames{0};
    std::atomic<int64_t> model_payload_bytes{0};
    std::atomic<int64_t> acks_accepted{0};
    std::atomic<int64_t> acks_partial{0};
    std::atomic<int64_t> acks_rejected{0};
    std::atomic<int64_t> ingested_payload_bytes{0};
    std::atomic<int64_t> malformed_frames{0};
    std::atomic<int64_t> protocol_errors{0};
    std::atomic<int64_t> decode_errors{0};
    std::atomic<int64_t> throttled{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> peak_sessions{0};
  };
  mutable Cells cells_;

  // Per-shard ingest latency histograms (null when metrics are off).
  std::vector<obs::Histogram*> ingest_histograms_;
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_FRONTEND_H_
