#include "serve/frontend.h"

#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "comm/wire.h"
#include "util/shard.h"

namespace fedadmm::serve {
namespace {

/// Raw-fp32 payload bytes for a d-vector (the no-codec wire format).
int64_t RawPayloadBytes(int64_t dim) {
  return dim * static_cast<int64_t>(sizeof(float));
}

/// Boundary-safe raw-fp32 decode; `len` was validated == dim * 4.
std::vector<float> DecodeRawFloats(const uint8_t* data, int64_t dim) {
  std::vector<float> out(static_cast<size_t>(dim));
  if constexpr (wire::kHostIsLittleEndian) {
    std::memcpy(out.data(), data, out.size() * sizeof(float));
  } else {
    wire::ReaderView r(data, static_cast<size_t>(dim) * sizeof(float));
    for (float& v : out) (void)r.TryF32(&v);
  }
  return out;
}

}  // namespace

Frontend::Frontend(FrontendOptions options) : options_(std::move(options)) {}

Frontend::~Frontend() {
  FinishServing();
  // Free sessions whose connections were never formally disconnected
  // (transports Stop()ed after the frontend would double-free — the
  // lifetime contract in the file comment forbids that order).
  std::lock_guard<std::mutex> lock(session_mutex_);
  for (SessionState* session : sessions_) delete session;
  sessions_.clear();
}

double Frontend::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Frontend::StartServing(int num_clients, int64_t dim) {
  if (serving_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "serve: Frontend::StartServing called twice — use a fresh Frontend "
        "per run (the ledger is per-run)");
  }
  if (num_clients <= 0 || dim <= 0) {
    return Status::InvalidArgument("serve: bad run shape");
  }
  if (options_.num_shards < 1) {
    return Status::InvalidArgument("serve: num_shards must be >= 1");
  }
  if (options_.queue_capacity < 1) {
    return Status::InvalidArgument("serve: queue_capacity must be >= 1");
  }
  if (options_.uplink_codec != nullptr &&
      (!options_.uplink_codec->deterministic() ||
       options_.uplink_codec->stateful())) {
    return Status::InvalidArgument(
        "serve: uplink codec '" + options_.uplink_codec->name() +
        "' is stochastic or stateful — sessions cannot reproduce it");
  }
  if (options_.system_model != nullptr &&
      options_.system_model->fleet().num_clients() < num_clients) {
    return Status::InvalidArgument(
        "serve: fleet covers " +
        std::to_string(options_.system_model->fleet().num_clients()) +
        " clients, run has " + std::to_string(num_clients));
  }
  num_clients_ = num_clients;
  dim_ = dim;

  ingest_histograms_.assign(static_cast<size_t>(options_.num_shards),
                            nullptr);
  if (obs::MetricsEnabled()) {
    for (int s = 0; s < options_.num_shards; ++s) {
      ingest_histograms_[static_cast<size_t>(s)] =
          obs::MetricsRegistry::Global().histogram(
              obs::ShardLabel("serve/ingest_seconds", s));
    }
  }

  stop_workers_.store(false, std::memory_order_release);
  queues_.clear();
  for (int s = 0; s < options_.num_shards; ++s) {
    queues_.push_back(std::make_unique<IngestQueue<ShardItem>>(
        static_cast<size_t>(options_.queue_capacity)));
  }
  for (int s = 0; s < options_.num_shards; ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
  serving_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Frontend::BeginRound(int round, const std::vector<int>& cohort,
                            const DownlinkPlan& downlink,
                            const std::vector<float>& theta) {
  if (!serving_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("serve: BeginRound before StartServing");
  }
  auto state = std::make_shared<RoundState>();
  state->round = round;
  state->cohort = cohort;
  state->slot_of_client.reserve(cohort.size());
  for (size_t i = 0; i < cohort.size(); ++i) {
    if (!state->slot_of_client
             .emplace(cohort[i], static_cast<uint32_t>(i))
             .second) {
      return Status::InvalidArgument(
          "serve: duplicate client in cohort (client " +
          std::to_string(cohort[i]) + ")");
    }
  }
  state->download_bytes_per_client = downlink.per_client_bytes;
  state->dim = dim_;
  state->slots.resize(cohort.size());
  state->claimed =
      std::make_unique<std::atomic<uint8_t>[]>(cohort.size());
  for (size_t i = 0; i < cohort.size(); ++i) {
    state->claimed[i].store(0, std::memory_order_relaxed);
  }

  // ONE model frame for the whole cohort: the loop's own encoded
  // broadcast when a downlink codec ran, raw little-endian θ otherwise.
  if (downlink.encoded != nullptr) {
    state->model_frame = std::make_shared<const std::vector<uint8_t>>(
        BuildModelFrame(static_cast<uint32_t>(round), /*encoded=*/true,
                        static_cast<uint64_t>(dim_),
                        downlink.encoded->data(),
                        static_cast<uint32_t>(downlink.encoded->size())));
  } else {
    std::vector<uint8_t> raw(theta.size() * sizeof(float));
    if constexpr (wire::kHostIsLittleEndian) {
      std::memcpy(raw.data(), theta.data(), raw.size());
    } else {
      std::vector<uint8_t> le;
      le.reserve(raw.size());
      wire::Writer w(&le);
      for (const float v : theta) w.PutF32(v);
      raw = std::move(le);
    }
    state->model_frame = std::make_shared<const std::vector<uint8_t>>(
        BuildModelFrame(static_cast<uint32_t>(round), /*encoded=*/false,
                        static_cast<uint64_t>(dim_), raw.data(),
                        static_cast<uint32_t>(raw.size())));
  }

  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    current_ = std::move(state);
  }
  round_cv_.notify_all();
  return Status::OK();
}

Result<std::vector<UpdateMessage>> Frontend::CollectWave(int round) {
  std::shared_ptr<RoundState> state;
  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    state = current_;
  }
  if (state == nullptr || state->round != round) {
    return Status::FailedPrecondition(
        "serve: CollectWave(" + std::to_string(round) +
        ") does not match the open round");
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  const bool resolved = state->cv.wait_for(
      lock, std::chrono::duration<double>(options_.collect_timeout_seconds),
      [&] {
        return state->resolved == state->cohort.size() || !state->error.ok();
      });
  if (!state->error.ok()) return state->error;
  if (!resolved) {
    return Status::IoError(
        "serve: CollectWave timed out after " +
        std::to_string(options_.collect_timeout_seconds) + "s with " +
        std::to_string(state->resolved) + "/" +
        std::to_string(state->cohort.size()) + " uploads resolved");
  }
  return std::move(state->slots);
}

RoundInfo Frontend::WaitRoundOpen(int min_round) {
  std::unique_lock<std::mutex> lock(round_mutex_);
  round_cv_.wait(lock, [&] {
    return finished_ || (current_ != nullptr && current_->round >= min_round);
  });
  RoundInfo info;
  if (finished_) return info;
  info.open = true;
  info.round = current_->round;
  info.cohort = current_->cohort;
  return info;
}

void Frontend::FinishServing() {
  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    if (finished_) return;
    finished_ = true;
  }
  round_cv_.notify_all();
  stop_workers_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

FrontendLedger Frontend::ledger() const {
  FrontendLedger ledger;
  ledger.hello_count = cells_.hello_count.load();
  ledger.model_frames = cells_.model_frames.load();
  ledger.model_payload_bytes = cells_.model_payload_bytes.load();
  ledger.acks_accepted = cells_.acks_accepted.load();
  ledger.acks_partial = cells_.acks_partial.load();
  ledger.acks_rejected = cells_.acks_rejected.load();
  ledger.ingested_payload_bytes = cells_.ingested_payload_bytes.load();
  ledger.malformed_frames = cells_.malformed_frames.load();
  ledger.protocol_errors = cells_.protocol_errors.load();
  ledger.decode_errors = cells_.decode_errors.load();
  ledger.throttled = cells_.throttled.load();
  ledger.bytes_in = cells_.bytes_in.load();
  ledger.peak_sessions = cells_.peak_sessions.load();
  return ledger;
}

Frontend::SessionState* Frontend::SessionFor(Connection* conn) {
  auto* session = static_cast<SessionState*>(conn->context());
  if (session != nullptr) return session;
  session = new SessionState();
  conn->set_context(session);
  std::lock_guard<std::mutex> lock(session_mutex_);
  sessions_.insert(session);
  return session;
}

void Frontend::SendError(Connection* conn, ErrorCode code,
                         const Status& status) {
  SendError(conn, code, status.message().c_str());
}

void Frontend::SendError(Connection* conn, ErrorCode code,
                         const char* message) {
  (void)conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
      BuildErrorFrame(code, message)));
}

void Frontend::Poison(Connection* conn, SessionState* session,
                      const Status& status) {
  session->dead = true;
  cells_.malformed_frames.fetch_add(1);
  SendError(conn, ErrorCode::kMalformed, status);
}

void Frontend::OnBytes(Connection* conn, const uint8_t* data, size_t len) {
  cells_.bytes_in.fetch_add(static_cast<int64_t>(len));
  SessionState* session = SessionFor(conn);
  if (session->dead) return;
  Status pushed = session->assembler.Push(data, len);
  if (!pushed.ok()) {
    Poison(conn, session, pushed);
    return;
  }
  std::vector<uint8_t> frame;
  for (;;) {
    Result<bool> next = session->assembler.Next(&frame);
    if (!next.ok()) {
      Poison(conn, session, next.status());
      return;
    }
    if (!*next) return;
    HandleFrame(conn, session, std::move(frame));
    if (session->dead) return;
  }
}

void Frontend::OnDisconnect(Connection* conn) {
  auto* session = static_cast<SessionState*>(conn->context());
  if (session == nullptr) return;
  conn->set_context(nullptr);
  std::lock_guard<std::mutex> lock(session_mutex_);
  if (session->client >= 0) --active_sessions_;
  sessions_.erase(session);
  delete session;
}

void Frontend::HandleFrame(Connection* conn, SessionState* session,
                           std::vector<uint8_t> frame) {
  FrameHeader header;
  Status parsed =
      ParseFrameHeader(frame.data(), kFrameHeaderBytes, &header);
  if (!parsed.ok()) {  // unreachable: the assembler validated
    Poison(conn, session, parsed);
    return;
  }
  const uint8_t* body = frame.data() + kFrameHeaderBytes;
  const size_t body_len = header.body_len;

  if (header.type == FrameType::kHello) {
    HandleHello(conn, session, body, body_len);
    return;
  }

  // Every other client frame runs under its session binding.
  if (session->client < 0 || header.session != session->token) {
    cells_.protocol_errors.fetch_add(1);
    SendError(conn, ErrorCode::kUnknownSession,
              "frame session token is not bound to this connection");
    return;
  }
  switch (header.type) {
    case FrameType::kPull:
      HandlePull(conn, session, body, body_len);
      return;
    case FrameType::kUpdate:
      // The shard worker takes ownership of the frame buffer and decodes
      // straight out of it — no further copies.
      HandleUpdate(conn, session, std::move(frame));
      return;
    case FrameType::kBye: {
      std::lock_guard<std::mutex> lock(session_mutex_);
      --active_sessions_;
      session->client = -1;
      session->token = 0;
      return;
    }
    default:
      cells_.protocol_errors.fetch_add(1);
      SendError(conn, ErrorCode::kProtocol,
                "server-bound frame of a server→client type");
      return;
  }
}

void Frontend::HandleHello(Connection* conn, SessionState* session,
                           const uint8_t* body, size_t len) {
  uint32_t client_id = 0;
  Status parsed = ParseHelloBody(body, len, &client_id);
  if (!parsed.ok()) {
    Poison(conn, session, parsed);
    return;
  }
  if (!serving_.load(std::memory_order_acquire)) {
    SendError(conn, ErrorCode::kNotServing, "frontend is not serving");
    return;
  }
  if (client_id >= static_cast<uint32_t>(num_clients_)) {
    cells_.protocol_errors.fetch_add(1);
    SendError(conn, ErrorCode::kProtocol, "HELLO client_id out of range");
    return;
  }
  if (session->client >= 0) {
    if (session->client == static_cast<int>(client_id)) {
      // Idempotent re-HELLO: resend the WELCOME.
      (void)conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
          BuildWelcomeFrame(session->token, client_id)));
      return;
    }
    cells_.protocol_errors.fetch_add(1);
    SendError(conn, ErrorCode::kProtocol,
              "connection is already bound to another client");
    return;
  }
  session->client = static_cast<int>(client_id);
  session->token = SessionTokenForClient(client_id);
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    ++active_sessions_;
    int64_t peak = cells_.peak_sessions.load(std::memory_order_relaxed);
    while (active_sessions_ > peak &&
           !cells_.peak_sessions.compare_exchange_weak(peak,
                                                       active_sessions_)) {
    }
  }
  cells_.hello_count.fetch_add(1);
  (void)conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
      BuildWelcomeFrame(session->token, client_id)));
}

void Frontend::HandlePull(Connection* conn, SessionState* session,
                          const uint8_t* body, size_t len) {
  uint32_t round = 0;
  Status parsed = ParsePullBody(body, len, &round);
  if (!parsed.ok()) {
    Poison(conn, session, parsed);
    return;
  }
  std::shared_ptr<RoundState> state;
  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    state = current_;
  }
  if (state == nullptr) {
    (void)conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
        BuildStandbyFrame(kNoOpenRound)));
    return;
  }
  if (round != static_cast<uint32_t>(state->round) ||
      state->slot_of_client.find(session->client) ==
          state->slot_of_client.end()) {
    // Wrong round or not selected this round: tell the client what IS
    // current so it can re-sync.
    (void)conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
        BuildStandbyFrame(static_cast<uint32_t>(state->round))));
    return;
  }
  cells_.model_frames.fetch_add(1);
  cells_.model_payload_bytes.fetch_add(
      static_cast<int64_t>(state->model_frame->size()) -
      static_cast<int64_t>(kFrameHeaderBytes));
  (void)conn->SendFrame(state->model_frame);
}

void Frontend::HandleUpdate(Connection* conn, SessionState* session,
                            std::vector<uint8_t> frame) {
  // Pin the buffer first so the parsed body views stay valid for the
  // worker.
  auto owned = std::make_shared<std::vector<uint8_t>>(std::move(frame));
  UpdateBody body;
  Status parsed = ParseUpdateBody(owned->data() + kFrameHeaderBytes,
                                  owned->size() - kFrameHeaderBytes, &body);
  if (!parsed.ok()) {
    Poison(conn, session, parsed);
    return;
  }
  const UpdateFrameHeader& h = body.header;

  std::shared_ptr<RoundState> state;
  {
    std::lock_guard<std::mutex> lock(round_mutex_);
    state = current_;
  }
  if (state == nullptr ||
      h.round != static_cast<uint32_t>(state->round)) {
    cells_.protocol_errors.fetch_add(1);
    SendError(conn, ErrorCode::kProtocol, "UPDATE for a round that is not open");
    return;
  }
  const auto slot_it = state->slot_of_client.find(session->client);
  if (slot_it == state->slot_of_client.end()) {
    cells_.protocol_errors.fetch_add(1);
    SendError(conn, ErrorCode::kProtocol,
              "UPDATE from a client outside this round's cohort");
    return;
  }

  // Structural validation before any queueing: dims must match the run
  // and payload lengths must match the codec's exact wire size — byte
  // billing is only honest if the frame is exactly the codec payload.
  const UpdateCodec* codec = options_.uplink_codec;
  const int64_t expect1 =
      codec != nullptr ? codec->WireBytes(dim_) : RawPayloadBytes(dim_);
  const bool dims_ok =
      h.dim1 == static_cast<uint64_t>(dim_) &&
      (h.dim2 == 0 || h.dim2 == static_cast<uint64_t>(dim_)) &&
      h.epochs_run <= 0x7FFFFFFFu && h.steps_run <= 0x7FFFFFFFu;
  const int64_t expect2 = h.dim2 == 0 ? 0 : expect1;
  if (!dims_ok || static_cast<int64_t>(h.payload1_len) != expect1 ||
      static_cast<int64_t>(h.payload2_len) != expect2) {
    Poison(conn, session, Status::InvalidArgument(
                              "serve: UPDATE dims/payload sizes do not "
                              "match the run shape"));
    return;
  }

  // Connection-level admission: the straggler policy as a per-client
  // predicate — the same pure Judge(ComputeClientTiming(...)) the loop
  // applies in SystemModel::JudgeRound, so this ACK mirrors the final
  // verdict instead of inventing a second policy.
  AckBody ack;
  ack.round = h.round;
  if (options_.system_model != nullptr) {
    const ClientTiming timing = ComputeClientTiming(
        options_.system_model->fleet().profile(session->client),
        static_cast<int>(h.steps_run),
        static_cast<int64_t>(h.payload1_len) +
            static_cast<int64_t>(h.payload2_len),
        state->download_bytes_per_client);
    const StragglerDecision decision =
        options_.system_model->policy().Judge(timing);
    ack.work_fraction = decision.work_fraction;
    switch (decision.fate) {
      case ClientFate::kAdmitted:
        ack.status = AckStatus::kAccepted;
        break;
      case ClientFate::kAdmittedPartial:
        ack.status = AckStatus::kPartial;
        break;
      case ClientFate::kDropped:
        ack.status = AckStatus::kRejected;
        break;
    }
  }

  // Claim the slot (duplicate-upload guard), then queue to the owning
  // shard. Rejected clients are queued too: the loop judges the full
  // cohort, so the wave needs their decoded updates as well.
  const uint32_t slot = slot_it->second;
  uint8_t expected = 0;
  if (!state->claimed[slot].compare_exchange_strong(expected, 1)) {
    cells_.protocol_errors.fetch_add(1);
    SendError(conn, ErrorCode::kProtocol, "duplicate UPDATE for this round");
    return;
  }

  ShardItem item;
  item.client = session->client;
  item.slot = slot;
  item.ack = ack;
  item.body = body;
  item.conn = conn;
  item.state = state;
  item.enqueue_seconds = NowSeconds();
  const int64_t payload_bytes = static_cast<int64_t>(h.payload1_len) +
                                static_cast<int64_t>(h.payload2_len);
  item.frame = std::move(owned);

  const int shard = ShardOfClient(item.client, options_.num_shards);
  if (!queues_[static_cast<size_t>(shard)]->TryPush(std::move(item))) {
    // Backpressure: un-claim and tell the client to retry. Nothing is
    // silently dropped — the client owns the retry loop.
    state->claimed[slot].store(0, std::memory_order_release);
    cells_.throttled.fetch_add(1);
    AckBody throttle;
    throttle.status = AckStatus::kThrottled;
    throttle.round = h.round;
    throttle.retry_after_seconds = options_.throttle_retry_seconds;
    (void)conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
        BuildAckFrame(throttle)));
    return;
  }
  cells_.ingested_payload_bytes.fetch_add(payload_bytes);
}

Status Frontend::DecodeItem(const ShardItem& item, UpdateMessage* msg) const {
  const UpdateFrameHeader& h = item.body.header;
  const UpdateCodec* codec = options_.uplink_codec;
  if (codec != nullptr) {
    FEDADMM_ASSIGN_OR_RETURN(
        msg->delta, codec->TryDecode(item.body.payload1, h.payload1_len,
                                     static_cast<int64_t>(h.dim1)));
    if (h.dim2 != 0) {
      FEDADMM_ASSIGN_OR_RETURN(
          msg->delta2, codec->TryDecode(item.body.payload2, h.payload2_len,
                                        static_cast<int64_t>(h.dim2)));
    }
    msg->wire_bytes = static_cast<int64_t>(h.payload1_len) +
                      static_cast<int64_t>(h.payload2_len);
  } else {
    msg->delta =
        DecodeRawFloats(item.body.payload1, static_cast<int64_t>(h.dim1));
    if (h.dim2 != 0) {
      msg->delta2 =
          DecodeRawFloats(item.body.payload2, static_cast<int64_t>(h.dim2));
    }
    msg->wire_bytes = -1;  // raw fp32: UploadBytes falls back to RawBytes
  }
  msg->client_id = item.client;
  msg->train_loss = h.train_loss;
  msg->epochs_run = static_cast<int>(h.epochs_run);
  msg->steps_run = static_cast<int>(h.steps_run);
  msg->final_grad_norm_sq = h.final_grad_norm_sq;
  return Status::OK();
}

void Frontend::WorkerLoop(int shard) {
  IngestQueue<ShardItem>& queue = *queues_[static_cast<size_t>(shard)];
  obs::Histogram* histogram = ingest_histograms_[static_cast<size_t>(shard)];
  ShardItem item;
  while (queue.PopWait(&item, stop_workers_)) {
    UpdateMessage msg;
    Status decoded = DecodeItem(item, &msg);
    RoundState& state = *item.state;
    if (!decoded.ok()) {
      cells_.decode_errors.fetch_add(1);
      SendError(item.conn, ErrorCode::kDecode, decoded);
      std::lock_guard<std::mutex> lock(state.mutex);
      state.claimed[item.slot].store(2, std::memory_order_release);
      if (state.error.ok()) {
        state.error = Status::InvalidArgument(
            "serve: client " + std::to_string(item.client) +
            " upload failed to decode: " + decoded.message());
      }
      state.cv.notify_all();
      // Drop the item; CollectWave surfaces the sticky error.
      item = ShardItem();
      continue;
    }
    if (histogram != nullptr) {
      histogram->Record(NowSeconds() - item.enqueue_seconds);
    }
    switch (item.ack.status) {
      case AckStatus::kAccepted:
        cells_.acks_accepted.fetch_add(1);
        break;
      case AckStatus::kPartial:
        cells_.acks_partial.fetch_add(1);
        break;
      case AckStatus::kRejected:
        cells_.acks_rejected.fetch_add(1);
        break;
      case AckStatus::kThrottled:
        break;  // never queued with this status
    }
    (void)item.conn->SendFrame(std::make_shared<const std::vector<uint8_t>>(
        BuildAckFrame(item.ack)));
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.slots[item.slot] = std::move(msg);
      state.claimed[item.slot].store(2, std::memory_order_release);
      ++state.resolved;
      if (state.resolved == state.cohort.size()) state.cv.notify_all();
    }
    item = ShardItem();  // release the frame + round state promptly
  }
}

}  // namespace fedadmm::serve
