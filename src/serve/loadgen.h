/// \file loadgen.h
/// \brief Fleet load generator: drives tens of thousands of client
/// sessions against a serving frontend.
///
/// `LoadGenerator::Run()` (call it from its own thread, concurrently with
/// `Simulation::Run`) loops `Frontend::WaitRoundOpen` and, per round,
/// replays the cohort as real sessions: connect + HELLO once per client,
/// PULL the broadcast (decoded exactly once per round), run the true
/// local computation through its own `ClientExecutor` — the same
/// per-(round, client) RNG forks as the in-process engine, so the wave is
/// bitwise identical — then encode + UPLOAD every update before polling
/// ACKs, retrying on THROTTLED. The fire-hose upload phase (send all,
/// then poll) is what actually exercises the frontend's bounded-queue
/// backpressure at 10k+ sessions.
///
/// Requires a deterministic, stateless uplink codec (or none): drivers
/// encode concurrently, which is only sound when Encode is a pure
/// function of its input.

#ifndef FEDADMM_SERVE_LOADGEN_H_
#define FEDADMM_SERVE_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/codec.h"
#include "fl/client_executor.h"
#include "serve/frontend.h"
#include "serve/transport.h"
#include "util/thread_pool.h"

namespace fedadmm::serve {

/// \brief Load-generator knobs.
struct LoadGenOptions {
  /// Driver threads for session I/O (connect/pull/upload/ack phases).
  int driver_threads = 4;
  /// Client-side encoder twin of the run's uplink codec (borrowed, may be
  /// null = raw fp32 payloads). Must be deterministic and stateless.
  UpdateCodec* uplink_codec = nullptr;
  /// Client-side decoder twin of the run's downlink codec (borrowed, may
  /// be null = raw fp32 broadcast).
  UpdateCodec* downlink_codec = nullptr;
  /// Per-frame receive deadline; a silent server fails the run (IoError)
  /// instead of hanging it.
  double poll_timeout_seconds = 60.0;
};

/// \brief Informational session-side tallies (timing-dependent where
/// noted; the deterministic ledger lives in `Frontend`).
struct LoadGenStats {
  int64_t rounds = 0;
  int64_t model_frames = 0;
  int64_t acks_accepted = 0;
  int64_t acks_partial = 0;
  int64_t acks_rejected = 0;
  /// THROTTLED acks absorbed (each one is a resend) — timing-dependent.
  int64_t throttle_retries = 0;
};

/// \brief Drives client sessions against a Frontend over a Transport.
class LoadGenerator {
 public:
  /// `problem`/`algorithm` are borrowed and must be the SAME objects the
  /// serve-mode Simulation aggregates with: the loop skips in-process
  /// client execution, so per-client algorithm state must mutate exactly
  /// once — here. `seed`, `num_threads`, `num_shards` must match the
  /// SimulationConfig for bitwise-equal waves.
  LoadGenerator(FederatedProblem* problem, FederatedAlgorithm* algorithm,
                uint64_t seed, int num_threads, int num_shards,
                Frontend* frontend, Transport* transport,
                LoadGenOptions options);

  /// Serves rounds until `Frontend::FinishServing`; first session error
  /// aborts the run with its Status.
  Status Run();

  LoadGenStats stats() const;

 private:
  struct Session {
    std::unique_ptr<ClientChannel> channel;
    uint64_t token = 0;
    /// The encoded UPDATE frame, kept for THROTTLED resends.
    std::vector<uint8_t> update_frame;
  };

  Status RunRound(const RoundInfo& info);
  /// Connects + HELLOs `client`'s session if it does not exist yet.
  Status EnsureSession(int client);
  /// PULLs `round` on `client`'s session; returns the MODEL frame.
  Status Pull(int client, int round, std::vector<uint8_t>* model_frame);
  /// Decodes a MODEL frame into θ (codec or raw fp32).
  Status DecodeModel(const std::vector<uint8_t>& model_frame, int round,
                     std::vector<float>* theta);
  /// Builds + sends `client`'s UPDATE for `msg`.
  Status SendUpdate(int client, int round, const UpdateMessage& msg);
  /// Polls `client`'s terminal ACK, resending on THROTTLED.
  Status AwaitAck(int client, int round);
  /// Blocks until one frame arrives on `session` (poll + backoff).
  Status PollFrame(Session* session, std::vector<uint8_t>* frame);

  /// Runs `body(i)` over [0, n) on the driver pool, capturing the first
  /// error; bodies observing a prior error return immediately.
  Status ParallelSessions(int n, const std::function<Status(int)>& body);

  FederatedProblem* problem_;
  Frontend* frontend_;
  Transport* transport_;
  const LoadGenOptions options_;
  ClientExecutor executor_;
  ThreadPool drivers_;

  std::vector<Session> sessions_;

  std::mutex error_mutex_;
  Status first_error_ = Status::OK();
  std::atomic<bool> failed_{false};

  struct Cells {
    std::atomic<int64_t> rounds{0};
    std::atomic<int64_t> model_frames{0};
    std::atomic<int64_t> acks_accepted{0};
    std::atomic<int64_t> acks_partial{0};
    std::atomic<int64_t> acks_rejected{0};
    std::atomic<int64_t> throttle_retries{0};
  };
  mutable Cells cells_;
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_LOADGEN_H_
