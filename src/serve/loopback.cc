#include "serve/loopback.h"

#include <utility>

namespace fedadmm::serve {

/// Server-side endpoint: SendFrame appends to the shared inbox the client
/// channel drains.
class LoopbackTransport::LoopbackConnection : public Connection {
 public:
  Status SendFrame(
      std::shared_ptr<const std::vector<uint8_t>> frame) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Status::IoError("loopback: connection closed");
    inbox_.push_back(std::move(frame));
    return Status::OK();
  }

  bool PopFrame(std::vector<uint8_t>* frame) {
    std::shared_ptr<const std::vector<uint8_t>> next;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (inbox_.empty()) return false;
      next = std::move(inbox_.front());
      inbox_.pop_front();
    }
    *frame = *next;
    return true;
  }

  /// Marks the connection closed; returns true on the closing transition
  /// (so OnDisconnect fires exactly once).
  bool Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    return !std::exchange(closed_, true);
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  bool closed_ = false;
  std::deque<std::shared_ptr<const std::vector<uint8_t>>> inbox_;
};

/// Client-side endpoint bound to one connection.
class LoopbackTransport::LoopbackChannel : public ClientChannel {
 public:
  LoopbackChannel(std::shared_ptr<LoopbackConnection> conn, FrameSink* sink)
      : conn_(std::move(conn)), sink_(sink) {}

  ~LoopbackChannel() override { Close(); }

  Status Send(const std::vector<uint8_t>& frame) override {
    if (conn_->closed()) return Status::IoError("loopback: channel closed");
    // Synchronous delivery: the frontend reacts on this thread, so replies
    // are already in the inbox when Send returns.
    sink_->OnBytes(conn_.get(), frame.data(), frame.size());
    return Status::OK();
  }

  Result<bool> TryReceiveFrame(std::vector<uint8_t>* frame) override {
    if (conn_->PopFrame(frame)) return true;
    if (conn_->closed()) return Status::IoError("loopback: channel closed");
    return false;
  }

  void Close() override {
    if (conn_->Close()) sink_->OnDisconnect(conn_.get());
  }

 private:
  std::shared_ptr<LoopbackConnection> conn_;
  FrameSink* sink_;
};

Status LoopbackTransport::Start(FrameSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("loopback: already started");
  if (sink == nullptr) {
    return Status::InvalidArgument("loopback: null sink");
  }
  sink_ = sink;
  started_ = true;
  return Status::OK();
}

Result<std::unique_ptr<ClientChannel>> LoopbackTransport::Connect() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!started_) return Status::FailedPrecondition("loopback: not started");
  auto conn = std::make_shared<LoopbackConnection>();
  connections_.push_back(conn);
  return std::unique_ptr<ClientChannel>(
      new LoopbackChannel(std::move(conn), sink_));
}

void LoopbackTransport::Stop() {
  std::vector<std::shared_ptr<LoopbackConnection>> connections;
  FrameSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    started_ = false;
    sink = sink_;
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    if (conn->Close()) sink->OnDisconnect(conn.get());
  }
}

const std::string& LoopbackTransport::name() const {
  static const std::string* const kName = new std::string("loopback");
  return *kName;
}

}  // namespace fedadmm::serve
