/// \file transport.h
/// \brief Byte-transport abstraction between client sessions and the
/// serving frontend.
///
/// Two implementations ship:
///   * `LoopbackTransport` (loopback.h) — in-memory, synchronous delivery
///     on the caller's thread; the deterministic substrate for tests and
///     the `bench_ingest_load` load generator.
///   * `SocketTransport` (socket_transport.h) — real TCP over 127.0.0.1
///     with an epoll reader thread; proves the frontend end-to-end over an
///     actual network stack.
///
/// Server side: the transport accepts connections and feeds their raw
/// bytes to a `FrameSink` (implemented by `serve::Frontend`); the sink
/// replies through the `Connection` handed to it. Client side: `Connect`
/// returns a `ClientChannel` that sends raw bytes and reassembles
/// server→client frames.
///
/// Threading contract: a given connection's `OnBytes` calls are serialized
/// (loopback: the sending client thread; socket: the single epoll thread),
/// but different connections may deliver concurrently. `SendFrame` may be
/// called from any thread — implementations serialize writes internally.
/// Frames are passed as `shared_ptr<const vector<uint8_t>>` so one
/// broadcast buffer (the round's MODEL frame) fans out to every session
/// without a per-session copy.

#ifndef FEDADMM_SERVE_TRANSPORT_H_
#define FEDADMM_SERVE_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedadmm::serve {

/// \brief Server-side handle to one accepted connection.
///
/// The transport owns every `Connection` it accepts and keeps it alive —
/// even after disconnect — until `Stop()`, so a shard worker may safely
/// hold the pointer across its queue; sends after disconnect fail with
/// IoError instead of touching freed memory.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Queues one complete frame for delivery to the client. Thread-safe.
  virtual Status SendFrame(
      std::shared_ptr<const std::vector<uint8_t>> frame) = 0;

  /// Opaque per-connection slot for the sink's session state. The sink is
  /// the only writer (from its serialized OnBytes stream).
  void set_context(void* context) { context_ = context; }
  void* context() const { return context_; }

 private:
  void* context_ = nullptr;
};

/// \brief Receives server-side transport events; implemented by Frontend.
class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// `len` raw bytes arrived on `conn` (arbitrary fragmentation — the sink
  /// reassembles frames). Runs on a transport thread; calls for one
  /// connection are serialized.
  virtual void OnBytes(Connection* conn, const uint8_t* data,
                       size_t len) = 0;

  /// The peer closed (or the transport dropped) `conn`. No further
  /// OnBytes for it; the sink must stop using the connection for sends.
  virtual void OnDisconnect(Connection* conn) = 0;
};

/// \brief Client-side handle to one connection.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// Sends one complete frame to the server. Calls on one channel must be
  /// serialized by the caller (one session = one driving thread at a time).
  virtual Status Send(const std::vector<uint8_t>& frame) = 0;

  /// Non-blocking: moves the next complete server→client frame into
  /// `*frame` and returns true, or returns false when none is pending.
  /// Errors on a poisoned stream or closed connection.
  virtual Result<bool> TryReceiveFrame(std::vector<uint8_t>* frame) = 0;

  /// Closes the client end (idempotent).
  virtual void Close() = 0;
};

/// \brief A listening transport plus its client-side connector.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Starts accepting; all bytes flow to `sink` (borrowed, must outlive
  /// the transport or `Stop()`).
  virtual Status Start(FrameSink* sink) = 0;

  /// Opens a client connection to the started server.
  virtual Result<std::unique_ptr<ClientChannel>> Connect() = 0;

  /// Stops accepting, closes every connection (emitting OnDisconnect for
  /// live ones) and joins transport threads. Idempotent.
  virtual void Stop() = 0;

  /// "loopback" or "socket" — for bench/test labels.
  virtual const std::string& name() const = 0;
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_TRANSPORT_H_
