/// \file frame.h
/// \brief The serving frontend's wire grammar: length-prefixed frames.
///
/// Every message between a client session and the frontend is one frame:
///
///   header (20 bytes, little-endian):
///     u32 magic      "FADM" (0x4D444146)
///     u8  version    kProtocolVersion
///     u8  type       FrameType
///     u16 flags      reserved, 0
///     u64 session    session token (client→server; server frames carry 0,
///                    the per-connection stream identifies the receiver —
///                    this is what lets one MODEL frame be shared zero-copy
///                    across every session of a broadcast)
///     u32 body_len   bytes that follow
///   body (type-specific, layouts below)
///
/// Session lifecycle: HELLO(client_id) → WELCOME(session); then per round
/// PULL(round) → MODEL(round, payload) | STANDBY(round); UPDATE(metadata,
/// payloads) → ACK(status, work_fraction, retry_after) | ERROR; BYE closes.
/// The UPDATE payloads are the existing codec wire formats (comm/) verbatim
/// — the frontend adds framing, never re-encodes.
///
/// Every parser here returns Status through `wire::ReaderView`: these bytes
/// cross a process/network boundary and must never abort the server
/// (tests/serve/malformed_frame_fuzz_test.cc). Every builder reserves the
/// exact frame size before writing — frames never reallocate mid-encode.

#ifndef FEDADMM_SERVE_FRAME_H_
#define FEDADMM_SERVE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fedadmm::serve {

/// "FADM" as a little-endian u32.
inline constexpr uint32_t kFrameMagic = 0x4D444146u;
inline constexpr uint8_t kProtocolVersion = 1;
/// Fixed header size preceding every body.
inline constexpr size_t kFrameHeaderBytes = 20;
/// Upper bound on body_len: anything larger is rejected before buffering,
/// so a hostile header cannot make the server allocate unbounded memory.
inline constexpr uint32_t kMaxBodyBytes = 64u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kWelcome = 2,
  kPull = 3,
  kModel = 4,
  kStandby = 5,
  kUpdate = 6,
  kAck = 7,
  kError = 8,
  kBye = 9,
};

/// \brief Decoded frame header.
struct FrameHeader {
  uint8_t version = 0;
  FrameType type = FrameType::kHello;
  uint16_t flags = 0;
  uint64_t session = 0;
  uint32_t body_len = 0;
};

/// Parses and validates a header from the first `kFrameHeaderBytes` of
/// `data`: magic, version, known type, and the body_len bound.
Status ParseFrameHeader(const uint8_t* data, size_t len, FrameHeader* out);

/// Round value STANDBY carries when no round is open yet.
inline constexpr uint32_t kNoOpenRound = 0xFFFFFFFFu;

/// \brief ACK verdict for one upload.
enum class AckStatus : uint8_t {
  /// Admitted in full (mirrors ClientFate::kAdmitted).
  kAccepted = 0,
  /// Admitted at `work_fraction` (mirrors ClientFate::kAdmittedPartial).
  kPartial = 1,
  /// The straggler policy dropped this upload (mirrors kDropped).
  kRejected = 2,
  /// The shard's ingest queue was full — backpressure; retry the same
  /// UPDATE after `retry_after_seconds`.
  kThrottled = 3,
};

/// \brief ACK body: u8 status, u32 round, f64 work_fraction,
/// f64 retry_after_seconds.
struct AckBody {
  AckStatus status = AckStatus::kAccepted;
  uint32_t round = 0;
  double work_fraction = 1.0;
  double retry_after_seconds = 0.0;
};

/// \brief ERROR frame reason codes.
enum class ErrorCode : uint16_t {
  /// The frame or body failed to parse.
  kMalformed = 1,
  /// The header's session token is not bound to this connection.
  kUnknownSession = 2,
  /// A well-formed frame that violates the session/round state machine
  /// (duplicate HELLO, UPDATE for a closed round, duplicate upload, ...).
  kProtocol = 3,
  /// The update payload failed codec validation on the shard worker.
  kDecode = 4,
  /// The frontend is not (or no longer) serving rounds.
  kNotServing = 5,
};

/// \brief ERROR body: u16 code, u16 message_len, message bytes.
struct ErrorBody {
  ErrorCode code = ErrorCode::kMalformed;
  std::string message;
};

/// \brief UPDATE body prefix: u32 round, u32 epochs_run, u32 steps_run,
/// f64 train_loss, f64 final_grad_norm_sq, u64 dim1, u32 payload1_len,
/// u64 dim2, u32 payload2_len — followed by payload1 then payload2 bytes.
/// The sender's client id is *not* on the wire: the session binding is the
/// only identity the server trusts.
struct UpdateFrameHeader {
  uint32_t round = 0;
  uint32_t epochs_run = 0;
  uint32_t steps_run = 0;
  double train_loss = 0.0;
  double final_grad_norm_sq = 0.0;
  uint64_t dim1 = 0;
  uint32_t payload1_len = 0;
  uint64_t dim2 = 0;
  uint32_t payload2_len = 0;
};
/// Fixed bytes of the UPDATE body before the payloads.
inline constexpr size_t kUpdateFixedBytes = 52;

/// \brief Parsed UPDATE body; payload pointers view the input buffer.
struct UpdateBody {
  UpdateFrameHeader header;
  const uint8_t* payload1 = nullptr;
  const uint8_t* payload2 = nullptr;
};

/// \brief Parsed MODEL body; the payload pointer views the input buffer.
/// Body layout: u32 round, u8 encoded, u64 dim, u32 payload_len, payload.
struct ModelBody {
  uint32_t round = 0;
  /// True when the payload is downlink-codec wire bytes (decode with the
  /// codec); false when it is raw little-endian fp32 θ.
  bool encoded = false;
  uint64_t dim = 0;
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;
};

// Builders. Each returns a complete frame (header + body) with the exact
// final size reserved up front.
std::vector<uint8_t> BuildHelloFrame(uint32_t client_id);
std::vector<uint8_t> BuildWelcomeFrame(uint64_t session, uint32_t client_id);
std::vector<uint8_t> BuildPullFrame(uint64_t session, uint32_t round);
std::vector<uint8_t> BuildModelFrame(uint32_t round, bool encoded,
                                     uint64_t dim, const uint8_t* payload,
                                     uint32_t payload_len);
std::vector<uint8_t> BuildStandbyFrame(uint32_t round);
std::vector<uint8_t> BuildUpdateFrame(uint64_t session,
                                      const UpdateFrameHeader& header,
                                      const uint8_t* payload1,
                                      const uint8_t* payload2);
std::vector<uint8_t> BuildAckFrame(const AckBody& ack);
std::vector<uint8_t> BuildErrorFrame(ErrorCode code,
                                     std::string_view message);
std::vector<uint8_t> BuildByeFrame(uint64_t session);

// Body parsers (`data`/`len` is the body only, after the header).
Status ParseHelloBody(const uint8_t* data, size_t len, uint32_t* client_id);
Status ParseWelcomeBody(const uint8_t* data, size_t len, uint64_t* session,
                        uint32_t* client_id);
Status ParsePullBody(const uint8_t* data, size_t len, uint32_t* round);
Status ParseModelBody(const uint8_t* data, size_t len, ModelBody* out);
Status ParseStandbyBody(const uint8_t* data, size_t len, uint32_t* round);
Status ParseUpdateBody(const uint8_t* data, size_t len, UpdateBody* out);
Status ParseAckBody(const uint8_t* data, size_t len, AckBody* out);
Status ParseErrorBody(const uint8_t* data, size_t len, ErrorBody* out);

/// The session token the frontend assigns `client_id` — a SplitMix64 of a
/// serve-local salt, deterministic so double runs produce identical byte
/// ledgers (and distinct per client: SplitMix64 is a bijection).
uint64_t SessionTokenForClient(uint32_t client_id);

/// \brief Reassembles frames from an arbitrary byte stream (socket reads
/// deliver fragments; loopback delivers whole frames — both feed here).
///
/// `Push` appends bytes; `Next` pops the earliest complete frame. A
/// malformed header (bad magic/version/type, oversized body) poisons the
/// stream: `Push`/`Next` return its Status forever after, and the caller
/// should drop the connection — there is no way to resynchronize a framed
/// stream after garbage.
class FrameAssembler {
 public:
  /// Appends `len` bytes, validating any newly visible header.
  Status Push(const uint8_t* data, size_t len);

  /// Moves the next complete frame (header + body) into `*frame`. Returns
  /// false when no complete frame is buffered. Errors iff the stream is
  /// poisoned.
  Result<bool> Next(std::vector<uint8_t>* frame);

  /// Bytes currently buffered (tests / backpressure accounting).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Status Validate();

  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  Status error_ = Status::OK();
};

}  // namespace fedadmm::serve

#endif  // FEDADMM_SERVE_FRAME_H_
