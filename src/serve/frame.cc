#include "serve/frame.h"

#include <cstring>

#include "comm/wire.h"
#include "util/rng.h"

namespace fedadmm::serve {
namespace {

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kBye);
}

/// Starts a frame: reserves `body_len` past the header and writes the
/// header. Every builder funnels through here so the exact-reserve
/// invariant holds in one place.
wire::Writer BeginFrame(std::vector<uint8_t>* out, FrameType type,
                        uint64_t session, uint32_t body_len) {
  out->reserve(kFrameHeaderBytes + body_len);
  wire::Writer w(out);
  w.PutU32(kFrameMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU16(0);  // flags
  w.PutU64(session);
  w.PutU32(body_len);
  return w;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("serve: malformed ") + what);
}

}  // namespace

Status ParseFrameHeader(const uint8_t* data, size_t len, FrameHeader* out) {
  wire::ReaderView r(data, len);
  uint32_t magic = 0;
  uint8_t type = 0;
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&magic));
  if (magic != kFrameMagic) return Malformed("frame: bad magic");
  FEDADMM_RETURN_IF_ERROR(r.TryU8(&out->version));
  if (out->version != kProtocolVersion) {
    return Malformed("frame: unsupported protocol version");
  }
  FEDADMM_RETURN_IF_ERROR(r.TryU8(&type));
  if (!KnownFrameType(type)) return Malformed("frame: unknown type");
  out->type = static_cast<FrameType>(type);
  FEDADMM_RETURN_IF_ERROR(r.TryU16(&out->flags));
  FEDADMM_RETURN_IF_ERROR(r.TryU64(&out->session));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&out->body_len));
  if (out->body_len > kMaxBodyBytes) {
    return Malformed("frame: oversized body");
  }
  return Status::OK();
}

std::vector<uint8_t> BuildHelloFrame(uint32_t client_id) {
  std::vector<uint8_t> out;
  wire::Writer w = BeginFrame(&out, FrameType::kHello, 0, 4);
  w.PutU32(client_id);
  return out;
}

std::vector<uint8_t> BuildWelcomeFrame(uint64_t session, uint32_t client_id) {
  std::vector<uint8_t> out;
  wire::Writer w = BeginFrame(&out, FrameType::kWelcome, 0, 12);
  w.PutU64(session);
  w.PutU32(client_id);
  return out;
}

std::vector<uint8_t> BuildPullFrame(uint64_t session, uint32_t round) {
  std::vector<uint8_t> out;
  wire::Writer w = BeginFrame(&out, FrameType::kPull, session, 4);
  w.PutU32(round);
  return out;
}

std::vector<uint8_t> BuildModelFrame(uint32_t round, bool encoded,
                                     uint64_t dim, const uint8_t* payload,
                                     uint32_t payload_len) {
  std::vector<uint8_t> out;
  const uint32_t body = 4 + 1 + 8 + 4 + payload_len;
  wire::Writer w = BeginFrame(&out, FrameType::kModel, 0, body);
  w.PutU32(round);
  w.PutU8(encoded ? 1 : 0);
  w.PutU64(dim);
  w.PutU32(payload_len);
  if (payload_len > 0) {
    std::memcpy(w.Extend(payload_len), payload, payload_len);
  }
  return out;
}

std::vector<uint8_t> BuildStandbyFrame(uint32_t round) {
  std::vector<uint8_t> out;
  wire::Writer w = BeginFrame(&out, FrameType::kStandby, 0, 4);
  w.PutU32(round);
  return out;
}

std::vector<uint8_t> BuildUpdateFrame(uint64_t session,
                                      const UpdateFrameHeader& header,
                                      const uint8_t* payload1,
                                      const uint8_t* payload2) {
  std::vector<uint8_t> out;
  const uint32_t body = static_cast<uint32_t>(
      kUpdateFixedBytes + header.payload1_len + header.payload2_len);
  wire::Writer w = BeginFrame(&out, FrameType::kUpdate, session, body);
  w.PutU32(header.round);
  w.PutU32(header.epochs_run);
  w.PutU32(header.steps_run);
  w.PutF64(header.train_loss);
  w.PutF64(header.final_grad_norm_sq);
  w.PutU64(header.dim1);
  w.PutU32(header.payload1_len);
  w.PutU64(header.dim2);
  w.PutU32(header.payload2_len);
  if (header.payload1_len > 0) {
    std::memcpy(w.Extend(header.payload1_len), payload1, header.payload1_len);
  }
  if (header.payload2_len > 0) {
    std::memcpy(w.Extend(header.payload2_len), payload2, header.payload2_len);
  }
  return out;
}

std::vector<uint8_t> BuildAckFrame(const AckBody& ack) {
  std::vector<uint8_t> out;
  wire::Writer w = BeginFrame(&out, FrameType::kAck, 0, 21);
  w.PutU8(static_cast<uint8_t>(ack.status));
  w.PutU32(ack.round);
  w.PutF64(ack.work_fraction);
  w.PutF64(ack.retry_after_seconds);
  return out;
}

std::vector<uint8_t> BuildErrorFrame(ErrorCode code,
                                     std::string_view message) {
  std::vector<uint8_t> out;
  const uint16_t msg_len =
      static_cast<uint16_t>(message.size() > 0xFFFF ? 0xFFFF
                                                    : message.size());
  wire::Writer w =
      BeginFrame(&out, FrameType::kError, 0, 4 + static_cast<uint32_t>(msg_len));
  w.PutU16(static_cast<uint16_t>(code));
  w.PutU16(msg_len);
  if (msg_len > 0) {
    std::memcpy(w.Extend(msg_len), message.data(), msg_len);
  }
  return out;
}

std::vector<uint8_t> BuildByeFrame(uint64_t session) {
  std::vector<uint8_t> out;
  BeginFrame(&out, FrameType::kBye, session, 0);
  return out;
}

Status ParseHelloBody(const uint8_t* data, size_t len, uint32_t* client_id) {
  wire::ReaderView r(data, len);
  FEDADMM_RETURN_IF_ERROR(r.TryU32(client_id));
  if (r.remaining() != 0) return Malformed("HELLO body: trailing bytes");
  return Status::OK();
}

Status ParseWelcomeBody(const uint8_t* data, size_t len, uint64_t* session,
                        uint32_t* client_id) {
  wire::ReaderView r(data, len);
  FEDADMM_RETURN_IF_ERROR(r.TryU64(session));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(client_id));
  if (r.remaining() != 0) return Malformed("WELCOME body: trailing bytes");
  return Status::OK();
}

Status ParsePullBody(const uint8_t* data, size_t len, uint32_t* round) {
  wire::ReaderView r(data, len);
  FEDADMM_RETURN_IF_ERROR(r.TryU32(round));
  if (r.remaining() != 0) return Malformed("PULL body: trailing bytes");
  return Status::OK();
}

Status ParseModelBody(const uint8_t* data, size_t len, ModelBody* out) {
  wire::ReaderView r(data, len);
  uint8_t encoded = 0;
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&out->round));
  FEDADMM_RETURN_IF_ERROR(r.TryU8(&encoded));
  if (encoded > 1) return Malformed("MODEL body: bad encoded flag");
  out->encoded = encoded != 0;
  FEDADMM_RETURN_IF_ERROR(r.TryU64(&out->dim));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&out->payload_len));
  FEDADMM_RETURN_IF_ERROR(r.TrySkip(out->payload_len, &out->payload));
  if (r.remaining() != 0) return Malformed("MODEL body: trailing bytes");
  return Status::OK();
}

Status ParseStandbyBody(const uint8_t* data, size_t len, uint32_t* round) {
  wire::ReaderView r(data, len);
  FEDADMM_RETURN_IF_ERROR(r.TryU32(round));
  if (r.remaining() != 0) return Malformed("STANDBY body: trailing bytes");
  return Status::OK();
}

Status ParseUpdateBody(const uint8_t* data, size_t len, UpdateBody* out) {
  wire::ReaderView r(data, len);
  UpdateFrameHeader& h = out->header;
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&h.round));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&h.epochs_run));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&h.steps_run));
  FEDADMM_RETURN_IF_ERROR(r.TryF64(&h.train_loss));
  FEDADMM_RETURN_IF_ERROR(r.TryF64(&h.final_grad_norm_sq));
  FEDADMM_RETURN_IF_ERROR(r.TryU64(&h.dim1));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&h.payload1_len));
  FEDADMM_RETURN_IF_ERROR(r.TryU64(&h.dim2));
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&h.payload2_len));
  FEDADMM_RETURN_IF_ERROR(r.TrySkip(h.payload1_len, &out->payload1));
  FEDADMM_RETURN_IF_ERROR(r.TrySkip(h.payload2_len, &out->payload2));
  if (r.remaining() != 0) return Malformed("UPDATE body: trailing bytes");
  return Status::OK();
}

Status ParseAckBody(const uint8_t* data, size_t len, AckBody* out) {
  wire::ReaderView r(data, len);
  uint8_t status = 0;
  FEDADMM_RETURN_IF_ERROR(r.TryU8(&status));
  if (status > static_cast<uint8_t>(AckStatus::kThrottled)) {
    return Malformed("ACK body: unknown status");
  }
  out->status = static_cast<AckStatus>(status);
  FEDADMM_RETURN_IF_ERROR(r.TryU32(&out->round));
  FEDADMM_RETURN_IF_ERROR(r.TryF64(&out->work_fraction));
  FEDADMM_RETURN_IF_ERROR(r.TryF64(&out->retry_after_seconds));
  if (r.remaining() != 0) return Malformed("ACK body: trailing bytes");
  return Status::OK();
}

Status ParseErrorBody(const uint8_t* data, size_t len, ErrorBody* out) {
  wire::ReaderView r(data, len);
  uint16_t code = 0;
  uint16_t msg_len = 0;
  FEDADMM_RETURN_IF_ERROR(r.TryU16(&code));
  FEDADMM_RETURN_IF_ERROR(r.TryU16(&msg_len));
  const uint8_t* msg = nullptr;
  FEDADMM_RETURN_IF_ERROR(r.TrySkip(msg_len, &msg));
  if (r.remaining() != 0) return Malformed("ERROR body: trailing bytes");
  out->code = static_cast<ErrorCode>(code);
  out->message.assign(reinterpret_cast<const char*>(msg), msg_len);
  return Status::OK();
}

uint64_t SessionTokenForClient(uint32_t client_id) {
  // A serve-local salt keeps these tokens off every engine RNG stream.
  return SplitMix64(0x5E55104E5A17ull ^
                    (static_cast<uint64_t>(client_id) + 1));
}

Status FrameAssembler::Push(const uint8_t* data, size_t len) {
  if (!error_.ok()) return error_;
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + len);
  return Validate();
}

Status FrameAssembler::Validate() {
  // Only the next unconsumed header needs checking: frames behind it were
  // validated when they became visible.
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return Status::OK();
  FrameHeader header;
  error_ = ParseFrameHeader(buffer_.data() + consumed_, kFrameHeaderBytes,
                            &header);
  return error_;
}

Result<bool> FrameAssembler::Next(std::vector<uint8_t>* frame) {
  if (!error_.ok()) return error_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return false;
  FrameHeader header;
  FEDADMM_RETURN_IF_ERROR(ParseFrameHeader(buffer_.data() + consumed_,
                                           kFrameHeaderBytes, &header));
  const size_t total = kFrameHeaderBytes + header.body_len;
  if (available < total) return false;
  frame->assign(buffer_.begin() + static_cast<ptrdiff_t>(consumed_),
                buffer_.begin() + static_cast<ptrdiff_t>(consumed_ + total));
  consumed_ += total;
  // Validate the header that just became visible; a poison there is
  // reported on the *next* call, so this good frame is still delivered.
  (void)Validate();
  return true;
}

}  // namespace fedadmm::serve
