/// \file rng.h
/// \brief Deterministic, forkable random number generation.
///
/// All stochastic components of the simulator (data synthesis, weight
/// initialization, client selection, minibatch shuffling, heterogeneity
/// sampling) draw from an `Rng`. Determinism across thread schedules is
/// achieved by *forking*: a parent generator derives independent child
/// generators from a stream id (e.g. `Fork(round, client_id)`), so the
/// sequence a client sees does not depend on execution order.

#ifndef FEDADMM_UTIL_RNG_H_
#define FEDADMM_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedadmm {

/// \brief SplitMix64 mix function; used to derive fork seeds.
uint64_t SplitMix64(uint64_t x);

/// \brief A seeded pseudo-random generator with convenience samplers.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed)
      : seed_material_(seed), engine_(SplitMix64(seed ^ kGolden)) {}

  /// Derives an independent child generator for stream `(a, b, c)`.
  /// Forking with the same arguments always yields the same child,
  /// irrespective of how many samples were drawn from this generator.
  Rng Fork(uint64_t a, uint64_t b = 0, uint64_t c = 0) const {
    uint64_t s = seed_material_;
    s = SplitMix64(s ^ SplitMix64(a + 0x9e3779b97f4a7c15ULL));
    s = SplitMix64(s ^ SplitMix64(b + 0xbf58476d1ce4e5b9ULL));
    s = SplitMix64(s ^ SplitMix64(c + 0x94d049bb133111ebULL));
    return Rng(s);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Normal sample: N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct values from {0, ..., n-1}, uniformly at random.
  /// Returns InvalidArgument if k > n or either argument is negative.
  Result<std::vector<int>> SampleWithoutReplacement(int n, int k);

  /// Samples from a symmetric Dirichlet(alpha) distribution of dimension `k`.
  std::vector<double> Dirichlet(int k, double alpha);

  /// The underlying engine (for interop with <random> distributions).
  std::mt19937_64& engine() { return engine_; }

  /// Serializes the complete generator state — the fork seed material plus
  /// the engine's exact position — so a checkpointed stream resumes on the
  /// very next draw it would have produced.
  std::string SerializeState() const;

  /// Restores a `SerializeState` blob; InvalidArgument on a malformed one.
  Status RestoreState(const std::string& blob);

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

  uint64_t seed_material_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_RNG_H_
