#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fedadmm {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FEDADMM_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Result<std::vector<int>> Rng::SampleWithoutReplacement(int n, int k) {
  if (n < 0 || k < 0) {
    return Status::InvalidArgument("SampleWithoutReplacement: negative size");
  }
  if (k > n) {
    return Status::InvalidArgument(
        "SampleWithoutReplacement: k exceeds population size");
  }
  // Partial Fisher–Yates: O(n) memory, O(n + k) time. Population sizes in the
  // simulator are at most a few thousand clients, so this is fine.
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<double> Rng::Dirichlet(int k, double alpha) {
  FEDADMM_CHECK_MSG(k > 0 && alpha > 0.0, "Dirichlet requires k>0, alpha>0");
  std::gamma_distribution<double> gamma(alpha, 1.0);
  std::vector<double> out(k);
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    out[i] = gamma(engine_);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (possible for tiny alpha); fall back to uniform.
    std::fill(out.begin(), out.end(), 1.0 / k);
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

std::string Rng::SerializeState() const {
  // mt19937_64's textual stream state is exact: reading it back restores
  // the engine to the identical draw position.
  std::ostringstream oss;
  oss << seed_material_ << ' ' << engine_;
  return oss.str();
}

Status Rng::RestoreState(const std::string& blob) {
  std::istringstream iss(blob);
  uint64_t seed_material = 0;
  std::mt19937_64 engine;
  iss >> seed_material >> engine;
  if (iss.fail()) {
    return Status::InvalidArgument("Rng::RestoreState: malformed state blob");
  }
  seed_material_ = seed_material;
  engine_ = engine;
  return Status::OK();
}

}  // namespace fedadmm
