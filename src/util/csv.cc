#include "util/csv.h"

#include <cstdio>

namespace fedadmm {

Status CsvWriter::Open(const std::string& path) {
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("CsvWriter: cannot open " + path);
  }
  return Status::OK();
}

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("CsvWriter: file not open");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IoError("CsvWriter: write failed");
  return Status::OK();
}

Status CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields.emplace_back(buf);
  }
  return WriteRow(fields);
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.close();
  if (out_.fail()) return Status::IoError("CsvWriter: close failed");
  return Status::OK();
}

}  // namespace fedadmm
