#include "util/csv.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace fedadmm {
namespace {

// Integer-valued doubles below 2^53 are exactly representable, so they can
// (and must) be printed without any rounding: byte counters and client
// counts at fleet scale exceed the 6 significant digits "%.6g" keeps
// (12345678 would come back as 1.23457e+07 — a corrupted ledger).
bool IsExactInteger(double v) {
  return std::isfinite(v) && v == std::floor(v) &&
         std::fabs(v) <= 9007199254740992.0;  // 2^53
}

}  // namespace

Status CsvWriter::Open(const std::string& path) {
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("CsvWriter: cannot open " + path);
  }
  return Status::OK();
}

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("CsvWriter: file not open");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IoError("CsvWriter: write failed");
  return Status::OK();
}

Status CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    if (IsExactInteger(v)) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      // 17 significant digits round-trip every finite double exactly.
      std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    fields.emplace_back(buf);
  }
  return WriteRow(fields);
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.close();
  if (out_.fail()) return Status::IoError("CsvWriter: close failed");
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes "" (empty row) from "\n"
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        field_started = true;  // a comma implies a field on both sides
        break;
      case '\r':
        // A row terminator: "\r\n" consumes the pair, a bare '\r'
        // (old-Mac / truncated transfers) ends the row on its own. The
        // old behaviour — swallowing every unquoted CR — silently glued
        // "a\rb" into "ab" and never left a trailing '\r' to notice.
        if (i + 1 < content.size() && content[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        if (field_started || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        field_started = false;
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("ParseCsv: unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("ReadCsvFile: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("ReadCsvFile: read failed: " + path);
  return ParseCsv(buffer.str());
}

}  // namespace fedadmm
