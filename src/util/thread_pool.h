/// \file thread_pool.h
/// \brief Fixed-size worker pool with a `ParallelFor` helper.
///
/// The FL simulator trains the selected clients of a round in parallel. Each
/// task is independent (clients own disjoint state), so a simple blocking
/// ParallelFor is sufficient and keeps the execution model easy to reason
/// about. Determinism is preserved because all per-client randomness comes
/// from forked RNG streams keyed by (round, client), never from thread ids.

#ifndef FEDADMM_UTIL_THREAD_POOL_H_
#define FEDADMM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedadmm {

/// \brief A fixed pool of worker threads executing queued tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all queued and running tasks finish.
  void Wait();

  /// Runs `body(i)` for i in [0, n) across the pool and blocks until done.
  /// `body` receives additionally the index of the executing worker slot in
  /// [0, num_threads()), which callers use to pick per-thread scratch space
  /// (e.g. a model clone).
  void ParallelFor(int n, const std::function<void(int index, int worker)>& body);

  /// A sensible default: hardware_concurrency, at least 1.
  static int DefaultNumThreads();

 private:
  void WorkerLoop(int worker_slot);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(int)>> tasks_;  // task receives worker slot
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_THREAD_POOL_H_
