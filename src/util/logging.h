/// \file logging.h
/// \brief Minimal leveled logging to stderr.
///
/// Usage: `FEDADMM_LOG(Info) << "round " << t << " acc=" << acc;`
/// The global level is settable via `SetLogLevel` or the FEDADMM_LOG_LEVEL
/// environment variable (0=Debug, 1=Info, 2=Warning, 3=Error, 4=Off).

#ifndef FEDADMM_UTIL_LOGGING_H_
#define FEDADMM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fedadmm {

/// Severity of a log message.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2,
                            kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fedadmm

#define FEDADMM_LOG(severity)                                     \
  ::fedadmm::internal::LogMessage(                                \
      ::fedadmm::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // FEDADMM_UTIL_LOGGING_H_
