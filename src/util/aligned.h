/// \file aligned.h
/// \brief 64-byte-aligned allocation for hot-path float buffers.
///
/// The SIMD kernels use unaligned loads and work on any pointer, but
/// cacheline-aligned buffers keep every 8-float lane inside one line and
/// avoid split loads on the store arenas the aggregation loops stream
/// through. `AlignedVector<float>` is a drop-in `std::vector` with the
/// allocation promoted to 64-byte alignment — same value semantics, same
/// growth behavior, zero layout change (no stride padding: byte-accounting
/// metrics like `bytes_resident` must not move).

#ifndef FEDADMM_UTIL_ALIGNED_H_
#define FEDADMM_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace fedadmm {

/// Cacheline / AVX-512-friendly alignment for numeric buffers.
inline constexpr size_t kBufferAlignment = 64;

/// Minimal std::allocator replacement that over-aligns every allocation.
template <typename T, size_t Alignment = kBufferAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not pow2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector whose heap buffer is 64-byte aligned. Moving the vector
/// moves the heap buffer, so element pointers stay stable across moves
/// (the same guarantee std::vector gives).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` is aligned to `alignment` bytes.
inline bool IsAligned(const void* p, size_t alignment = kBufferAlignment) {
  return (reinterpret_cast<uintptr_t>(p) & (alignment - 1)) == 0;
}

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_ALIGNED_H_
