#include "util/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fedadmm {
namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
const uint32_t* Crc32Table() {
  static const uint32_t* const table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Bytes(const void* data, size_t len) {
  out_.append(static_cast<const char*>(data), len);
}

void ByteWriter::String(std::string_view s) {
  U64(s.size());
  Bytes(s.data(), s.size());
}

void ByteWriter::Floats(std::span<const float> v) {
  U64(v.size());
  Bytes(v.data(), v.size() * sizeof(float));
}

Result<uint8_t> ByteReader::U8() {
  if (remaining() < 1) return Status::IoError("ByteReader: buffer exhausted");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::U32() {
  uint32_t v = 0;
  if (remaining() < 4) return Status::IoError("ByteReader: buffer exhausted");
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> ByteReader::U64() {
  uint64_t v = 0;
  if (remaining() < 8) return Status::IoError("ByteReader: buffer exhausted");
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

Result<int64_t> ByteReader::I64() {
  FEDADMM_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::F64() {
  FEDADMM_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status ByteReader::Bytes(void* out, size_t len) {
  if (remaining() < len) {
    return Status::IoError("ByteReader: buffer exhausted");
  }
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Result<std::string> ByteReader::String() {
  FEDADMM_ASSIGN_OR_RETURN(uint64_t len, U64());
  if (remaining() < len) {
    return Status::IoError("ByteReader: string length past buffer end");
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<std::vector<float>> ByteReader::Floats() {
  FEDADMM_ASSIGN_OR_RETURN(uint64_t count, U64());
  if (remaining() < count * sizeof(float)) {
    return Status::IoError("ByteReader: float count past buffer end");
  }
  std::vector<float> v(count);
  FEDADMM_RETURN_IF_ERROR(Bytes(v.data(), count * sizeof(float)));
  return v;
}

RandomAccessFile::~RandomAccessFile() { Close(); }

Status RandomAccessFile::Open(const std::string& path, bool truncate) {
  Close();
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  fd_ = fd;
  size_ = static_cast<int64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status RandomAccessFile::ReadAt(int64_t offset, void* out, size_t len) const {
  if (fd_ < 0) return Status::FailedPrecondition("RandomAccessFile: not open");
  auto* p = static_cast<char*>(out);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, p + done, len - done,
                              static_cast<off_t>(offset) +
                                  static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) {
      return Status::IoError("RandomAccessFile: short read at offset " +
                              std::to_string(offset) + " in '" + path_ + "'");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RandomAccessFile::Append(const void* data, size_t len,
                                int64_t* offset_out) {
  if (fd_ < 0) return Status::FailedPrecondition("RandomAccessFile: not open");
  const int64_t at = size_;
  const auto* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, p + done, len - done,
                               static_cast<off_t>(at) +
                                   static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", path_);
    }
    done += static_cast<size_t>(n);
  }
  size_ = at + static_cast<int64_t>(len);
  if (offset_out != nullptr) *offset_out = at;
  return Status::OK();
}

Status RandomAccessFile::Truncate(int64_t end) {
  if (fd_ < 0) return Status::FailedPrecondition("RandomAccessFile: not open");
  if (::ftruncate(fd_, static_cast<off_t>(end)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = end;
  return Status::OK();
}

Status RandomAccessFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("RandomAccessFile: not open");
  if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
  return Status::OK();
}

void RandomAccessFile::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  size_ = 0;
  path_.clear();
}

void RemoveFileIfExists(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace fedadmm
