/// \file shard.h
/// \brief The canonical client-id → shard partition function.
///
/// The sharded aggregation server splits every per-client structure — the
/// event queue's per-worker heaps (sys/event_queue.h), the partitioned
/// client-state store (state/sharded_store.h) and the hierarchical reduce
/// partials (tensor/vec.h AxpyManySharded) — by the *same* modulo
/// partition, so a client's state, its arrival events and its contribution
/// to the aggregate always land on the same worker. Keeping the function
/// here, in the dependency-free util layer, is what lets sys, state and
/// tensor agree without including each other.

#ifndef FEDADMM_UTIL_SHARD_H_
#define FEDADMM_UTIL_SHARD_H_

namespace fedadmm {

/// Shard owning `client_id` under `num_shards` workers. `num_shards <= 1`
/// always maps to shard 0 (the unsharded server). Client ids are dense
/// [0, m), so modulo is both a balanced and a churn-stable partition: a
/// client keeps its shard for the lifetime of the fleet.
inline int ShardOfClient(int client_id, int num_shards) {
  if (num_shards <= 1) return 0;
  return client_id % num_shards;
}

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_SHARD_H_
