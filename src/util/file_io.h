/// \file file_io.h
/// \brief Checksummed binary file primitives for the out-of-core layer.
///
/// Three small pieces shared by the slab log, the simulation checkpoint
/// and the event-queue serialization (state/slab_log.h,
/// state/checkpoint.h, sys/event_queue.h):
///
///   * `Crc32`            — the IEEE 802.3 polynomial, table-driven; every
///                          on-disk record carries one so a torn tail or a
///                          flipped bit is detected, never replayed.
///   * `ByteWriter` /     — bounds-checked little-endian encoding into an
///     `ByteReader`         owned byte string. Fixed-width on disk
///                          regardless of host: the formats are part of
///                          the checkpoint contract.
///   * `RandomAccessFile` — positional pread/pwrite over one POSIX fd.
///                          Appends track the logical end so the slab log
///                          can hand out stable record offsets; reads never
///                          share seek state, so concurrent prefetch
///                          faults need no file lock of their own.
///
/// Float bit patterns round-trip exactly (bit_cast through uint32), which
/// is what makes checkpoint replay bitwise rather than approximately
/// equal.

#ifndef FEDADMM_UTIL_FILE_IO_H_
#define FEDADMM_UTIL_FILE_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fedadmm {

/// \brief CRC-32 (IEEE 802.3, reflected) of `len` bytes; `seed` chains
/// incremental computations (pass a previous return value).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// \brief Little-endian append-only encoder into an owned byte string.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// Raw bytes, no length prefix (caller frames them).
  void Bytes(const void* data, size_t len);
  /// u64 length prefix + raw bytes.
  void String(std::string_view s);
  /// u64 count prefix + raw fp32 bit patterns.
  void Floats(std::span<const float> v);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
/// Every read returns IoError once the buffer is exhausted — a truncated
/// blob surfaces as a Status, never as garbage values.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Status Bytes(void* out, size_t len);
  Result<std::string> String();
  Result<std::vector<float>> Floats();

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// \brief One POSIX fd with positional reads/writes and a tracked append
/// end. Not thread-safe for concurrent appends; concurrent `ReadAt` calls
/// are safe against each other (pread carries its own offset).
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Opens (creating if absent) for read/write; `truncate` wipes existing
  /// contents. The append end starts at the existing size (0 after
  /// truncate).
  Status Open(const std::string& path, bool truncate);
  bool is_open() const { return fd_ >= 0; }

  /// Reads exactly `len` bytes at `offset`; IoError on short read.
  Status ReadAt(int64_t offset, void* out, size_t len) const;
  /// Writes exactly `len` bytes at the current append end; returns the
  /// offset they landed at via `offset_out` (may be null).
  Status Append(const void* data, size_t len, int64_t* offset_out = nullptr);
  /// Drops every byte past `end` and moves the append end there — how the
  /// slab log discards a torn tail before resuming appends.
  Status Truncate(int64_t end);
  /// fdatasync: makes every appended byte durable (checkpoint commits).
  Status Sync();

  /// Logical append end (== file size while this object is the only
  /// writer).
  int64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  void Close();

 private:
  int fd_ = -1;
  int64_t size_ = 0;
  std::string path_;
};

/// \brief Best-effort unlink (scratch-file hygiene); ignores a missing
/// file.
void RemoveFileIfExists(const std::string& path);

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_FILE_IO_H_
