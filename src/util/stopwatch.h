/// \file stopwatch.h
/// \brief Wall-clock timer for round timing and benchmark reporting.

#ifndef FEDADMM_UTIL_STOPWATCH_H_
#define FEDADMM_UTIL_STOPWATCH_H_

#include <chrono>

namespace fedadmm {

/// \brief Measures elapsed wall-clock time since construction or Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since the last Reset() (or construction).
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since the last Reset() (or construction).
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_STOPWATCH_H_
