/// \file stopwatch.h
/// \brief Wall-clock timer for round timing and benchmark reporting.

#ifndef FEDADMM_UTIL_STOPWATCH_H_
#define FEDADMM_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fedadmm {

/// \brief Measures elapsed wall-clock time since construction or Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since the last Reset() (or construction).
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since the last Reset() (or construction).
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates wall time across pause/resume cycles.
///
/// Unlike `Stopwatch`, which measures one contiguous interval, an
/// accumulator sums many: `Start()` begins a segment, `Stop()` ends it and
/// adds its duration to the running total. Useful for "time spent in phase
/// X this round" where the phase is entered and left repeatedly.
/// `AddSeconds` folds in externally measured durations (e.g. per-shard
/// partials), keeping the arithmetic unit-testable without a clock.
class StopwatchAccumulator {
 public:
  /// Begins a segment. No-op when already running.
  void Start() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  /// Ends the current segment and adds it to the total. Returns the
  /// segment's duration in seconds (0 when not running).
  double Stop() {
    if (!running_) return 0.0;
    running_ = false;
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    total_seconds_ += seconds;
    ++segments_;
    return seconds;
  }

  /// Folds an externally measured duration into the total.
  void AddSeconds(double seconds) {
    total_seconds_ += seconds;
    ++segments_;
  }

  /// Clears the total and stops any running segment.
  void Reset() {
    running_ = false;
    total_seconds_ = 0.0;
    segments_ = 0;
  }

  /// Total accumulated seconds over all completed segments. A running
  /// segment is NOT included until Stop().
  double TotalSeconds() const { return total_seconds_; }

  /// Number of completed segments (Stop() calls plus AddSeconds() calls).
  int64_t segments() const { return segments_; }

  bool running() const { return running_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  double total_seconds_ = 0.0;
  int64_t segments_ = 0;
  bool running_ = false;
};

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_STOPWATCH_H_
