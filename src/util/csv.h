/// \file csv.h
/// \brief Tiny CSV writer/reader used to export round histories and bench
/// results and to load trace-driven fleet profiles (src/sys).

#ifndef FEDADMM_UTIL_CSV_H_
#define FEDADMM_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedadmm {

/// \brief Streams rows of comma-separated values to a file.
///
/// Fields containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;

  /// Opens `path` for writing, truncating any existing file.
  Status Open(const std::string& path);

  /// Writes one row. Returns FailedPrecondition if not open.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Convenience numeric formatting with exact round-trip guarantees:
  /// integer-valued doubles up to 2^53 print as exact integers (byte
  /// counters and client counts at fleet scale never lose digits), every
  /// other finite double prints with 17 significant digits (lossless
  /// double round-trip).
  Status WriteNumericRow(const std::vector<double>& values);

  /// Flushes and closes the file.
  Status Close();

  /// True when a file is open.
  bool is_open() const { return out_.is_open(); }

  /// Escapes a single field per RFC 4180.
  static std::string EscapeField(const std::string& field);

 private:
  std::ofstream out_;
};

/// \brief Parses RFC 4180 CSV text into rows of fields.
///
/// Handles quoted fields (including embedded commas, doubled quotes and
/// newlines) and \n, \r\n and bare-\r line endings — an unquoted CR is a
/// row terminator, never part of a field, so externally written CRLF
/// traces parse without trailing '\r' residue. A trailing newline does not
/// produce an empty final row.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& content);

/// \brief Reads and parses an entire CSV file (see ParseCsv).
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_CSV_H_
