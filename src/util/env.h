/// \file env.h
/// \brief Environment-variable configuration helpers.
///
/// Benchmarks read scale knobs (e.g. FEDADMM_BENCH_SCALE) from the
/// environment so the same binaries can run quick CI-sized sweeps or
/// longer paper-sized sweeps without recompilation.

#ifndef FEDADMM_UTIL_ENV_H_
#define FEDADMM_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace fedadmm {

/// Returns the env var `name`, or `fallback` if unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Returns the env var parsed as int64, or `fallback` if unset/unparseable.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Returns the env var parsed as double, or `fallback` if unset/unparseable.
double GetEnvDouble(const char* name, double fallback);

/// Returns true if the env var is one of "1", "true", "on", "yes"
/// (case-insensitive); false for other set values; `fallback` when unset.
bool GetEnvBool(const char* name, bool fallback);

}  // namespace fedadmm

#endif  // FEDADMM_UTIL_ENV_H_
