#include "util/thread_pool.h"

#include <atomic>

namespace fedadmm {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push([t = std::move(task)](int) { t(); });
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(
    int n, const std::function<void(int index, int worker)>& body) {
  if (n <= 0) return;
  // Dynamic scheduling over a shared counter: client workloads are uneven
  // (variable epoch counts under system heterogeneity), so static chunking
  // would leave workers idle.
  auto counter = std::make_shared<std::atomic<int>>(0);
  int tasks_to_spawn = std::min<int>(n, num_threads());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int t = 0; t < tasks_to_spawn; ++t) {
      tasks_.push([counter, n, &body](int worker) {
        for (int i = counter->fetch_add(1); i < n;
             i = counter->fetch_add(1)) {
          body(i, worker);
        }
      });
    }
  }
  task_available_.notify_all();
  Wait();
}

void ThreadPool::WorkerLoop(int worker_slot) {
  for (;;) {
    std::function<void(int)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task(worker_slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

int ThreadPool::DefaultNumThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace fedadmm
