#include "util/status.h"

namespace fedadmm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "FEDADMM_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace fedadmm
