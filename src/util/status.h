/// \file status.h
/// \brief Error handling primitives in the Arrow/RocksDB idiom.
///
/// Library code does not throw exceptions: fallible operations return a
/// `Status`, and fallible value-producing operations return a `Result<T>`.
/// Programmer errors (violated preconditions) abort via `FEDADMM_CHECK`.

#ifndef FEDADMM_UTIL_STATUS_H_
#define FEDADMM_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace fedadmm {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a diagnostic message.
///
/// `Status` is cheap to move and to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// True iff the code matches.
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`. Access the value only after checking `ok()`;
/// `ValueOrDie()` aborts on error (use in tests and examples).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Aborts if `status` is OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held.
  Status status() const { return ok() ? Status::OK() : status_; }

  /// The held value; must only be called when `ok()`.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  /// Moves the held value out; must only be called when `ok()`.
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }
  /// The held value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace fedadmm

/// Aborts with a diagnostic if `expr` is false. For programmer errors only.
#define FEDADMM_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::fedadmm::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                    \
  } while (0)

/// Like FEDADMM_CHECK but appends a message.
#define FEDADMM_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::fedadmm::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                    \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define FEDADMM_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::fedadmm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define FEDADMM_INTERNAL_CONCAT_IMPL(a, b) a##b
#define FEDADMM_INTERNAL_CONCAT(a, b) FEDADMM_INTERNAL_CONCAT_IMPL(a, b)

#define FEDADMM_INTERNAL_ASSIGN_OR_RETURN(var, lhs, rexpr) \
  auto var = (rexpr);                                      \
  if (!var.ok()) return var.status();                      \
  lhs = std::move(var).ValueOrDie()

/// Evaluates a Result-returning expression; on error propagates the status,
/// otherwise assigns the value to `lhs`.
#define FEDADMM_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  FEDADMM_INTERNAL_ASSIGN_OR_RETURN(                                       \
      FEDADMM_INTERNAL_CONCAT(_fedadmm_res_, __LINE__), lhs, rexpr)

#endif  // FEDADMM_UTIL_STATUS_H_
