#include "util/env.h"

#include <algorithm>
#include <cstdlib>

namespace fedadmm {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || (end != nullptr && *end != '\0')) return fallback;
  return parsed;
}

bool GetEnvBool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

}  // namespace fedadmm
