#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fedadmm {
namespace {

std::atomic<int> g_level{-1};  // -1: uninitialized (read env on first use)
std::mutex g_emit_mutex;

int ResolveLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level >= 0) return level;
  int from_env = static_cast<int>(LogLevel::kInfo);
  if (const char* env = std::getenv("FEDADMM_LOG_LEVEL")) {
    from_env = std::atoi(env);
    if (from_env < 0) from_env = 0;
    if (from_env > 4) from_env = 4;
  }
  g_level.store(from_env, std::memory_order_relaxed);
  return from_env;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(ResolveLevel()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= ResolveLevel()), level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace fedadmm
