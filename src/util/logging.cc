#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fedadmm {
namespace {

std::atomic<int> g_level{-1};  // -1: uninitialized (read env on first use)

int ResolveLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level >= 0) return level;
  int from_env = static_cast<int>(LogLevel::kInfo);
  if (const char* env = std::getenv("FEDADMM_LOG_LEVEL")) {
    from_env = std::atoi(env);
    if (from_env < 0) from_env = 0;
    if (from_env > 4) from_env = 4;
  }
  g_level.store(from_env, std::memory_order_relaxed);
  return from_env;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(ResolveLevel()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= ResolveLevel()), level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // Emit the full line (newline included) in ONE fwrite so concurrent
  // loggers never interleave mid-line. stdio streams are internally
  // locked per call (POSIX flockfile semantics), which makes the single
  // write atomic with respect to other threads — no extra mutex needed.
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace fedadmm
