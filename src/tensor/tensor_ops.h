/// \file tensor_ops.h
/// \brief Compute kernels backing the neural-network layers.
///
/// Convolution is implemented as im2col + blocked GEMM, the standard
/// CPU lowering. Kernels operate on raw float buffers with explicit
/// dimension arguments; the `nn` layers own shape bookkeeping.

#ifndef FEDADMM_TENSOR_TENSOR_OPS_H_
#define FEDADMM_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace fedadmm::ops {

/// C[m,n] = A[m,k] * B[k,n]  (row-major, C overwritten).
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

/// C[m,n] += A[m,k] * B[k,n].
void MatMulAccum(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n);

/// C[m,n] = A^T[k,m] * B[k,n]  (A stored as [k,m]).
void MatMulTransA(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n);

/// C[m,n] += A^T[k,m] * B[k,n].
void MatMulTransAAccum(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n);

/// C[m,n] = A[m,k] * B^T[n,k]  (B stored as [n,k]).
void MatMulTransB(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n);

/// Expands one image [C,H,W] into columns [C*KH*KW, OH*OW] for convolution
/// with the given kernel size, stride and zero padding.
void Im2Col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w,
            int64_t stride_h, int64_t stride_w, int64_t pad_h, int64_t pad_w,
            float* columns);

/// Inverse of Im2Col: accumulates columns back into the (zeroed) image
/// gradient buffer.
void Col2Im(const float* columns, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w,
            int64_t stride_h, int64_t stride_w, int64_t pad_h, int64_t pad_w,
            float* image);

/// Output spatial extent for a convolution/pooling dimension.
inline int64_t ConvOutDim(int64_t in, int64_t kernel, int64_t stride,
                          int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// 2-D max pooling forward for a batch: input [N,C,H,W] -> output
/// [N,C,OH,OW]; `argmax` (same size as output) records the flat input index
/// of each maximum for the backward pass.
void MaxPool2dForward(const float* input, int64_t n, int64_t c, int64_t h,
                      int64_t w, int64_t kernel, int64_t stride, float* output,
                      int32_t* argmax);

/// Max pooling backward: scatters `grad_output` into the (zeroed)
/// `grad_input` using the recorded argmax indices.
void MaxPool2dBackward(const float* grad_output, const int32_t* argmax,
                       int64_t output_numel, float* grad_input);

/// In-place ReLU forward; `mask[i]` set to 1 where input > 0 else 0.
void ReluForward(float* x, int64_t n, uint8_t* mask);

/// ReLU backward: grad_input = grad_output * mask (may alias).
void ReluBackward(const float* grad_output, const uint8_t* mask, int64_t n,
                  float* grad_input);

/// Row-wise softmax of logits [rows, cols] into probs (may alias logits).
void SoftmaxRows(const float* logits, int64_t rows, int64_t cols,
                 float* probs);

}  // namespace fedadmm::ops

#endif  // FEDADMM_TENSOR_TENSOR_OPS_H_
