/// \file pack_inline.h
/// \brief Shared word-at-a-time bit packing loops.
///
/// The generic (any bit width) pack/unpack loops are pure integer code and
/// identical in every kernel table; both the scalar and the AVX2
/// translation units inline them for the widths that have no wider
/// specialization. Byte-for-byte equivalent to `wire::BitPacker` /
/// `wire::BitUnpacker`, but writing straight into a caller-sized buffer
/// instead of pushing single bytes through a `wire::Writer`.

#ifndef FEDADMM_TENSOR_SIMD_PACK_INLINE_H_
#define FEDADMM_TENSOR_SIMD_PACK_INLINE_H_

#include <cstddef>
#include <cstdint>

namespace fedadmm::simd::internal {

/// Packs `n` codes of `bits` (1..16) bits, little-endian within and across
/// bytes, zero-padding the final partial byte. Writes exactly
/// `(n * bits + 7) / 8` bytes.
inline void PackCodesGeneric(const uint16_t* codes, size_t n, int bits,
                             uint8_t* out) {
  uint64_t acc = 0;
  int filled = 0;
  for (size_t i = 0; i < n; ++i) {
    acc |= static_cast<uint64_t>(codes[i]) << filled;
    filled += bits;
    while (filled >= 8) {
      *out++ = static_cast<uint8_t>(acc & 0xFF);
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) *out = static_cast<uint8_t>(acc & 0xFF);
}

/// Inverse of `PackCodesGeneric`; reads exactly `(n * bits + 7) / 8` bytes.
inline void UnpackCodesGeneric(const uint8_t* bytes, size_t n, int bits,
                               uint16_t* codes) {
  uint64_t acc = 0;
  int filled = 0;
  const uint32_t mask = (1u << bits) - 1u;
  for (size_t i = 0; i < n; ++i) {
    while (filled < bits) {
      acc |= static_cast<uint64_t>(*bytes++) << filled;
      filled += 8;
    }
    codes[i] = static_cast<uint16_t>(static_cast<uint32_t>(acc) & mask);
    acc >>= bits;
    filled -= bits;
  }
}

}  // namespace fedadmm::simd::internal

#endif  // FEDADMM_TENSOR_SIMD_PACK_INLINE_H_
