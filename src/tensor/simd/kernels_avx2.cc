/// \file kernels_avx2.cc
/// \brief AVX2 + FMA implementations of the kernel table.
///
/// Compiled with `-mavx2 -mfma -ffp-contract=off` (per-file, so the rest
/// of the tree keeps the baseline ISA) and selected by dispatch.cc only
/// when the host CPU reports both feature bits.
///
/// Every kernel is bitwise identical to the scalar reference
/// (kernels_scalar.cc) — the mechanisms, per kernel class:
///
///  * Elementwise float kernels use separate `_mm256_mul_ps` +
///    `_mm256_add_ps` (never `fmadd_ps`): each lane performs the same two
///    correctly-rounded operations as the scalar expression.
///  * `dot` / `squared_l2` accumulate with `_mm256_fmadd_pd`, which IS
///    bitwise equal to the scalar multiply-then-add here because the
///    product of two floats is exact in double (24+24 < 53 mantissa
///    bits) — the fused rounding has nothing to fuse. `squared_distance`
///    squares an already-rounded double, so it uses mul + add like the
///    scalar code.
///  * Reductions follow the canonical `kReduceLanes`-striped order; the
///    vector tail spills the accumulator registers and finishes in scalar
///    code over the same stripes.
///  * All loads/stores are unaligned (`loadu`/`storeu`); callers get the
///    64-byte-aligned fast case from the allocators, not from a contract.

#include <cmath>
#include <cstring>
#include <immintrin.h>

#include "tensor/simd/pack_inline.h"
#include "tensor/simd/simd.h"

namespace fedadmm::simd {
namespace avx2 {
namespace {

void Axpy(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Add(const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, vx));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void AddScaled(const float* x, float alpha, const float* y, float* out,
               size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(out + i, _mm256_add_ps(vx, _mm256_mul_ps(va, vy)));
  }
  for (; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void Sub(const float* x, const float* y, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(out + i, _mm256_sub_ps(vx, vy));
  }
  for (; i < n; ++i) out[i] = x[i] - y[i];
}

void Scale(float alpha, float* x, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

/// Spills the two 4-double accumulators into the canonical stripe array:
/// `lo` holds lanes 0..3, `hi` lanes 4..7.
void SpillLanes(__m256d lo, __m256d hi, double* lane) {
  _mm256_storeu_pd(lane, lo);
  _mm256_storeu_pd(lane + 4, hi);
}

double CombineLanes(const double* lane) {
  double acc = 0.0;
  for (size_t j = 0; j < kReduceLanes; ++j) acc += lane[j];
  return acc;
}

double Dot(const float* x, const float* y, size_t n) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 xf0 = _mm_loadu_ps(x + i);
    const __m128 xf1 = _mm_loadu_ps(x + i + 4);
    const __m128 yf0 = _mm_loadu_ps(y + i);
    const __m128 yf1 = _mm_loadu_ps(y + i + 4);
    lo = _mm256_fmadd_pd(_mm256_cvtps_pd(xf0), _mm256_cvtps_pd(yf0), lo);
    hi = _mm256_fmadd_pd(_mm256_cvtps_pd(xf1), _mm256_cvtps_pd(yf1), hi);
  }
  double lane[kReduceLanes];
  SpillLanes(lo, hi, lane);
  for (; i < n; ++i) {
    lane[i % kReduceLanes] += static_cast<double>(x[i]) * y[i];
  }
  return CombineLanes(lane);
}

double SquaredL2(const float* x, size_t n) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d x0 = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d x1 = _mm256_cvtps_pd(_mm_loadu_ps(x + i + 4));
    lo = _mm256_fmadd_pd(x0, x0, lo);
    hi = _mm256_fmadd_pd(x1, x1, hi);
  }
  double lane[kReduceLanes];
  SpillLanes(lo, hi, lane);
  for (; i < n; ++i) {
    lane[i % kReduceLanes] += static_cast<double>(x[i]) * x[i];
  }
  return CombineLanes(lane);
}

double SquaredDistance(const float* x, const float* y, size_t n) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(x + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(y + i)));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(x + i + 4)),
                      _mm256_cvtps_pd(_mm_loadu_ps(y + i + 4)));
    // mul + add, not fmadd: d is a rounded double, d*d is inexact, and the
    // scalar reference rounds the product before accumulating.
    lo = _mm256_add_pd(lo, _mm256_mul_pd(d0, d0));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(d1, d1));
  }
  double lane[kReduceLanes];
  SpillLanes(lo, hi, lane);
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    lane[i % kReduceLanes] += d * d;
  }
  return CombineLanes(lane);
}

float MaxAbs(const float* x, size_t n, bool* saw_nan) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vmax = _mm256_setzero_ps();
  __m256 vnan = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 ord = _mm256_cmp_ps(v, v, _CMP_ORD_Q);
    vnan = _mm256_or_ps(vnan, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    // NaN lanes become +0.0 so they cannot poison the max (magnitudes are
    // all >= 0); max is order-independent over the remaining values.
    const __m256 a =
        _mm256_and_ps(_mm256_and_ps(v, abs_mask), ord);
    vmax = _mm256_max_ps(vmax, a);
  }
  if (_mm256_movemask_ps(vnan) != 0) *saw_nan = true;
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  float m = 0.0f;
  for (float l : lanes) {
    if (l > m) m = l;
  }
  for (; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a != a) {
      *saw_nan = true;
      continue;
    }
    if (a > m) m = a;
  }
  return m;
}

void GemmAxpyRow(const float* a, const float* b, float* c, int64_t kb,
                 int64_t n, int64_t ldb) {
  int64_t j = 0;
  // 32-wide tiles: the c tile lives in four ymm registers across the whole
  // k-block, so each c element is loaded and stored once per block instead
  // of once per p — same mul+add chain per element, far less traffic.
  for (; j + 32 <= n; j += 32) {
    float* cj = c + j;
    __m256 c0 = _mm256_loadu_ps(cj);
    __m256 c1 = _mm256_loadu_ps(cj + 8);
    __m256 c2 = _mm256_loadu_ps(cj + 16);
    __m256 c3 = _mm256_loadu_ps(cj + 24);
    for (int64_t p = 0; p < kb; ++p) {
      const float ap = a[p];
      if (ap == 0.0f) continue;
      const __m256 va = _mm256_set1_ps(ap);
      const float* bp = b + p * ldb + j;
      c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
      c1 = _mm256_add_ps(c1, _mm256_mul_ps(va, _mm256_loadu_ps(bp + 8)));
      c2 = _mm256_add_ps(c2, _mm256_mul_ps(va, _mm256_loadu_ps(bp + 16)));
      c3 = _mm256_add_ps(c3, _mm256_mul_ps(va, _mm256_loadu_ps(bp + 24)));
    }
    _mm256_storeu_ps(cj, c0);
    _mm256_storeu_ps(cj + 8, c1);
    _mm256_storeu_ps(cj + 16, c2);
    _mm256_storeu_ps(cj + 24, c3);
  }
  for (; j + 8 <= n; j += 8) {
    float* cj = c + j;
    __m256 c0 = _mm256_loadu_ps(cj);
    for (int64_t p = 0; p < kb; ++p) {
      const float ap = a[p];
      if (ap == 0.0f) continue;
      const __m256 va = _mm256_set1_ps(ap);
      c0 = _mm256_add_ps(
          c0, _mm256_mul_ps(va, _mm256_loadu_ps(b + p * ldb + j)));
    }
    _mm256_storeu_ps(cj, c0);
  }
  for (; j < n; ++j) {
    float cj = c[j];
    for (int64_t p = 0; p < kb; ++p) {
      const float ap = a[p];
      if (ap == 0.0f) continue;
      cj += ap * b[p * ldb + j];
    }
    c[j] = cj;
  }
}

void QuantizeUniform(const float* v, size_t n, float scale, int levels,
                     uint16_t* codes) {
  if (!(scale > 0.0f)) {
    std::memset(codes, 0, n * sizeof(uint16_t));
    return;
  }
  const double s = static_cast<double>(scale);
  const double l = static_cast<double>(levels);
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d vl = _mm256_set1_pd(l);
  const __m256d vone = _mm256_set1_pd(1.0);
  // Division by the exact power of two 2.0 and multiplication by 0.5 are
  // the same correctly-rounded scaling; the scalar reference divides.
  const __m256d vhalf = _mm256_set1_pd(0.5);
  const __m128i vlev = _mm_set1_epi32(levels);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    const __m256d dx = _mm256_div_pd(xd, vs);
    const __m256d x = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_add_pd(dx, vone), vhalf), vl);
    const __m256d r = _mm256_floor_pd(_mm256_add_pd(x, vhalf));
    __m128i code = _mm256_cvttpd_epi32(r);
    code = _mm_min_epi32(code, vlev);
    const __m128i packed = _mm_packus_epi32(code, code);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(codes + i), packed);
  }
  for (; i < n; ++i) {
    const double dx = static_cast<double>(v[i]) / s;
    const double x = (dx + 1.0) / 2.0 * l;
    uint32_t code = static_cast<uint32_t>(std::floor(x + 0.5));
    if (code > static_cast<uint32_t>(levels)) {
      code = static_cast<uint32_t>(levels);
    }
    codes[i] = static_cast<uint16_t>(code);
  }
}

void DequantizeGrid(const uint16_t* codes, size_t n, float scale, int levels,
                    float* out) {
  if (scale == 0.0f) {
    std::memset(out, 0, n * sizeof(float));
    return;
  }
  const double s = static_cast<double>(scale);
  const double l = static_cast<double>(levels);
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d vl = _mm256_set1_pd(l);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i c16 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256d cd = _mm256_cvtepi32_pd(_mm_cvtepu16_epi32(c16));
    const __m256d t = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_div_pd(_mm256_mul_pd(vtwo, cd), vl), vone), vs);
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(t));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>((2.0 * codes[i] / l - 1.0) * s);
  }
}

void PackCodes(const uint16_t* codes, size_t n, int bits, uint8_t* out) {
  if (bits == 16) {
    std::memcpy(out, codes, n * sizeof(uint16_t));
    return;
  }
  if (bits == 8) {
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m256i lo = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes + i));
      const __m256i hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes + i + 16));
      // packus interleaves 128-bit lanes; the permute restores order.
      // 8-bit codes are < 256, so saturation never fires.
      const __m256i p = _mm256_permute4x64_epi64(
          _mm256_packus_epi16(lo, hi), _MM_SHUFFLE(3, 1, 2, 0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), p);
    }
    for (; i < n; ++i) out[i] = static_cast<uint8_t>(codes[i]);
    return;
  }
  internal::PackCodesGeneric(codes, n, bits, out);
}

void UnpackCodes(const uint8_t* bytes, size_t n, int bits, uint16_t* codes) {
  if (bits == 16) {
    std::memcpy(codes, bytes, n * sizeof(uint16_t));
    return;
  }
  if (bits == 8) {
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(bytes + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + i),
                          _mm256_cvtepu8_epi16(b));
    }
    for (; i < n; ++i) codes[i] = bytes[i];
    return;
  }
  internal::UnpackCodesGeneric(bytes, n, bits, codes);
}

}  // namespace
}  // namespace avx2

namespace internal {

// Referenced by dispatch.cc only when this TU is compiled in.
const KernelTable& Avx2KernelTable() {
  static constexpr KernelTable kTable = {
      avx2::Axpy,          avx2::Add,
      avx2::AddScaled,     avx2::Sub,
      avx2::Scale,         avx2::Dot,
      avx2::SquaredL2,     avx2::SquaredDistance,
      avx2::MaxAbs,        avx2::GemmAxpyRow,
      avx2::QuantizeUniform, avx2::DequantizeGrid,
      avx2::PackCodes,     avx2::UnpackCodes,
  };
  return kTable;
}

}  // namespace internal
}  // namespace fedadmm::simd
