/// \file kernels_scalar.cc
/// \brief Portable scalar reference implementations of the kernel table.
///
/// This translation unit IS the semantics: the build compiles it with
/// `-ffp-contract=off -fno-tree-vectorize` so the emitted code performs
/// exactly the written sequence of correctly-rounded IEEE operations — no
/// FMA contraction, no compiler re-vectorization — and every other table
/// must match it bitwise (see simd.h for why the AVX2 table does).
///
/// The reductions emulate the canonical lane-striped accumulation order
/// (`kReduceLanes` interleaved double accumulators) rather than a single
/// sequential accumulator; that is the price of letting the AVX2 table
/// vectorize them at all.

#include <cmath>
#include <cstring>

#include "tensor/simd/pack_inline.h"
#include "tensor/simd/simd.h"

namespace fedadmm::simd {
namespace scalar {
namespace {

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Add(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

void AddScaled(const float* x, float alpha, const float* y, float* out,
               size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void Sub(const float* x, const float* y, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void Scale(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

// Combines the canonical stripes in ascending lane order.
double CombineLanes(const double* lane) {
  double acc = 0.0;
  for (size_t j = 0; j < kReduceLanes; ++j) acc += lane[j];
  return acc;
}

double Dot(const float* x, const float* y, size_t n) {
  double lane[kReduceLanes] = {0.0};
  for (size_t i = 0; i < n; ++i) {
    lane[i % kReduceLanes] += static_cast<double>(x[i]) * y[i];
  }
  return CombineLanes(lane);
}

double SquaredL2(const float* x, size_t n) {
  double lane[kReduceLanes] = {0.0};
  for (size_t i = 0; i < n; ++i) {
    lane[i % kReduceLanes] += static_cast<double>(x[i]) * x[i];
  }
  return CombineLanes(lane);
}

double SquaredDistance(const float* x, const float* y, size_t n) {
  double lane[kReduceLanes] = {0.0};
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    lane[i % kReduceLanes] += d * d;
  }
  return CombineLanes(lane);
}

float MaxAbs(const float* x, size_t n, bool* saw_nan) {
  float m = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a != a) {
      *saw_nan = true;
      continue;
    }
    if (a > m) m = a;
  }
  return m;
}

void GemmAxpyRow(const float* a, const float* b, float* c, int64_t kb,
                 int64_t n, int64_t ldb) {
  for (int64_t p = 0; p < kb; ++p) {
    const float ap = a[p];
    if (ap == 0.0f) continue;
    const float* bp = b + p * ldb;
    for (int64_t j = 0; j < n; ++j) c[j] += ap * bp[j];
  }
}

void QuantizeUniform(const float* v, size_t n, float scale, int levels,
                     uint16_t* codes) {
  if (!(scale > 0.0f)) {
    // Every grid position is the origin: floor(0 + 0.5) == 0.
    std::memset(codes, 0, n * sizeof(uint16_t));
    return;
  }
  const double s = static_cast<double>(scale);
  const double l = static_cast<double>(levels);
  for (size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(v[i]) / s;
    const double x = (dx + 1.0) / 2.0 * l;
    uint32_t code = static_cast<uint32_t>(std::floor(x + 0.5));
    if (code > static_cast<uint32_t>(levels)) {
      code = static_cast<uint32_t>(levels);
    }
    codes[i] = static_cast<uint16_t>(code);
  }
}

void DequantizeGrid(const uint16_t* codes, size_t n, float scale, int levels,
                    float* out) {
  if (scale == 0.0f) {
    std::memset(out, 0, n * sizeof(float));
    return;
  }
  const double s = static_cast<double>(scale);
  const double l = static_cast<double>(levels);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>((2.0 * codes[i] / l - 1.0) * s);
  }
}

void PackCodes(const uint16_t* codes, size_t n, int bits, uint8_t* out) {
  internal::PackCodesGeneric(codes, n, bits, out);
}

void UnpackCodes(const uint8_t* bytes, size_t n, int bits, uint16_t* codes) {
  internal::UnpackCodesGeneric(bytes, n, bits, codes);
}

}  // namespace
}  // namespace scalar

const KernelTable& ScalarKernels() {
  static constexpr KernelTable kTable = {
      scalar::Axpy,          scalar::Add,
      scalar::AddScaled,     scalar::Sub,
      scalar::Scale,         scalar::Dot,
      scalar::SquaredL2,     scalar::SquaredDistance,
      scalar::MaxAbs,        scalar::GemmAxpyRow,
      scalar::QuantizeUniform, scalar::DequantizeGrid,
      scalar::PackCodes,     scalar::UnpackCodes,
  };
  return kTable;
}

}  // namespace fedadmm::simd
