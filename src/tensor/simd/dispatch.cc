/// \file dispatch.cc
/// \brief Runtime ISA selection for the kernel table.
///
/// Resolution happens once, at the first `ActiveKernels()` call:
///   1. `ForceIsaForTesting` override, if set.
///   2. `FEDADMM_FORCE_SCALAR` environment variable (truthy → scalar).
///   3. Best table the host supports: AVX2+FMA when compiled in and both
///      cpuid feature bits are present, else scalar.
/// The decision is cached in an atomic so the hot paths pay one relaxed
/// load; `ForceIsaForTesting` resets the cache from setup code.

#include <atomic>
#include <optional>

#include "tensor/simd/simd.h"
#include "util/env.h"
#include "util/status.h"

namespace fedadmm::simd {

#if defined(FEDADMM_HAVE_AVX2_KERNELS)
namespace internal {
const KernelTable& Avx2KernelTable();  // defined in kernels_avx2.cc
}
#endif

namespace {

struct Choice {
  const KernelTable* table;
  Isa isa;
};

Choice Resolve() {
  if (GetEnvBool("FEDADMM_FORCE_SCALAR", false)) {
    return {&ScalarKernels(), Isa::kScalar};
  }
  if (const KernelTable* avx2 = Avx2Kernels()) {
    return {avx2, Isa::kAvx2};
  }
  return {&ScalarKernels(), Isa::kScalar};
}

// Cached decision; nullptr table means "not resolved yet".
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Isa> g_isa{Isa::kScalar};

const KernelTable& ResolveAndCache() {
  const Choice c = Resolve();
  g_isa.store(c.isa, std::memory_order_relaxed);
  g_table.store(c.table, std::memory_order_release);
  return *c.table;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable* Avx2Kernels() {
#if defined(FEDADMM_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &internal::Avx2KernelTable();
  }
#endif
  return nullptr;
}

const KernelTable& ActiveKernels() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  return ResolveAndCache();
}

Isa ActiveIsa() {
  ActiveKernels();  // ensure resolved
  return g_isa.load(std::memory_order_relaxed);
}

void ForceIsaForTesting(std::optional<Isa> isa) {
  if (!isa.has_value()) {
    g_table.store(nullptr, std::memory_order_release);
    ResolveAndCache();
    return;
  }
  if (*isa == Isa::kAvx2) {
    const KernelTable* avx2 = Avx2Kernels();
    FEDADMM_CHECK_MSG(avx2 != nullptr,
                      "ForceIsaForTesting(kAvx2): AVX2 kernels unavailable");
    g_isa.store(Isa::kAvx2, std::memory_order_relaxed);
    g_table.store(avx2, std::memory_order_release);
    return;
  }
  g_isa.store(Isa::kScalar, std::memory_order_relaxed);
  g_table.store(&ScalarKernels(), std::memory_order_release);
}

}  // namespace fedadmm::simd
