/// \file simd.h
/// \brief Runtime-dispatched SIMD kernels for the flat-vector, GEMM, and
/// quantizer hot paths.
///
/// Two implementations of every kernel exist: a portable scalar reference
/// (`ScalarKernels()`, always compiled, genuinely scalar — its translation
/// unit disables auto-vectorization and FP contraction so it *is* the
/// semantics) and an AVX2+FMA implementation (`Avx2Kernels()`, compiled
/// only when the toolchain supports `-mavx2 -mfma`; selected only when the
/// host CPU reports AVX2 and FMA). `ActiveKernels()` picks once, at first
/// use: the `FEDADMM_FORCE_SCALAR` environment variable (or
/// `ForceIsaForTesting`) pins the scalar table regardless of the CPU.
///
/// ## Determinism contract
///
/// Both tables produce **bitwise identical** results for every kernel, on
/// every input — this is what lets the engine's replay/equivalence suites
/// stay green across machines and across the dispatch override:
///
///  * Elementwise kernels (`axpy`, `add`, `add_scaled`, `sub`, `scale`,
///    `gemm_axpy_row`, `quantize_uniform`, `dequantize_grid`) perform one
///    correctly-rounded IEEE multiply and/or add per element in a fixed
///    order; SSE/AVX lanes compute exactly what the scalar expression
///    computes, so vectorization cannot change a bit. The AVX2 versions
///    deliberately use separate multiply + add (no FMA contraction) to
///    match the scalar two-rounding sequence.
///  * Double-accumulator reductions (`dot`, `squared_l2`,
///    `squared_distance`) define the **lane-striped order as canonical**:
///    `kReduceLanes` (= 8) double accumulators, lane `j` summing elements
///    `i ≡ j (mod 8)`, combined in ascending lane order. The scalar table
///    emulates the stripes. For `dot`/`squared_l2` the per-element product
///    of two floats is exact in double (24+24 < 53 mantissa bits), so the
///    AVX2 FMA accumulation is bitwise equal to scalar multiply-then-add.
///    `squared_distance` squares a rounded double difference (inexact), so
///    both tables use multiply-then-add there.
///  * `max_abs` is a max-reduction: associative and commutative over
///    non-NaN values, hence order-independent. NaN elements are excluded
///    from the running max and reported through `saw_nan`.
///  * `pack_codes`/`unpack_codes` are pure bit manipulation — identical
///    output bytes by construction.

#ifndef FEDADMM_TENSOR_SIMD_SIMD_H_
#define FEDADMM_TENSOR_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <optional>

namespace fedadmm::simd {

/// Number of interleaved double accumulators in the canonical reduction
/// order (`dot`, `squared_l2`, `squared_distance`): lane `j` accumulates
/// elements `i` with `i % kReduceLanes == j`; lanes combine in ascending
/// order. Chosen to fill two 4-double AVX2 registers.
inline constexpr size_t kReduceLanes = 8;

/// \brief One complete set of hot-path kernels. Pointers are never null.
///
/// All span-like arguments are raw pointer + length; buffers may be
/// arbitrarily aligned (kernels use unaligned loads) and must not overlap
/// unless a kernel documents aliasing (as `vec.h` does for its wrappers).
struct KernelTable {
  /// y[i] += alpha * x[i]
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  /// y[i] += x[i]  (a plain add — not axpy(1), though bitwise equal)
  void (*add)(const float* x, float* y, size_t n);
  /// out[i] = x[i] + alpha * y[i]; out may alias x or y
  void (*add_scaled)(const float* x, float alpha, const float* y, float* out,
                     size_t n);
  /// out[i] = x[i] - y[i]; out may alias either
  void (*sub)(const float* x, const float* y, float* out, size_t n);
  /// x[i] *= alpha
  void (*scale)(float alpha, float* x, size_t n);
  /// Lane-striped sum of x[i]*y[i] in double.
  double (*dot)(const float* x, const float* y, size_t n);
  /// Lane-striped sum of x[i]^2 in double.
  double (*squared_l2)(const float* x, size_t n);
  /// Lane-striped sum of (x[i]-y[i])^2 in double.
  double (*squared_distance)(const float* x, const float* y, size_t n);
  /// Largest |x[i]| over non-NaN elements (0 for empty); `*saw_nan` is set
  /// to true when any element is NaN, left untouched otherwise.
  float (*max_abs)(const float* x, size_t n, bool* saw_nan);

  /// GEMM row microkernel: for p in [0, kb): if (a[p] != 0)
  ///   c[j] += a[p] * b[p*ldb + j] for j in [0, n).
  /// Per element of c this is the mul+add chain of the scalar ikj loop,
  /// including the exact-zero row skip, so blocking over j cannot change a
  /// bit. `a` is a contiguous strip of kb multipliers (one row of A over a
  /// k-block), `b` the matching rows of B.
  void (*gemm_axpy_row)(const float* a, const float* b, float* c, int64_t kb,
                        int64_t n, int64_t ldb);

  /// Deterministic uniform quantization of one chunk onto the grid of
  /// `levels` steps over [-scale, +scale]:
  ///   x = scale > 0 ? ((double)v[i]/(double)scale + 1.0) / 2.0 * levels : 0
  ///   codes[i] = min((uint32)floor(x + 0.5), levels)
  /// `levels` must fit uint16_t. Inputs must be finite (checked upstream).
  void (*quantize_uniform)(const float* v, size_t n, float scale, int levels,
                           uint16_t* codes);
  /// Inverse grid map: out[i] = scale == 0 ? 0
  ///   : (float)((2.0 * codes[i] / levels - 1.0) * (double)scale)
  void (*dequantize_grid)(const uint16_t* codes, size_t n, float scale,
                          int levels, float* out);
  /// Packs n codes of `bits` (1..16) bits each, little-endian within and
  /// across bytes, final partial byte zero-padded — byte-identical to
  /// `wire::BitPacker`. `out` must hold BitPacker::PackedBytes(n, bits).
  void (*pack_codes)(const uint16_t* codes, size_t n, int bits, uint8_t* out);
  /// Inverse of `pack_codes`; reads PackedBytes(n, bits) bytes.
  void (*unpack_codes)(const uint8_t* bytes, size_t n, int bits,
                       uint16_t* codes);
};

/// Instruction sets a kernel table can be built for.
enum class Isa {
  kScalar,
  kAvx2,
};

/// Human-readable ISA name ("scalar", "avx2") for logs and bench context.
const char* IsaName(Isa isa);

/// The always-available scalar reference table.
const KernelTable& ScalarKernels();

/// The AVX2+FMA table, or nullptr when it was not compiled in or the CPU
/// lacks AVX2/FMA. Exposed so property tests and benchmarks can compare
/// implementations explicitly.
const KernelTable* Avx2Kernels();

/// The table every hot path dispatches through. Resolved once on first
/// use: `FEDADMM_FORCE_SCALAR` (truthy) pins scalar; otherwise the best
/// table the host supports.
const KernelTable& ActiveKernels();

/// ISA of `ActiveKernels()`.
Isa ActiveIsa();

/// Testing/benchmark override of the dispatch decision. `Isa::kScalar`
/// forces the fallback, `Isa::kAvx2` requires `Avx2Kernels() != nullptr`
/// (CHECKs otherwise), `nullopt` re-resolves from the environment and
/// cpuid. Not thread-safe against kernels in flight: call only from
/// single-threaded setup code. Both tables are bitwise identical, so
/// flipping this mid-run can never change results — only speed.
void ForceIsaForTesting(std::optional<Isa> isa);

}  // namespace fedadmm::simd

#endif  // FEDADMM_TENSOR_SIMD_SIMD_H_
