#include "tensor/vec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/simd/simd.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fedadmm::vec {
namespace {

obs::Histogram* AxpyManyHist() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Global().histogram("vec/axpy_many_seconds");
  return hist;
}

obs::Histogram* AxpyManyShardedHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global().histogram(
      "vec/axpy_many_sharded_seconds");
  return hist;
}

/// Runs `body(begin, end)` over [0, n) in kReduceBlock-sized blocks,
/// serially or across `pool`. Boundaries depend only on n.
template <typename Body>
void ForEachBlock(size_t n, ThreadPool* pool, const Body& body) {
  if (n == 0) return;
  const size_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
  if (pool == nullptr || pool->num_threads() <= 1 || num_blocks <= 1) {
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t begin = b * kReduceBlock;
      body(begin, std::min(begin + kReduceBlock, n));
    }
    return;
  }
  pool->ParallelFor(static_cast<int>(num_blocks), [&](int b, int worker) {
    (void)worker;
    const size_t begin = static_cast<size_t>(b) * kReduceBlock;
    body(begin, std::min(begin + kReduceBlock, n));
  });
}

}  // namespace

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  simd::ActiveKernels().axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(float alpha, std::span<float> x) {
  simd::ActiveKernels().scale(alpha, x.data(), x.size());
}

void Copy(std::span<const float> x, std::span<float> out) {
  FEDADMM_CHECK(x.size() == out.size());
  if (!x.empty()) std::memcpy(out.data(), x.data(), x.size() * sizeof(float));
}

void Zero(std::span<float> x) {
  if (!x.empty()) std::memset(x.data(), 0, x.size() * sizeof(float));
}

double Dot(std::span<const float> x, std::span<const float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  return simd::ActiveKernels().dot(x.data(), y.data(), x.size());
}

double SquaredL2Norm(std::span<const float> x) {
  return simd::ActiveKernels().squared_l2(x.data(), x.size());
}

double L2Norm(std::span<const float> x) { return std::sqrt(SquaredL2Norm(x)); }

double SquaredDistance(std::span<const float> x, std::span<const float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  return simd::ActiveKernels().squared_distance(x.data(), y.data(), x.size());
}

void AddScaled(std::span<const float> x, float alpha, std::span<const float> y,
               std::span<float> out) {
  FEDADMM_CHECK(x.size() == y.size() && x.size() == out.size());
  simd::ActiveKernels().add_scaled(x.data(), alpha, y.data(), out.data(),
                                   x.size());
}

void Sub(std::span<const float> x, std::span<const float> y,
         std::span<float> out) {
  FEDADMM_CHECK(x.size() == y.size() && x.size() == out.size());
  simd::ActiveKernels().sub(x.data(), y.data(), out.data(), x.size());
}

void Mean(const std::vector<std::span<const float>>& vectors,
          std::span<float> out) {
  // Per element this is zero → add in list order → scale, exactly the
  // blocked kernel's op sequence, so delegating is bitwise free.
  BlockedMean(vectors, out, /*pool=*/nullptr);
}

float MaxAbs(std::span<const float> x) {
  bool saw_nan = false;
  const float m = simd::ActiveKernels().max_abs(x.data(), x.size(), &saw_nan);
  // NaN propagates instead of being silently dropped by the max: a caller
  // sizing a quantizer grid (or any bound) from a poisoned vector must see
  // the poison, not a plausible finite magnitude.
  if (saw_nan) return std::numeric_limits<float>::quiet_NaN();
  return m;
}

void AxpyMany(float alpha, const std::vector<std::span<const float>>& xs,
              std::span<float> y, ThreadPool* pool) {
  for (const auto& x : xs) FEDADMM_CHECK(x.size() == y.size());
  if (xs.empty()) return;
  obs::TraceScope scope("axpy_many", "vec", AxpyManyHist());
  scope.set_arg("vectors", static_cast<int64_t>(xs.size()));
  const simd::KernelTable& k = simd::ActiveKernels();
  ForEachBlock(y.size(), pool, [&](size_t begin, size_t end) {
    float* yb = y.data() + begin;
    const size_t len = end - begin;
    for (const auto& x : xs) k.axpy(alpha, x.data() + begin, yb, len);
  });
}

void AxpyManySharded(float alpha,
                     const std::vector<std::span<const float>>& xs,
                     const std::vector<int>& shards, int num_shards,
                     std::span<float> y, ThreadPool* pool) {
  FEDADMM_CHECK_MSG(shards.size() == xs.size(),
                    "vec::AxpyManySharded: one shard id per vector");
  // The W = 1 fast path *is* the unsharded kernel — bitwise, not just
  // numerically: the sharded server at W = 1 must replay pre-shard
  // trajectories exactly.
  if (num_shards <= 1) {
    AxpyMany(alpha, xs, y, pool);
    return;
  }
  for (const auto& x : xs) FEDADMM_CHECK(x.size() == y.size());
  if (xs.empty()) return;
  obs::TraceScope scope("axpy_many_sharded", "vec", AxpyManyShardedHist());
  scope.set_arg("vectors", static_cast<int64_t>(xs.size()));
  const simd::KernelTable& k = simd::ActiveKernels();

  // Per-shard partial timings expose worker skew (`vec/axpy_shard_seconds
  // {shard=s}`). Purely additive wall measurement — the float math and
  // task boundaries are untouched, so enabling metrics cannot perturb the
  // reduce.
  const bool timed = obs::MetricsEnabled();
  std::vector<obs::Histogram*> shard_hist;
  if (timed) {
    shard_hist.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      shard_hist.push_back(obs::MetricsRegistry::Global().histogram(
          obs::ShardLabel("vec/axpy_shard_seconds", s)));
    }
  }

  // Group vector indices by shard, preserving list order within a shard.
  std::vector<std::vector<int>> members(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < shards.size(); ++i) {
    const int s = shards[i];
    FEDADMM_CHECK_MSG(s >= 0 && s < num_shards,
                      "vec::AxpyManySharded: shard id out of range");
    members[static_cast<size_t>(s)].push_back(static_cast<int>(i));
  }

  const size_t n = y.size();
  std::vector<float> partials(static_cast<size_t>(num_shards) * n, 0.0f);
  const size_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;

  // One task per (shard, block): shards are independent partials, blocks
  // are disjoint ranges, so all W · num_blocks tasks run concurrently —
  // this is where the sharded server beats the single-block flat kernel.
  const auto accumulate = [&](int task) {
    const int s = task / static_cast<int>(num_blocks);
    const size_t begin =
        static_cast<size_t>(task % static_cast<int>(num_blocks)) *
        kReduceBlock;
    const size_t end = std::min(begin + kReduceBlock, n);
    const auto task_start = timed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    float* partial = partials.data() + static_cast<size_t>(s) * n;
    for (const int xi : members[static_cast<size_t>(s)]) {
      const std::span<const float>& x = xs[static_cast<size_t>(xi)];
      k.axpy(alpha, x.data() + begin, partial + begin, end - begin);
    }
    if (timed) {
      shard_hist[static_cast<size_t>(s)]->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        task_start)
              .count());
    }
  };
  const int num_tasks = num_shards * static_cast<int>(num_blocks);
  if (pool == nullptr || pool->num_threads() <= 1 || num_tasks <= 1) {
    for (int t = 0; t < num_tasks; ++t) accumulate(t);
  } else {
    pool->ParallelFor(num_tasks,
                      [&](int t, int worker) { (void)worker; accumulate(t); });
  }

  // Combine in fixed shard order; empty shards are skipped so their +0.0
  // partials cannot flip a signed zero in y.
  ForEachBlock(n, pool, [&](size_t begin, size_t end) {
    for (int s = 0; s < num_shards; ++s) {
      if (members[static_cast<size_t>(s)].empty()) continue;
      const float* partial = partials.data() + static_cast<size_t>(s) * n;
      k.add(partial + begin, y.data() + begin, end - begin);
    }
  });
}

void BlockedMean(const std::vector<std::span<const float>>& xs,
                 std::span<float> out, ThreadPool* pool) {
  FEDADMM_CHECK_MSG(!xs.empty(), "vec::BlockedMean of zero vectors");
  for (const auto& x : xs) FEDADMM_CHECK(x.size() == out.size());
  const float inv = 1.0f / static_cast<float>(xs.size());
  const simd::KernelTable& k = simd::ActiveKernels();
  ForEachBlock(out.size(), pool, [&](size_t begin, size_t end) {
    const size_t len = end - begin;
    float* ob = out.data() + begin;
    std::memset(ob, 0, len * sizeof(float));
    for (const auto& x : xs) k.add(x.data() + begin, ob, len);
    k.scale(inv, ob, len);
  });
}

}  // namespace fedadmm::vec
