#include "tensor/vec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fedadmm::vec {
namespace {

obs::Histogram* AxpyManyHist() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Global().histogram("vec/axpy_many_seconds");
  return hist;
}

obs::Histogram* AxpyManyShardedHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global().histogram(
      "vec/axpy_many_sharded_seconds");
  return hist;
}

/// Runs `body(begin, end)` over [0, n) in kReduceBlock-sized blocks,
/// serially or across `pool`. Boundaries depend only on n.
template <typename Body>
void ForEachBlock(size_t n, ThreadPool* pool, const Body& body) {
  if (n == 0) return;
  const size_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
  if (pool == nullptr || pool->num_threads() <= 1 || num_blocks <= 1) {
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t begin = b * kReduceBlock;
      body(begin, std::min(begin + kReduceBlock, n));
    }
    return;
  }
  pool->ParallelFor(static_cast<int>(num_blocks), [&](int b, int worker) {
    (void)worker;
    const size_t begin = static_cast<size_t>(b) * kReduceBlock;
    body(begin, std::min(begin + kReduceBlock, n));
  });
}

}  // namespace

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

void Copy(std::span<const float> x, std::span<float> out) {
  FEDADMM_CHECK(x.size() == out.size());
  if (!x.empty()) std::memcpy(out.data(), x.data(), x.size() * sizeof(float));
}

void Zero(std::span<float> x) {
  if (!x.empty()) std::memset(x.data(), 0, x.size() * sizeof(float));
}

double Dot(std::span<const float> x, std::span<const float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  double acc = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double SquaredL2Norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

double L2Norm(std::span<const float> x) { return std::sqrt(SquaredL2Norm(x)); }

double SquaredDistance(std::span<const float> x, std::span<const float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  double acc = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    acc += d * d;
  }
  return acc;
}

void AddScaled(std::span<const float> x, float alpha, std::span<const float> y,
               std::span<float> out) {
  FEDADMM_CHECK(x.size() == y.size() && x.size() == out.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void Sub(std::span<const float> x, std::span<const float> y,
         std::span<float> out) {
  FEDADMM_CHECK(x.size() == y.size() && x.size() == out.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void Mean(const std::vector<std::span<const float>>& vectors,
          std::span<float> out) {
  // Per element this is zero → add in list order → scale, exactly the
  // blocked kernel's op sequence, so delegating is bitwise free.
  BlockedMean(vectors, out, /*pool=*/nullptr);
}

float MaxAbs(std::span<const float> x) {
  float m = 0.0f;
  for (float v : x) m = std::max(m, std::fabs(v));
  return m;
}

void AxpyMany(float alpha, const std::vector<std::span<const float>>& xs,
              std::span<float> y, ThreadPool* pool) {
  for (const auto& x : xs) FEDADMM_CHECK(x.size() == y.size());
  if (xs.empty()) return;
  obs::TraceScope scope("axpy_many", "vec", AxpyManyHist());
  scope.set_arg("vectors", static_cast<int64_t>(xs.size()));
  ForEachBlock(y.size(), pool, [&](size_t begin, size_t end) {
    for (const auto& x : xs) {
      for (size_t i = begin; i < end; ++i) y[i] += alpha * x[i];
    }
  });
}

void AxpyManySharded(float alpha,
                     const std::vector<std::span<const float>>& xs,
                     const std::vector<int>& shards, int num_shards,
                     std::span<float> y, ThreadPool* pool) {
  FEDADMM_CHECK_MSG(shards.size() == xs.size(),
                    "vec::AxpyManySharded: one shard id per vector");
  // The W = 1 fast path *is* the unsharded kernel — bitwise, not just
  // numerically: the sharded server at W = 1 must replay pre-shard
  // trajectories exactly.
  if (num_shards <= 1) {
    AxpyMany(alpha, xs, y, pool);
    return;
  }
  for (const auto& x : xs) FEDADMM_CHECK(x.size() == y.size());
  if (xs.empty()) return;
  obs::TraceScope scope("axpy_many_sharded", "vec", AxpyManyShardedHist());
  scope.set_arg("vectors", static_cast<int64_t>(xs.size()));

  // Per-shard partial timings expose worker skew (`vec/axpy_shard_seconds
  // {shard=s}`). Purely additive wall measurement — the float math and
  // task boundaries are untouched, so enabling metrics cannot perturb the
  // reduce.
  const bool timed = obs::MetricsEnabled();
  std::vector<obs::Histogram*> shard_hist;
  if (timed) {
    shard_hist.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      shard_hist.push_back(obs::MetricsRegistry::Global().histogram(
          obs::ShardLabel("vec/axpy_shard_seconds", s)));
    }
  }

  // Group vector indices by shard, preserving list order within a shard.
  std::vector<std::vector<int>> members(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < shards.size(); ++i) {
    const int s = shards[i];
    FEDADMM_CHECK_MSG(s >= 0 && s < num_shards,
                      "vec::AxpyManySharded: shard id out of range");
    members[static_cast<size_t>(s)].push_back(static_cast<int>(i));
  }

  const size_t n = y.size();
  std::vector<float> partials(static_cast<size_t>(num_shards) * n, 0.0f);
  const size_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;

  // One task per (shard, block): shards are independent partials, blocks
  // are disjoint ranges, so all W · num_blocks tasks run concurrently —
  // this is where the sharded server beats the single-block flat kernel.
  const auto accumulate = [&](int task) {
    const int s = task / static_cast<int>(num_blocks);
    const size_t begin =
        static_cast<size_t>(task % static_cast<int>(num_blocks)) *
        kReduceBlock;
    const size_t end = std::min(begin + kReduceBlock, n);
    const auto task_start = timed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    float* partial = partials.data() + static_cast<size_t>(s) * n;
    for (const int xi : members[static_cast<size_t>(s)]) {
      const std::span<const float>& x = xs[static_cast<size_t>(xi)];
      for (size_t i = begin; i < end; ++i) partial[i] += alpha * x[i];
    }
    if (timed) {
      shard_hist[static_cast<size_t>(s)]->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        task_start)
              .count());
    }
  };
  const int num_tasks = num_shards * static_cast<int>(num_blocks);
  if (pool == nullptr || pool->num_threads() <= 1 || num_tasks <= 1) {
    for (int t = 0; t < num_tasks; ++t) accumulate(t);
  } else {
    pool->ParallelFor(num_tasks,
                      [&](int t, int worker) { (void)worker; accumulate(t); });
  }

  // Combine in fixed shard order; empty shards are skipped so their +0.0
  // partials cannot flip a signed zero in y.
  ForEachBlock(n, pool, [&](size_t begin, size_t end) {
    for (int s = 0; s < num_shards; ++s) {
      if (members[static_cast<size_t>(s)].empty()) continue;
      const float* partial = partials.data() + static_cast<size_t>(s) * n;
      for (size_t i = begin; i < end; ++i) y[i] += partial[i];
    }
  });
}

void BlockedMean(const std::vector<std::span<const float>>& xs,
                 std::span<float> out, ThreadPool* pool) {
  FEDADMM_CHECK_MSG(!xs.empty(), "vec::BlockedMean of zero vectors");
  for (const auto& x : xs) FEDADMM_CHECK(x.size() == out.size());
  const float inv = 1.0f / static_cast<float>(xs.size());
  ForEachBlock(out.size(), pool, [&](size_t begin, size_t end) {
    std::memset(out.data() + begin, 0, (end - begin) * sizeof(float));
    for (const auto& x : xs) {
      for (size_t i = begin; i < end; ++i) out[i] += x[i];
    }
    for (size_t i = begin; i < end; ++i) out[i] *= inv;
  });
}

}  // namespace fedadmm::vec
