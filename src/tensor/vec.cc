#include "tensor/vec.h"

#include <cmath>
#include <cstring>

#include "util/status.h"

namespace fedadmm::vec {

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

void Copy(std::span<const float> x, std::span<float> out) {
  FEDADMM_CHECK(x.size() == out.size());
  if (!x.empty()) std::memcpy(out.data(), x.data(), x.size() * sizeof(float));
}

void Zero(std::span<float> x) {
  if (!x.empty()) std::memset(x.data(), 0, x.size() * sizeof(float));
}

double Dot(std::span<const float> x, std::span<const float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  double acc = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * y[i];
  return acc;
}

double SquaredL2Norm(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

double L2Norm(std::span<const float> x) { return std::sqrt(SquaredL2Norm(x)); }

double SquaredDistance(std::span<const float> x, std::span<const float> y) {
  FEDADMM_CHECK(x.size() == y.size());
  double acc = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    acc += d * d;
  }
  return acc;
}

void AddScaled(std::span<const float> x, float alpha, std::span<const float> y,
               std::span<float> out) {
  FEDADMM_CHECK(x.size() == y.size() && x.size() == out.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + alpha * y[i];
}

void Sub(std::span<const float> x, std::span<const float> y,
         std::span<float> out) {
  FEDADMM_CHECK(x.size() == y.size() && x.size() == out.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void Mean(const std::vector<std::span<const float>>& vectors,
          std::span<float> out) {
  FEDADMM_CHECK_MSG(!vectors.empty(), "vec::Mean of zero vectors");
  Zero(out);
  for (const auto& v : vectors) Axpy(1.0f, v, out);
  Scale(1.0f / static_cast<float>(vectors.size()), out);
}

float MaxAbs(std::span<const float> x) {
  float m = 0.0f;
  for (float v : x) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace fedadmm::vec
