#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/simd/simd.h"
#include "util/status.h"

namespace fedadmm::ops {
namespace {

// Micro-kernel blocking factor. The GEMMs here are small-to-medium
// (hundreds to a few thousand per side), so the ikj loop order with a
// fixed block over k and the `simd` row micro-kernel is enough to stay
// cache-friendly without pulling in a BLAS dependency.
constexpr int64_t kBlock = 64;

}  // namespace

void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  MatMulAccum(a, b, c, m, k, n);
}

void MatMulAccum(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  const simd::KernelTable& kern = simd::ActiveKernels();
  for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
    const int64_t k1 = std::min(k0 + kBlock, k);
    for (int64_t i = 0; i < m; ++i) {
      kern.gemm_axpy_row(a + i * k + k0, b + k0 * n, c + i * n, k1 - k0, n,
                         n);
    }
  }
}

void MatMulTransA(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  MatMulTransAAccum(a, b, c, m, k, n);
}

void MatMulTransAAccum(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  // C[i,j] += sum_p A[p,i] * B[p,j]; iterate p outer for streaming access.
  // The exact-zero skip stays in the caller (the axpy kernel has no skip);
  // it preserves signed zeros and non-finite B entries exactly as before.
  const simd::KernelTable& kern = simd::ActiveKernels();
  for (int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * m;
    const float* bp = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float api = ap[i];
      if (api == 0.0f) continue;
      kern.axpy(api, bp, c + i * n, static_cast<size_t>(n));
    }
  }
}

void MatMulTransB(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  // C[i,j] = sum_p A[i,p] * B[j,p]; dot products over contiguous rows,
  // accumulated in the canonical lane-striped double order (see simd.h).
  const simd::KernelTable& kern = simd::ActiveKernels();
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      ci[j] = static_cast<float>(
          kern.dot(ai, b + j * k, static_cast<size_t>(k)));
    }
  }
}

void Im2Col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w,
            int64_t stride_h, int64_t stride_w, int64_t pad_h, int64_t pad_w,
            float* columns) {
  const int64_t out_h = ConvOutDim(height, kernel_h, stride_h, pad_h);
  const int64_t out_w = ConvOutDim(width, kernel_w, stride_w, pad_w);
  // Layout: rows indexed by (c, kh, kw), columns by (oh, ow).
  for (int64_t c = 0; c < channels; ++c) {
    const float* img_c = image + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw) {
        float* row =
            columns + ((c * kernel_h + kh) * kernel_w + kw) * out_h * out_w;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride_h - pad_h + kh;
          if (ih < 0 || ih >= height) {
            std::memset(row + oh * out_w, 0,
                        static_cast<size_t>(out_w) * sizeof(float));
            continue;
          }
          const float* img_row = img_c + ih * width;
          float* dst = row + oh * out_w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride_w - pad_w + kw;
            dst[ow] = (iw >= 0 && iw < width) ? img_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, int64_t channels, int64_t height,
            int64_t width, int64_t kernel_h, int64_t kernel_w,
            int64_t stride_h, int64_t stride_w, int64_t pad_h, int64_t pad_w,
            float* image) {
  const int64_t out_h = ConvOutDim(height, kernel_h, stride_h, pad_h);
  const int64_t out_w = ConvOutDim(width, kernel_w, stride_w, pad_w);
  for (int64_t c = 0; c < channels; ++c) {
    float* img_c = image + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw) {
        const float* row =
            columns + ((c * kernel_h + kh) * kernel_w + kw) * out_h * out_w;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride_h - pad_h + kh;
          if (ih < 0 || ih >= height) continue;
          float* img_row = img_c + ih * width;
          const float* src = row + oh * out_w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride_w - pad_w + kw;
            if (iw >= 0 && iw < width) img_row[iw] += src[ow];
          }
        }
      }
    }
  }
}

void MaxPool2dForward(const float* input, int64_t n, int64_t c, int64_t h,
                      int64_t w, int64_t kernel, int64_t stride, float* output,
                      int32_t* argmax) {
  const int64_t out_h = ConvOutDim(h, kernel, stride, /*pad=*/0);
  const int64_t out_w = ConvOutDim(w, kernel, stride, /*pad=*/0);
  int64_t out_idx = 0;
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input + (img * c + ch) * h * w;
      const int64_t plane_base = (img * c + ch) * h * w;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          const int64_t h0 = oh * stride;
          const int64_t w0 = ow * stride;
          const int64_t h1 = std::min(h0 + kernel, h);
          const int64_t w1 = std::min(w0 + kernel, w);
          // Seed with the first window element (not -inf) so that NaN
          // inputs still yield a valid argmax index — the backward pass
          // scatters through it.
          float best = plane[h0 * w + w0];
          int64_t best_idx = h0 * w + w0;
          for (int64_t ih = h0; ih < h1; ++ih) {
            for (int64_t iw = w0; iw < w1; ++iw) {
              const float v = plane[ih * w + iw];
              // Second disjunct replaces a NaN seed with the first real
              // value (NaN comparisons are always false).
              if (v > best || (best != best && v == v)) {
                best = v;
                best_idx = ih * w + iw;
              }
            }
          }
          output[out_idx] = best;
          argmax[out_idx] = static_cast<int32_t>(plane_base + best_idx);
        }
      }
    }
  }
}

void MaxPool2dBackward(const float* grad_output, const int32_t* argmax,
                       int64_t output_numel, float* grad_input) {
  for (int64_t i = 0; i < output_numel; ++i) {
    grad_input[argmax[i]] += grad_output[i];
  }
}

void ReluForward(float* x, int64_t n, uint8_t* mask) {
  for (int64_t i = 0; i < n; ++i) {
    if (x[i] > 0.0f) {
      mask[i] = 1;
    } else {
      mask[i] = 0;
      x[i] = 0.0f;
    }
  }
}

void ReluBackward(const float* grad_output, const uint8_t* mask, int64_t n,
                  float* grad_input) {
  for (int64_t i = 0; i < n; ++i) {
    grad_input[i] = mask[i] ? grad_output[i] : 0.0f;
  }
}

void SoftmaxRows(const float* logits, int64_t rows, int64_t cols,
                 float* probs) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = logits + r * cols;
    float* out = probs + r * cols;
    float max_v = in[0];
    for (int64_t j = 1; j < cols; ++j) max_v = std::max(max_v, in[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      const float e = std::exp(in[j] - max_v);
      out[j] = e;
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t j = 0; j < cols; ++j) out[j] *= inv;
  }
}

}  // namespace fedadmm::ops
