/// \file shape.h
/// \brief Tensor shape: a small vector of dimension extents.

#ifndef FEDADMM_TENSOR_SHAPE_H_
#define FEDADMM_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedadmm {

/// \brief Dimensions of a dense row-major tensor.
class Shape {
 public:
  Shape() = default;

  /// Constructs from an explicit dimension list, e.g. `Shape({N, C, H, W})`.
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }

  /// Constructs from a vector of dims.
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  /// Number of dimensions.
  int ndim() const { return static_cast<int>(dims_.size()); }

  /// Extent of dimension `i`; negative indices count from the back.
  int64_t dim(int i) const {
    if (i < 0) i += ndim();
    FEDADMM_CHECK_MSG(i >= 0 && i < ndim(), "Shape::dim index out of range");
    return dims_[i];
  }

  /// Total number of elements (product of dims; 1 for a scalar/empty shape).
  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  /// The raw dims.
  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "[32, 1, 28, 28]".
  std::string ToString() const {
    std::string s = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  void Validate() const {
    for (int64_t d : dims_) {
      FEDADMM_CHECK_MSG(d >= 0, "Shape dims must be non-negative");
    }
  }

  std::vector<int64_t> dims_;
};

}  // namespace fedadmm

#endif  // FEDADMM_TENSOR_SHAPE_H_
