#include "tensor/tensor.h"

#include <cmath>

namespace fedadmm {

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

}  // namespace fedadmm
