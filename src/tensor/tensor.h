/// \file tensor.h
/// \brief Dense row-major float32 tensor.
///
/// The tensor is a plain owning container: copies are deep, moves are cheap.
/// All neural-network activations, parameters and dataset storage use it.
/// Indexing helpers are provided for up to 4 dimensions (N, C, H, W), which
/// covers everything the paper's CNNs need.

#ifndef FEDADMM_TENSOR_TENSOR_H_
#define FEDADMM_TENSOR_TENSOR_H_

#include <cstring>
#include <initializer_list>
#include <vector>

#include "tensor/shape.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/status.h"

namespace fedadmm {

/// \brief Dense row-major float tensor with value semantics.
class Tensor {
 public:
  /// Backing storage: a std::vector with its heap buffer promoted to
  /// 64-byte alignment (see util/aligned.h) so kernels streaming tensor
  /// data get the aligned fast case. Layout and values are unchanged.
  using Buffer = AlignedVector<float>;

  /// An empty (0-element) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), 0.0f) {}

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), value) {}

  /// Tensor adopting an existing aligned buffer. `data.size()` must equal
  /// `shape.numel()`.
  Tensor(Shape shape, Buffer data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    FEDADMM_CHECK_MSG(
        static_cast<int64_t>(data_.size()) == shape_.numel(),
        "Tensor: data size does not match shape");
  }

  /// Tensor copying existing data (the bytes move into an aligned buffer).
  Tensor(Shape shape, const std::vector<float>& data)
      : Tensor(std::move(shape), Buffer(data.begin(), data.end())) {}

  /// Tensor from a braced value list: `Tensor(Shape({2}), {1.0f, 2.0f})`.
  Tensor(Shape shape, std::initializer_list<float> data)
      : Tensor(std::move(shape), Buffer(data)) {}

  /// The shape.
  const Shape& shape() const { return shape_; }
  /// Total element count.
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  /// Raw storage.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  /// Raw storage as a vector (e.g. for serialization).
  const Buffer& vec() const { return data_; }
  Buffer& vec() { return data_; }

  /// Flat element access with bounds check in debug (CHECK always, cheap).
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-D access for a [rows, cols] tensor.
  float& at(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
  }
  float at(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
  }

  /// 4-D access for an [N, C, H, W] tensor.
  float& at(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[Offset4(n, c, h, w)];
  }
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[Offset4(n, c, h, w)];
  }

  /// Sets every element to `value`.
  void Fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
  }

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Fills with N(mean, stddev^2) samples.
  void FillNormal(Rng* rng, float mean = 0.0f, float stddev = 1.0f) {
    for (float& v : data_) {
      v = static_cast<float>(rng->Normal(mean, stddev));
    }
  }

  /// Fills with U[lo, hi) samples.
  void FillUniform(Rng* rng, float lo, float hi) {
    for (float& v : data_) v = static_cast<float>(rng->Uniform(lo, hi));
  }

  /// Returns a copy with a new shape of identical numel.
  Result<Tensor> Reshape(Shape new_shape) const {
    if (new_shape.numel() != numel()) {
      return Status::InvalidArgument(
          "Reshape: numel mismatch " + shape_.ToString() + " -> " +
          new_shape.ToString());
    }
    return Tensor(std::move(new_shape), data_);
  }

  /// True if shapes and all elements match exactly.
  bool Equals(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

  /// True if shapes match and elements differ by at most `atol`.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

 private:
  size_t Offset4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    const int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
    return static_cast<size_t>(((n * C + c) * H + h) * W + w);
  }

  Shape shape_;
  Buffer data_;
};

}  // namespace fedadmm

#endif  // FEDADMM_TENSOR_TENSOR_H_
