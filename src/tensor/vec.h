/// \file vec.h
/// \brief Flat parameter-vector math.
///
/// Every federated algorithm in this library manipulates models as flattened
/// float vectors (the paper's w_i, y_i, θ, Δ_i all live in R^d). These
/// free functions are the hot path of the simulator's server and client
/// bookkeeping: axpy-style updates, norms, and distances.
///
/// All functions CHECK that operand sizes match.

#ifndef FEDADMM_TENSOR_VEC_H_
#define FEDADMM_TENSOR_VEC_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fedadmm::vec {

/// y += alpha * x
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void Scale(float alpha, std::span<float> x);

/// out = x  (sizes must match)
void Copy(std::span<const float> x, std::span<float> out);

/// x = 0
void Zero(std::span<float> x);

/// Sum_i x[i] * y[i]
double Dot(std::span<const float> x, std::span<const float> y);

/// sqrt(Sum_i x[i]^2)
double L2Norm(std::span<const float> x);

/// Sum_i x[i]^2
double SquaredL2Norm(std::span<const float> x);

/// Sum_i (x[i]-y[i])^2
double SquaredDistance(std::span<const float> x, std::span<const float> y);

/// out = x + alpha * y (out may alias x)
void AddScaled(std::span<const float> x, float alpha, std::span<const float> y,
               std::span<float> out);

/// out = x - y (out may alias either)
void Sub(std::span<const float> x, std::span<const float> y,
         std::span<float> out);

/// Elementwise mean of `vectors` (all same length) into `out`.
void Mean(const std::vector<std::span<const float>>& vectors,
          std::span<float> out);

/// Largest |x[i]|.
float MaxAbs(std::span<const float> x);

}  // namespace fedadmm::vec

#endif  // FEDADMM_TENSOR_VEC_H_
