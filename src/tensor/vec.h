/// \file vec.h
/// \brief Flat parameter-vector math.
///
/// Every federated algorithm in this library manipulates models as flattened
/// float vectors (the paper's w_i, y_i, θ, Δ_i all live in R^d). These
/// free functions are the hot path of the simulator's server and client
/// bookkeeping: axpy-style updates, norms, and distances.
///
/// All functions CHECK that operand sizes match.
///
/// Every function dispatches through `simd::ActiveKernels()` (see
/// tensor/simd/simd.h): an AVX2+FMA table when the host supports it, the
/// scalar reference otherwise, bitwise identical either way. Reductions
/// (`Dot`, `SquaredL2Norm`, `L2Norm`, `SquaredDistance`) use the canonical
/// lane-striped accumulation order (`simd::kReduceLanes` interleaved double
/// accumulators), not a single running sum.

#ifndef FEDADMM_TENSOR_VEC_H_
#define FEDADMM_TENSOR_VEC_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fedadmm {
class ThreadPool;
}

namespace fedadmm::vec {

/// y += alpha * x
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void Scale(float alpha, std::span<float> x);

/// out = x  (sizes must match)
void Copy(std::span<const float> x, std::span<float> out);

/// x = 0
void Zero(std::span<float> x);

/// Sum_i x[i] * y[i]
double Dot(std::span<const float> x, std::span<const float> y);

/// sqrt(Sum_i x[i]^2)
double L2Norm(std::span<const float> x);

/// Sum_i x[i]^2
double SquaredL2Norm(std::span<const float> x);

/// Sum_i (x[i]-y[i])^2
double SquaredDistance(std::span<const float> x, std::span<const float> y);

/// out = x + alpha * y (out may alias x)
void AddScaled(std::span<const float> x, float alpha, std::span<const float> y,
               std::span<float> out);

/// out = x - y (out may alias either)
void Sub(std::span<const float> x, std::span<const float> y,
         std::span<float> out);

/// Elementwise mean of `vectors` (all same length) into `out`.
void Mean(const std::vector<std::span<const float>>& vectors,
          std::span<float> out);

/// Largest |x[i]| over the vector, or quiet NaN if any element is NaN.
/// (A silent max would drop NaN — `max(m, NaN)` keeps `m` — and report a
/// plausible finite magnitude for a poisoned vector.)
float MaxAbs(std::span<const float> x);

/// Fixed reduction block length (floats). Blocked kernels always cut the
/// dimension at multiples of this constant — never at thread-dependent
/// boundaries — so their results are bitwise identical for any pool size.
inline constexpr size_t kReduceBlock = 8192;

/// y += alpha * x for every x in `xs`, fused and blocked: each block of y
/// accumulates all of `xs` in list order before the next block starts on
/// it. Per element the float-op sequence equals `for x: Axpy(alpha, x, y)`,
/// so the result is bitwise identical to that loop — and to itself across
/// thread counts (fixed block boundaries, disjoint writes). `pool` may be
/// nullptr (serial); blocks are distributed across the pool otherwise.
/// This is the server-aggregation hot path: one pass over y instead of
/// |xs| passes.
void AxpyMany(float alpha, const std::vector<std::span<const float>>& xs,
              std::span<float> y, ThreadPool* pool = nullptr);

/// Elementwise mean of `xs` (all same length) into `out`, blocked and
/// optionally pool-parallel. Bitwise identical to `Mean` (zero, add in
/// list order, scale) for any thread count.
void BlockedMean(const std::vector<std::span<const float>>& xs,
                 std::span<float> out, ThreadPool* pool = nullptr);

/// Hierarchical sharded reduce: y += alpha * x for every x in `xs`, with
/// the sum formed as W per-shard partials combined in fixed shard order.
/// `shards[i]` in [0, num_shards) assigns x_i to its partial; within a
/// shard, vectors accumulate in list order. Per element the op sequence is
///
///   partial_s = 0 + alpha·x_{s,0} + alpha·x_{s,1} + ...   (each shard s)
///   y += partial_0; y += partial_1; ...                    (shard order)
///
/// which depends only on (xs, shards, num_shards) — never on the pool — so
/// results are bitwise reproducible at any thread count for a fixed W.
/// Different W regroup the float additions and may differ in the last ulp;
/// `num_shards <= 1` skips the partials entirely and delegates to
/// `AxpyMany`, making the W = 1 server bitwise identical to the unsharded
/// one. Shards with no vectors contribute nothing (their partial is never
/// added, so they cannot perturb signed zeros). This is the sharded
/// server's aggregation hot path: with d below kReduceBlock the flat
/// AxpyMany runs a single serial block, while the W partials here run
/// concurrently.
void AxpyManySharded(float alpha, const std::vector<std::span<const float>>& xs,
                     const std::vector<int>& shards, int num_shards,
                     std::span<float> y, ThreadPool* pool = nullptr);

}  // namespace fedadmm::vec

#endif  // FEDADMM_TENSOR_VEC_H_
