#include "core/fedadmm.h"

#include "tensor/vec.h"

namespace fedadmm {

void FedAdmm::Setup(const AlgorithmContext& ctx,
                    std::span<const float> theta0) {
  num_clients_ = ctx.num_clients;
  dim_ = ctx.dim;
  reduce_pool_ = ctx.reduce_pool;
  num_shards_ = ctx.num_shards;
  // Canonical initialization (Section VII): w_i⁰ = θ⁰, y_i⁰ = 0, which makes
  // θᵗ the exact mean of augmented models under η = |S|/m. Registered as
  // slot initial values: sparse backends never pay for untouched clients.
  std::vector<StateSlotSpec> slots(2);
  slots[kSlotModel].dim = ctx.dim;
  slots[kSlotModel].init.assign(theta0.begin(), theta0.end());
  slots[kSlotDual].dim = ctx.dim;
  auto store = MakeConfiguredClientStateStore(
      ctx.state_store, options_.state_store, ctx.num_clients,
      std::move(slots), ctx.num_shards);
  FEDADMM_CHECK_MSG(store.ok(), store.status().ToString());
  store_ = std::move(store).ValueOrDie();
}

UpdateMessage FedAdmm::ClientUpdate(int client_id, int round,
                                    std::span<const float> theta,
                                    LocalProblem* problem, Rng rng) {
  std::span<float> w_stored = store_->MutableView(client_id, kSlotModel);
  std::span<float> y = store_->MutableView(client_id, kSlotDual);
  const float rho = RhoAt(round);
  FEDADMM_CHECK_MSG(rho > 0.0f, "FedADMM requires rho > 0");

  // Previous augmented model u_i = w_i + y_i/ρ (Eq. 4 uses the *stored*
  // state, not θ).
  std::vector<float> u_prev(w_stored.size());
  for (size_t i = 0; i < u_prev.size(); ++i) {
    u_prev[i] = w_stored[i] + y[i] / rho;
  }

  // Local initialization: warm start (I) vs download (II) — Fig. 8.
  std::vector<float> w =
      options_.init == FedAdmmOptions::LocalInit::kClientModel
          ? std::vector<float>(w_stored.begin(), w_stored.end())
          : std::vector<float>(theta.begin(), theta.end());

  // Minimize the augmented Lagrangian (3): g += y_i + ρ (w − θ).
  const bool frozen = options_.freeze_duals;
  auto transform = [y, rho, theta, frozen](std::span<const float> w_now,
                                           std::span<float> grad) {
    const size_t n = grad.size();
    if (frozen) {
      for (size_t i = 0; i < n; ++i) {
        grad[i] += rho * (w_now[i] - theta[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        grad[i] += y[i] + rho * (w_now[i] - theta[i]);
      }
    }
  };
  const int epochs = SampleEpochs(options_.local, &rng);
  const LocalSolveResult result =
      RunLocalSgd(problem, options_.local, epochs, w, &rng, transform);

  // Dual ascent (line 20): y_i ← y_i + ρ (w_i⁺ − θ).
  if (!frozen) {
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] += rho * (w[i] - theta[i]);
    }
  }

  // Update message (Eq. 4): Δ_i = (w⁺ + y⁺/ρ) − (w + y/ρ).
  UpdateMessage msg;
  msg.client_id = client_id;
  msg.delta.resize(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    msg.delta[i] = (w[i] + y[i] / rho) - u_prev[i];
  }
  vec::Copy(w, w_stored);
  store_->Release(client_id);

  msg.train_loss = result.mean_loss;
  msg.epochs_run = result.epochs_run;
  msg.steps_run = result.steps_run;
  msg.final_grad_norm_sq = result.final_grad_norm_sq;
  return msg;
}

void FedAdmm::ServerUpdate(const std::vector<UpdateMessage>& updates,
                           int round, std::vector<float>* theta) {
  FEDADMM_CHECK(!updates.empty());
  const float eta =
      options_.eta_active_fraction
          ? static_cast<float>(updates.size()) /
                static_cast<float>(num_clients_)
          : static_cast<float>(options_.eta.At(round));
  // Tracking update (Eq. 5): θ ← θ + (η/|S_t|) Σ Δ_i, as a hierarchical
  // per-shard reduce. At W = 1 this is the flat fused pass (bitwise
  // identical to the per-message Axpy loop); at W > 1 each aggregation
  // worker sums its own clients' deltas and the partials combine in shard
  // order.
  const float step = eta / static_cast<float>(updates.size());
  std::vector<std::span<const float>> deltas;
  deltas.reserve(updates.size());
  for (const UpdateMessage& msg : updates) deltas.push_back(msg.delta);
  vec::AxpyManySharded(step, deltas, UpdateShards(updates), num_shards_,
                       *theta, reduce_pool_);
}

void FedAdmm::AggregateOne(UpdateMessage msg, int round, int staleness,
                           std::vector<float>* theta) {
  // The engine already applied the staleness weight to Δ_i; the raw count
  // is informational here.
  (void)staleness;
  const float eta = options_.eta_active_fraction
                        ? 1.0f / static_cast<float>(num_clients_)
                        : static_cast<float>(options_.eta.At(round));
  vec::Axpy(eta, msg.delta, *theta);
}

Status FedAdmm::ValidateForEventMode() const {
  if (options_.eta_active_fraction) return Status::OK();
  return Status::InvalidArgument(
      "FedADMM: buffered/async modes aggregate 1 or K ≪ m updates per step; "
      "a fixed η schedule (eta_active_fraction=false) overshoots the "
      "tracking update m/|S_t|-fold. Set "
      "FedAdmmOptions::eta_active_fraction=true (η = |S_t|/m) or run "
      "ExecutionMode::kSync");
}

int64_t FedAdmm::StateBytesResident() const {
  return store_ ? store_->bytes_resident() : 0;
}

std::vector<float> FedAdmm::MeanAugmentedModel(int round) const {
  FEDADMM_CHECK(store_ != nullptr && store_->num_clients() > 0);
  const float rho = RhoAt(round);
  // Hoisted reciprocal: one divide for the whole reduction instead of one
  // per (client, coordinate) — the historical scalar loop divided m·d
  // times.
  const float inv_rho = 1.0f / rho;
  const int m = store_->num_clients();
  std::vector<std::span<const float>> ws;
  std::vector<std::span<const float>> ys;
  ws.reserve(static_cast<size_t>(m));
  ys.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    ws.push_back(store_->View(i, kSlotModel));
    ys.push_back(store_->View(i, kSlotDual));
  }
  // mean(u) = mean(w) + (1/(mρ)) Σ y — two blocked pool-parallel passes.
  std::vector<float> mean(ws[0].size());
  vec::BlockedMean(ws, mean, reduce_pool_);
  vec::AxpyMany(inv_rho / static_cast<float>(m), ys, mean, reduce_pool_);
  // Drop any hot decode cache the views pulled in (quantized backend).
  for (int i = 0; i < m; ++i) store_->Release(i);
  return mean;
}

}  // namespace fedadmm
