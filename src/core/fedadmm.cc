#include "core/fedadmm.h"

#include "tensor/vec.h"

namespace fedadmm {

void FedAdmm::Setup(const AlgorithmContext& ctx,
                    std::span<const float> theta0) {
  num_clients_ = ctx.num_clients;
  dim_ = ctx.dim;
  // Canonical initialization (Section VII): w_i⁰ = θ⁰, y_i⁰ = 0, which makes
  // θᵗ the exact mean of augmented models under η = |S|/m.
  w_.assign(static_cast<size_t>(ctx.num_clients),
            std::vector<float>(theta0.begin(), theta0.end()));
  y_.assign(static_cast<size_t>(ctx.num_clients),
            std::vector<float>(static_cast<size_t>(ctx.dim), 0.0f));
}

UpdateMessage FedAdmm::ClientUpdate(int client_id, int round,
                                    std::span<const float> theta,
                                    LocalProblem* problem, Rng rng) {
  std::vector<float>& w_stored = w_[static_cast<size_t>(client_id)];
  std::vector<float>& y = y_[static_cast<size_t>(client_id)];
  const float rho = RhoAt(round);
  FEDADMM_CHECK_MSG(rho > 0.0f, "FedADMM requires rho > 0");

  // Previous augmented model u_i = w_i + y_i/ρ (Eq. 4 uses the *stored*
  // state, not θ).
  std::vector<float> u_prev(w_stored.size());
  for (size_t i = 0; i < u_prev.size(); ++i) {
    u_prev[i] = w_stored[i] + y[i] / rho;
  }

  // Local initialization: warm start (I) vs download (II) — Fig. 8.
  std::vector<float> w =
      options_.init == FedAdmmOptions::LocalInit::kClientModel
          ? w_stored
          : std::vector<float>(theta.begin(), theta.end());

  // Minimize the augmented Lagrangian (3): g += y_i + ρ (w − θ).
  const bool frozen = options_.freeze_duals;
  auto transform = [&y, rho, theta, frozen](std::span<const float> w_now,
                                            std::span<float> grad) {
    const size_t n = grad.size();
    if (frozen) {
      for (size_t i = 0; i < n; ++i) {
        grad[i] += rho * (w_now[i] - theta[i]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        grad[i] += y[i] + rho * (w_now[i] - theta[i]);
      }
    }
  };
  const int epochs = SampleEpochs(options_.local, &rng);
  const LocalSolveResult result =
      RunLocalSgd(problem, options_.local, epochs, w, &rng, transform);

  // Dual ascent (line 20): y_i ← y_i + ρ (w_i⁺ − θ).
  if (!frozen) {
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] += rho * (w[i] - theta[i]);
    }
  }

  // Update message (Eq. 4): Δ_i = (w⁺ + y⁺/ρ) − (w + y/ρ).
  UpdateMessage msg;
  msg.client_id = client_id;
  msg.delta.resize(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    msg.delta[i] = (w[i] + y[i] / rho) - u_prev[i];
  }
  w_stored = std::move(w);

  msg.train_loss = result.mean_loss;
  msg.epochs_run = result.epochs_run;
  msg.steps_run = result.steps_run;
  msg.final_grad_norm_sq = result.final_grad_norm_sq;
  return msg;
}

void FedAdmm::ServerUpdate(const std::vector<UpdateMessage>& updates,
                           int round, std::vector<float>* theta) {
  FEDADMM_CHECK(!updates.empty());
  const float eta =
      options_.eta_active_fraction
          ? static_cast<float>(updates.size()) /
                static_cast<float>(num_clients_)
          : static_cast<float>(options_.eta.At(round));
  // Tracking update (Eq. 5): θ ← θ + (η/|S_t|) Σ Δ_i.
  const float step = eta / static_cast<float>(updates.size());
  for (const UpdateMessage& msg : updates) {
    vec::Axpy(step, msg.delta, *theta);
  }
}

void FedAdmm::AggregateOne(UpdateMessage msg, int round, int staleness,
                           std::vector<float>* theta) {
  // The engine already applied the staleness weight to Δ_i; the raw count
  // is informational here.
  (void)staleness;
  const float eta = options_.eta_active_fraction
                        ? 1.0f / static_cast<float>(num_clients_)
                        : static_cast<float>(options_.eta.At(round));
  vec::Axpy(eta, msg.delta, *theta);
}

std::vector<float> FedAdmm::MeanAugmentedModel(int round) const {
  FEDADMM_CHECK(!w_.empty());
  const float rho = RhoAt(round);
  std::vector<float> mean(w_[0].size(), 0.0f);
  for (size_t i = 0; i < w_.size(); ++i) {
    for (size_t k = 0; k < mean.size(); ++k) {
      mean[k] += w_[i][k] + y_[i][k] / rho;
    }
  }
  const float inv_m = 1.0f / static_cast<float>(w_.size());
  for (float& v : mean) v *= inv_m;
  return mean;
}

}  // namespace fedadmm
