/// \file schedules.h
/// \brief Piecewise-constant hyperparameter schedules.
///
/// The paper adjusts the server step size η mid-run (Fig. 6) and the
/// proximal coefficient ρ mid-run (Fig. 9). Both are expressed as a
/// piecewise-constant schedule over rounds.

#ifndef FEDADMM_CORE_SCHEDULES_H_
#define FEDADMM_CORE_SCHEDULES_H_

#include <string>
#include <utility>
#include <vector>

namespace fedadmm {

/// \brief A value that is constant between switch rounds.
class StepSchedule {
 public:
  StepSchedule() = default;

  /// A constant schedule.
  explicit StepSchedule(double initial) : initial_(initial) {}

  /// From `round` onward (inclusive) the value becomes `value`. Switches
  /// must be added in increasing round order.
  StepSchedule& AddSwitch(int round, double value);

  /// The value in effect at `round`.
  double At(int round) const;

  /// The value before any switches.
  double initial() const { return initial_; }

  /// True if the schedule never changes.
  bool is_constant() const { return switches_.empty(); }

  /// e.g. "1 (0.5 @ 60)".
  std::string ToString() const;

 private:
  double initial_ = 1.0;
  std::vector<std::pair<int, double>> switches_;
};

}  // namespace fedadmm

#endif  // FEDADMM_CORE_SCHEDULES_H_
