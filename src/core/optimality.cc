#include "core/optimality.h"

#include "tensor/vec.h"

namespace fedadmm {

OptimalityGap ComputeOptimalityGap(FederatedProblem* problem,
                                   const FedAdmm& algorithm,
                                   std::span<const float> theta, int round) {
  OptimalityGap gap;
  const int m = problem->num_clients();
  const int64_t d = problem->dim();
  const float rho = algorithm.RhoAt(round);

  // ∇_θ L = Σ_i ( −y_i − ρ (w_i − θ) ).
  std::vector<double> grad_theta(static_cast<size_t>(d), 0.0);
  std::vector<float> grad(static_cast<size_t>(d));

  for (int i = 0; i < m; ++i) {
    const std::span<const float> w = algorithm.client_model(i);
    const std::span<const float> y = algorithm.client_dual(i);
    auto local = problem->MakeLocalProblem(i, /*worker=*/0);
    local->FullLossGradient(w, grad);

    double grad_w_sq = 0.0;
    double consensus_sq = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      const size_t ks = static_cast<size_t>(k);
      const double diff = static_cast<double>(w[ks]) - theta[ks];
      const double gw = static_cast<double>(grad[ks]) + y[ks] + rho * diff;
      grad_w_sq += gw * gw;
      consensus_sq += diff * diff;
      grad_theta[ks] -= static_cast<double>(y[ks]) + rho * diff;
    }
    gap.grad_w_sq += grad_w_sq;
    gap.consensus_sq += consensus_sq;
    // Drop any hot decode cache the views pulled in (quantized backend).
    algorithm.state_store().Release(i);
  }
  for (double v : grad_theta) gap.grad_theta_sq += v * v;
  return gap;
}

}  // namespace fedadmm
