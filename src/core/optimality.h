/// \file optimality.h
/// \brief The optimality-gap functional V_t of Eq. (7).
///
/// V_t = ‖∇_θ L‖² + Σ_i ( ‖∇_{w_i} L_i‖² + ‖w_i − θ‖² ), where
/// L = Σ_i L_i is the aggregated augmented Lagrangian. V_t = 0 iff
/// (w, y, θ) is a stationary point of the consensus problem (2). Theorem 1
/// bounds the running average of E[V_t]; tests verify that FedADMM drives
/// V_t toward the ε-floor on convex problems.

#ifndef FEDADMM_CORE_OPTIMALITY_H_
#define FEDADMM_CORE_OPTIMALITY_H_

#include <span>

#include "core/fedadmm.h"
#include "fl/problem.h"

namespace fedadmm {

/// \brief Breakdown of the optimality gap.
struct OptimalityGap {
  /// ‖∇_θ L‖² — zero under η = |S|/m tracking (Eq. 20).
  double grad_theta_sq = 0.0;
  /// Σ_i ‖∇_{w_i} L_i‖².
  double grad_w_sq = 0.0;
  /// Σ_i ‖w_i − θ‖² (consensus violation).
  double consensus_sq = 0.0;

  /// V_t, the sum of the three terms.
  double total() const { return grad_theta_sq + grad_w_sq + consensus_sq; }
};

/// \brief Evaluates V_t for the current FedADMM state against `problem`.
///
/// Uses each client's full local gradient (worker slot 0), so this is
/// expensive — intended for tests, diagnostics, and the Table I bench, not
/// for the inner loop. `round` selects the ρ in effect.
OptimalityGap ComputeOptimalityGap(FederatedProblem* problem,
                                   const FedAdmm& algorithm,
                                   std::span<const float> theta, int round);

}  // namespace fedadmm

#endif  // FEDADMM_CORE_OPTIMALITY_H_
