/// \file fedadmm.h
/// \brief FedADMM — the paper's primary contribution (Algorithm 1).
///
/// Each client i holds a primal/dual pair (w_i, y_i), initialized to
/// (θ⁰, 0). When selected at round t, the client approximately minimizes
/// the local augmented Lagrangian
///
///   L_i(w; y_i, θᵗ) = f_i(w) + y_iᵀ(w − θᵗ) + (ρ/2)‖w − θᵗ‖²       (3)
///
/// by E_i epochs of minibatch SGD (lines 14-19), i.e. per-batch steps
/// w ← w − η_i (∇f_i(w, b) + y_i + ρ(w − θᵗ)), then performs the dual
/// ascent y_i ← y_i + ρ(w_i − θᵗ) (line 20), and uploads the difference of
/// successive *augmented models* u_i = w_i + y_i/ρ:
///
///   Δ_i = u_i⁺ − u_i                                                 (4)
///
/// The server tracks θᵗ⁺¹ = θᵗ + (η/|S_t|) Σ Δ_i (5). With η = |S_t|/m and
/// the canonical initialization, θᵗ equals the average of all m augmented
/// models at every round (Eq. 20 in the proof) — a property test of this
/// library.
///
/// Knobs map to the paper's ablations: server step-size mode/schedule
/// (Fig. 6), ρ schedule (Fig. 9), local initialization warm-start vs global
/// (Fig. 8), variable epochs = system heterogeneity (Table III), and ε
/// inexactness (Eq. 6).

#ifndef FEDADMM_CORE_FEDADMM_H_
#define FEDADMM_CORE_FEDADMM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/schedules.h"
#include "fl/algorithm.h"
#include "fl/local_solver.h"
#include "state/client_state_store.h"

namespace fedadmm {

/// \brief Configuration of FedADMM.
struct FedAdmmOptions {
  /// Local SGD hyperparameters. `variable_epochs` defaults to true: the
  /// paper evaluates FedADMM under system heterogeneity (E_i ~ U{1..E}).
  LocalTrainSpec local = [] {
    LocalTrainSpec spec;
    spec.variable_epochs = true;
    return spec;
  }();

  /// Proximal coefficient ρ (the paper fixes 0.01 everywhere), optionally
  /// time-varying (Fig. 9).
  StepSchedule rho = StepSchedule(0.01);

  /// Server gathering step size η (Eq. 5), optionally time-varying
  /// (Fig. 6). Ignored when `eta_active_fraction` is set.
  StepSchedule eta = StepSchedule(1.0);

  /// When true, η = |S_t|/m each round (the theoretically analyzed choice;
  /// empirically damps oscillations under heavy heterogeneity). Strongly
  /// recommended under the async/buffered execution modes: their
  /// aggregation batches are 1 or K ≪ m updates, and a fixed η = 1 then
  /// overshoots the tracking update by m/|S_t|.
  bool eta_active_fraction = false;

  /// Local training initialization (Fig. 8): warm start from the stored
  /// client model w_i (strategy I, the paper's recommendation) or restart
  /// from the downloaded global model θ (strategy II).
  enum class LocalInit { kClientModel, kGlobalModel };
  LocalInit init = LocalInit::kClientModel;

  /// Ablation: freeze y_i ≡ 0. The local subproblem then reduces to
  /// FedProx's (and to FedAvg's when additionally ρ = 0) — Section III-B.
  bool freeze_duals = false;

  /// Backend for the per-client (w_i, y_i) pairs (src/state):
  /// "dense" | "lazy" | "quantized:<b>". Overridden by
  /// `SimulationConfig::state_store` when that is non-empty.
  std::string state_store = "dense";
};

/// \brief The FedADMM algorithm.
class FedAdmm : public FederatedAlgorithm {
 public:
  explicit FedAdmm(FedAdmmOptions options) : options_(std::move(options)) {}

  std::string name() const override { return "FedADMM"; }
  void Setup(const AlgorithmContext& ctx,
             std::span<const float> theta0) override;
  UpdateMessage ClientUpdate(int client_id, int round,
                             std::span<const float> theta,
                             LocalProblem* problem, Rng rng) override;
  void ServerUpdate(const std::vector<UpdateMessage>& updates, int round,
                    std::vector<float>* theta) override;
  /// Asynchronous arrival: the tracking update (Eq. 5) with S_t = {i},
  /// θ ← θ + η Δ_i. The dual ascent already happened client-side in
  /// `ClientUpdate`, so applying Δ_i alone keeps θ tracking the mean
  /// augmented model per-client — FedADMM needs no batch barrier. Under
  /// `eta_active_fraction` the active fraction of a single arrival is 1/m.
  void AggregateOne(UpdateMessage msg, int round, int staleness,
                    std::vector<float>* theta) override;

  /// Fails event-mode runs unless η = |S_t|/m is on: a singleton async
  /// batch (or a K ≪ m buffer) at a fixed η overshoots the tracking
  /// update m/|S_t|-fold — the PR 4 footgun, now a fast, clear error.
  Status ValidateForEventMode() const override;

  /// Resident bytes of the (w_i, y_i) store.
  int64_t StateBytesResident() const override;

  /// Fallback when `SimulationConfig::state_store` is empty.
  std::string DefaultStateStoreSpec() const override {
    return options_.state_store;
  }

  /// ρ in effect at `round`.
  float RhoAt(int round) const {
    return static_cast<float>(options_.rho.At(round));
  }

  /// Stored client model w_i (tests/diagnostics). A view into the state
  /// store: untouched clients read the canonical initialization θ⁰.
  std::span<const float> client_model(int i) const {
    return store_->View(i, kSlotModel);
  }
  /// Stored dual variable y_i (tests/diagnostics).
  std::span<const float> client_dual(int i) const {
    return store_->View(i, kSlotDual);
  }
  /// Mean of all m augmented models u_i = w_i + y_i/ρ at the given round's
  /// ρ — equals θ when η = |S|/m (Eq. 20), a tested invariant. Runs on the
  /// blocked reduction kernels; O(m·d), diagnostics only.
  std::vector<float> MeanAugmentedModel(int round) const;

  const FedAdmmOptions& options() const { return options_; }

  /// The underlying client-state store (tests/diagnostics).
  const ClientStateStore& state_store() const { return *store_; }

  /// Engine handle for prefetch hints and checkpoint passes.
  ClientStateStore* mutable_state_store() override { return store_.get(); }

 private:
  /// Store slots: client primal iterate w_i and dual variable y_i.
  static constexpr int kSlotModel = 0;
  static constexpr int kSlotDual = 1;

  FedAdmmOptions options_;
  std::unique_ptr<ClientStateStore> store_;
};

}  // namespace fedadmm

#endif  // FEDADMM_CORE_FEDADMM_H_
