#include "core/schedules.h"

#include "util/status.h"

namespace fedadmm {

StepSchedule& StepSchedule::AddSwitch(int round, double value) {
  FEDADMM_CHECK_MSG(
      switches_.empty() || switches_.back().first < round,
      "StepSchedule switches must be added in increasing round order");
  switches_.emplace_back(round, value);
  return *this;
}

double StepSchedule::At(int round) const {
  double value = initial_;
  for (const auto& [switch_round, switch_value] : switches_) {
    if (round >= switch_round) {
      value = switch_value;
    } else {
      break;
    }
  }
  return value;
}

std::string StepSchedule::ToString() const {
  std::string s = std::to_string(initial_);
  for (const auto& [round, value] : switches_) {
    s += " (" + std::to_string(value) + " @ " + std::to_string(round) + ")";
  }
  return s;
}

}  // namespace fedadmm
