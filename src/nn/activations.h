/// \file activations.h
/// \brief Elementwise activation layers.

#ifndef FEDADMM_NN_ACTIVATIONS_H_
#define FEDADMM_NN_ACTIVATIONS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedadmm {

/// \brief Rectified linear unit, applied elementwise to any shape.
class ReLU : public Layer {
 public:
  ReLU() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Shape OutputShape(const Shape& input) const override { return input; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<uint8_t> mask_;
};

/// \brief Hyperbolic tangent, applied elementwise to any shape.
class Tanh : public Layer {
 public:
  Tanh() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Shape OutputShape(const Shape& input) const override { return input; }
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_ACTIVATIONS_H_
