#include "nn/losses.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/status.h"

namespace fedadmm {

double SoftmaxCrossEntropyLoss::Forward(const Tensor& logits,
                                        const std::vector<int>& labels) {
  FEDADMM_CHECK_MSG(logits.shape().ndim() == 2,
                    "SoftmaxCrossEntropyLoss: logits must be [N, K]");
  const int64_t n = logits.shape().dim(0);
  const int64_t k = logits.shape().dim(1);
  FEDADMM_CHECK_MSG(static_cast<int64_t>(labels.size()) == n,
                    "SoftmaxCrossEntropyLoss: labels size mismatch");
  probs_ = Tensor(logits.shape());
  ops::SoftmaxRows(logits.data(), n, k, probs_.data());
  labels_ = labels;

  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<size_t>(i)];
    FEDADMM_CHECK_MSG(y >= 0 && y < k, "label out of range");
    // Clamp to avoid log(0) from float underflow on confident mistakes.
    const double p = std::max(static_cast<double>(probs_.at(i, y)), 1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropyLoss::Backward() const {
  FEDADMM_CHECK_MSG(probs_.numel() > 0, "Backward before Forward");
  const int64_t n = probs_.shape().dim(0);
  Tensor grad = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    grad.at(i, labels_[static_cast<size_t>(i)]) -= 1.0f;
  }
  float* g = grad.data();
  for (int64_t i = 0; i < grad.numel(); ++i) g[i] *= inv_n;
  return grad;
}

double SoftmaxCrossEntropyLoss::Accuracy(const Tensor& logits,
                                         const std::vector<int>& labels) {
  const int64_t n = logits.shape().dim(0);
  const int64_t k = logits.shape().dim(1);
  FEDADMM_CHECK(static_cast<int64_t>(labels.size()) == n);
  if (n == 0) return 0.0;
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    int64_t best = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double MSELoss::Forward(const Tensor& predictions, const Tensor& targets) {
  FEDADMM_CHECK_MSG(predictions.shape() == targets.shape(),
                    "MSELoss: shape mismatch");
  FEDADMM_CHECK_MSG(predictions.shape().ndim() >= 1, "MSELoss: empty shape");
  batch_ = predictions.shape().dim(0);
  residual_ = Tensor(predictions.shape());
  double acc = 0.0;
  const float* p = predictions.data();
  const float* t = targets.data();
  float* r = residual_.data();
  for (int64_t i = 0; i < predictions.numel(); ++i) {
    r[i] = p[i] - t[i];
    acc += static_cast<double>(r[i]) * r[i];
  }
  return 0.5 * acc / static_cast<double>(batch_);
}

Tensor MSELoss::Backward() const {
  FEDADMM_CHECK_MSG(batch_ > 0, "Backward before Forward");
  Tensor grad = residual_;
  const float inv_n = 1.0f / static_cast<float>(batch_);
  float* g = grad.data();
  for (int64_t i = 0; i < grad.numel(); ++i) g[i] *= inv_n;
  return grad;
}

}  // namespace fedadmm
