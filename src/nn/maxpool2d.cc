#include "nn/maxpool2d.h"

#include "tensor/tensor_ops.h"

namespace fedadmm {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  FEDADMM_CHECK_MSG(kernel_ > 0 && stride_ > 0, "MaxPool2d: invalid config");
}

Shape MaxPool2d::OutputShape(const Shape& input) const {
  FEDADMM_CHECK_MSG(input.ndim() == 4, "MaxPool2d: expected [N,C,H,W]");
  const int64_t oh = ops::ConvOutDim(input.dim(2), kernel_, stride_, 0);
  const int64_t ow = ops::ConvOutDim(input.dim(3), kernel_, stride_, 0);
  FEDADMM_CHECK_MSG(oh > 0 && ow > 0, "MaxPool2d: output would be empty");
  return Shape({input.dim(0), input.dim(1), oh, ow});
}

Tensor MaxPool2d::Forward(const Tensor& input) {
  const Shape out_shape = OutputShape(input.shape());
  cached_input_shape_ = input.shape();
  Tensor output(out_shape);
  argmax_.resize(static_cast<size_t>(output.numel()));
  ops::MaxPool2dForward(input.data(), input.shape().dim(0),
                        input.shape().dim(1), input.shape().dim(2),
                        input.shape().dim(3), kernel_, stride_, output.data(),
                        argmax_.data());
  return output;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  FEDADMM_CHECK_MSG(
      static_cast<size_t>(grad_output.numel()) == argmax_.size(),
      "MaxPool2d::Backward without matching Forward");
  Tensor grad_input(cached_input_shape_);  // zero-initialized
  ops::MaxPool2dBackward(grad_output.data(), argmax_.data(),
                         grad_output.numel(), grad_input.data());
  return grad_input;
}

std::unique_ptr<Layer> MaxPool2d::Clone() const {
  return std::make_unique<MaxPool2d>(kernel_, stride_);
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(kernel_) + "x" +
         std::to_string(kernel_) + ", stride " + std::to_string(stride_) + ")";
}

}  // namespace fedadmm
