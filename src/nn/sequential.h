/// \file sequential.h
/// \brief Linear chain of layers.

#ifndef FEDADMM_NN_SEQUENTIAL_H_
#define FEDADMM_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedadmm {

/// \brief Composite layer applying children in order.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer) {
    FEDADMM_CHECK(layer != nullptr);
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  Shape OutputShape(const Shape& input) const override;
  void Initialize(Rng* rng) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

  /// Number of child layers.
  int size() const { return static_cast<int>(layers_.size()); }
  /// Child access for inspection.
  Layer* layer(int i) { return layers_[static_cast<size_t>(i)].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_SEQUENTIAL_H_
