/// \file layer.h
/// \brief Layer abstraction with explicit forward/backward passes.
///
/// The library uses classic define-by-layer backpropagation (no tape):
/// each layer caches whatever its backward pass needs during forward, and
/// `Backward` both returns the input gradient and *accumulates* parameter
/// gradients. This matches the training loop shape of the paper's local
/// SGD solvers and keeps the memory model obvious.

#ifndef FEDADMM_NN_LAYER_H_
#define FEDADMM_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedadmm {

/// \brief A trainable tensor and its gradient accumulator.
struct Parameter {
  /// Identifier for diagnostics, e.g. "conv1.weight".
  std::string name;
  /// Current value.
  Tensor value;
  /// Gradient accumulated by Backward; zeroed via Model::ZeroGrad.
  Tensor grad;

  Parameter(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  /// Number of scalar parameters.
  int64_t numel() const { return value.numel(); }
};

/// \brief Base class of all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output, caching state for Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after a matching Forward.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// The layer's trainable parameters (possibly empty). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Shape of the output given an input shape (batch dim included).
  virtual Shape OutputShape(const Shape& input) const = 0;

  /// Initializes parameters (He/Kaiming for weight layers; no-op otherwise).
  virtual void Initialize(Rng* rng) { (void)rng; }

  /// Deep copy of the layer (parameters copied, forward caches not).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Human-readable layer name, e.g. "Conv2d(1->32, 5x5, pad 2)".
  virtual std::string name() const = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_LAYER_H_
