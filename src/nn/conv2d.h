/// \file conv2d.h
/// \brief 2-D convolution layer (im2col + GEMM lowering).

#ifndef FEDADMM_NN_CONV2D_H_
#define FEDADMM_NN_CONV2D_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace fedadmm {

/// \brief Cross-correlation over [N, C, H, W] inputs with square kernels.
///
/// The paper's CNNs use 5x5 kernels with stride 1; padding is a parameter so
/// the exact architectures (padding 2, "same" spatial size) are expressible.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride = 1, int64_t padding = 0);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  Shape OutputShape(const Shape& input) const override;
  void Initialize(Rng* rng) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }

  /// Direct access for tests.
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  Parameter weight_;  // [OC, IC, K, K]
  Parameter bias_;    // [OC]
  Tensor cached_input_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_CONV2D_H_
