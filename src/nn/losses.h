/// \file losses.h
/// \brief Training criteria: softmax cross-entropy (classification, used by
/// every paper experiment) and mean squared error (used for the convex
/// quadratic validation problems in tests).

#ifndef FEDADMM_NN_LOSSES_H_
#define FEDADMM_NN_LOSSES_H_

#include <vector>

#include "tensor/tensor.h"

namespace fedadmm {

/// \brief Softmax + cross-entropy over logits [N, K] with int labels.
class SoftmaxCrossEntropyLoss {
 public:
  /// Returns the mean negative log-likelihood; caches probabilities.
  double Forward(const Tensor& logits, const std::vector<int>& labels);

  /// Returns dLoss/dLogits = (softmax - onehot) / N for the cached batch.
  Tensor Backward() const;

  /// Fraction of argmax predictions equal to the labels (no caching needed).
  static double Accuracy(const Tensor& logits, const std::vector<int>& labels);

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// \brief 0.5 * mean over samples of squared L2 error.
class MSELoss {
 public:
  /// Returns (1/2N) * sum ||pred_i - target_i||^2; caches the residual.
  double Forward(const Tensor& predictions, const Tensor& targets);

  /// Returns dLoss/dPred = (pred - target) / N for the cached batch.
  Tensor Backward() const;

 private:
  Tensor residual_;
  int64_t batch_ = 0;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_LOSSES_H_
