/// \file flatten.h
/// \brief Collapses [N, C, H, W] (or any rank >= 2) into [N, features].

#ifndef FEDADMM_NN_FLATTEN_H_
#define FEDADMM_NN_FLATTEN_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace fedadmm {

/// \brief Reshape layer between the convolutional and dense modules.
class Flatten : public Layer {
 public:
  Flatten() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Shape OutputShape(const Shape& input) const override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_FLATTEN_H_
