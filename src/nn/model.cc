#include "nn/model.h"

#include "tensor/vec.h"

namespace fedadmm {

Model::Model(std::unique_ptr<Sequential> net, LossKind loss)
    : net_(std::move(net)), loss_kind_(loss) {
  FEDADMM_CHECK(net_ != nullptr);
  params_ = net_->Parameters();
  for (const Parameter* p : params_) num_parameters_ += p->numel();
}

void Model::GetParameters(std::vector<float>* out) const {
  out->resize(static_cast<size_t>(num_parameters_));
  GetParameters(std::span<float>(*out));
}

void Model::GetParameters(std::span<float> out) const {
  FEDADMM_CHECK(static_cast<int64_t>(out.size()) == num_parameters_);
  size_t offset = 0;
  for (const Parameter* p : params_) {
    vec::Copy(std::span<const float>(p->value.vec()),
              out.subspan(offset, static_cast<size_t>(p->numel())));
    offset += static_cast<size_t>(p->numel());
  }
}

void Model::SetParameters(std::span<const float> params) {
  FEDADMM_CHECK(static_cast<int64_t>(params.size()) == num_parameters_);
  size_t offset = 0;
  for (Parameter* p : params_) {
    vec::Copy(params.subspan(offset, static_cast<size_t>(p->numel())),
              std::span<float>(p->value.vec()));
    offset += static_cast<size_t>(p->numel());
  }
}

void Model::GetGradients(std::vector<float>* out) const {
  out->resize(static_cast<size_t>(num_parameters_));
  GetGradients(std::span<float>(*out));
}

void Model::GetGradients(std::span<float> out) const {
  FEDADMM_CHECK(static_cast<int64_t>(out.size()) == num_parameters_);
  size_t offset = 0;
  for (const Parameter* p : params_) {
    vec::Copy(std::span<const float>(p->grad.vec()),
              out.subspan(offset, static_cast<size_t>(p->numel())));
    offset += static_cast<size_t>(p->numel());
  }
}

void Model::ZeroGrad() {
  for (Parameter* p : params_) p->grad.Zero();
}

void Model::Initialize(Rng* rng) { net_->Initialize(rng); }

double Model::ForwardBackward(const Tensor& inputs,
                              const std::vector<int>& labels) {
  FEDADMM_CHECK_MSG(loss_kind_ == LossKind::kSoftmaxCrossEntropy,
                    "ForwardBackward requires a classification model");
  Tensor logits = net_->Forward(inputs);
  const double loss = ce_loss_.Forward(logits, labels);
  net_->Backward(ce_loss_.Backward());
  return loss;
}

double Model::ForwardBackwardMse(const Tensor& inputs, const Tensor& targets) {
  FEDADMM_CHECK_MSG(loss_kind_ == LossKind::kMse,
                    "ForwardBackwardMse requires an MSE model");
  Tensor preds = net_->Forward(inputs);
  const double loss = mse_loss_.Forward(preds, targets);
  net_->Backward(mse_loss_.Backward());
  return loss;
}

Tensor Model::Predict(const Tensor& inputs) { return net_->Forward(inputs); }

double Model::EvalLoss(const Tensor& inputs, const std::vector<int>& labels,
                       double* accuracy) {
  FEDADMM_CHECK_MSG(loss_kind_ == LossKind::kSoftmaxCrossEntropy,
                    "EvalLoss requires a classification model");
  Tensor logits = net_->Forward(inputs);
  SoftmaxCrossEntropyLoss loss;  // local: do not disturb training cache
  const double value = loss.Forward(logits, labels);
  if (accuracy != nullptr) {
    *accuracy = SoftmaxCrossEntropyLoss::Accuracy(logits, labels);
  }
  return value;
}

void Model::SgdStep(float lr) {
  for (Parameter* p : params_) {
    vec::Axpy(-lr, std::span<const float>(p->grad.vec()),
              std::span<float>(p->value.vec()));
  }
}

std::unique_ptr<Model> Model::Clone() const {
  auto net_clone = net_->Clone();
  // Clone() returns unique_ptr<Layer>; we know it is a Sequential.
  auto* seq = dynamic_cast<Sequential*>(net_clone.get());
  FEDADMM_CHECK(seq != nullptr);
  net_clone.release();
  return std::make_unique<Model>(std::unique_ptr<Sequential>(seq), loss_kind_);
}

}  // namespace fedadmm
