#include "nn/linear.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace fedadmm {

Linear::Linear(int64_t in_features, int64_t out_features, bool with_bias)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias),
      weight_("linear.weight", Shape({out_features, in_features})),
      bias_("linear.bias", Shape({with_bias ? out_features : 0})) {
  FEDADMM_CHECK_MSG(in_features > 0 && out_features > 0,
                    "Linear: features must be positive");
}

Tensor Linear::Forward(const Tensor& input) {
  FEDADMM_CHECK_MSG(input.shape().ndim() == 2 &&
                        input.shape().dim(1) == in_features_,
                    "Linear::Forward: bad input shape " +
                        input.shape().ToString());
  cached_input_ = input;
  const int64_t n = input.shape().dim(0);
  Tensor out(Shape({n, out_features_}));
  // out[N, out] = input[N, in] * weight^T[in, out]
  ops::MatMulTransB(input.data(), weight_.value.data(), out.data(), n,
                    in_features_, out_features_);
  if (with_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      float* row = out.data() + i * out_features_;
      const float* b = bias_.value.data();
      for (int64_t j = 0; j < out_features_; ++j) row[j] += b[j];
    }
  }
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  const int64_t n = cached_input_.shape().dim(0);
  FEDADMM_CHECK_MSG(grad_output.shape() == Shape({n, out_features_}),
                    "Linear::Backward: bad grad shape");
  // dW[out, in] += dY^T[out, N] * X[N, in]
  ops::MatMulTransAAccum(grad_output.data(), cached_input_.data(),
                         weight_.grad.data(), out_features_, n, in_features_);
  if (with_bias_) {
    float* db = bias_.grad.data();
    for (int64_t i = 0; i < n; ++i) {
      const float* row = grad_output.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) db[j] += row[j];
    }
  }
  // dX[N, in] = dY[N, out] * W[out, in]
  Tensor grad_input(Shape({n, in_features_}));
  ops::MatMul(grad_output.data(), weight_.value.data(), grad_input.data(), n,
              out_features_, in_features_);
  return grad_input;
}

std::vector<Parameter*> Linear::Parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

Shape Linear::OutputShape(const Shape& input) const {
  FEDADMM_CHECK(input.ndim() == 2);
  return Shape({input.dim(0), out_features_});
}

void Linear::Initialize(Rng* rng) {
  // He/Kaiming normal for ReLU networks: stddev = sqrt(2 / fan_in).
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features_));
  weight_.value.FillNormal(rng, 0.0f, stddev);
  if (with_bias_) bias_.value.Zero();
}

std::unique_ptr<Layer> Linear::Clone() const {
  auto copy = std::make_unique<Linear>(in_features_, out_features_, with_bias_);
  copy->weight_.value = weight_.value;
  copy->bias_.value = bias_.value;
  return copy;
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + (with_bias_ ? "" : ", no bias") + ")";
}

}  // namespace fedadmm
