#include "nn/flatten.h"

namespace fedadmm {

Shape Flatten::OutputShape(const Shape& input) const {
  FEDADMM_CHECK_MSG(input.ndim() >= 2, "Flatten: rank must be >= 2");
  int64_t features = 1;
  for (int i = 1; i < input.ndim(); ++i) features *= input.dim(i);
  return Shape({input.dim(0), features});
}

Tensor Flatten::Forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return *input.Reshape(OutputShape(input.shape()));
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  FEDADMM_CHECK_MSG(grad_output.numel() == cached_input_shape_.numel(),
                    "Flatten::Backward without matching Forward");
  return *grad_output.Reshape(cached_input_shape_);
}

std::unique_ptr<Layer> Flatten::Clone() const {
  return std::make_unique<Flatten>();
}

}  // namespace fedadmm
