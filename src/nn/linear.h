/// \file linear.h
/// \brief Fully-connected layer: y = x W^T + b.

#ifndef FEDADMM_NN_LINEAR_H_
#define FEDADMM_NN_LINEAR_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace fedadmm {

/// \brief Affine layer over the last dimension: input [N, in] -> [N, out].
class Linear : public Layer {
 public:
  /// Creates a layer with zeroed weight [out_features, in_features] and bias
  /// [out_features] (call Initialize for He init). Set `with_bias=false` for
  /// a pure linear map.
  Linear(int64_t in_features, int64_t out_features, bool with_bias = true);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  Shape OutputShape(const Shape& input) const override;
  void Initialize(Rng* rng) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  bool with_bias() const { return with_bias_; }

  /// Direct access for tests.
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool with_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_LINEAR_H_
