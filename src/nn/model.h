/// \file model.h
/// \brief A network plus a loss, with flattened-parameter access.
///
/// Federated algorithms treat models as vectors in R^d: the server model θ,
/// client models w_i, dual variables y_i and update messages Δ_i are all flat
/// float vectors. `Model` bridges the layered network view and this flat
/// view: `GetParameters`/`SetParameters`/`GetGradients` (de)serialize every
/// layer parameter into one contiguous vector in a stable order.

#ifndef FEDADMM_NN_MODEL_H_
#define FEDADMM_NN_MODEL_H_

#include <memory>
#include <span>
#include <vector>

#include "nn/losses.h"
#include "nn/sequential.h"

namespace fedadmm {

/// Which training criterion the model uses.
enum class LossKind {
  kSoftmaxCrossEntropy,  ///< classification (all paper experiments)
  kMse,                  ///< regression (convex validation problems)
};

/// \brief A trainable model: network, loss, and flat parameter view.
class Model {
 public:
  /// Takes ownership of the network. The loss determines which
  /// ForwardBackward overload is valid.
  Model(std::unique_ptr<Sequential> net, LossKind loss);

  /// Total scalar parameter count d.
  int64_t NumParameters() const { return num_parameters_; }

  /// Loss criterion.
  LossKind loss_kind() const { return loss_kind_; }

  /// Copies all parameters into `out` (resized to d).
  void GetParameters(std::vector<float>* out) const;
  /// Writes all parameters into a span of size d.
  void GetParameters(std::span<float> out) const;
  /// Overwrites all parameters from a span of size d.
  void SetParameters(std::span<const float> params);
  /// Copies all accumulated gradients into `out` (resized to d).
  void GetGradients(std::vector<float>* out) const;
  /// Writes all accumulated gradients into a span of size d.
  void GetGradients(std::span<float> out) const;
  /// Zeroes all gradient accumulators.
  void ZeroGrad();

  /// He-initializes every layer from `rng`.
  void Initialize(Rng* rng);

  /// Classification: runs forward + loss + backward, accumulating parameter
  /// gradients. Returns the mean batch loss. Requires kSoftmaxCrossEntropy.
  double ForwardBackward(const Tensor& inputs, const std::vector<int>& labels);

  /// Regression: as above with MSE. Requires kMse.
  double ForwardBackwardMse(const Tensor& inputs, const Tensor& targets);

  /// Forward pass only (no gradient bookkeeping beyond layer caches).
  Tensor Predict(const Tensor& inputs);

  /// Classification: mean loss on a batch; if `accuracy` is non-null it is
  /// set to the top-1 accuracy. Does not touch gradients.
  double EvalLoss(const Tensor& inputs, const std::vector<int>& labels,
                  double* accuracy = nullptr);

  /// Vanilla SGD step: value -= lr * grad for every parameter. (Federated
  /// solvers instead transform flat vectors; this is for centralized use.)
  void SgdStep(float lr);

  /// Deep copy (parameters copied; caches not).
  std::unique_ptr<Model> Clone() const;

  /// The underlying network, for inspection.
  Sequential* net() { return net_.get(); }
  const Sequential* net() const { return net_.get(); }

 private:
  std::unique_ptr<Sequential> net_;
  LossKind loss_kind_;
  std::vector<Parameter*> params_;  // cached flat list, stable order
  int64_t num_parameters_ = 0;
  SoftmaxCrossEntropyLoss ce_loss_;
  MSELoss mse_loss_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_MODEL_H_
