#include "nn/conv2d.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace fedadmm {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv.weight",
              Shape({out_channels, in_channels, kernel, kernel})),
      bias_("conv.bias", Shape({out_channels})) {
  FEDADMM_CHECK_MSG(
      in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 &&
          padding >= 0,
      "Conv2d: invalid configuration");
}

Shape Conv2d::OutputShape(const Shape& input) const {
  FEDADMM_CHECK_MSG(input.ndim() == 4 && input.dim(1) == in_channels_,
                    "Conv2d: expected [N, C, H, W] input with C = " +
                        std::to_string(in_channels_));
  const int64_t oh = ops::ConvOutDim(input.dim(2), kernel_, stride_, padding_);
  const int64_t ow = ops::ConvOutDim(input.dim(3), kernel_, stride_, padding_);
  FEDADMM_CHECK_MSG(oh > 0 && ow > 0, "Conv2d: output would be empty");
  return Shape({input.dim(0), out_channels_, oh, ow});
}

Tensor Conv2d::Forward(const Tensor& input) {
  const Shape out_shape = OutputShape(input.shape());
  cached_input_ = input;
  const int64_t n = input.shape().dim(0);
  const int64_t h = input.shape().dim(2), w = input.shape().dim(3);
  const int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  const int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const int64_t col_cols = oh * ow;

  Tensor output(out_shape);
  std::vector<float> columns(static_cast<size_t>(col_rows * col_cols));
  const int64_t img_in_sz = in_channels_ * h * w;
  const int64_t img_out_sz = out_channels_ * col_cols;

  for (int64_t img = 0; img < n; ++img) {
    ops::Im2Col(input.data() + img * img_in_sz, in_channels_, h, w, kernel_,
                kernel_, stride_, stride_, padding_, padding_, columns.data());
    // out[OC, OH*OW] = W[OC, col_rows] * cols[col_rows, OH*OW]
    float* out_img = output.data() + img * img_out_sz;
    ops::MatMul(weight_.value.data(), columns.data(), out_img, out_channels_,
                col_rows, col_cols);
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_.value[oc];
      float* plane = out_img + oc * col_cols;
      for (int64_t p = 0; p < col_cols; ++p) plane[p] += b;
    }
  }
  return output;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  const Shape& in_shape = cached_input_.shape();
  const int64_t n = in_shape.dim(0);
  const int64_t h = in_shape.dim(2), w = in_shape.dim(3);
  const int64_t oh = grad_output.shape().dim(2);
  const int64_t ow = grad_output.shape().dim(3);
  const int64_t col_rows = in_channels_ * kernel_ * kernel_;
  const int64_t col_cols = oh * ow;
  const int64_t img_in_sz = in_channels_ * h * w;
  const int64_t img_out_sz = out_channels_ * col_cols;

  Tensor grad_input(in_shape);  // zero-initialized
  std::vector<float> columns(static_cast<size_t>(col_rows * col_cols));
  std::vector<float> grad_columns(static_cast<size_t>(col_rows * col_cols));

  for (int64_t img = 0; img < n; ++img) {
    const float* g_out = grad_output.data() + img * img_out_sz;
    // Recompute im2col rather than caching per-image columns: trades a
    // second Im2Col for O(batch * col) memory, which dominates otherwise.
    ops::Im2Col(cached_input_.data() + img * img_in_sz, in_channels_, h, w,
                kernel_, kernel_, stride_, stride_, padding_, padding_,
                columns.data());
    // dW[OC, col_rows] += dOut[OC, cc] * cols^T[cc, col_rows]
    ops::MatMulTransB(g_out, columns.data(), grad_columns.data(),
                      out_channels_, col_cols, col_rows);
    {
      float* dw = weight_.grad.data();
      const float* src = grad_columns.data();
      const int64_t total = out_channels_ * col_rows;
      for (int64_t i = 0; i < total; ++i) dw[i] += src[i];
    }
    // db[OC] += rowsum(dOut)
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* plane = g_out + oc * col_cols;
      double acc = 0.0;
      for (int64_t p = 0; p < col_cols; ++p) acc += plane[p];
      bias_.grad[oc] += static_cast<float>(acc);
    }
    // dcols[col_rows, cc] = W^T[col_rows, OC] * dOut[OC, cc]
    ops::MatMulTransA(weight_.value.data(), g_out, grad_columns.data(),
                      col_rows, out_channels_, col_cols);
    ops::Col2Im(grad_columns.data(), in_channels_, h, w, kernel_, kernel_,
                stride_, stride_, padding_, padding_,
                grad_input.data() + img * img_in_sz);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::Parameters() { return {&weight_, &bias_}; }

void Conv2d::Initialize(Rng* rng) {
  const float fan_in =
      static_cast<float>(in_channels_ * kernel_ * kernel_);
  const float stddev = std::sqrt(2.0f / fan_in);
  weight_.value.FillNormal(rng, 0.0f, stddev);
  bias_.value.Zero();
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::make_unique<Conv2d>(in_channels_, out_channels_, kernel_,
                                       stride_, padding_);
  copy->weight_.value = weight_.value;
  copy->bias_.value = bias_.value;
  return copy;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", " + std::to_string(kernel_) + "x" +
         std::to_string(kernel_) + ", stride " + std::to_string(stride_) +
         ", pad " + std::to_string(padding_) + ")";
}

}  // namespace fedadmm
