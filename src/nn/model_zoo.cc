#include "nn/model_zoo.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/maxpool2d.h"

namespace fedadmm {
namespace {

/// Builds the paper's two-conv CNN family:
/// conv(5x5, pad 2) -> ReLU -> pool(2) -> conv(5x5, pad 2) -> ReLU ->
/// pool(2) -> flatten -> FC hidden -> ReLU -> FC classes.
std::unique_ptr<Sequential> MakeTwoConvNet(int64_t in_channels, int64_t hw,
                                           int64_t c1, int64_t c2,
                                           int64_t hidden, int64_t classes) {
  FEDADMM_CHECK_MSG(hw % 4 == 0, "two-conv net needs H=W divisible by 4");
  const int64_t flat = c2 * (hw / 4) * (hw / 4);
  auto net = std::make_unique<Sequential>();
  net->Emplace<Conv2d>(in_channels, c1, /*kernel=*/5, /*stride=*/1,
                       /*padding=*/2)
      .Emplace<ReLU>()
      .Emplace<MaxPool2d>(2)
      .Emplace<Conv2d>(c1, c2, 5, 1, 2)
      .Emplace<ReLU>()
      .Emplace<MaxPool2d>(2)
      .Emplace<Flatten>()
      .Emplace<Linear>(flat, hidden)
      .Emplace<ReLU>()
      .Emplace<Linear>(hidden, classes);
  return net;
}

}  // namespace

std::string ModelConfig::ToString() const {
  switch (arch) {
    case Arch::kPaperCnn1:
      return "PaperCnn1(1x28x28 -> 10, 1663370 params)";
    case Arch::kPaperCnn2:
      return "PaperCnn2(3x32x32 -> 10, 1105098 params)";
    case Arch::kBenchCnn:
      return "BenchCnn(" + std::to_string(in_channels) + "x" +
             std::to_string(height) + "x" + std::to_string(width) + ", conv " +
             std::to_string(conv1_channels) + "/" +
             std::to_string(conv2_channels) + ", fc " +
             std::to_string(hidden) + " -> " + std::to_string(classes) + ")";
    case Arch::kMlp:
      return "Mlp(" + std::to_string(in_channels * height * width) + " -> " +
             std::to_string(mlp_hidden) + " -> " + std::to_string(classes) +
             ")";
    case Arch::kLinearReg:
      return "LinearRegression(" +
             std::to_string(in_channels * height * width) + " -> " +
             std::to_string(classes) + ")";
    case Arch::kLogistic:
      return "Logistic(" + std::to_string(in_channels * height * width) +
             " -> " + std::to_string(classes) + ")";
  }
  return "Unknown";
}

std::unique_ptr<Model> BuildModel(const ModelConfig& config) {
  switch (config.arch) {
    case ModelConfig::Arch::kPaperCnn1:
      return std::make_unique<Model>(
          MakeTwoConvNet(/*in_channels=*/1, /*hw=*/28, /*c1=*/32, /*c2=*/64,
                         /*hidden=*/512, /*classes=*/10),
          LossKind::kSoftmaxCrossEntropy);
    case ModelConfig::Arch::kPaperCnn2:
      return std::make_unique<Model>(
          MakeTwoConvNet(/*in_channels=*/3, /*hw=*/32, /*c1=*/32, /*c2=*/64,
                         /*hidden=*/256, /*classes=*/10),
          LossKind::kSoftmaxCrossEntropy);
    case ModelConfig::Arch::kBenchCnn: {
      FEDADMM_CHECK_MSG(config.height == config.width,
                        "BenchCnn requires square input");
      return std::make_unique<Model>(
          MakeTwoConvNet(config.in_channels, config.height,
                         config.conv1_channels, config.conv2_channels,
                         config.hidden, config.classes),
          LossKind::kSoftmaxCrossEntropy);
    }
    case ModelConfig::Arch::kMlp: {
      const int64_t in = config.in_channels * config.height * config.width;
      auto net = std::make_unique<Sequential>();
      net->Emplace<Flatten>()
          .Emplace<Linear>(in, config.mlp_hidden)
          .Emplace<ReLU>()
          .Emplace<Linear>(config.mlp_hidden, config.classes);
      return std::make_unique<Model>(std::move(net),
                                     LossKind::kSoftmaxCrossEntropy);
    }
    case ModelConfig::Arch::kLinearReg: {
      const int64_t in = config.in_channels * config.height * config.width;
      auto net = std::make_unique<Sequential>();
      net->Emplace<Flatten>().Emplace<Linear>(in, config.classes);
      return std::make_unique<Model>(std::move(net), LossKind::kMse);
    }
    case ModelConfig::Arch::kLogistic: {
      const int64_t in = config.in_channels * config.height * config.width;
      auto net = std::make_unique<Sequential>();
      net->Emplace<Flatten>().Emplace<Linear>(in, config.classes);
      return std::make_unique<Model>(std::move(net),
                                     LossKind::kSoftmaxCrossEntropy);
    }
  }
  FEDADMM_CHECK_MSG(false, "unreachable model arch");
  return nullptr;
}

ModelConfig PaperCnn1Config() {
  ModelConfig c;
  c.arch = ModelConfig::Arch::kPaperCnn1;
  c.in_channels = 1;
  c.height = c.width = 28;
  c.classes = 10;
  return c;
}

ModelConfig PaperCnn2Config() {
  ModelConfig c;
  c.arch = ModelConfig::Arch::kPaperCnn2;
  c.in_channels = 3;
  c.height = c.width = 32;
  c.classes = 10;
  return c;
}

ModelConfig BenchCnnConfig(int64_t in_channels, int64_t hw) {
  ModelConfig c;
  c.arch = ModelConfig::Arch::kBenchCnn;
  c.in_channels = in_channels;
  c.height = c.width = hw;
  c.classes = 10;
  return c;
}

ModelConfig MlpConfig(int64_t in_features, int64_t hidden, int64_t classes) {
  ModelConfig c;
  c.arch = ModelConfig::Arch::kMlp;
  c.in_channels = 1;
  c.height = 1;
  c.width = in_features;
  c.mlp_hidden = hidden;
  c.classes = classes;
  return c;
}

ModelConfig LinearRegressionConfig(int64_t in_features, int64_t out_features) {
  ModelConfig c;
  c.arch = ModelConfig::Arch::kLinearReg;
  c.in_channels = 1;
  c.height = 1;
  c.width = in_features;
  c.classes = out_features;
  return c;
}

ModelConfig LogisticConfig(int64_t in_features, int64_t classes) {
  ModelConfig c;
  c.arch = ModelConfig::Arch::kLogistic;
  c.in_channels = 1;
  c.height = 1;
  c.width = in_features;
  c.classes = classes;
  return c;
}

}  // namespace fedadmm
