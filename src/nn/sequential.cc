#include "nn/sequential.h"

namespace fedadmm {

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    auto child = layer->Parameters();
    params.insert(params.end(), child.begin(), child.end());
  }
  return params;
}

Shape Sequential::OutputShape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->OutputShape(s);
  return s;
}

void Sequential::Initialize(Rng* rng) {
  for (auto& layer : layers_) layer->Initialize(rng);
}

std::unique_ptr<Layer> Sequential::Clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) copy->Add(layer->Clone());
  return copy;
}

std::string Sequential::name() const {
  std::string s = "Sequential(";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) s += ", ";
    s += layers_[i]->name();
  }
  s += ")";
  return s;
}

}  // namespace fedadmm
