#include "nn/activations.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace fedadmm {

Tensor ReLU::Forward(const Tensor& input) {
  Tensor out = input;
  mask_.resize(static_cast<size_t>(out.numel()));
  ops::ReluForward(out.data(), out.numel(), mask_.data());
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  FEDADMM_CHECK_MSG(static_cast<size_t>(grad_output.numel()) == mask_.size(),
                    "ReLU::Backward without matching Forward");
  Tensor grad_input(grad_output.shape());
  ops::ReluBackward(grad_output.data(), mask_.data(), grad_output.numel(),
                    grad_input.data());
  return grad_input;
}

std::unique_ptr<Layer> ReLU::Clone() const { return std::make_unique<ReLU>(); }

Tensor Tanh::Forward(const Tensor& input) {
  Tensor out = input;
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = std::tanh(p[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  FEDADMM_CHECK_MSG(grad_output.numel() == cached_output_.numel(),
                    "Tanh::Backward without matching Forward");
  Tensor grad_input(grad_output.shape());
  const float* g = grad_output.data();
  const float* y = cached_output_.data();
  float* out = grad_input.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    out[i] = g[i] * (1.0f - y[i] * y[i]);
  }
  return grad_input;
}

std::unique_ptr<Layer> Tanh::Clone() const { return std::make_unique<Tanh>(); }

}  // namespace fedadmm
