/// \file maxpool2d.h
/// \brief 2-D max pooling layer.

#ifndef FEDADMM_NN_MAXPOOL2D_H_
#define FEDADMM_NN_MAXPOOL2D_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace fedadmm {

/// \brief Max pooling over [N, C, H, W] with square window (no padding).
/// The paper's CNNs use 2x2 windows with stride 2.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int64_t kernel, int64_t stride = -1);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Shape OutputShape(const Shape& input) const override;
  std::unique_ptr<Layer> Clone() const override;
  std::string name() const override;

 private:
  int64_t kernel_;
  int64_t stride_;
  Shape cached_input_shape_;
  std::vector<int32_t> argmax_;
};

}  // namespace fedadmm

#endif  // FEDADMM_NN_MAXPOOL2D_H_
