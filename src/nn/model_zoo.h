/// \file model_zoo.h
/// \brief The architectures used in the paper and scaled bench variants.
///
/// Table II of the paper specifies two CNNs:
///   * CNN 1 — MNIST/FMNIST (1x28x28): conv 5x5 1->32 (pad 2), 2x2 max pool,
///     conv 5x5 32->64 (pad 2), 2x2 max pool, FC 3136->512, FC 512->10.
///     Exactly 1,663,370 parameters.
///   * CNN 2 — CIFAR-10 (3x32x32): conv 5x5 3->32 (pad 2), pool,
///     conv 5x5 32->64 (pad 2), pool, FC 4096->256, FC 256->10.
///     Exactly 1,105,098 parameters.
/// Both counts are asserted by tests and reported by bench_table2_models.
///
/// `MakeBenchCnn` builds the same two-conv architecture at reduced width and
/// resolution so that the paper's sweeps run in CPU-bench time; `MakeMlp` and
/// `MakeLinearRegression` support quick tests and convex validation problems.

#ifndef FEDADMM_NN_MODEL_ZOO_H_
#define FEDADMM_NN_MODEL_ZOO_H_

#include <memory>
#include <string>

#include "nn/model.h"

namespace fedadmm {

/// \brief Declarative model description, cheap to copy across threads.
struct ModelConfig {
  enum class Arch {
    kPaperCnn1,   ///< Table II CNN 1 (MNIST / FMNIST)
    kPaperCnn2,   ///< Table II CNN 2 (CIFAR-10)
    kBenchCnn,    ///< same family, scaled by the fields below
    kMlp,         ///< flatten -> hidden (ReLU) -> classes
    kLinearReg,   ///< single Linear layer with MSE loss
    kLogistic,    ///< single Linear layer with CE loss
  };

  Arch arch = Arch::kBenchCnn;

  // Input geometry (kBenchCnn / kMlp / kLogistic / kLinearReg).
  int64_t in_channels = 1;
  int64_t height = 12;
  int64_t width = 12;
  int64_t classes = 10;

  // kBenchCnn widths.
  int64_t conv1_channels = 6;
  int64_t conv2_channels = 12;
  int64_t hidden = 32;

  // kMlp hidden width; kLinearReg output dim = classes.
  int64_t mlp_hidden = 64;

  /// Human-readable description.
  std::string ToString() const;
};

/// \brief Builds an uninitialized model from the config (call
/// `model->Initialize(rng)` before use).
std::unique_ptr<Model> BuildModel(const ModelConfig& config);

/// Table II CNN 1 config (MNIST/FMNIST, 1,663,370 parameters).
ModelConfig PaperCnn1Config();

/// Table II CNN 2 config (CIFAR-10, 1,105,098 parameters).
ModelConfig PaperCnn2Config();

/// Scaled CNN for CPU benches: same 5x5-conv/pool/FC family.
ModelConfig BenchCnnConfig(int64_t in_channels = 1, int64_t hw = 12);

/// Small MLP for fast tests.
ModelConfig MlpConfig(int64_t in_features, int64_t hidden, int64_t classes);

/// Linear regression model (MSE loss) for convex validation problems.
ModelConfig LinearRegressionConfig(int64_t in_features, int64_t out_features);

/// Multinomial logistic regression (CE loss).
ModelConfig LogisticConfig(int64_t in_features, int64_t classes);

}  // namespace fedadmm

#endif  // FEDADMM_NN_MODEL_ZOO_H_
