/// End-to-end backpropagation validation: every architecture family in the
/// model zoo must agree with finite-difference gradients. This is the single
/// most important correctness property of the NN substrate — every federated
/// algorithm consumes these gradients.

#include <gtest/gtest.h>

#include "nn/model_zoo.h"
#include "nn/test_util.h"

namespace fedadmm {
namespace {

struct GradCheckCase {
  std::string name;
  ModelConfig config;
  Shape input_shape;
};

class ModelGradientSweep : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(ModelGradientSweep, BackpropMatchesFiniteDifferences) {
  const GradCheckCase& c = GetParam();
  Rng rng(0xFEED);
  auto model = BuildModel(c.config);
  model->Initialize(&rng);
  // Keep parameter count small enough for finite differencing.
  ASSERT_LT(model->NumParameters(), 4000) << c.name;

  Tensor x(c.input_shape);
  x.FillNormal(&rng, 0.0f, 0.7f);
  std::vector<int> labels;
  for (int64_t i = 0; i < c.input_shape.dim(0); ++i) {
    labels.push_back(static_cast<int>(i % c.config.classes));
  }
  EXPECT_LT(testing::CheckModelGradient(model.get(), x, labels), 0.06)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ModelGradientSweep,
    ::testing::Values(
        GradCheckCase{"tiny_cnn",
                      [] {
                        ModelConfig c = BenchCnnConfig(1, 8);
                        c.conv1_channels = 2;
                        c.conv2_channels = 3;
                        c.hidden = 8;
                        c.classes = 4;
                        return c;
                      }(),
                      Shape({2, 1, 8, 8})},
        GradCheckCase{"rgb_cnn",
                      [] {
                        ModelConfig c = BenchCnnConfig(3, 8);
                        c.conv1_channels = 2;
                        c.conv2_channels = 2;
                        c.hidden = 6;
                        c.classes = 3;
                        return c;
                      }(),
                      Shape({2, 3, 8, 8})},
        GradCheckCase{"mlp", MlpConfig(10, 12, 5), Shape({3, 10})},
        GradCheckCase{"logistic", LogisticConfig(9, 4), Shape({4, 9})}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) {
      return info.param.name;
    });

TEST(GradientCheckTest, MseModelGradient) {
  Rng rng(0xBEEF);
  auto model = BuildModel(LinearRegressionConfig(5, 2));
  model->Initialize(&rng);

  Tensor x(Shape({4, 5}));
  x.FillNormal(&rng);
  Tensor targets(Shape({4, 2}));
  targets.FillNormal(&rng);

  std::vector<float> params;
  model->GetParameters(&params);
  model->ZeroGrad();
  model->ForwardBackwardMse(x, targets);
  std::vector<float> analytic;
  model->GetGradients(&analytic);

  auto loss_at = [&](const std::vector<float>& p) {
    model->SetParameters(p);
    Tensor preds = model->Predict(x);
    MSELoss mse;
    return mse.Forward(preds, targets);
  };
  const auto numeric = testing::NumericGradient(loss_at, params);
  EXPECT_LT(testing::MaxGradientError(analytic, numeric), 0.02);
}

}  // namespace
}  // namespace fedadmm
