#include "nn/model_zoo.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fedadmm {
namespace {

// Table II of the paper: exact parameter counts of the two CNNs.
constexpr int64_t kCnn1Params = 1663370;
constexpr int64_t kCnn2Params = 1105098;

TEST(ModelZooTest, PaperCnn1MatchesTable2ParameterCount) {
  auto model = BuildModel(PaperCnn1Config());
  EXPECT_EQ(model->NumParameters(), kCnn1Params);
}

TEST(ModelZooTest, PaperCnn2MatchesTable2ParameterCount) {
  auto model = BuildModel(PaperCnn2Config());
  EXPECT_EQ(model->NumParameters(), kCnn2Params);
}

TEST(ModelZooTest, PaperCnn1ForwardShape) {
  Rng rng(1);
  auto model = BuildModel(PaperCnn1Config());
  model->Initialize(&rng);
  Tensor x(Shape({2, 1, 28, 28}));
  x.FillNormal(&rng);
  Tensor logits = model->Predict(x);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(ModelZooTest, PaperCnn2ForwardShape) {
  Rng rng(2);
  auto model = BuildModel(PaperCnn2Config());
  model->Initialize(&rng);
  Tensor x(Shape({1, 3, 32, 32}));
  x.FillNormal(&rng);
  Tensor logits = model->Predict(x);
  EXPECT_EQ(logits.shape(), Shape({1, 10}));
}

TEST(ModelZooTest, BenchCnnForwardShapeAndTrainability) {
  Rng rng(3);
  const ModelConfig config = BenchCnnConfig(1, 12);
  auto model = BuildModel(config);
  model->Initialize(&rng);
  Tensor x(Shape({4, 1, 12, 12}));
  x.FillNormal(&rng);
  EXPECT_EQ(model->Predict(x).shape(), Shape({4, 10}));

  // A couple of SGD steps must reduce the loss on a fixed batch.
  const std::vector<int> labels{0, 1, 2, 3};
  model->ZeroGrad();
  const double first = model->ForwardBackward(x, labels);
  model->SgdStep(0.05f);
  for (int i = 0; i < 20; ++i) {
    model->ZeroGrad();
    model->ForwardBackward(x, labels);
    model->SgdStep(0.05f);
  }
  model->ZeroGrad();
  const double last = model->ForwardBackward(x, labels);
  EXPECT_LT(last, first);
}

TEST(ModelZooTest, BenchCnnScalesWithConfig) {
  const auto small = BuildModel(BenchCnnConfig(1, 8));
  const auto big = BuildModel(BenchCnnConfig(1, 16));
  EXPECT_LT(small->NumParameters(), big->NumParameters());
}

TEST(ModelZooTest, MlpConfig) {
  auto model = BuildModel(MlpConfig(20, 16, 5));
  // 20*16+16 + 16*5+5 = 336 + 85 = 421.
  EXPECT_EQ(model->NumParameters(), 421);
  Rng rng(4);
  model->Initialize(&rng);
  Tensor x(Shape({3, 20}));
  x.FillNormal(&rng);
  EXPECT_EQ(model->Predict(x).shape(), Shape({3, 5}));
}

TEST(ModelZooTest, LinearRegressionUsesMse) {
  auto model = BuildModel(LinearRegressionConfig(6, 2));
  EXPECT_EQ(model->loss_kind(), LossKind::kMse);
  EXPECT_EQ(model->NumParameters(), 6 * 2 + 2);
}

TEST(ModelZooTest, LogisticUsesCrossEntropy) {
  auto model = BuildModel(LogisticConfig(6, 3));
  EXPECT_EQ(model->loss_kind(), LossKind::kSoftmaxCrossEntropy);
  EXPECT_EQ(model->NumParameters(), 6 * 3 + 3);
}

TEST(ModelZooTest, ConfigToStringNonEmpty) {
  EXPECT_FALSE(PaperCnn1Config().ToString().empty());
  EXPECT_FALSE(PaperCnn2Config().ToString().empty());
  EXPECT_FALSE(BenchCnnConfig().ToString().empty());
  EXPECT_FALSE(MlpConfig(4, 4, 2).ToString().empty());
  EXPECT_FALSE(LinearRegressionConfig(4, 1).ToString().empty());
  EXPECT_FALSE(LogisticConfig(4, 2).ToString().empty());
}

TEST(ModelZooTest, MlpAcceptsFourDimInput) {
  // MLP begins with Flatten, so image tensors work directly.
  Rng rng(5);
  ModelConfig config;
  config.arch = ModelConfig::Arch::kMlp;
  config.in_channels = 1;
  config.height = 4;
  config.width = 4;
  config.mlp_hidden = 8;
  config.classes = 3;
  auto model = BuildModel(config);
  model->Initialize(&rng);
  Tensor x(Shape({2, 1, 4, 4}));
  x.FillNormal(&rng);
  EXPECT_EQ(model->Predict(x).shape(), Shape({2, 3}));
}

}  // namespace
}  // namespace fedadmm
