/// \file test_util.h
/// \brief Shared helpers for neural-network tests: finite-difference
/// gradient checking of layers and models.

#ifndef FEDADMM_TESTS_NN_TEST_UTIL_H_
#define FEDADMM_TESTS_NN_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace fedadmm::testing {

/// Computes the numeric gradient of `f` at `x` via central differences.
inline std::vector<double> NumericGradient(
    const std::function<double(const std::vector<float>&)>& f,
    std::vector<float> x, double eps = 1e-3) {
  std::vector<double> grad(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double plus = f(x);
    x[i] = orig - static_cast<float>(eps);
    const double minus = f(x);
    x[i] = orig;
    grad[i] = (plus - minus) / (2.0 * eps);
  }
  return grad;
}

/// Maximum relative error between analytic and numeric gradients, with an
/// absolute floor to avoid division blow-ups near zero.
inline double MaxGradientError(std::span<const float> analytic,
                               const std::vector<double>& numeric,
                               double floor = 1e-2) {
  double worst = 0.0;
  for (size_t i = 0; i < analytic.size(); ++i) {
    const double denom =
        std::max({std::fabs(static_cast<double>(analytic[i])),
                  std::fabs(numeric[i]), floor});
    worst = std::max(
        worst,
        std::fabs(static_cast<double>(analytic[i]) - numeric[i]) / denom);
  }
  return worst;
}

/// Checks a classification model's flat-parameter gradient on one batch
/// against finite differences. Returns the max relative error.
inline double CheckModelGradient(Model* model, const Tensor& inputs,
                                 const std::vector<int>& labels) {
  std::vector<float> params;
  model->GetParameters(&params);
  model->ZeroGrad();
  model->ForwardBackward(inputs, labels);
  std::vector<float> analytic;
  model->GetGradients(&analytic);

  auto loss_at = [&](const std::vector<float>& p) {
    model->SetParameters(p);
    return model->EvalLoss(inputs, labels);
  };
  const std::vector<double> numeric = NumericGradient(loss_at, params);
  model->SetParameters(params);
  return MaxGradientError(analytic, numeric);
}

}  // namespace fedadmm::testing

#endif  // FEDADMM_TESTS_NN_TEST_UTIL_H_
