#include "nn/linear.h"

#include <gtest/gtest.h>

#include "nn/test_util.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

TEST(LinearTest, ForwardComputesAffineMap) {
  Linear layer(2, 3);
  // W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 1].
  layer.weight().value = Tensor(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  layer.bias().value = Tensor(Shape({3}), {0.5f, -0.5f, 1.0f});
  Tensor x(Shape({1, 2}), {10, 20});
  Tensor y = layer.Forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 50.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 109.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 171.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Linear layer(2, 2, /*with_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  layer.weight().value = Tensor(Shape({2, 2}), {1, 0, 0, 1});
  Tensor x(Shape({1, 2}), {3, 4});
  Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 4.0f);
}

TEST(LinearTest, ParameterCount) {
  Linear layer(5, 7);
  int64_t count = 0;
  for (auto* p : layer.Parameters()) count += p->numel();
  EXPECT_EQ(count, 5 * 7 + 7);
}

TEST(LinearTest, BackwardInputGradient) {
  Linear layer(2, 2);
  layer.weight().value = Tensor(Shape({2, 2}), {1, 2, 3, 4});
  layer.bias().value.Zero();
  Tensor x(Shape({1, 2}), {1, 1});
  layer.Forward(x);
  Tensor grad_out(Shape({1, 2}), {1, 0});
  Tensor grad_in = layer.Backward(grad_out);
  // dX = dY * W = [1, 0] * [[1,2],[3,4]] = [1, 2].
  EXPECT_FLOAT_EQ(grad_in.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad_in.at(0, 1), 2.0f);
}

TEST(LinearTest, BackwardAccumulatesParamGrads) {
  Linear layer(2, 1);
  layer.weight().value = Tensor(Shape({1, 2}), {1, 1});
  Tensor x(Shape({2, 2}), {1, 2, 3, 4});
  layer.Forward(x);
  Tensor grad_out(Shape({2, 1}), {1, 1});
  layer.Backward(grad_out);
  // dW = dYᵀX = [1+3, 2+4]; db = 2.
  EXPECT_FLOAT_EQ(layer.weight().grad[0], 4.0f);
  EXPECT_FLOAT_EQ(layer.weight().grad[1], 6.0f);
  EXPECT_FLOAT_EQ(layer.bias().grad[0], 2.0f);
  // Second backward accumulates (no implicit zeroing).
  layer.Forward(x);
  layer.Backward(grad_out);
  EXPECT_FLOAT_EQ(layer.weight().grad[0], 8.0f);
}

TEST(LinearTest, InitializeHeScaling) {
  Rng rng(42);
  Linear layer(1000, 4);
  layer.Initialize(&rng);
  const double norm_sq =
      vec::SquaredL2Norm(std::span<const float>(layer.weight().value.vec()));
  // He: each weight ~ N(0, 2/1000); expected sum of squares = 4000 * 0.002 = 8.
  EXPECT_NEAR(norm_sq, 8.0, 2.0);
  EXPECT_FLOAT_EQ(layer.bias().value[0], 0.0f);
}

TEST(LinearTest, CloneCopiesParametersNotCaches) {
  Rng rng(1);
  Linear layer(3, 2);
  layer.Initialize(&rng);
  auto clone = layer.Clone();
  auto* copy = dynamic_cast<Linear*>(clone.get());
  ASSERT_NE(copy, nullptr);
  EXPECT_TRUE(copy->weight().value.Equals(layer.weight().value));
  // Mutating the clone does not affect the original.
  copy->weight().value.Fill(0.0f);
  EXPECT_FALSE(copy->weight().value.Equals(layer.weight().value));
}

TEST(LinearTest, OutputShape) {
  Linear layer(6, 4);
  EXPECT_EQ(layer.OutputShape(Shape({10, 6})), Shape({10, 4}));
}

TEST(LinearTest, NameMentionsDims) {
  EXPECT_EQ(Linear(3, 5).name(), "Linear(3->5)");
}

TEST(LinearTest, GradientCheckAgainstFiniteDifferences) {
  Rng rng(7);
  auto net = std::make_unique<Sequential>();
  net->Emplace<Linear>(4, 3);
  Model model(std::move(net), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({5, 4}));
  x.FillNormal(&rng);
  const std::vector<int> labels{0, 1, 2, 1, 0};
  EXPECT_LT(testing::CheckModelGradient(&model, x, labels), 0.05);
}

}  // namespace
}  // namespace fedadmm
