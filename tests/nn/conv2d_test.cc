#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include "nn/flatten.h"
#include "nn/test_util.h"

namespace fedadmm {
namespace {

/// Reference direct convolution (cross-correlation) for validation.
Tensor NaiveConv(const Tensor& input, const Tensor& weight,
                 const Tensor& bias, int64_t stride, int64_t pad) {
  const int64_t n = input.shape().dim(0), ic = input.shape().dim(1);
  const int64_t h = input.shape().dim(2), w = input.shape().dim(3);
  const int64_t oc = weight.shape().dim(0), k = weight.shape().dim(2);
  const int64_t oh = (h + 2 * pad - k) / stride + 1;
  const int64_t ow = (w + 2 * pad - k) / stride + 1;
  Tensor out(Shape({n, oc, oh, ow}));
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t o = 0; o < oc; ++o) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          double acc = bias[o];
          for (int64_t c = 0; c < ic; ++c) {
            for (int64_t ky = 0; ky < k; ++ky) {
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t iy = y * stride - pad + ky;
                const int64_t ix = x * stride - pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(input.at(img, c, iy, ix)) *
                       weight.at(o, c, ky, kx);
              }
            }
          }
          out.at(img, o, y, x) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

TEST(Conv2dTest, OutputShapeSameConv) {
  Conv2d conv(1, 32, 5, 1, 2);
  EXPECT_EQ(conv.OutputShape(Shape({4, 1, 28, 28})), Shape({4, 32, 28, 28}));
}

TEST(Conv2dTest, OutputShapeNoPad) {
  Conv2d conv(3, 8, 3);
  EXPECT_EQ(conv.OutputShape(Shape({2, 3, 10, 10})), Shape({2, 8, 8, 8}));
}

TEST(Conv2dTest, ParameterCount) {
  Conv2d conv(3, 32, 5);
  int64_t count = 0;
  for (auto* p : conv.Parameters()) count += p->numel();
  EXPECT_EQ(count, 32 * 3 * 5 * 5 + 32);
}

TEST(Conv2dTest, IdentityKernelPassthrough) {
  Conv2d conv(1, 1, 1);
  conv.weight().value = Tensor(Shape({1, 1, 1, 1}), {1.0f});
  conv.bias().value.Zero();
  Tensor x(Shape({1, 1, 3, 3}), {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.Forward(x);
  EXPECT_TRUE(y.AllClose(x));
}

class Conv2dForwardSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Conv2dForwardSweep, MatchesNaiveConvolution) {
  const auto [ic, oc, hw, kernel, pad] = GetParam();
  Rng rng(static_cast<uint64_t>(ic * 1000 + oc * 100 + hw * 10 + kernel));
  Conv2d conv(ic, oc, kernel, 1, pad);
  conv.Initialize(&rng);
  Tensor x(Shape({2, ic, hw, hw}));
  x.FillNormal(&rng);
  Tensor got = conv.Forward(x);
  Tensor want = NaiveConv(x, conv.weight().value, conv.bias().value, 1, pad);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_TRUE(got.AllClose(want, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Conv2dForwardSweep,
    ::testing::Values(std::make_tuple(1, 4, 8, 3, 0),
                      std::make_tuple(1, 4, 8, 3, 1),
                      std::make_tuple(3, 2, 6, 5, 2),
                      std::make_tuple(2, 3, 7, 3, 1),
                      std::make_tuple(1, 8, 12, 5, 2)));

TEST(Conv2dTest, BackwardGradientCheck) {
  Rng rng(11);
  auto net = std::make_unique<Sequential>();
  net->Emplace<Conv2d>(1, 2, 3, 1, 1);
  net->Emplace<Flatten>();
  Model model(std::move(net), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({2, 1, 4, 4}));
  x.FillNormal(&rng, 0.0f, 0.5f);
  // Flatten(2x2x4x4) -> 32 logits; use labels < 32.
  const std::vector<int> labels{3, 17};
  EXPECT_LT(testing::CheckModelGradient(&model, x, labels), 0.05);
}

TEST(Conv2dTest, StridedConvolutionMatchesNaive) {
  Rng rng(13);
  Conv2d conv(2, 3, 3, /*stride=*/2, /*padding=*/1);
  conv.Initialize(&rng);
  Tensor x(Shape({1, 2, 9, 9}));
  x.FillNormal(&rng);
  Tensor got = conv.Forward(x);
  Tensor want = NaiveConv(x, conv.weight().value, conv.bias().value, 2, 1);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_TRUE(got.AllClose(want, 1e-3f));
}

TEST(Conv2dTest, CloneIsDeep) {
  Rng rng(17);
  Conv2d conv(1, 2, 3);
  conv.Initialize(&rng);
  auto clone_layer = conv.Clone();
  auto* clone = dynamic_cast<Conv2d*>(clone_layer.get());
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->weight().value.Equals(conv.weight().value));
  clone->weight().value.Fill(0.0f);
  EXPECT_FALSE(clone->weight().value.Equals(conv.weight().value));
}

TEST(Conv2dTest, BiasAppliedPerChannel) {
  Conv2d conv(1, 2, 1);
  conv.weight().value = Tensor(Shape({2, 1, 1, 1}), {0.0f, 0.0f});
  conv.bias().value = Tensor(Shape({2}), {1.5f, -2.5f});
  Tensor x(Shape({1, 1, 2, 2}), {0, 0, 0, 0});
  Tensor y = conv.Forward(x);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y.at(0, 0, i / 2, i % 2), 1.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1, i / 2, i % 2), -2.5f);
  }
}

}  // namespace
}  // namespace fedadmm
