#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "nn/test_util.h"

namespace fedadmm {
namespace {

TEST(MaxPool2dTest, OutputShape) {
  MaxPool2d pool(2);
  EXPECT_EQ(pool.OutputShape(Shape({4, 3, 28, 28})), Shape({4, 3, 14, 14}));
}

TEST(MaxPool2dTest, DefaultStrideEqualsKernel) {
  MaxPool2d pool(3);
  EXPECT_EQ(pool.OutputShape(Shape({1, 1, 9, 9})), Shape({1, 1, 3, 3}));
}

TEST(MaxPool2dTest, ForwardSelectsWindowMax) {
  MaxPool2d pool(2);
  Tensor x(Shape({1, 1, 2, 4}), {1, 5, 2, 0,  //
                                 3, 4, 8, 6});
  Tensor y = pool.Forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 8.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToMaxima) {
  MaxPool2d pool(2);
  Tensor x(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  pool.Forward(x);
  Tensor grad_out(Shape({1, 1, 1, 1}), {10.0f});
  Tensor grad_in = pool.Backward(grad_out);
  EXPECT_FLOAT_EQ(grad_in.at(0, 0, 1, 1), 10.0f);
  EXPECT_FLOAT_EQ(grad_in.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPool2dTest, GradientCheckThroughPool) {
  Rng rng(3);
  auto net = std::make_unique<Sequential>();
  net->Emplace<MaxPool2d>(2);
  net->Emplace<Flatten>();
  Model model(std::move(net), LossKind::kSoftmaxCrossEntropy);
  // No parameters; check input handling doesn't crash and loss is finite.
  Tensor x(Shape({2, 1, 4, 4}));
  x.FillNormal(&rng);
  const double loss = model.ForwardBackward(x, {0, 3});
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x(Shape({5}), {-2, -1, 0, 1, 2});
  Tensor y = relu.Forward(x);
  EXPECT_EQ(y.vec(), (Tensor::Buffer{0, 0, 0, 1, 2}));
}

TEST(ReLUTest, BackwardMasks) {
  ReLU relu;
  Tensor x(Shape({4}), {-1, 2, -3, 4});
  relu.Forward(x);
  Tensor g(Shape({4}), {10, 20, 30, 40});
  Tensor gx = relu.Backward(g);
  EXPECT_EQ(gx.vec(), (Tensor::Buffer{0, 20, 0, 40}));
}

TEST(ReLUTest, ZeroIsInactive) {
  // Subgradient choice at 0: this implementation uses 0 (strict x > 0).
  ReLU relu;
  Tensor x(Shape({1}), {0.0f});
  relu.Forward(x);
  Tensor g(Shape({1}), {5.0f});
  EXPECT_FLOAT_EQ(relu.Backward(g)[0], 0.0f);
}

TEST(TanhTest, ForwardValues) {
  Tanh tanh_layer;
  Tensor x(Shape({3}), {-100, 0, 100});
  Tensor y = tanh_layer.Forward(x);
  EXPECT_NEAR(y[0], -1.0f, 1e-5f);
  EXPECT_NEAR(y[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y[2], 1.0f, 1e-5f);
}

TEST(TanhTest, BackwardDerivative) {
  Tanh tanh_layer;
  Tensor x(Shape({1}), {0.5f});
  Tensor y = tanh_layer.Forward(x);
  Tensor g(Shape({1}), {1.0f});
  Tensor gx = tanh_layer.Backward(g);
  EXPECT_NEAR(gx[0], 1.0f - y[0] * y[0], 1e-6f);
}

TEST(FlattenTest, ForwardAndBackwardShapes) {
  Flatten flatten;
  Tensor x(Shape({2, 3, 4, 5}));
  Tensor y = flatten.Forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor g(Shape({2, 60}));
  Tensor gx = flatten.Backward(g);
  EXPECT_EQ(gx.shape(), Shape({2, 3, 4, 5}));
}

TEST(FlattenTest, PreservesValues) {
  Flatten flatten;
  Tensor x(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  Tensor y = flatten.Forward(x);
  EXPECT_EQ(y.vec(), x.vec());
}

TEST(LayerCloneTest, StatelessLayersClone) {
  EXPECT_NE(ReLU().Clone(), nullptr);
  EXPECT_NE(Tanh().Clone(), nullptr);
  EXPECT_NE(Flatten().Clone(), nullptr);
  EXPECT_NE(MaxPool2d(2).Clone(), nullptr);
}

}  // namespace
}  // namespace fedadmm
