#include "nn/losses.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/test_util.h"

namespace fedadmm {
namespace {

TEST(CrossEntropyTest, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape({2, 4}), 0.0f);
  const double value = loss.Forward(logits, {0, 3});
  EXPECT_NEAR(value, std::log(4.0), 1e-6);
}

TEST(CrossEntropyTest, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape({1, 3}), {20.0f, 0.0f, 0.0f});
  EXPECT_LT(loss.Forward(logits, {0}), 1e-6);
}

TEST(CrossEntropyTest, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape({1, 3}), {20.0f, 0.0f, 0.0f});
  EXPECT_GT(loss.Forward(logits, {1}), 10.0);
}

TEST(CrossEntropyTest, BackwardIsSoftmaxMinusOneHotOverN) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape({2, 2}), {1.0f, 1.0f, 2.0f, 0.0f});
  loss.Forward(logits, {0, 1});
  Tensor grad = loss.Backward();
  // Row 0: softmax = [0.5, 0.5]; grad = ([0.5,0.5]-[1,0])/2 = [-0.25, 0.25].
  EXPECT_NEAR(grad.at(0, 0), -0.25f, 1e-5f);
  EXPECT_NEAR(grad.at(0, 1), 0.25f, 1e-5f);
  // Gradient rows sum to zero (softmax simplex property).
  EXPECT_NEAR(grad.at(1, 0) + grad.at(1, 1), 0.0f, 1e-6f);
}

TEST(CrossEntropyTest, GradMatchesFiniteDifference) {
  Rng rng(5);
  Tensor logits(Shape({3, 5}));
  logits.FillNormal(&rng);
  const std::vector<int> labels{1, 4, 0};

  SoftmaxCrossEntropyLoss loss;
  loss.Forward(logits, labels);
  Tensor analytic = loss.Backward();

  auto f = [&](const std::vector<float>& flat) {
    SoftmaxCrossEntropyLoss l2;
    return l2.Forward(Tensor(logits.shape(), flat), labels);
  };
  const auto numeric = testing::NumericGradient(
      f, {logits.vec().begin(), logits.vec().end()});
  EXPECT_LT(testing::MaxGradientError(analytic.vec(), numeric), 0.02);
}

TEST(CrossEntropyTest, AccuracyCountsArgmaxMatches) {
  Tensor logits(Shape({3, 3}), {5, 0, 0,  //
                                0, 5, 0,  //
                                0, 5, 0});
  EXPECT_DOUBLE_EQ(
      SoftmaxCrossEntropyLoss::Accuracy(logits, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(SoftmaxCrossEntropyLoss::Accuracy(logits, {0, 1, 1}), 1.0);
}

TEST(CrossEntropyTest, HandlesExtremeLogits) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape({1, 2}), {-1000.0f, 1000.0f});
  const double value = loss.Forward(logits, {0});
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_GT(value, 20.0);
}

TEST(MseTest, ZeroResidualZeroLoss) {
  MSELoss loss;
  Tensor pred(Shape({2, 3}), 1.0f);
  Tensor target(Shape({2, 3}), 1.0f);
  EXPECT_DOUBLE_EQ(loss.Forward(pred, target), 0.0);
}

TEST(MseTest, KnownValue) {
  MSELoss loss;
  Tensor pred(Shape({2, 1}), {1.0f, 3.0f});
  Tensor target(Shape({2, 1}), {0.0f, 0.0f});
  // 0.5 * (1 + 9) / 2 = 2.5.
  EXPECT_DOUBLE_EQ(loss.Forward(pred, target), 2.5);
}

TEST(MseTest, BackwardIsResidualOverN) {
  MSELoss loss;
  Tensor pred(Shape({2, 1}), {1.0f, 3.0f});
  Tensor target(Shape({2, 1}), {0.0f, 1.0f});
  loss.Forward(pred, target);
  Tensor grad = loss.Backward();
  EXPECT_FLOAT_EQ(grad[0], 0.5f);
  EXPECT_FLOAT_EQ(grad[1], 1.0f);
}

TEST(MseTest, GradMatchesFiniteDifference) {
  Rng rng(9);
  Tensor pred(Shape({4, 3}));
  pred.FillNormal(&rng);
  Tensor target(Shape({4, 3}));
  target.FillNormal(&rng);

  MSELoss loss;
  loss.Forward(pred, target);
  Tensor analytic = loss.Backward();
  auto f = [&](const std::vector<float>& flat) {
    MSELoss l2;
    return l2.Forward(Tensor(pred.shape(), flat), target);
  };
  const auto numeric = testing::NumericGradient(
      f, {pred.vec().begin(), pred.vec().end()});
  EXPECT_LT(testing::MaxGradientError(analytic.vec(), numeric), 0.02);
}

}  // namespace
}  // namespace fedadmm
