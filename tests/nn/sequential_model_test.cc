#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "nn/test_util.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

std::unique_ptr<Sequential> SmallNet() {
  auto net = std::make_unique<Sequential>();
  net->Emplace<Linear>(4, 6).Emplace<ReLU>().Emplace<Linear>(6, 3);
  return net;
}

TEST(SequentialTest, ChainsOutputShapes) {
  auto net = SmallNet();
  EXPECT_EQ(net->OutputShape(Shape({7, 4})), Shape({7, 3}));
  EXPECT_EQ(net->size(), 3);
}

TEST(SequentialTest, CollectsParametersInOrder) {
  auto net = SmallNet();
  auto params = net->Parameters();
  ASSERT_EQ(params.size(), 4u);  // two weights, two biases
  EXPECT_EQ(params[0]->numel(), 24);
  EXPECT_EQ(params[1]->numel(), 6);
  EXPECT_EQ(params[2]->numel(), 18);
  EXPECT_EQ(params[3]->numel(), 3);
}

TEST(SequentialTest, CloneProducesIdenticalForward) {
  Rng rng(21);
  auto net = SmallNet();
  net->Initialize(&rng);
  auto clone = net->Clone();
  Tensor x(Shape({2, 4}));
  x.FillNormal(&rng);
  Tensor y1 = net->Forward(x);
  Tensor y2 = clone->Forward(x);
  EXPECT_TRUE(y1.AllClose(y2, 1e-7f));
}

TEST(ModelTest, ParameterRoundTrip) {
  Rng rng(23);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  EXPECT_EQ(model.NumParameters(), 24 + 6 + 18 + 3);

  std::vector<float> params;
  model.GetParameters(&params);
  ASSERT_EQ(static_cast<int64_t>(params.size()), model.NumParameters());

  // Perturb, set, read back.
  for (auto& v : params) v += 1.0f;
  model.SetParameters(params);
  std::vector<float> readback;
  model.GetParameters(&readback);
  EXPECT_EQ(params, readback);
}

TEST(ModelTest, SetParametersChangesForward) {
  Rng rng(25);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({1, 4}));
  x.FillNormal(&rng);
  Tensor y1 = model.Predict(x);
  std::vector<float> zeros(static_cast<size_t>(model.NumParameters()), 0.0f);
  model.SetParameters(zeros);
  Tensor y2 = model.Predict(x);
  for (int64_t i = 0; i < y2.numel(); ++i) EXPECT_FLOAT_EQ(y2[i], 0.0f);
  EXPECT_FALSE(y1.AllClose(y2));
}

TEST(ModelTest, ZeroGradClearsAccumulators) {
  Rng rng(27);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({3, 4}));
  x.FillNormal(&rng);
  model.ForwardBackward(x, {0, 1, 2});
  std::vector<float> grads;
  model.GetGradients(&grads);
  EXPECT_GT(vec::L2Norm(grads), 0.0);
  model.ZeroGrad();
  model.GetGradients(&grads);
  EXPECT_EQ(vec::L2Norm(grads), 0.0);
}

TEST(ModelTest, GradientsAccumulateAcrossBatches) {
  Rng rng(29);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({2, 4}));
  x.FillNormal(&rng);
  const std::vector<int> labels{0, 1};

  model.ZeroGrad();
  model.ForwardBackward(x, labels);
  std::vector<float> once;
  model.GetGradients(&once);

  model.ZeroGrad();
  model.ForwardBackward(x, labels);
  model.ForwardBackward(x, labels);
  std::vector<float> twice;
  model.GetGradients(&twice);

  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4f);
  }
}

TEST(ModelTest, SgdStepReducesLossOnFixedBatch) {
  Rng rng(31);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({8, 4}));
  x.FillNormal(&rng);
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % 3);

  double first = 0.0, last = 0.0;
  for (int step = 0; step < 50; ++step) {
    model.ZeroGrad();
    const double loss = model.ForwardBackward(x, labels);
    if (step == 0) first = loss;
    last = loss;
    model.SgdStep(0.1f);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(ModelTest, CloneSharesNothing) {
  Rng rng(33);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  auto clone = model.Clone();
  std::vector<float> zeros(static_cast<size_t>(model.NumParameters()), 0.0f);
  clone->SetParameters(zeros);
  std::vector<float> original;
  model.GetParameters(&original);
  EXPECT_GT(vec::L2Norm(original), 0.0);
}

TEST(ModelTest, EvalLossReportsAccuracy) {
  Rng rng(35);
  Model model(SmallNet(), LossKind::kSoftmaxCrossEntropy);
  model.Initialize(&rng);
  Tensor x(Shape({4, 4}));
  x.FillNormal(&rng);
  double acc = -1.0;
  const double loss = model.EvalLoss(x, {0, 1, 2, 0}, &acc);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(ModelTest, MseModelTrainsLinearMap) {
  Rng rng(37);
  auto net = std::make_unique<Sequential>();
  net->Emplace<Linear>(2, 1);
  Model model(std::move(net), LossKind::kMse);
  model.Initialize(&rng);

  // Fit y = x0 + 2*x1 by full-batch gradient descent.
  Tensor x(Shape({16, 2}));
  x.FillNormal(&rng);
  Tensor y(Shape({16, 1}));
  for (int i = 0; i < 16; ++i) {
    y[i] = x.at(i, 0) + 2.0f * x.at(i, 1);
  }
  double loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    model.ZeroGrad();
    loss = model.ForwardBackwardMse(x, y);
    model.SgdStep(0.2f);
  }
  EXPECT_LT(loss, 1e-4);
}

}  // namespace
}  // namespace fedadmm
