// AxpyManySharded: the sharded server's hierarchical reduce. W = 1 must
// be bitwise identical to the flat AxpyMany path; W > 1 must be bitwise
// reproducible across thread counts (fixed per-shard partials combined
// in shard order), match a double-precision reference within float
// tolerance, and leave signed zeros untouched for empty shards.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/vec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedadmm {
namespace {

std::vector<std::vector<float>> RandomVectors(Rng* rng, int count,
                                              size_t dim) {
  std::vector<std::vector<float>> xs(static_cast<size_t>(count));
  for (auto& x : xs) {
    x.resize(dim);
    for (float& v : x) {
      v = static_cast<float>(rng->Uniform(-2.0, 2.0));
    }
  }
  return xs;
}

std::vector<std::span<const float>> Spans(
    const std::vector<std::vector<float>>& xs) {
  std::vector<std::span<const float>> spans;
  spans.reserve(xs.size());
  for (const auto& x : xs) spans.emplace_back(x.data(), x.size());
  return spans;
}

std::vector<int> ModuloShards(int count, int num_shards) {
  std::vector<int> shards(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    shards[static_cast<size_t>(i)] = i % num_shards;
  }
  return shards;
}

TEST(ShardedReduceTest, WEqualsOneIsBitwiseIdenticalToAxpyMany) {
  Rng rng(0xA11CEu);
  for (size_t dim : std::vector<size_t>{1, 7, 1000, vec::kReduceBlock + 13}) {
    const auto xs = RandomVectors(&rng, 9, dim);
    std::vector<float> flat(dim, 0.5f), sharded(dim, 0.5f);
    vec::AxpyMany(0.375f, Spans(xs), flat);
    vec::AxpyManySharded(0.375f, Spans(xs), ModuloShards(9, 1),
                         /*num_shards=*/1, sharded);
    EXPECT_EQ(flat, sharded) << "dim " << dim;
  }
}

TEST(ShardedReduceTest, FixedWIsBitwiseStableAcrossThreadCounts) {
  Rng rng(0xB0B5u);
  const size_t dim = 3 * vec::kReduceBlock + 77;
  const auto xs = RandomVectors(&rng, 24, dim);
  const auto spans = Spans(xs);
  for (int w : {2, 4, 7}) {
    const std::vector<int> shards = ModuloShards(24, w);
    std::vector<float> serial(dim, -1.0f);
    vec::AxpyManySharded(0.125f, spans, shards, w, serial,
                         /*pool=*/nullptr);
    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      std::vector<float> parallel(dim, -1.0f);
      vec::AxpyManySharded(0.125f, spans, shards, w, parallel, &pool);
      ASSERT_EQ(parallel, serial) << "W=" << w << " threads=" << threads;
    }
  }
}

TEST(ShardedReduceTest, MatchesDoublePrecisionReferenceWithinTolerance) {
  Rng rng(0xC4FEu);
  const size_t dim = 513;
  const int count = 40;
  const auto xs = RandomVectors(&rng, count, dim);
  std::vector<double> reference(dim, 0.25);
  for (const auto& x : xs) {
    for (size_t i = 0; i < dim; ++i) {
      reference[i] += 0.05 * static_cast<double>(x[i]);
    }
  }
  for (int w : {1, 2, 4, 8}) {
    std::vector<float> y(dim, 0.25f);
    vec::AxpyManySharded(0.05f, Spans(xs), ModuloShards(count, w), w, y);
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_NEAR(static_cast<double>(y[i]), reference[i], 1e-4)
          << "W=" << w << " index " << i;
    }
  }
}

TEST(ShardedReduceTest, EmptyShardsDoNotPerturbSignedZeros) {
  // y starts at -0.0 and every shard is empty: a naive combine that adds
  // all W zero partials would flip -0.0 to +0.0 (-0.0 + 0.0 == +0.0).
  // Empty shards must contribute nothing at all.
  std::vector<float> y = {-0.0f, -0.0f, -0.0f};
  vec::AxpyManySharded(1.0f, {}, {}, /*num_shards=*/8, y);
  for (float v : y) {
    EXPECT_TRUE(std::signbit(v)) << "-0.0 flipped to +0.0";
  }
  // A *non-empty* shard behaves exactly like the flat path — its +0.0
  // partial flips the sign there too, so sharded and flat stay bitwise
  // consistent on zero inputs.
  const std::vector<std::vector<float>> xs = {{0.0f, 0.0f, 0.0f}};
  std::vector<float> flat = {-0.0f, -0.0f, -0.0f};
  std::vector<float> sharded = {-0.0f, -0.0f, -0.0f};
  vec::AxpyMany(1.0f, Spans(xs), flat);
  vec::AxpyManySharded(1.0f, Spans(xs), {0}, /*num_shards=*/8, sharded);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(std::signbit(sharded[i]), std::signbit(flat[i])) << i;
    EXPECT_EQ(sharded[i], flat[i]);
  }
}

TEST(ShardedReduceTest, EmptyInputLeavesTargetUntouched) {
  std::vector<float> y = {1.0f, 2.0f};
  vec::AxpyManySharded(3.0f, {}, {}, /*num_shards=*/4, y);
  EXPECT_EQ(y, (std::vector<float>{1.0f, 2.0f}));
}

TEST(ShardedReduceTest, ShardMajorityImbalanceStillCoversAllVectors) {
  // All vectors on one shard, the rest empty: result equals the flat sum.
  Rng rng(0xD00Du);
  const auto xs = RandomVectors(&rng, 6, 129);
  std::vector<float> flat(129, 0.0f), skewed(129, 0.0f);
  vec::AxpyMany(1.0f, Spans(xs), flat);
  vec::AxpyManySharded(1.0f, Spans(xs), std::vector<int>(6, 2),
                       /*num_shards=*/5, skewed);
  // One shard's partial in list order, added once to a zero target: the
  // float-op sequence per element matches the flat path exactly except for
  // the final (+ partial) regrouping; with a zero target the two agree
  // bitwise only when addition to 0 is exact — assert tolerance instead.
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(skewed[i], flat[i], 1e-5f) << "index " << i;
  }
}

}  // namespace
}  // namespace fedadmm
