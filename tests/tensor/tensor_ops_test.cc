#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace fedadmm {
namespace {

/// Reference O(mkn) matmul for validation.
void NaiveMatMul(const std::vector<float>& a, const std::vector<float>& b,
                 std::vector<float>* c, int64_t m, int64_t k, int64_t n) {
  c->assign(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[static_cast<size_t>(i * k + p)]) *
               b[static_cast<size_t>(p * n + j)];
      }
      (*c)[static_cast<size_t>(i * n + j)] = static_cast<float>(acc);
    }
  }
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Normal(0.0, 1.0));
  return v;
}

TEST(MatMulTest, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4);
  ops::MatMul(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

class MatMulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatMulSweep, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
  const auto b = RandomVec(static_cast<size_t>(k * n), &rng);
  std::vector<float> got(static_cast<size_t>(m * n));
  std::vector<float> want;
  ops::MatMul(a.data(), b.data(), got.data(), m, k, n);
  NaiveMatMul(a, b, &want, m, k, n);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatMulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 31, 13),
                      std::make_tuple(64, 65, 66), std::make_tuple(1, 128, 1),
                      std::make_tuple(100, 1, 100)));

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Rng rng(3);
  const int m = 7, k = 11, n = 5;
  // A stored [k, m]; logical product Aᵀ B.
  const auto a = RandomVec(static_cast<size_t>(k * m), &rng);
  const auto b = RandomVec(static_cast<size_t>(k * n), &rng);
  std::vector<float> a_t(static_cast<size_t>(m * k));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < m; ++j) {
      a_t[static_cast<size_t>(j * k + i)] = a[static_cast<size_t>(i * m + j)];
    }
  }
  std::vector<float> want;
  NaiveMatMul(a_t, b, &want, m, k, n);
  std::vector<float> got(static_cast<size_t>(m * n));
  ops::MatMulTransA(a.data(), b.data(), got.data(), m, k, n);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4f);
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Rng rng(4);
  const int m = 6, k = 9, n = 4;
  const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
  // B stored [n, k]; logical product A Bᵀ.
  const auto b = RandomVec(static_cast<size_t>(n * k), &rng);
  std::vector<float> b_t(static_cast<size_t>(k * n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      b_t[static_cast<size_t>(j * n + i)] = b[static_cast<size_t>(i * k + j)];
    }
  }
  std::vector<float> want;
  NaiveMatMul(a, b_t, &want, m, k, n);
  std::vector<float> got(static_cast<size_t>(m * n));
  ops::MatMulTransB(a.data(), b.data(), got.data(), m, k, n);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4f);
}

TEST(MatMulTest, AccumAddsOntoExisting) {
  std::vector<float> a{1, 0, 0, 1};  // identity
  std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c{1, 1, 1, 1};
  ops::MatMulAccum(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{6, 7, 8, 9}));
}

TEST(ConvOutDimTest, Formula) {
  EXPECT_EQ(ops::ConvOutDim(28, 5, 1, 2), 28);  // "same" conv
  EXPECT_EQ(ops::ConvOutDim(28, 2, 2, 0), 14);  // 2x2 pool
  EXPECT_EQ(ops::ConvOutDim(5, 3, 1, 0), 3);
  EXPECT_EQ(ops::ConvOutDim(5, 3, 2, 0), 2);
}

TEST(Im2ColTest, IdentityKernelNoPad) {
  // 1x1 kernel: columns == image.
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(4);
  ops::Im2Col(img.data(), 1, 2, 2, 1, 1, 1, 1, 0, 0, cols.data());
  EXPECT_EQ(cols, img);
}

TEST(Im2ColTest, KnownExpansion) {
  // 1 channel, 3x3 image, 2x2 kernel, stride 1, no pad -> 4 rows x 4 cols.
  std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4);
  ops::Im2Col(img.data(), 1, 3, 3, 2, 2, 1, 1, 0, 0, cols.data());
  // Row (kh=0, kw=0): top-left of each 2x2 window.
  EXPECT_EQ(std::vector<float>(cols.begin(), cols.begin() + 4),
            (std::vector<float>{1, 2, 4, 5}));
  // Row (kh=1, kw=1): bottom-right of each window.
  EXPECT_EQ(std::vector<float>(cols.begin() + 12, cols.begin() + 16),
            (std::vector<float>{5, 6, 8, 9}));
}

TEST(Im2ColTest, PaddingProducesZeros) {
  std::vector<float> img{1, 2, 3, 4};
  // 3x3 kernel, pad 1 -> output 2x2, first row entry for (0,0) window is 0.
  std::vector<float> cols(9 * 4);
  ops::Im2Col(img.data(), 1, 2, 2, 3, 3, 1, 1, 1, 1, cols.data());
  EXPECT_EQ(cols[0], 0.0f);  // (kh=0,kw=0) at output (0,0): off-image
  // Center tap (kh=1, kw=1) equals the image itself.
  const size_t center = 4 * 4;
  EXPECT_EQ(std::vector<float>(cols.begin() + center,
                               cols.begin() + center + 4),
            img);
}

TEST(Col2ImTest, RoundTripAccumulatesOverlaps) {
  // Col2Im(Im2Col(img)) multiplies each pixel by its window membership
  // count. For 2x2 kernel stride 1 on 3x3: corners x1, edges x2, center x4.
  std::vector<float> img{1, 1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<float> cols(4 * 4);
  ops::Im2Col(img.data(), 1, 3, 3, 2, 2, 1, 1, 0, 0, cols.data());
  std::vector<float> back(9, 0.0f);
  ops::Col2Im(cols.data(), 1, 3, 3, 2, 2, 1, 1, 0, 0, back.data());
  EXPECT_EQ(back, (std::vector<float>{1, 2, 1, 2, 4, 2, 1, 2, 1}));
}

TEST(MaxPoolTest, ForwardPicksMaxAndArgmax) {
  // 1x1x4x4, 2x2 pool stride 2.
  std::vector<float> in{1, 2, 5, 6,   //
                        3, 4, 7, 8,   //
                        9, 10, 13, 14,  //
                        11, 12, 15, 16};
  std::vector<float> out(4);
  std::vector<int32_t> argmax(4);
  ops::MaxPool2dForward(in.data(), 1, 1, 4, 4, 2, 2, out.data(),
                        argmax.data());
  EXPECT_EQ(out, (std::vector<float>{4, 8, 12, 16}));
  EXPECT_EQ(argmax, (std::vector<int32_t>{5, 7, 13, 15}));
}

TEST(MaxPoolTest, BackwardScattersToArgmax) {
  std::vector<float> grad_out{1, 2, 3, 4};
  std::vector<int32_t> argmax{5, 7, 13, 15};
  std::vector<float> grad_in(16, 0.0f);
  ops::MaxPool2dBackward(grad_out.data(), argmax.data(), 4, grad_in.data());
  EXPECT_EQ(grad_in[5], 1.0f);
  EXPECT_EQ(grad_in[7], 2.0f);
  EXPECT_EQ(grad_in[13], 3.0f);
  EXPECT_EQ(grad_in[15], 4.0f);
  float total = 0;
  for (float v : grad_in) total += v;
  EXPECT_EQ(total, 10.0f);
}

TEST(MaxPoolTest, NanInputsStillProduceValidArgmax) {
  // Regression: with -inf seeding, an all-NaN window left argmax at -1 and
  // the backward pass scattered out of bounds (heap corruption under
  // diverging training). The argmax must always be a valid input index.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> in(16, nan);
  std::vector<float> out(4);
  std::vector<int32_t> argmax(4);
  ops::MaxPool2dForward(in.data(), 1, 1, 4, 4, 2, 2, out.data(),
                        argmax.data());
  for (int32_t idx : argmax) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 16);
  }
  // Backward through NaN argmax indices must not write out of bounds.
  std::vector<float> grad_out{1, 2, 3, 4};
  std::vector<float> grad_in(16, 0.0f);
  ops::MaxPool2dBackward(grad_out.data(), argmax.data(), 4, grad_in.data());
}

TEST(MaxPoolTest, MixedNanWindowPrefersRealMax) {
  // A window containing one NaN and larger real values still picks a valid
  // index (NaN comparisons are false, so real values win once seen).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> in{nan, 5.0f, 3.0f, 4.0f};
  std::vector<float> out(1);
  std::vector<int32_t> argmax(1);
  ops::MaxPool2dForward(in.data(), 1, 1, 2, 2, 2, 2, out.data(),
                        argmax.data());
  EXPECT_EQ(argmax[0], 1);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(ReluOpsTest, ForwardMasksNegatives) {
  std::vector<float> x{-1, 0, 2, -3, 4};
  std::vector<uint8_t> mask(5);
  ops::ReluForward(x.data(), 5, mask.data());
  EXPECT_EQ(x, (std::vector<float>{0, 0, 2, 0, 4}));
  EXPECT_EQ(mask, (std::vector<uint8_t>{0, 0, 1, 0, 1}));
}

TEST(ReluOpsTest, BackwardUsesMask) {
  std::vector<float> grad{1, 2, 3, 4, 5};
  std::vector<uint8_t> mask{0, 0, 1, 0, 1};
  std::vector<float> out(5);
  ops::ReluBackward(grad.data(), mask.data(), 5, out.data());
  EXPECT_EQ(out, (std::vector<float>{0, 0, 3, 0, 5}));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(6);
  const int rows = 4, cols = 10;
  auto logits = RandomVec(static_cast<size_t>(rows * cols), &rng);
  std::vector<float> probs(logits.size());
  ops::SoftmaxRows(logits.data(), rows, cols, probs.data());
  for (int r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      const float p = probs[static_cast<size_t>(r * cols + c)];
      EXPECT_GT(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, InvariantToConstantShift) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{101, 102, 103};
  std::vector<float> pa(3), pb(3);
  ops::SoftmaxRows(a.data(), 1, 3, pa.data());
  ops::SoftmaxRows(b.data(), 1, 3, pb.data());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-6f);
}

TEST(SoftmaxTest, HandlesExtremeLogitsWithoutOverflow) {
  std::vector<float> logits{1000.0f, -1000.0f, 0.0f};
  std::vector<float> probs(3);
  ops::SoftmaxRows(logits.data(), 1, 3, probs.data());
  EXPECT_NEAR(probs[0], 1.0f, 1e-5f);
  EXPECT_NEAR(probs[1], 0.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(probs[2]));
}

}  // namespace
}  // namespace fedadmm
