#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

TEST(ShapeTest, DefaultIsScalarLike) {
  Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, InitializerList) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
}

TEST(ShapeTest, NegativeIndexing) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(ShapeTest, ZeroDimYieldsZeroNumel) {
  Shape s({5, 0, 3});
  EXPECT_EQ(s.numel(), 0);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({32, 1, 28, 28}).ToString(), "[32, 1, 28, 28]");
  EXPECT_EQ(Shape().ToString(), "[]");
}

TEST(ShapeTest, FromVector) {
  std::vector<int64_t> dims{7, 8};
  Shape s(dims);
  EXPECT_EQ(s.numel(), 56);
  EXPECT_EQ(s.dims(), dims);
}

}  // namespace
}  // namespace fedadmm
