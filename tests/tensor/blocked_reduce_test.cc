// The blocked reduction kernels (tensor/vec AxpyMany / BlockedMean):
// bitwise equivalence to the historical serial loops at every pool size —
// block boundaries are fixed by the dimension, never by the thread count.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tensor/vec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedadmm {
namespace {

std::vector<float> Random(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  return v;
}

std::vector<std::vector<float>> RandomSet(size_t count, size_t n,
                                          uint64_t seed) {
  std::vector<std::vector<float>> set;
  for (size_t i = 0; i < count; ++i) set.push_back(Random(n, seed + i));
  return set;
}

std::vector<std::span<const float>> Views(
    const std::vector<std::vector<float>>& set) {
  std::vector<std::span<const float>> views;
  for (const auto& v : set) views.push_back(v);
  return views;
}

// Dimensions straddling the block size: sub-block, exact multiples, and a
// ragged tail.
const size_t kDims[] = {1, 7, vec::kReduceBlock - 1, vec::kReduceBlock,
                        3 * vec::kReduceBlock + 17};

TEST(AxpyManyTest, MatchesSequentialAxpyBitwiseAtEveryPoolSize) {
  for (const size_t n : kDims) {
    const auto xs = RandomSet(5, n, 100 + n);
    const auto views = Views(xs);
    std::vector<float> expected = Random(n, 999);
    for (const auto& x : xs) vec::Axpy(0.37f, x, expected);

    for (int threads : {0, 1, 3, 8}) {
      std::vector<float> y = Random(n, 999);
      if (threads == 0) {
        vec::AxpyMany(0.37f, views, y, /*pool=*/nullptr);
      } else {
        ThreadPool pool(threads);
        vec::AxpyMany(0.37f, views, y, &pool);
      }
      EXPECT_EQ(y, expected) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(AxpyManyTest, EmptyListIsANoOp) {
  std::vector<float> y = Random(64, 1);
  const std::vector<float> before = y;
  vec::AxpyMany(2.0f, {}, y, nullptr);
  EXPECT_EQ(y, before);
}

TEST(BlockedMeanTest, MatchesMeanBitwiseAtEveryPoolSize) {
  for (const size_t n : kDims) {
    const auto xs = RandomSet(7, n, 300 + n);
    const auto views = Views(xs);
    // The historical Mean op sequence, spelled out (vec::Mean itself now
    // delegates to BlockedMean, so it cannot serve as the oracle).
    std::vector<float> expected(n);
    vec::Zero(expected);
    for (const auto& x : xs) vec::Axpy(1.0f, x, expected);
    vec::Scale(1.0f / static_cast<float>(xs.size()), expected);
    std::vector<float> via_mean(n);
    vec::Mean(views, via_mean);
    EXPECT_EQ(via_mean, expected);

    for (int threads : {0, 1, 4, 8}) {
      std::vector<float> out(n, -1.0f);  // stale garbage must be overwritten
      if (threads == 0) {
        vec::BlockedMean(views, out, nullptr);
      } else {
        ThreadPool pool(threads);
        vec::BlockedMean(views, out, &pool);
      }
      EXPECT_EQ(out, expected) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(BlockedMeanTest, SingleVectorMeanIsIdentityUpToScale) {
  const auto x = Random(1000, 4);
  std::vector<float> out(1000);
  vec::BlockedMean({std::span<const float>(x)}, out, nullptr);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(out[i], x[i] * 1.0f);
  }
}

TEST(BlockedReduceTest, PoolResultIndependentOfPoolSize) {
  // The determinism contract the engine relies on: any two pool sizes give
  // identical bits, even on ragged tails.
  const size_t n = 2 * vec::kReduceBlock + 311;
  const auto xs = RandomSet(9, n, 42);
  const auto views = Views(xs);
  ThreadPool small(2);
  ThreadPool large(8);
  std::vector<float> a = Random(n, 7);
  std::vector<float> b = a;
  vec::AxpyMany(-1.25f, views, a, &small);
  vec::AxpyMany(-1.25f, views, b, &large);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fedadmm
