#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace fedadmm {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape({2, 3}));
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t(Shape({4}), 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, AdoptData) {
  Tensor t(Shape({2, 2}), std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FourDimIndexing) {
  Tensor t(Shape({2, 3, 4, 5}));
  t.at(1, 2, 3, 4) = 7.0f;
  // Flat offset: ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_EQ(t[119], 7.0f);
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t(Shape({5}));
  t.Fill(3.0f);
  EXPECT_EQ(t[4], 3.0f);
  t.Zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(TensorTest, FillNormalProducesVariedValues) {
  Rng rng(1);
  Tensor t(Shape({1000}));
  t.FillNormal(&rng, 0.0f, 1.0f);
  double sum = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) sum += t[i];
  EXPECT_NEAR(sum / static_cast<double>(t.numel()), 0.0, 0.15);
}

TEST(TensorTest, FillUniformRange) {
  Rng rng(2);
  Tensor t(Shape({100}));
  t.FillUniform(&rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape({2, 3}), std::vector<float>{1, 2, 3, 4, 5, 6});
  auto r = t.Reshape(Shape({3, 2}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->shape(), Shape({3, 2}));
  EXPECT_EQ(r->at(2, 1), 6.0f);
}

TEST(TensorTest, ReshapeBadNumelFails) {
  Tensor t(Shape({2, 3}));
  EXPECT_TRUE(t.Reshape(Shape({7})).status().IsInvalidArgument());
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a(Shape({3}), std::vector<float>{1, 2, 3});
  Tensor b(Shape({3}), std::vector<float>{1, 2, 3});
  Tensor c(Shape({3}), std::vector<float>{1, 2, 3.0001f});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_TRUE(a.AllClose(c, 1e-3f));
  EXPECT_FALSE(a.AllClose(c, 1e-6f));
  Tensor d(Shape({3, 1}), std::vector<float>{1, 2, 3});
  EXPECT_FALSE(a.AllClose(d));  // shape mismatch
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape({2}), std::vector<float>{1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

}  // namespace
}  // namespace fedadmm
