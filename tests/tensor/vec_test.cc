#include "tensor/vec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace fedadmm {
namespace {

TEST(VecTest, Axpy) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  vec::Axpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(VecTest, Scale) {
  std::vector<float> x{1, -2, 3};
  vec::Scale(-0.5f, x);
  EXPECT_EQ(x, (std::vector<float>{-0.5f, 1.0f, -1.5f}));
}

TEST(VecTest, CopyAndZero) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y(3);
  vec::Copy(x, y);
  EXPECT_EQ(y, x);
  vec::Zero(y);
  EXPECT_EQ(y, (std::vector<float>{0, 0, 0}));
}

TEST(VecTest, EmptySpansAreFine) {
  std::vector<float> empty;
  vec::Copy(empty, empty);
  vec::Zero(empty);
  vec::Axpy(1.0f, empty, empty);
  EXPECT_EQ(vec::Dot(empty, empty), 0.0);
  EXPECT_EQ(vec::L2Norm(empty), 0.0);
}

TEST(VecTest, DotAndNorms) {
  std::vector<float> x{3, 4};
  std::vector<float> y{1, 2};
  EXPECT_DOUBLE_EQ(vec::Dot(x, y), 11.0);
  EXPECT_DOUBLE_EQ(vec::SquaredL2Norm(x), 25.0);
  EXPECT_DOUBLE_EQ(vec::L2Norm(x), 5.0);
}

TEST(VecTest, SquaredDistance) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{4, 6, 3};
  EXPECT_DOUBLE_EQ(vec::SquaredDistance(x, y), 9.0 + 16.0);
}

TEST(VecTest, AddScaled) {
  std::vector<float> x{1, 2};
  std::vector<float> y{10, 20};
  std::vector<float> out(2);
  vec::AddScaled(x, 0.1f, y, out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(VecTest, AddScaledAliasesFirstOperand) {
  std::vector<float> x{1, 2};
  std::vector<float> y{10, 20};
  vec::AddScaled(x, 1.0f, y, x);
  EXPECT_EQ(x, (std::vector<float>{11, 22}));
}

TEST(VecTest, Sub) {
  std::vector<float> x{5, 7};
  std::vector<float> y{2, 3};
  std::vector<float> out(2);
  vec::Sub(x, y, out);
  EXPECT_EQ(out, (std::vector<float>{3, 4}));
  vec::Sub(x, x, x);
  EXPECT_EQ(x, (std::vector<float>{0, 0}));
}

TEST(VecTest, Mean) {
  std::vector<float> a{1, 2};
  std::vector<float> b{3, 6};
  std::vector<float> out(2);
  vec::Mean({std::span<const float>(a), std::span<const float>(b)}, out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(VecTest, MaxAbs) {
  std::vector<float> x{1, -7, 3};
  EXPECT_FLOAT_EQ(vec::MaxAbs(x), 7.0f);
  std::vector<float> empty;
  EXPECT_FLOAT_EQ(vec::MaxAbs(empty), 0.0f);
}

TEST(VecTest, MaxAbsPropagatesNan) {
  // Regression: `std::max(m, NaN)` keeps m, so a NaN element used to be
  // silently dropped and MaxAbs reported a plausible finite magnitude.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (size_t pos : {size_t{0}, size_t{5}, size_t{9}}) {
    std::vector<float> x(10, 1.0f);
    x[pos] = nan;
    EXPECT_TRUE(std::isnan(vec::MaxAbs(x))) << "pos=" << pos;
  }
  // Infinity is a legitimate (if extreme) magnitude, not NaN.
  std::vector<float> inf{1.0f, -std::numeric_limits<float>::infinity()};
  EXPECT_TRUE(std::isinf(vec::MaxAbs(inf)));
  EXPECT_FALSE(std::isnan(vec::MaxAbs(inf)));
}

TEST(VecTest, DotIsAccumulatedInDouble) {
  // Large vector of small values: float accumulation would lose precision.
  const size_t n = 1 << 20;
  std::vector<float> x(n, 1e-3f);
  const double dot = vec::Dot(x, x);
  EXPECT_NEAR(dot, static_cast<double>(n) * 1e-6, 1e-3);
}

}  // namespace
}  // namespace fedadmm
