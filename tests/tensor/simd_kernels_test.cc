/// \file simd_kernels_test.cc
/// \brief Scalar-vs-AVX2 bitwise equality property tests for every kernel
/// in the dispatch table — the executable form of the determinism contract
/// in tensor/simd/simd.h.
///
/// Each test draws random sizes (covering vector-width remainders 0..15),
/// random data with sign flips, signed zeros, denormals, and huge/tiny
/// magnitudes, runs both tables on identical inputs, and requires bit
/// equality of every output float (compared as bits, so -0.0 vs +0.0 and
/// NaN payloads count). On hosts without AVX2 the tests skip.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/simd/simd.h"
#include "util/rng.h"

namespace fedadmm::simd {
namespace {

uint32_t Bits(float v) {
  uint32_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Random vector with adversarial values mixed in: signed zeros, denormals,
/// huge and tiny magnitudes, exact powers of two.
std::vector<float> RandomVector(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng->UniformInt(0, 9)) {
      case 0:
        v[i] = 0.0f;
        break;
      case 1:
        v[i] = -0.0f;
        break;
      case 2:
        v[i] = std::numeric_limits<float>::denorm_min() *
               static_cast<float>(rng->UniformInt(1, 100));
        break;
      case 3:
        v[i] = static_cast<float>(rng->Uniform(-1.0, 1.0)) * 1e30f;
        break;
      case 4:
        v[i] = static_cast<float>(rng->Uniform(-1.0, 1.0)) * 1e-30f;
        break;
      case 5:
        v[i] = std::ldexp(1.0f, static_cast<int>(rng->UniformInt(-20, 20))) *
               (rng->UniformInt(0, 1) ? 1.0f : -1.0f);
        break;
      default:
        v[i] = static_cast<float>(rng->Normal(0.0, 1.0));
        break;
    }
  }
  return v;
}

/// Sizes covering every 8-lane remainder plus block-ish lengths.
std::vector<size_t> TestSizes() {
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 17; ++n) sizes.push_back(n);
  sizes.insert(sizes.end(), {31, 32, 33, 63, 64, 65, 100, 255, 256, 257,
                             1000, 4096, 8191});
  return sizes;
}

class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (Avx2Kernels() == nullptr) {
      GTEST_SKIP() << "AVX2 kernels unavailable on this host";
    }
  }
};

TEST_F(SimdKernelsTest, ElementwiseBitwiseEqual) {
  Rng rng(0xA1);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  for (size_t n : TestSizes()) {
    for (int rep = 0; rep < 4; ++rep) {
      const std::vector<float> x = RandomVector(&rng, n);
      const std::vector<float> y = RandomVector(&rng, n);
      const float alpha = static_cast<float>(rng.Normal(0.0, 2.0));

      std::vector<float> ys = y, ya = y;
      s.axpy(alpha, x.data(), ys.data(), n);
      a.axpy(alpha, x.data(), ya.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(ys[i]), Bits(ya[i])) << "axpy n=" << n << " i=" << i;
      }

      ys = y;
      ya = y;
      s.add(x.data(), ys.data(), n);
      a.add(x.data(), ya.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(ys[i]), Bits(ya[i])) << "add n=" << n << " i=" << i;
      }

      std::vector<float> os(n), oa(n);
      s.add_scaled(x.data(), alpha, y.data(), os.data(), n);
      a.add_scaled(x.data(), alpha, y.data(), oa.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(os[i]), Bits(oa[i]))
            << "add_scaled n=" << n << " i=" << i;
      }

      s.sub(x.data(), y.data(), os.data(), n);
      a.sub(x.data(), y.data(), oa.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(os[i]), Bits(oa[i])) << "sub n=" << n << " i=" << i;
      }

      ys = x;
      ya = x;
      s.scale(alpha, ys.data(), n);
      a.scale(alpha, ya.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(ys[i]), Bits(ya[i])) << "scale n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(SimdKernelsTest, UnalignedOffsetsBitwiseEqual) {
  // Kernels must accept any pointer alignment: run axpy on every offset
  // into an aligned backing array.
  Rng rng(0xA2);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  const size_t kTotal = 200;
  const std::vector<float> x = RandomVector(&rng, kTotal);
  const std::vector<float> y = RandomVector(&rng, kTotal);
  for (size_t off = 0; off < 16; ++off) {
    const size_t n = kTotal - off - 7;
    std::vector<float> ys = y, ya = y;
    s.axpy(1.5f, x.data() + off, ys.data() + off, n);
    a.axpy(1.5f, x.data() + off, ya.data() + off, n);
    for (size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(Bits(ys[i]), Bits(ya[i])) << "off=" << off << " i=" << i;
    }
    const double ds = s.dot(x.data() + off, y.data() + off, n);
    const double da = a.dot(x.data() + off, y.data() + off, n);
    ASSERT_EQ(Bits(ds), Bits(da)) << "dot off=" << off;
  }
}

TEST_F(SimdKernelsTest, ReductionsBitwiseEqual) {
  Rng rng(0xA3);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  for (size_t n : TestSizes()) {
    for (int rep = 0; rep < 4; ++rep) {
      const std::vector<float> x = RandomVector(&rng, n);
      const std::vector<float> y = RandomVector(&rng, n);
      ASSERT_EQ(Bits(s.dot(x.data(), y.data(), n)),
                Bits(a.dot(x.data(), y.data(), n)))
          << "dot n=" << n;
      ASSERT_EQ(Bits(s.squared_l2(x.data(), n)),
                Bits(a.squared_l2(x.data(), n)))
          << "squared_l2 n=" << n;
      ASSERT_EQ(Bits(s.squared_distance(x.data(), y.data(), n)),
                Bits(a.squared_distance(x.data(), y.data(), n)))
          << "squared_distance n=" << n;
    }
  }
}

TEST_F(SimdKernelsTest, MaxAbsEqualAndNanReported) {
  Rng rng(0xA4);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  for (size_t n : TestSizes()) {
    std::vector<float> x = RandomVector(&rng, n);
    bool ns = false, na = false;
    ASSERT_EQ(Bits(s.max_abs(x.data(), n, &ns)),
              Bits(a.max_abs(x.data(), n, &na)))
        << "max_abs n=" << n;
    ASSERT_EQ(ns, na);
    ASSERT_FALSE(ns);
    if (n == 0) continue;
    // Poison one element per lane position; both tables must report NaN
    // and agree on the max over the remaining values.
    for (size_t pos : {size_t{0}, n / 2, n - 1}) {
      std::vector<float> p = x;
      p[pos] = std::numeric_limits<float>::quiet_NaN();
      ns = na = false;
      const float ms = s.max_abs(p.data(), n, &ns);
      const float ma = a.max_abs(p.data(), n, &na);
      ASSERT_EQ(Bits(ms), Bits(ma)) << "max_abs NaN n=" << n;
      ASSERT_TRUE(ns);
      ASSERT_TRUE(na);
    }
    // Infinity is a value, not an error, at the kernel level.
    std::vector<float> inf = x;
    inf[n - 1] = -std::numeric_limits<float>::infinity();
    ns = na = false;
    const float ms = s.max_abs(inf.data(), n, &ns);
    const float ma = a.max_abs(inf.data(), n, &na);
    ASSERT_EQ(Bits(ms), Bits(ma));
    ASSERT_TRUE(std::isinf(ms));
    ASSERT_FALSE(ns);
    ASSERT_FALSE(na);
  }
}

TEST_F(SimdKernelsTest, GemmAxpyRowBitwiseEqual) {
  Rng rng(0xA5);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  for (int64_t kb : {1, 2, 7, 64}) {
    for (int64_t n : {1, 7, 8, 31, 32, 33, 100, 257}) {
      const int64_t ldb = n + 3;  // exercise ldb > n
      std::vector<float> av =
          RandomVector(&rng, static_cast<size_t>(kb));
      // Sprinkle exact zeros to exercise the row-skip path.
      for (auto& v : av) {
        if (rng.UniformInt(0, 3) == 0) v = 0.0f;
      }
      const std::vector<float> b =
          RandomVector(&rng, static_cast<size_t>(kb * ldb));
      const std::vector<float> c0 =
          RandomVector(&rng, static_cast<size_t>(n));
      std::vector<float> cs = c0, ca = c0;
      s.gemm_axpy_row(av.data(), b.data(), cs.data(), kb, n, ldb);
      a.gemm_axpy_row(av.data(), b.data(), ca.data(), kb, n, ldb);
      for (int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(Bits(cs[static_cast<size_t>(j)]),
                  Bits(ca[static_cast<size_t>(j)]))
            << "gemm kb=" << kb << " n=" << n << " j=" << j;
      }
    }
  }
}

TEST_F(SimdKernelsTest, QuantizeDequantizeBitwiseEqual) {
  Rng rng(0xA6);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  for (size_t n : TestSizes()) {
    for (int bits : {1, 4, 8, 12, 16}) {
      const int levels = (1 << bits) - 1;
      std::vector<float> v(n);
      float scale = 0.0f;
      for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(rng.Normal(0.0, 1.0));
        scale = std::max(scale, std::fabs(v[i]));
      }
      std::vector<uint16_t> cs(n), ca(n);
      s.quantize_uniform(v.data(), n, scale, levels, cs.data());
      a.quantize_uniform(v.data(), n, scale, levels, ca.data());
      ASSERT_EQ(cs, ca) << "quantize n=" << n << " bits=" << bits;
      std::vector<float> ds(n), da(n);
      s.dequantize_grid(cs.data(), n, scale, levels, ds.data());
      a.dequantize_grid(ca.data(), n, scale, levels, da.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(ds[i]), Bits(da[i]))
            << "dequantize n=" << n << " bits=" << bits << " i=" << i;
      }
      // Zero scale: all codes 0, all values decode to exactly 0.
      s.quantize_uniform(v.data(), n, 0.0f, levels, cs.data());
      a.quantize_uniform(v.data(), n, 0.0f, levels, ca.data());
      ASSERT_EQ(cs, ca);
      for (uint16_t c : ca) ASSERT_EQ(c, 0);
    }
  }
}

TEST_F(SimdKernelsTest, PackUnpackAllWidthsByteEqual) {
  Rng rng(0xA7);
  const KernelTable& s = ScalarKernels();
  const KernelTable& a = *Avx2Kernels();
  for (int bits = 1; bits <= 16; ++bits) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{15}, size_t{16},
                     size_t{17}, size_t{33}, size_t{256}, size_t{1000}}) {
      std::vector<uint16_t> codes(n);
      const uint32_t maxc = (1u << bits) - 1u;
      for (auto& c : codes) {
        c = static_cast<uint16_t>(rng.UniformInt(0, maxc));
      }
      const size_t bytes = (n * static_cast<size_t>(bits) + 7) / 8;
      std::vector<uint8_t> ps(bytes, 0xCC), pa(bytes, 0x33);
      s.pack_codes(codes.data(), n, bits, ps.data());
      a.pack_codes(codes.data(), n, bits, pa.data());
      ASSERT_EQ(ps, pa) << "pack bits=" << bits << " n=" << n;
      std::vector<uint16_t> us(n), ua(n);
      s.unpack_codes(ps.data(), n, bits, us.data());
      a.unpack_codes(pa.data(), n, bits, ua.data());
      ASSERT_EQ(us, codes) << "unpack bits=" << bits << " n=" << n;
      ASSERT_EQ(ua, codes) << "unpack bits=" << bits << " n=" << n;
    }
  }
}

TEST(SimdDispatchTest, ForceScalarOverridePinsTable) {
  ForceIsaForTesting(Isa::kScalar);
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_EQ(&ActiveKernels(), &ScalarKernels());
  if (Avx2Kernels() != nullptr) {
    ForceIsaForTesting(Isa::kAvx2);
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
    EXPECT_EQ(&ActiveKernels(), Avx2Kernels());
  }
  ForceIsaForTesting(std::nullopt);  // restore environment resolution
}

TEST(SimdDispatchTest, IsaNamesStable) {
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
}

}  // namespace
}  // namespace fedadmm::simd
