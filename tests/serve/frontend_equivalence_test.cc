// The serving frontend's central claim: a run whose client waves arrive as
// wire sessions over a Transport is bitwise identical — θ, history,
// byte ledgers, simulated time, drops — to the same run executed
// in-process. Covered here for the loopback transport (FedAvg + q8 both
// ways + deadline-drop stragglers on a sharded server; SCAFFOLD's
// two-payload uploads with and without a codec) and for real TCP via
// SocketTransport, plus double-run determinism of the frontend's byte
// ledger.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/codec.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/scaffold.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "serve/frontend.h"
#include "serve/loadgen.h"
#include "serve/loopback.h"
#include "serve/socket_transport.h"
#include "sys/system_model.h"

namespace fedadmm::serve {
namespace {

constexpr int kClients = 24;
constexpr int kDim = 16;
constexpr int kRounds = 4;
constexpr uint64_t kSeed = 11;
constexpr int kThreads = 3;
constexpr int kShards = 2;

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = kClients;
  spec.dim = kDim;
  spec.heterogeneity = 1.1;
  spec.seed = 77;
  return spec;
}

LocalTrainSpec Local() {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 4;
  local.max_epochs = 2;
  return local;
}

SystemModel DeadlineModel() {
  FleetModel fleet =
      FleetModel::FromPreset("cellular", kClients, 5).ValueOrDie();
  return SystemModel(std::move(fleet),
                     MakeStragglerPolicy("deadline-drop", 2.0).ValueOrDie());
}

/// What the run is made of: which algorithm, which codecs, which model.
struct RunSpec {
  bool scaffold = false;
  std::string uplink_spec;    // empty = raw fp32 uploads
  std::string downlink_spec;  // empty = raw θ broadcast
  bool system_model = false;
};

struct RunResult {
  std::vector<float> theta;
  History history;
  FrontendLedger ledger;  // zero-initialized for in-process runs
};

SimulationConfig Config() {
  SimulationConfig config;
  config.max_rounds = kRounds;
  config.seed = kSeed;
  config.num_threads = kThreads;
  config.num_shards = kShards;
  return config;
}

std::unique_ptr<FederatedAlgorithm> MakeAlgo(const RunSpec& setup) {
  if (setup.scaffold) {
    return std::make_unique<Scaffold>(Local());
  }
  return std::make_unique<FedAvg>(Local());
}

RunResult RunInProcess(const RunSpec& setup) {
  QuadraticProblem problem(Spec());
  auto algo = MakeAlgo(setup);
  UniformFractionSelector selector(kClients, 0.5);
  Simulation sim(&problem, algo.get(), &selector, Config());
  SystemModel model = DeadlineModel();
  if (setup.system_model) sim.set_system_model(&model);
  std::unique_ptr<UpdateCodec> uplink;
  std::unique_ptr<UpdateCodec> downlink;
  if (!setup.uplink_spec.empty()) {
    uplink = MakeUpdateCodec(setup.uplink_spec).ValueOrDie();
    sim.set_uplink_codec(uplink.get());
  }
  if (!setup.downlink_spec.empty()) {
    downlink = MakeUpdateCodec(setup.downlink_spec).ValueOrDie();
    sim.set_downlink_codec(downlink.get());
  }
  RunResult result;
  result.history = std::move(sim.Run()).ValueOrDie();
  result.theta = sim.theta();
  return result;
}

RunResult RunServed(const RunSpec& setup, Transport* transport) {
  QuadraticProblem problem(Spec());
  auto algo = MakeAlgo(setup);
  UniformFractionSelector selector(kClients, 0.5);
  Simulation sim(&problem, algo.get(), &selector, Config());
  SystemModel model = DeadlineModel();
  if (setup.system_model) sim.set_system_model(&model);

  // Server-side codecs (attached to the Simulation) and their client-side
  // twins (the load generator encodes/decodes with separate instances, as
  // a real remote client would).
  std::unique_ptr<UpdateCodec> uplink;
  std::unique_ptr<UpdateCodec> uplink_twin;
  std::unique_ptr<UpdateCodec> downlink;
  std::unique_ptr<UpdateCodec> downlink_twin;
  if (!setup.uplink_spec.empty()) {
    uplink = MakeUpdateCodec(setup.uplink_spec).ValueOrDie();
    uplink_twin = MakeUpdateCodec(setup.uplink_spec).ValueOrDie();
    sim.set_uplink_codec(uplink.get());
  }
  if (!setup.downlink_spec.empty()) {
    downlink = MakeUpdateCodec(setup.downlink_spec).ValueOrDie();
    downlink_twin = MakeUpdateCodec(setup.downlink_spec).ValueOrDie();
    sim.set_downlink_codec(downlink.get());
  }

  FrontendOptions options;
  options.num_shards = kShards;
  options.collect_timeout_seconds = 60.0;
  options.uplink_codec = uplink.get();
  if (setup.system_model) options.system_model = &model;
  Frontend frontend(options);
  sim.set_ingest(&frontend);

  EXPECT_TRUE(transport->Start(&frontend).ok());

  LoadGenOptions lg;
  lg.driver_threads = 4;
  lg.uplink_codec = uplink_twin.get();
  lg.downlink_codec = downlink_twin.get();
  lg.poll_timeout_seconds = 60.0;
  LoadGenerator loadgen(&problem, algo.get(), kSeed, kThreads, kShards,
                        &frontend, transport, lg);
  Status loadgen_status = Status::OK();
  std::thread driver([&] { loadgen_status = loadgen.Run(); });

  RunResult result;
  auto history = sim.Run();
  frontend.FinishServing();
  driver.join();
  EXPECT_TRUE(loadgen_status.ok()) << loadgen_status.message();
  EXPECT_TRUE(history.ok()) << history.status().message();
  if (history.ok()) result.history = std::move(*history);
  result.theta = sim.theta();
  result.ledger = frontend.ledger();
  transport->Stop();
  return result;
}

bool SameMetric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void ExpectIdenticalRuns(const RunResult& served, const RunResult& local) {
  // Bitwise θ — the acceptance bar for the serving frontend.
  EXPECT_EQ(served.theta, local.theta);
  ASSERT_EQ(served.history.size(), local.history.size());
  for (int i = 0; i < local.history.size(); ++i) {
    const RoundRecord& rs = served.history.records()[static_cast<size_t>(i)];
    const RoundRecord& rl = local.history.records()[static_cast<size_t>(i)];
    EXPECT_EQ(rs.num_selected, rl.num_selected) << i;
    EXPECT_TRUE(SameMetric(rs.train_loss, rl.train_loss)) << i;
    EXPECT_TRUE(SameMetric(rs.test_accuracy, rl.test_accuracy)) << i;
    EXPECT_EQ(rs.upload_bytes, rl.upload_bytes) << i;
    EXPECT_EQ(rs.download_bytes, rl.download_bytes) << i;
    EXPECT_EQ(rs.sim_seconds, rl.sim_seconds) << i;
    EXPECT_EQ(rs.num_dropped, rl.num_dropped) << i;
  }
}

TEST(FrontendEquivalenceTest, LoopbackFedAvgQuantizedWithStragglers) {
  // The full stack: q8 uplink + q8 downlink, deadline-drop admission
  // mirrored into ACKs, two aggregation shards.
  RunSpec setup;
  setup.uplink_spec = "q8";
  setup.downlink_spec = "q8";
  setup.system_model = true;
  const RunResult local = RunInProcess(setup);
  LoopbackTransport transport;
  const RunResult served = RunServed(setup, &transport);
  ExpectIdenticalRuns(served, local);
  // Rejected clients got their mirrored verdicts; every upload decoded.
  EXPECT_GT(served.ledger.acks_accepted, 0);
  EXPECT_EQ(served.ledger.decode_errors, 0);
  EXPECT_EQ(served.ledger.malformed_frames, 0);
  // Sessions are created lazily, so only ever-selected clients HELLO.
  EXPECT_GT(served.ledger.hello_count, 0);
  EXPECT_LE(served.ledger.hello_count, kClients);
}

TEST(FrontendEquivalenceTest, LoopbackScaffoldTwoPayloadsRaw) {
  // SCAFFOLD uploads (Δw, Δc): the two-payload UPDATE path, raw fp32.
  RunSpec setup;
  setup.scaffold = true;
  const RunResult local = RunInProcess(setup);
  LoopbackTransport transport;
  const RunResult served = RunServed(setup, &transport);
  ExpectIdenticalRuns(served, local);
}

TEST(FrontendEquivalenceTest, LoopbackScaffoldTwoPayloadsIdentityCodec) {
  // Identity codec over both SCAFFOLD payloads: exercises the codec
  // encode/TryDecode path for dim2 != 0 with exact byte billing.
  RunSpec setup;
  setup.scaffold = true;
  setup.uplink_spec = "identity";
  const RunResult local = RunInProcess(setup);
  LoopbackTransport transport;
  const RunResult served = RunServed(setup, &transport);
  ExpectIdenticalRuns(served, local);
}

TEST(FrontendEquivalenceTest, SocketTransportMatchesBitwise) {
  // The same trace over real TCP: the transport must be a pure byte pipe.
  RunSpec setup;
  setup.uplink_spec = "q8";
  setup.system_model = true;
  const RunResult local = RunInProcess(setup);
  SocketTransport transport;
  const RunResult served = RunServed(setup, &transport);
  ExpectIdenticalRuns(served, local);
}

TEST(FrontendEquivalenceTest, DoubleRunLedgerAndThetaAreDeterministic) {
  RunSpec setup;
  setup.uplink_spec = "q8";
  setup.downlink_spec = "q8";
  setup.system_model = true;
  LoopbackTransport t1;
  const RunResult a = RunServed(setup, &t1);
  LoopbackTransport t2;
  const RunResult b = RunServed(setup, &t2);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.ledger.hello_count, b.ledger.hello_count);
  EXPECT_EQ(a.ledger.model_frames, b.ledger.model_frames);
  EXPECT_EQ(a.ledger.model_payload_bytes, b.ledger.model_payload_bytes);
  EXPECT_EQ(a.ledger.acks_accepted, b.ledger.acks_accepted);
  EXPECT_EQ(a.ledger.acks_partial, b.ledger.acks_partial);
  EXPECT_EQ(a.ledger.acks_rejected, b.ledger.acks_rejected);
  EXPECT_EQ(a.ledger.ingested_payload_bytes, b.ledger.ingested_payload_bytes);
  EXPECT_EQ(a.ledger.malformed_frames, 0);
  EXPECT_EQ(b.ledger.malformed_frames, 0);
  EXPECT_EQ(a.ledger.protocol_errors, 0);
  EXPECT_EQ(a.ledger.decode_errors, 0);
}

TEST(FrontendEquivalenceTest, ServeModeConfigIsValidated) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(kClients, 0.5);

  // Stochastic uplink codec: sessions cannot reproduce the server's Rng.
  {
    Simulation sim(&problem, &algo, &selector, Config());
    auto sq = MakeUpdateCodec("sq4").ValueOrDie();
    sim.set_uplink_codec(sq.get());
    FrontendOptions options;
    Frontend frontend(options);
    sim.set_ingest(&frontend);
    const auto result = sim.Run();
    ASSERT_FALSE(result.ok());
  }
  // Serve mode is sync-only.
  {
    SimulationConfig config = Config();
    config.mode = ExecutionMode::kAsync;
    Simulation sim(&problem, &algo, &selector, config);
    SystemModel model = DeadlineModel();
    sim.set_system_model(&model);
    FrontendOptions options;
    Frontend frontend(options);
    sim.set_ingest(&frontend);
    const auto result = sim.Run();
    ASSERT_FALSE(result.ok());
  }
  // Incompatible with checkpointing.
  {
    SimulationConfig config = Config();
    config.checkpoint_path = "/tmp/fedadmm_serve_ckpt_should_not_exist";
    Simulation sim(&problem, &algo, &selector, config);
    FrontendOptions options;
    Frontend frontend(options);
    sim.set_ingest(&frontend);
    const auto result = sim.Run();
    ASSERT_FALSE(result.ok());
  }
}

}  // namespace
}  // namespace fedadmm::serve
