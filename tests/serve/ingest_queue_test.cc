// The bounded lock-free ingest ring: capacity rounding, FIFO order,
// full-ring backpressure (TryPush returns false, never blocks), exactly-once
// delivery under concurrent producers, and the PopWait stop/drain contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/ingest_queue.h"

namespace fedadmm::serve {
namespace {

TEST(IngestQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IngestQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(IngestQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(IngestQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(IngestQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(IngestQueue<int>(512).capacity(), 512u);
  EXPECT_EQ(IngestQueue<int>(513).capacity(), 1024u);
}

TEST(IngestQueueTest, FifoSingleThread) {
  IngestQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.TryPush(int{i}));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(IngestQueueTest, FullRingRejectsWithoutBlocking) {
  IngestQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(int{i}));
  // The ring is full: the push must return false immediately — this is the
  // backpressure signal the frontend turns into a THROTTLED ack.
  EXPECT_FALSE(queue.TryPush(99));
  int out = -1;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 0);
  // One slot freed: pushes work again, order preserved.
  EXPECT_TRUE(queue.TryPush(4));
  for (int want = 1; want <= 4; ++want) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, want);
  }
}

TEST(IngestQueueTest, WrapAroundManyTimes) {
  IngestQueue<int> queue(4);
  int out = -1;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(queue.TryPush(int{i}));
    ASSERT_TRUE(queue.TryPop(&out));
    ASSERT_EQ(out, i);
  }
}

TEST(IngestQueueTest, MoveOnlyPayloads) {
  IngestQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(IngestQueueTest, ConcurrentProducersDeliverExactlyOnce) {
  // The production shape: transport threads produce, one shard worker
  // consumes via PopWait. Every pushed item must arrive exactly once.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 20000;
  IngestQueue<int64_t> queue(256);
  std::atomic<bool> stop{false};

  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::thread consumer([&] {
    int64_t item = -1;
    while (queue.PopWait(&item, stop)) {
      seen[static_cast<size_t>(item)]++;
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int64_t item = static_cast<int64_t>(p) * kPerProducer + i;
        // Spin on full — the test wants throughput, not throttling.
        while (!queue.TryPush(std::move(item))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();

  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], 1) << "item " << i;
  }
}

TEST(IngestQueueTest, PerProducerOrderIsPreserved) {
  // MPSC FIFO guarantee: items from one producer arrive in push order
  // (inter-producer interleaving is unspecified).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  IngestQueue<int64_t> queue(64);
  std::atomic<bool> stop{false};

  std::vector<int64_t> last_seen(kProducers, -1);
  std::thread consumer([&] {
    int64_t item = -1;
    while (queue.PopWait(&item, stop)) {
      const int producer = static_cast<int>(item >> 32);
      const int64_t seq = item & 0xFFFFFFFF;
      ASSERT_GT(seq, last_seen[static_cast<size_t>(producer)]);
      last_seen[static_cast<size_t>(producer)] = seq;
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int64_t item = (static_cast<int64_t>(p) << 32) | i;
        while (!queue.TryPush(std::move(item))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[static_cast<size_t>(p)], kPerProducer - 1);
  }
}

TEST(IngestQueueTest, PopWaitDrainsAfterStop) {
  IngestQueue<int> queue(8);
  std::atomic<bool> stop{false};
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  stop.store(true);
  int out = -1;
  // Items pushed before stop still drain.
  EXPECT_TRUE(queue.PopWait(&out, stop));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.PopWait(&out, stop));
  EXPECT_EQ(out, 2);
  // Empty + stopped: returns false instead of sleeping forever.
  EXPECT_FALSE(queue.PopWait(&out, stop));
}

TEST(IngestQueueTest, PopWaitWakesOnPush) {
  IngestQueue<int> queue(8);
  std::atomic<bool> stop{false};
  int out = -1;
  std::thread consumer([&] { EXPECT_TRUE(queue.PopWait(&out, stop)); });
  // Give the consumer a moment to reach the waiting state, then push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(queue.TryPush(7));
  consumer.join();
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace fedadmm::serve
