// The serving frame grammar: builder/parser round-trips for every frame
// type, header validation (magic/version/type/body-length bound), exact
// frame sizes (builders reserve up front and must fill exactly), the
// FrameAssembler's fragmentation/poisoning semantics, and the session-token
// bijection.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "serve/frame.h"

namespace fedadmm::serve {
namespace {

FrameHeader MustParseHeader(const std::vector<uint8_t>& frame) {
  FrameHeader header;
  Status s = ParseFrameHeader(frame.data(), frame.size(), &header);
  EXPECT_TRUE(s.ok()) << s.message();
  return header;
}

TEST(FrameBuildTest, HelloRoundTrip) {
  const std::vector<uint8_t> frame = BuildHelloFrame(12345);
  const FrameHeader header = MustParseHeader(frame);
  EXPECT_EQ(header.type, FrameType::kHello);
  EXPECT_EQ(header.session, 0u);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + header.body_len);
  uint32_t client = 0;
  ASSERT_TRUE(ParseHelloBody(frame.data() + kFrameHeaderBytes,
                             header.body_len, &client)
                  .ok());
  EXPECT_EQ(client, 12345u);
}

TEST(FrameBuildTest, WelcomeRoundTrip) {
  const std::vector<uint8_t> frame =
      BuildWelcomeFrame(0xFEEDFACE12345678ull, 77);
  const FrameHeader header = MustParseHeader(frame);
  EXPECT_EQ(header.type, FrameType::kWelcome);
  // Server→client frames carry session 0 in the header (the connection is
  // the addressee); the token travels in the body.
  EXPECT_EQ(header.session, 0u);
  uint64_t session = 0;
  uint32_t client = 0;
  ASSERT_TRUE(ParseWelcomeBody(frame.data() + kFrameHeaderBytes,
                               header.body_len, &session, &client)
                  .ok());
  EXPECT_EQ(session, 0xFEEDFACE12345678ull);
  EXPECT_EQ(client, 77u);
}

TEST(FrameBuildTest, PullAndStandbyRoundTrip) {
  const std::vector<uint8_t> pull = BuildPullFrame(0xABCDull, 41);
  const FrameHeader ph = MustParseHeader(pull);
  EXPECT_EQ(ph.type, FrameType::kPull);
  EXPECT_EQ(ph.session, 0xABCDull);
  uint32_t round = 0;
  ASSERT_TRUE(
      ParsePullBody(pull.data() + kFrameHeaderBytes, ph.body_len, &round)
          .ok());
  EXPECT_EQ(round, 41u);

  const std::vector<uint8_t> standby = BuildStandbyFrame(kNoOpenRound);
  const FrameHeader sh = MustParseHeader(standby);
  EXPECT_EQ(sh.type, FrameType::kStandby);
  ASSERT_TRUE(ParseStandbyBody(standby.data() + kFrameHeaderBytes,
                               sh.body_len, &round)
                  .ok());
  EXPECT_EQ(round, kNoOpenRound);
}

TEST(FrameBuildTest, ModelRoundTripEncodedAndRaw) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  for (bool encoded : {false, true}) {
    const std::vector<uint8_t> frame = BuildModelFrame(
        9, encoded, 2, payload.data(), static_cast<uint32_t>(payload.size()));
    const FrameHeader header = MustParseHeader(frame);
    EXPECT_EQ(header.type, FrameType::kModel);
    EXPECT_EQ(frame.size(), kFrameHeaderBytes + header.body_len);
    ModelBody body;
    ASSERT_TRUE(ParseModelBody(frame.data() + kFrameHeaderBytes,
                               header.body_len, &body)
                    .ok());
    EXPECT_EQ(body.round, 9u);
    EXPECT_EQ(body.encoded, encoded);
    EXPECT_EQ(body.dim, 2u);
    ASSERT_EQ(body.payload_len, payload.size());
    EXPECT_EQ(std::memcmp(body.payload, payload.data(), payload.size()), 0);
  }
}

TEST(FrameBuildTest, UpdateRoundTripViewsPointIntoFrame) {
  UpdateFrameHeader meta;
  meta.round = 3;
  meta.epochs_run = 5;
  meta.steps_run = 250;
  meta.train_loss = 0.125;
  meta.final_grad_norm_sq = 1e-6;
  const std::vector<uint8_t> p1 = {10, 11, 12, 13};
  const std::vector<uint8_t> p2 = {20, 21};
  meta.dim1 = 1;
  meta.payload1_len = static_cast<uint32_t>(p1.size());
  meta.dim2 = 1;
  meta.payload2_len = static_cast<uint32_t>(p2.size());

  const std::vector<uint8_t> frame =
      BuildUpdateFrame(0x5E55ull, meta, p1.data(), p2.data());
  const FrameHeader header = MustParseHeader(frame);
  EXPECT_EQ(header.type, FrameType::kUpdate);
  EXPECT_EQ(header.session, 0x5E55ull);
  EXPECT_EQ(header.body_len, kUpdateFixedBytes + p1.size() + p2.size());

  UpdateBody body;
  ASSERT_TRUE(ParseUpdateBody(frame.data() + kFrameHeaderBytes,
                              header.body_len, &body)
                  .ok());
  EXPECT_EQ(body.header.round, 3u);
  EXPECT_EQ(body.header.epochs_run, 5u);
  EXPECT_EQ(body.header.steps_run, 250u);
  EXPECT_EQ(body.header.train_loss, 0.125);
  EXPECT_EQ(body.header.final_grad_norm_sq, 1e-6);
  ASSERT_EQ(body.header.payload1_len, p1.size());
  ASSERT_EQ(body.header.payload2_len, p2.size());
  // Zero-copy: the parsed payload views must point into the frame itself.
  EXPECT_GE(body.payload1, frame.data());
  EXPECT_LT(body.payload1, frame.data() + frame.size());
  EXPECT_EQ(std::memcmp(body.payload1, p1.data(), p1.size()), 0);
  EXPECT_EQ(std::memcmp(body.payload2, p2.data(), p2.size()), 0);
}

TEST(FrameBuildTest, UpdateWithEmptySecondPayload) {
  UpdateFrameHeader meta;
  meta.round = 1;
  meta.dim1 = 2;
  const std::vector<uint8_t> p1 = {1, 2, 3, 4, 5, 6, 7, 8};
  meta.payload1_len = static_cast<uint32_t>(p1.size());
  meta.dim2 = 0;
  meta.payload2_len = 0;
  const std::vector<uint8_t> frame =
      BuildUpdateFrame(7, meta, p1.data(), nullptr);
  const FrameHeader header = MustParseHeader(frame);
  UpdateBody body;
  ASSERT_TRUE(ParseUpdateBody(frame.data() + kFrameHeaderBytes,
                              header.body_len, &body)
                  .ok());
  EXPECT_EQ(body.header.payload2_len, 0u);
}

TEST(FrameBuildTest, AckRoundTripAllStatuses) {
  for (AckStatus status : {AckStatus::kAccepted, AckStatus::kPartial,
                           AckStatus::kRejected, AckStatus::kThrottled}) {
    AckBody ack;
    ack.status = status;
    ack.round = 11;
    ack.work_fraction = 0.375;
    ack.retry_after_seconds = 0.25;
    const std::vector<uint8_t> frame = BuildAckFrame(ack);
    const FrameHeader header = MustParseHeader(frame);
    EXPECT_EQ(header.type, FrameType::kAck);
    AckBody parsed;
    ASSERT_TRUE(ParseAckBody(frame.data() + kFrameHeaderBytes,
                             header.body_len, &parsed)
                    .ok());
    EXPECT_EQ(parsed.status, status);
    EXPECT_EQ(parsed.round, 11u);
    EXPECT_EQ(parsed.work_fraction, 0.375);
    EXPECT_EQ(parsed.retry_after_seconds, 0.25);
  }
}

TEST(FrameBuildTest, ErrorRoundTripAndMessageTruncation) {
  const std::vector<uint8_t> frame =
      BuildErrorFrame(ErrorCode::kDecode, "bad payload");
  const FrameHeader header = MustParseHeader(frame);
  EXPECT_EQ(header.type, FrameType::kError);
  ErrorBody body;
  ASSERT_TRUE(ParseErrorBody(frame.data() + kFrameHeaderBytes,
                             header.body_len, &body)
                  .ok());
  EXPECT_EQ(body.code, ErrorCode::kDecode);
  EXPECT_EQ(body.message, "bad payload");

  // Messages longer than the u16 length field truncate, never overflow.
  const std::string huge(100000, 'x');
  const std::vector<uint8_t> big = BuildErrorFrame(ErrorCode::kProtocol, huge);
  const FrameHeader bh = MustParseHeader(big);
  ErrorBody truncated;
  ASSERT_TRUE(ParseErrorBody(big.data() + kFrameHeaderBytes, bh.body_len,
                             &truncated)
                  .ok());
  EXPECT_EQ(truncated.message.size(), 0xFFFFu);
}

TEST(FrameBuildTest, ByeCarriesSession) {
  const std::vector<uint8_t> frame = BuildByeFrame(0xB4Eull);
  const FrameHeader header = MustParseHeader(frame);
  EXPECT_EQ(header.type, FrameType::kBye);
  EXPECT_EQ(header.session, 0xB4Eull);
  EXPECT_EQ(header.body_len, 0u);
}

TEST(FrameHeaderTest, RejectsBadMagicVersionTypeAndOversizedBody) {
  std::vector<uint8_t> frame = BuildPullFrame(1, 2);
  FrameHeader header;

  std::vector<uint8_t> bad = frame;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size(), &header).ok());

  bad = frame;
  bad[4] = 99;  // version
  EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size(), &header).ok());

  bad = frame;
  bad[5] = 0;  // type below range
  EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size(), &header).ok());
  bad[5] = 250;  // type above range
  EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size(), &header).ok());

  bad = frame;
  const uint32_t huge = kMaxBodyBytes + 1;
  std::memcpy(bad.data() + 16, &huge, sizeof(huge));  // body_len
  EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size(), &header).ok());

  // Truncated header.
  EXPECT_FALSE(
      ParseFrameHeader(frame.data(), kFrameHeaderBytes - 1, &header).ok());
}

TEST(FrameBodyParserTest, RejectTruncationAndTrailingBytes) {
  const std::vector<uint8_t> frame = BuildAckFrame(AckBody{});
  const FrameHeader header = MustParseHeader(frame);
  AckBody ack;
  // One byte short.
  EXPECT_FALSE(ParseAckBody(frame.data() + kFrameHeaderBytes,
                            header.body_len - 1, &ack)
                   .ok());
  // Trailing byte: body parsers must consume exactly their grammar.
  std::vector<uint8_t> padded(frame.begin() + kFrameHeaderBytes, frame.end());
  padded.push_back(0);
  EXPECT_FALSE(ParseAckBody(padded.data(), padded.size(), &ack).ok());

  // UPDATE whose payload lengths overrun the body.
  UpdateFrameHeader meta;
  meta.dim1 = 1;
  const std::vector<uint8_t> p1 = {1, 2, 3, 4};
  meta.payload1_len = 4;
  const std::vector<uint8_t> update =
      BuildUpdateFrame(1, meta, p1.data(), nullptr);
  std::vector<uint8_t> body(update.begin() + kFrameHeaderBytes, update.end());
  // Lie: payload1_len = 5 with only 4 payload bytes present.
  const uint32_t five = 5;
  std::memcpy(body.data() + 36, &five, sizeof(five));
  UpdateBody parsed;
  EXPECT_FALSE(ParseUpdateBody(body.data(), body.size(), &parsed).ok());
}

TEST(FrameAssemblerTest, ByteAtATimeFragmentationDeliversWholeFrames) {
  std::vector<uint8_t> stream;
  const std::vector<uint8_t> f1 = BuildPullFrame(0xAA, 1);
  const std::vector<uint8_t> f2 = BuildHelloFrame(7);
  const std::vector<uint8_t> f3 = BuildByeFrame(0xBB);
  stream.insert(stream.end(), f1.begin(), f1.end());
  stream.insert(stream.end(), f2.begin(), f2.end());
  stream.insert(stream.end(), f3.begin(), f3.end());

  FrameAssembler assembler;
  std::vector<std::vector<uint8_t>> got;
  for (uint8_t byte : stream) {
    ASSERT_TRUE(assembler.Push(&byte, 1).ok());
    std::vector<uint8_t> frame;
    auto more = assembler.Next(&frame);
    ASSERT_TRUE(more.ok());
    if (*more) got.push_back(std::move(frame));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], f1);
  EXPECT_EQ(got[1], f2);
  EXPECT_EQ(got[2], f3);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameAssemblerTest, MultiFrameBufferDrainsInOrder) {
  const std::vector<uint8_t> f1 = BuildStandbyFrame(4);
  const std::vector<uint8_t> f2 = BuildPullFrame(3, 4);
  std::vector<uint8_t> both = f1;
  both.insert(both.end(), f2.begin(), f2.end());

  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Push(both.data(), both.size()).ok());
  std::vector<uint8_t> frame;
  ASSERT_TRUE(*assembler.Next(&frame));
  EXPECT_EQ(frame, f1);
  ASSERT_TRUE(*assembler.Next(&frame));
  EXPECT_EQ(frame, f2);
  EXPECT_FALSE(*assembler.Next(&frame));
}

TEST(FrameAssemblerTest, GarbagePoisonsTheStreamForever) {
  FrameAssembler assembler;
  const std::vector<uint8_t> garbage(kFrameHeaderBytes, 0x5A);
  EXPECT_FALSE(assembler.Push(garbage.data(), garbage.size()).ok());
  // Sticky: even a valid frame afterwards cannot resynchronize.
  const std::vector<uint8_t> good = BuildByeFrame(1);
  EXPECT_FALSE(assembler.Push(good.data(), good.size()).ok());
  std::vector<uint8_t> frame;
  EXPECT_FALSE(assembler.Next(&frame).ok());
}

TEST(FrameAssemblerTest, GoodFrameDeliversBeforePoisonReports) {
  // A complete valid frame followed by a corrupt header: the valid frame
  // must still come out; the poison surfaces on the next call.
  const std::vector<uint8_t> good = BuildPullFrame(9, 9);
  std::vector<uint8_t> stream = good;
  stream.insert(stream.end(), kFrameHeaderBytes, 0xFF);

  FrameAssembler assembler;
  // Push may report the poison already (the bad header is visible), but
  // the buffered good frame must still be retrievable.
  (void)assembler.Push(stream.data(), stream.size());
  std::vector<uint8_t> frame;
  auto first = assembler.Next(&frame);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);
  EXPECT_EQ(frame, good);
  EXPECT_FALSE(assembler.Next(&frame).ok());
}

TEST(FrameAssemblerTest, OversizedBodyLenRejectedBeforeBuffering) {
  std::vector<uint8_t> frame = BuildPullFrame(1, 1);
  const uint32_t huge = kMaxBodyBytes + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  FrameAssembler assembler;
  EXPECT_FALSE(assembler.Push(frame.data(), frame.size()).ok());
}

TEST(SessionTokenTest, NonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (uint32_t client = 0; client < 10000; ++client) {
    const uint64_t token = SessionTokenForClient(client);
    EXPECT_NE(token, 0u);
    EXPECT_TRUE(seen.insert(token).second) << "client " << client;
  }
  // Deterministic across calls — double runs must produce identical byte
  // streams.
  EXPECT_EQ(SessionTokenForClient(42), SessionTokenForClient(42));
}

}  // namespace
}  // namespace fedadmm::serve
