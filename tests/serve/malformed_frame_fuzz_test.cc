// Hostile-byte fuzzing of the serving frontend over the loopback
// transport: no byte sequence a client can send may abort (or deadlock)
// the server. Every malformed input must turn into an ERROR frame plus a
// ledger count, the offending stream must be poisoned, and a healthy
// session must still be able to complete the round afterwards. The ledger
// counts double as the determinism pin: the same hostile script twice
// yields identical deterministic ledger fields.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/codec.h"
#include "fl/round_context.h"
#include "serve/frame.h"
#include "serve/frontend.h"
#include "serve/loopback.h"
#include "util/rng.h"

namespace fedadmm::serve {
namespace {

constexpr int kNumClients = 8;
constexpr int64_t kDim = 4;

/// A frontend + loopback transport serving round 0 to the full cohort
/// with raw-fp32 payloads (no codec) unless one is injected.
struct Server {
  explicit Server(UpdateCodec* codec = nullptr) {
    FrontendOptions options;
    options.num_shards = 2;
    options.queue_capacity = 16;
    options.collect_timeout_seconds = 20.0;
    options.uplink_codec = codec;
    frontend = std::make_unique<Frontend>(options);
    EXPECT_TRUE(transport.Start(frontend.get()).ok());
    EXPECT_TRUE(frontend->StartServing(kNumClients, kDim).ok());
    std::vector<int> cohort(kNumClients);
    for (int i = 0; i < kNumClients; ++i) cohort[i] = i;
    theta.assign(static_cast<size_t>(kDim), 0.5f);
    EXPECT_TRUE(
        frontend->BeginRound(0, cohort, DownlinkPlan{}, theta).ok());
  }

  ~Server() {
    frontend->FinishServing();
    transport.Stop();
  }

  std::vector<float> theta;
  std::unique_ptr<Frontend> frontend;
  LoopbackTransport transport;
};

/// Polls until a frame arrives (worker replies are asynchronous) or 10s.
Result<std::vector<uint8_t>> AwaitFrame(ClientChannel* channel) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::vector<uint8_t> frame;
  for (;;) {
    FEDADMM_ASSIGN_OR_RETURN(const bool got,
                             channel->TryReceiveFrame(&frame));
    if (got) return {std::move(frame)};
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::IoError("fuzz test: no frame within 10s");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

/// Expects the next frame to have `type`; returns its body bytes.
std::vector<uint8_t> ExpectFrame(ClientChannel* channel, FrameType type) {
  auto frame = AwaitFrame(channel);
  EXPECT_TRUE(frame.ok()) << frame.status().message();
  if (!frame.ok()) return {};
  FrameHeader header;
  Status parsed = ParseFrameHeader(frame->data(), frame->size(), &header);
  EXPECT_TRUE(parsed.ok()) << parsed.message();
  EXPECT_EQ(static_cast<int>(header.type), static_cast<int>(type));
  return std::vector<uint8_t>(frame->begin() + kFrameHeaderBytes,
                              frame->end());
}

ErrorCode ExpectError(ClientChannel* channel) {
  const std::vector<uint8_t> body = ExpectFrame(channel, FrameType::kError);
  ErrorBody error;
  EXPECT_TRUE(ParseErrorBody(body.data(), body.size(), &error).ok());
  return error.code;
}

/// HELLO + WELCOME; returns the session token.
uint64_t Hello(ClientChannel* channel, uint32_t client) {
  EXPECT_TRUE(channel->Send(BuildHelloFrame(client)).ok());
  const std::vector<uint8_t> body =
      ExpectFrame(channel, FrameType::kWelcome);
  uint64_t session = 0;
  uint32_t echoed = 0;
  EXPECT_TRUE(
      ParseWelcomeBody(body.data(), body.size(), &session, &echoed).ok());
  EXPECT_EQ(echoed, client);
  EXPECT_EQ(session, SessionTokenForClient(client));
  return session;
}

std::vector<uint8_t> RawUpdateFrame(uint64_t session, uint32_t round,
                                    const std::vector<float>& delta) {
  UpdateFrameHeader meta;
  meta.round = round;
  meta.epochs_run = 1;
  meta.steps_run = 10;
  meta.train_loss = 0.25;
  meta.dim1 = delta.size();
  meta.payload1_len = static_cast<uint32_t>(delta.size() * sizeof(float));
  std::vector<uint8_t> payload(delta.size() * sizeof(float));
  std::memcpy(payload.data(), delta.data(), payload.size());
  return BuildUpdateFrame(session, meta, payload.data(), nullptr);
}

TEST(MalformedFrameFuzzTest, GarbageBytesPoisonTheStreamOnly) {
  Server server;
  auto channel = server.transport.Connect().ValueOrDie();

  Rng rng(0xFA22ull);
  std::vector<uint8_t> garbage(256);
  for (uint8_t& b : garbage) {
    b = static_cast<uint8_t>(rng.Uniform() * 255.0);
  }
  // Make sure it cannot accidentally be a valid header.
  garbage[0] = 0x00;
  ASSERT_TRUE(channel->Send(garbage).ok());
  EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kMalformed);

  // The stream is dead: even a valid HELLO gets no reply now.
  ASSERT_TRUE(channel->Send(BuildHelloFrame(0)).ok());
  std::vector<uint8_t> frame;
  EXPECT_FALSE(*channel->TryReceiveFrame(&frame));

  // A fresh connection is unaffected.
  auto healthy = server.transport.Connect().ValueOrDie();
  Hello(healthy.get(), 0);

  const FrontendLedger ledger = server.frontend->ledger();
  EXPECT_EQ(ledger.malformed_frames, 1);
  EXPECT_EQ(ledger.hello_count, 1);
}

TEST(MalformedFrameFuzzTest, EveryCorruptHeaderVariantIsRejected) {
  Server server;
  const std::vector<uint8_t> valid = BuildPullFrame(1, 0);

  int poisoned = 0;
  for (size_t flip = 0; flip < kFrameHeaderBytes; ++flip) {
    for (uint8_t delta : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      auto channel = server.transport.Connect().ValueOrDie();
      std::vector<uint8_t> frame = valid;
      frame[flip] ^= delta;
      ASSERT_TRUE(channel->Send(frame).ok());
      // Whatever comes back (ERROR for corrupt headers, STANDBY/ERROR for
      // frames that stayed structurally valid), the server survived; count
      // the poisons via the ledger below.
      std::vector<uint8_t> reply;
      (void)channel->TryReceiveFrame(&reply);
      ++poisoned;
    }
  }
  ASSERT_GT(poisoned, 0);

  // The server is still fully functional.
  auto channel = server.transport.Connect().ValueOrDie();
  Hello(channel.get(), 3);
  EXPECT_GE(server.frontend->ledger().malformed_frames, 1);
}

TEST(MalformedFrameFuzzTest, OversizedBodyLenCannotForceAllocation) {
  Server server;
  auto channel = server.transport.Connect().ValueOrDie();
  std::vector<uint8_t> frame = BuildPullFrame(1, 0);
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  ASSERT_TRUE(channel->Send(frame).ok());
  EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kMalformed);
}

TEST(MalformedFrameFuzzTest, TruncatedFrameNeverDelivers) {
  Server server;
  auto channel = server.transport.Connect().ValueOrDie();
  const std::vector<uint8_t> hello = BuildHelloFrame(2);
  // All but the last byte: no frame completes, nothing happens — then the
  // final byte arrives and the exchange finishes normally.
  ASSERT_TRUE(
      channel->Send({hello.begin(), hello.end() - 1}).ok());
  std::vector<uint8_t> reply;
  EXPECT_FALSE(*channel->TryReceiveFrame(&reply));
  ASSERT_TRUE(channel->Send({hello.end() - 1, hello.end()}).ok());
  ExpectFrame(channel.get(), FrameType::kWelcome);
}

TEST(MalformedFrameFuzzTest, SessionAndStateMachineViolations) {
  Server server;

  // UPDATE before HELLO: no session binding.
  {
    auto channel = server.transport.Connect().ValueOrDie();
    ASSERT_TRUE(
        channel->Send(RawUpdateFrame(0xDEAD, 0, {1, 2, 3, 4})).ok());
    EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kUnknownSession);
  }
  // Forged session token.
  {
    auto channel = server.transport.Connect().ValueOrDie();
    Hello(channel.get(), 1);
    ASSERT_TRUE(
        channel->Send(RawUpdateFrame(0xF0F0F0F0ull, 0, {1, 2, 3, 4})).ok());
    EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kUnknownSession);
  }
  // Out-of-range HELLO.
  {
    auto channel = server.transport.Connect().ValueOrDie();
    ASSERT_TRUE(channel->Send(BuildHelloFrame(kNumClients + 5)).ok());
    EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kProtocol);
  }
  // Client-bound frame type sent to the server.
  {
    auto channel = server.transport.Connect().ValueOrDie();
    const uint64_t session = Hello(channel.get(), 2);
    AckBody ack;
    std::vector<uint8_t> frame = BuildAckFrame(ack);
    std::memcpy(frame.data() + 8, &session, sizeof(session));
    ASSERT_TRUE(channel->Send(frame).ok());
    EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kProtocol);
  }
  // UPDATE for a round that is not open.
  {
    auto channel = server.transport.Connect().ValueOrDie();
    const uint64_t session = Hello(channel.get(), 3);
    ASSERT_TRUE(
        channel->Send(RawUpdateFrame(session, 7, {1, 2, 3, 4})).ok());
    EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kProtocol);
  }
  // Wrong payload size for the run shape.
  {
    auto channel = server.transport.Connect().ValueOrDie();
    const uint64_t session = Hello(channel.get(), 4);
    ASSERT_TRUE(channel->Send(RawUpdateFrame(session, 0, {1, 2})).ok());
    EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kMalformed);
  }

  const FrontendLedger ledger = server.frontend->ledger();
  EXPECT_EQ(ledger.protocol_errors, 5);
  EXPECT_EQ(ledger.malformed_frames, 1);
  EXPECT_EQ(ledger.hello_count, 4);
}

TEST(MalformedFrameFuzzTest, DuplicateUpdateIsAProtocolError) {
  Server server;
  auto channel = server.transport.Connect().ValueOrDie();
  const uint64_t session = Hello(channel.get(), 0);
  const std::vector<uint8_t> update =
      RawUpdateFrame(session, 0, {1, 2, 3, 4});
  ASSERT_TRUE(channel->Send(update).ok());
  ExpectFrame(channel.get(), FrameType::kAck);
  ASSERT_TRUE(channel->Send(update).ok());
  EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kProtocol);
  EXPECT_EQ(server.frontend->ledger().protocol_errors, 1);
}

TEST(MalformedFrameFuzzTest, CorruptCodecPayloadResolvesWaveWithError) {
  // Structurally valid UPDATE whose q8 payload hides a NaN chunk scale:
  // admission passes (sizes match), the shard worker's TryDecode rejects,
  // the client gets ERROR(kDecode), and CollectWave returns the sticky
  // Status instead of deadlocking or aborting.
  auto codec = MakeUpdateCodec("q8").ValueOrDie();
  Server server(codec.get());
  auto channel = server.transport.Connect().ValueOrDie();
  const uint64_t session = Hello(channel.get(), 5);

  Payload good = codec->Encode(0, {1.0f, -2.0f, 3.0f, -4.0f}, nullptr);
  ASSERT_EQ(static_cast<int64_t>(good.bytes.size()), codec->WireBytes(kDim));
  const float evil = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(good.bytes.data() + 8, &evil, sizeof(evil));

  UpdateFrameHeader meta;
  meta.round = 0;
  meta.steps_run = 10;
  meta.dim1 = static_cast<uint64_t>(kDim);
  meta.payload1_len = static_cast<uint32_t>(good.bytes.size());
  ASSERT_TRUE(channel
                  ->Send(BuildUpdateFrame(session, meta, good.bytes.data(),
                                          nullptr))
                  .ok());
  EXPECT_EQ(ExpectError(channel.get()), ErrorCode::kDecode);

  auto wave = server.frontend->CollectWave(0);
  EXPECT_FALSE(wave.ok());
  EXPECT_EQ(server.frontend->ledger().decode_errors, 1);
}

TEST(MalformedFrameFuzzTest, HealthyRoundCompletesAfterFuzzing) {
  Server server;

  // Fuzz a few connections first.
  for (int i = 0; i < 4; ++i) {
    auto channel = server.transport.Connect().ValueOrDie();
    std::vector<uint8_t> junk(64, static_cast<uint8_t>(0x10 + i));
    ASSERT_TRUE(channel->Send(junk).ok());
    ExpectError(channel.get());
  }

  // Then serve the full cohort cleanly.
  std::vector<std::unique_ptr<ClientChannel>> channels;
  for (int client = 0; client < kNumClients; ++client) {
    auto channel = server.transport.Connect().ValueOrDie();
    const uint64_t session =
        Hello(channel.get(), static_cast<uint32_t>(client));
    // PULL the broadcast and check the raw θ round-trips.
    ASSERT_TRUE(channel->Send(BuildPullFrame(session, 0)).ok());
    const std::vector<uint8_t> body =
        ExpectFrame(channel.get(), FrameType::kModel);
    ModelBody model;
    ASSERT_TRUE(ParseModelBody(body.data(), body.size(), &model).ok());
    EXPECT_FALSE(model.encoded);
    ASSERT_EQ(model.dim, static_cast<uint64_t>(kDim));
    std::vector<float> theta(static_cast<size_t>(kDim));
    std::memcpy(theta.data(), model.payload, theta.size() * sizeof(float));
    EXPECT_EQ(theta, server.theta);

    const std::vector<float> delta = {float(client), 1.0f, -1.0f, 0.5f};
    ASSERT_TRUE(channel->Send(RawUpdateFrame(session, 0, delta)).ok());
    const std::vector<uint8_t> ack_body =
        ExpectFrame(channel.get(), FrameType::kAck);
    AckBody ack;
    ASSERT_TRUE(ParseAckBody(ack_body.data(), ack_body.size(), &ack).ok());
    EXPECT_EQ(ack.status, AckStatus::kAccepted);  // no system model
    channels.push_back(std::move(channel));
  }

  auto wave = server.frontend->CollectWave(0);
  ASSERT_TRUE(wave.ok()) << wave.status().message();
  ASSERT_EQ(wave->size(), static_cast<size_t>(kNumClients));
  for (int client = 0; client < kNumClients; ++client) {
    const UpdateMessage& msg = (*wave)[static_cast<size_t>(client)];
    EXPECT_EQ(msg.client_id, client);
    ASSERT_EQ(msg.delta.size(), static_cast<size_t>(kDim));
    EXPECT_EQ(msg.delta[0], float(client));
    EXPECT_EQ(msg.wire_bytes, -1);  // raw fp32 path
    EXPECT_EQ(msg.steps_run, 10);
  }

  const FrontendLedger ledger = server.frontend->ledger();
  EXPECT_EQ(ledger.hello_count, kNumClients);
  EXPECT_EQ(ledger.model_frames, kNumClients);
  EXPECT_EQ(ledger.acks_accepted, kNumClients);
  EXPECT_EQ(ledger.malformed_frames, 4);
  EXPECT_EQ(ledger.peak_sessions, kNumClients);
}

TEST(MalformedFrameFuzzTest, HostileScriptLedgerIsDeterministic) {
  // The same hostile + healthy script twice: every deterministic ledger
  // field must match bit for bit.
  auto run = [] {
    Server server;
    {
      auto channel = server.transport.Connect().ValueOrDie();
      std::vector<uint8_t> junk(100, 0x77);
      EXPECT_TRUE(channel->Send(junk).ok());
      ExpectError(channel.get());
    }
    for (int client = 0; client < kNumClients; ++client) {
      auto channel = server.transport.Connect().ValueOrDie();
      const uint64_t session =
          Hello(channel.get(), static_cast<uint32_t>(client));
      EXPECT_TRUE(channel->Send(BuildPullFrame(session, 0)).ok());
      ExpectFrame(channel.get(), FrameType::kModel);
      EXPECT_TRUE(
          channel->Send(RawUpdateFrame(session, 0, {1, 2, 3, 4})).ok());
      ExpectFrame(channel.get(), FrameType::kAck);
    }
    EXPECT_TRUE(server.frontend->CollectWave(0).ok());
    return server.frontend->ledger();
  };

  const FrontendLedger a = run();
  const FrontendLedger b = run();
  EXPECT_EQ(a.hello_count, b.hello_count);
  EXPECT_EQ(a.model_frames, b.model_frames);
  EXPECT_EQ(a.model_payload_bytes, b.model_payload_bytes);
  EXPECT_EQ(a.acks_accepted, b.acks_accepted);
  EXPECT_EQ(a.acks_partial, b.acks_partial);
  EXPECT_EQ(a.acks_rejected, b.acks_rejected);
  EXPECT_EQ(a.ingested_payload_bytes, b.ingested_payload_bytes);
  EXPECT_EQ(a.malformed_frames, b.malformed_frames);
  EXPECT_EQ(a.protocol_errors, b.protocol_errors);
  EXPECT_EQ(a.decode_errors, b.decode_errors);
}

}  // namespace
}  // namespace fedadmm::serve
