/// Section III-B of the paper: FedADMM's local training problem reduces to
/// FedProx's when y_i ≡ 0, and to FedAvg's when additionally ρ = 0. With the
/// shared local SGD loop and aligned RNG streams, the reductions hold
/// *iterate-for-iterate*, which these property tests verify.

#include <gtest/gtest.h>

#include "core/fedadmm.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/quadratic_problem.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 4;
  spec.dim = 7;
  spec.heterogeneity = 2.0;
  spec.seed = 71;
  return spec;
}

AlgorithmContext Ctx(const QuadraticProblem& p) {
  AlgorithmContext ctx;
  ctx.num_clients = p.num_clients();
  ctx.dim = p.dim();
  return ctx;
}

LocalTrainSpec Local(int batch_size) {
  LocalTrainSpec local;
  local.learning_rate = 0.04f;
  local.batch_size = batch_size;
  local.max_epochs = 3;
  local.variable_epochs = false;
  return local;
}

class ReductionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReductionSweep, FrozenDualsReduceToFedProxLocalSolve) {
  const int batch_size = GetParam();
  QuadraticProblem problem(Spec());
  const float rho = 0.7f;

  FedAdmmOptions options;
  options.local = Local(batch_size);
  options.rho = StepSchedule(rho);
  options.freeze_duals = true;
  // FedProx always restarts local training from θ.
  options.init = FedAdmmOptions::LocalInit::kGlobalModel;
  FedAdmm admm(options);
  FedProx prox(Local(batch_size), rho);

  std::vector<float> theta(7, 0.4f);
  admm.Setup(Ctx(problem), theta);
  prox.Setup(Ctx(problem), theta);

  for (int client = 0; client < problem.num_clients(); ++client) {
    auto l1 = problem.MakeLocalProblem(client, 0);
    auto l2 = problem.MakeLocalProblem(client, 0);
    admm.ClientUpdate(client, 0, theta, l1.get(), Rng(9));
    const UpdateMessage m_prox =
        prox.ClientUpdate(client, 0, theta, l2.get(), Rng(9));
    // FedADMM's stored local model equals FedProx's final iterate θ + Δ.
    const auto& w_admm = admm.client_model(client);
    for (size_t k = 0; k < w_admm.size(); ++k) {
      EXPECT_NEAR(w_admm[k], theta[k] + m_prox.delta[k], 1e-6f)
          << "client " << client << " coord " << k;
    }
  }
}

TEST_P(ReductionSweep, FrozenDualsAndTinyRhoReduceToFedAvgLocalSolve) {
  const int batch_size = GetParam();
  QuadraticProblem problem(Spec());
  // ρ → 0 limit: use an exactly-zero proximal pull via a tiny rho. FedADMM
  // requires rho > 0 for the augmented model, so compare local iterates with
  // rho small enough to be numerically irrelevant to the trajectory.
  const float rho = 1e-8f;

  FedAdmmOptions options;
  options.local = Local(batch_size);
  options.rho = StepSchedule(rho);
  options.freeze_duals = true;
  options.init = FedAdmmOptions::LocalInit::kGlobalModel;
  FedAdmm admm(options);
  FedAvg avg(Local(batch_size));

  std::vector<float> theta(7, -0.2f);
  admm.Setup(Ctx(problem), theta);
  avg.Setup(Ctx(problem), theta);

  for (int client = 0; client < problem.num_clients(); ++client) {
    auto l1 = problem.MakeLocalProblem(client, 0);
    auto l2 = problem.MakeLocalProblem(client, 0);
    admm.ClientUpdate(client, 0, theta, l1.get(), Rng(13));
    const UpdateMessage m_avg =
        avg.ClientUpdate(client, 0, theta, l2.get(), Rng(13));
    const auto& w_admm = admm.client_model(client);
    for (size_t k = 0; k < w_admm.size(); ++k) {
      EXPECT_NEAR(w_admm[k], theta[k] + m_avg.delta[k], 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchModes, ReductionSweep,
                         ::testing::Values(0, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0
                                      ? std::string("full_batch")
                                      : "batch_" + std::to_string(info.param);
                         });

TEST(ReductionTest, ActiveDualsDivergeFromFedProx) {
  // Sanity: with live duals (second round onward) FedADMM's local solution
  // genuinely differs from FedProx's — the dual term matters.
  QuadraticProblem problem(Spec());
  const float rho = 0.7f;
  FedAdmmOptions options;
  options.local = Local(0);
  options.rho = StepSchedule(rho);
  options.init = FedAdmmOptions::LocalInit::kGlobalModel;
  FedAdmm admm(options);
  FedProx prox(Local(0), rho);

  std::vector<float> theta(7, 0.4f);
  admm.Setup(Ctx(problem), theta);
  prox.Setup(Ctx(problem), theta);

  // Round 0 builds non-zero duals; round 1 must differ.
  for (int round = 0; round < 2; ++round) {
    auto l1 = problem.MakeLocalProblem(0, 0);
    auto l2 = problem.MakeLocalProblem(0, 0);
    admm.ClientUpdate(0, round, theta, l1.get(), Rng(17 + round));
    const UpdateMessage m_prox =
        prox.ClientUpdate(0, round, theta, l2.get(), Rng(17 + round));
    if (round == 1) {
      double diff = 0.0;
      const auto& w_admm = admm.client_model(0);
      for (size_t k = 0; k < w_admm.size(); ++k) {
        diff += std::fabs(w_admm[k] - (theta[k] + m_prox.delta[k]));
      }
      EXPECT_GT(diff, 1e-4);
    }
  }
}

}  // namespace
}  // namespace fedadmm
