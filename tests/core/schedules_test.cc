#include "core/schedules.h"

#include <gtest/gtest.h>

#include <limits>

namespace fedadmm {
namespace {

TEST(StepScheduleTest, ConstantByDefault) {
  StepSchedule s(0.5);
  EXPECT_TRUE(s.is_constant());
  EXPECT_DOUBLE_EQ(s.At(0), 0.5);
  EXPECT_DOUBLE_EQ(s.At(1000), 0.5);
}

TEST(StepScheduleTest, SingleSwitch) {
  // Fig. 6's experiment: η = 1.0, dropped at round 60.
  StepSchedule s(1.0);
  s.AddSwitch(60, 0.5);
  EXPECT_DOUBLE_EQ(s.At(0), 1.0);
  EXPECT_DOUBLE_EQ(s.At(59), 1.0);
  EXPECT_DOUBLE_EQ(s.At(60), 0.5);
  EXPECT_DOUBLE_EQ(s.At(100), 0.5);
  EXPECT_FALSE(s.is_constant());
}

TEST(StepScheduleTest, MultipleSwitches) {
  StepSchedule s(0.01);
  s.AddSwitch(10, 0.1).AddSwitch(20, 1.0);
  EXPECT_DOUBLE_EQ(s.At(9), 0.01);
  EXPECT_DOUBLE_EQ(s.At(10), 0.1);
  EXPECT_DOUBLE_EQ(s.At(19), 0.1);
  EXPECT_DOUBLE_EQ(s.At(20), 1.0);
}

TEST(StepScheduleTest, InitialAccessor) {
  StepSchedule s(0.25);
  s.AddSwitch(5, 2.0);
  EXPECT_DOUBLE_EQ(s.initial(), 0.25);
}

TEST(StepScheduleTest, ToStringListsSwitches) {
  StepSchedule s(1.0);
  s.AddSwitch(60, 0.5);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("0.5"), std::string::npos);
  EXPECT_NE(str.find("60"), std::string::npos);
}

TEST(StepScheduleTest, SwitchAtRoundZeroOverridesInitial) {
  StepSchedule s(1.0);
  s.AddSwitch(0, 0.25);
  EXPECT_DOUBLE_EQ(s.At(0), 0.25);
  EXPECT_DOUBLE_EQ(s.At(1), 0.25);
  // Rounds before the switch (never scheduled in practice) see the initial.
  EXPECT_DOUBLE_EQ(s.At(-1), 1.0);
}

TEST(StepScheduleTest, NegativeRoundsSeeInitialValue) {
  StepSchedule s(0.75);
  s.AddSwitch(10, 0.1);
  EXPECT_DOUBLE_EQ(s.At(-1), 0.75);
  EXPECT_DOUBLE_EQ(s.At(-1000000), 0.75);
}

TEST(StepScheduleTest, HugeRoundsSeeLastSwitch) {
  StepSchedule s(1.0);
  s.AddSwitch(10, 0.5).AddSwitch(1000, 0.05);
  EXPECT_DOUBLE_EQ(s.At(1000000000), 0.05);
  EXPECT_DOUBLE_EQ(s.At(std::numeric_limits<int>::max()), 0.05);
}

TEST(StepScheduleTest, ConstantVsDecayingAgreeBeforeFirstSwitch) {
  StepSchedule constant(1.0);
  StepSchedule decaying(1.0);
  decaying.AddSwitch(50, 0.5).AddSwitch(80, 0.1);
  for (int round = 0; round < 50; ++round) {
    EXPECT_DOUBLE_EQ(constant.At(round), decaying.At(round));
  }
  EXPECT_TRUE(constant.is_constant());
  EXPECT_FALSE(decaying.is_constant());
  // Once decay kicks in, each segment holds its value piecewise-constant.
  EXPECT_DOUBLE_EQ(decaying.At(79), 0.5);
  EXPECT_DOUBLE_EQ(decaying.At(80), 0.1);
  EXPECT_DOUBLE_EQ(constant.At(80), 1.0);
}

TEST(StepScheduleTest, DefaultConstructedIsConstantOne) {
  StepSchedule s;
  EXPECT_TRUE(s.is_constant());
  EXPECT_DOUBLE_EQ(s.At(0), 1.0);
  EXPECT_DOUBLE_EQ(s.initial(), 1.0);
}

TEST(StepScheduleTest, OutOfOrderSwitchAborts) {
  StepSchedule s(1.0);
  s.AddSwitch(10, 0.5);
  EXPECT_DEATH(s.AddSwitch(5, 0.1), "increasing round order");
}

}  // namespace
}  // namespace fedadmm
