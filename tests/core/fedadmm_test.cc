#include "core/fedadmm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "fl/quadratic_problem.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 6;
  spec.dim = 8;
  spec.heterogeneity = 1.5;
  spec.seed = 61;
  return spec;
}

AlgorithmContext Ctx(const QuadraticProblem& p) {
  AlgorithmContext ctx;
  ctx.num_clients = p.num_clients();
  ctx.dim = p.dim();
  return ctx;
}

FedAdmmOptions Options(float rho = 1.0f) {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 0;
  options.local.max_epochs = 4;
  options.local.variable_epochs = false;
  options.rho = StepSchedule(rho);
  return options;
}

TEST(FedAdmmTest, SetupInitializesPrimalDualState) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  std::vector<float> theta(8, 0.7f);
  algo.Setup(Ctx(problem), theta);
  for (int i = 0; i < problem.num_clients(); ++i) {
    const std::span<const float> w0 = algo.client_model(i);
    EXPECT_TRUE(std::equal(w0.begin(), w0.end(), theta.begin(),
                           theta.end()));                 // w_i⁰ = θ⁰
    EXPECT_EQ(vec::L2Norm(algo.client_dual(i)), 0.0);     // y_i⁰ = 0
  }
}

TEST(FedAdmmTest, DualUpdateFollowsLine20) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options(2.0f));
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);

  auto lp = problem.MakeLocalProblem(1, 0);
  algo.ClientUpdate(1, 0, theta, lp.get(), Rng(1));
  const auto& w = algo.client_model(1);
  const auto& y = algo.client_dual(1);
  // With y⁰ = 0: y¹ = ρ (w¹ − θ).
  for (size_t k = 0; k < y.size(); ++k) {
    EXPECT_NEAR(y[k], 2.0f * (w[k] - theta[k]), 1e-5f);
  }
}

TEST(FedAdmmTest, DeltaIsAugmentedModelDifference) {
  QuadraticProblem problem(Spec());
  const float rho = 1.5f;
  FedAdmm algo(Options(rho));
  std::vector<float> theta(8, 0.3f);
  algo.Setup(Ctx(problem), theta);

  // Capture the pre-update augmented model.
  std::vector<float> u_prev(8);
  for (size_t k = 0; k < 8; ++k) {
    u_prev[k] = algo.client_model(2)[k] + algo.client_dual(2)[k] / rho;
  }
  auto lp = problem.MakeLocalProblem(2, 0);
  const UpdateMessage msg = algo.ClientUpdate(2, 0, theta, lp.get(), Rng(2));
  for (size_t k = 0; k < 8; ++k) {
    const float u_new =
        algo.client_model(2)[k] + algo.client_dual(2)[k] / rho;
    EXPECT_NEAR(msg.delta[k], u_new - u_prev[k], 1e-5f);
  }
}

TEST(FedAdmmTest, ServerUpdateFollowsEq5) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options();
  options.eta = StepSchedule(0.8);
  FedAdmm algo(options);
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);

  UpdateMessage m1, m2;
  m1.delta.assign(8, 1.0f);
  m2.delta.assign(8, 3.0f);
  algo.ServerUpdate({m1, m2}, 0, &theta);
  // θ += (0.8 / 2) * (1 + 3) = 1.6.
  for (float v : theta) EXPECT_FLOAT_EQ(v, 1.6f);
}

TEST(FedAdmmTest, EtaActiveFractionUsesSelectedOverTotal) {
  QuadraticProblem problem(Spec());  // m = 6
  FedAdmmOptions options = Options();
  options.eta_active_fraction = true;
  FedAdmm algo(options);
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);

  UpdateMessage m1, m2, m3;
  for (auto* m : {&m1, &m2, &m3}) m->delta.assign(8, 2.0f);
  algo.ServerUpdate({m1, m2, m3}, 0, &theta);
  // η = 3/6; θ += (0.5/3) * 6 = 1.
  for (float v : theta) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(FedAdmmTest, RhoScheduleTakesEffectAtSwitchRound) {
  FedAdmmOptions options = Options(0.01f);
  options.rho = StepSchedule(0.01);
  options.rho.AddSwitch(30, 0.1);
  FedAdmm algo(options);
  EXPECT_FLOAT_EQ(algo.RhoAt(0), 0.01f);
  EXPECT_FLOAT_EQ(algo.RhoAt(29), 0.01f);
  EXPECT_FLOAT_EQ(algo.RhoAt(30), 0.1f);
}

TEST(FedAdmmTest, GlobalInitIgnoresStoredClientModel) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions warm = Options();
  warm.init = FedAdmmOptions::LocalInit::kClientModel;
  FedAdmmOptions cold = Options();
  cold.init = FedAdmmOptions::LocalInit::kGlobalModel;

  FedAdmm algo_warm(warm), algo_cold(cold);
  std::vector<float> theta(8, 0.0f);
  algo_warm.Setup(Ctx(problem), theta);
  algo_cold.Setup(Ctx(problem), theta);

  // First round from identical state: trajectories match (w_i = θ).
  {
    auto l1 = problem.MakeLocalProblem(0, 0);
    auto l2 = problem.MakeLocalProblem(0, 0);
    const auto m1 = algo_warm.ClientUpdate(0, 0, theta, l1.get(), Rng(3));
    const auto m2 = algo_cold.ClientUpdate(0, 0, theta, l2.get(), Rng(3));
    for (size_t k = 0; k < 8; ++k) EXPECT_NEAR(m1.delta[k], m2.delta[k], 1e-6f);
  }
  // Second round with a different θ: warm start trains from stored w_i,
  // global init retrains from θ — different iterates.
  std::vector<float> theta2(8, 0.5f);
  auto l1 = problem.MakeLocalProblem(0, 0);
  auto l2 = problem.MakeLocalProblem(0, 0);
  algo_warm.ClientUpdate(0, 1, theta2, l1.get(), Rng(4));
  algo_cold.ClientUpdate(0, 1, theta2, l2.get(), Rng(4));
  const std::span<const float> w_warm = algo_warm.client_model(0);
  const std::span<const float> w_cold = algo_cold.client_model(0);
  EXPECT_FALSE(
      std::equal(w_warm.begin(), w_warm.end(), w_cold.begin(), w_cold.end()));
}

TEST(FedAdmmTest, FrozenDualsStayZero) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options();
  options.freeze_duals = true;
  FedAdmm algo(options);
  std::vector<float> theta(8, 0.1f);
  algo.Setup(Ctx(problem), theta);
  auto lp = problem.MakeLocalProblem(4, 0);
  algo.ClientUpdate(4, 0, theta, lp.get(), Rng(5));
  EXPECT_EQ(vec::L2Norm(algo.client_dual(4)), 0.0);
}

TEST(FedAdmmTest, UploadCostMatchesFedAvg) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);
  auto lp = problem.MakeLocalProblem(0, 0);
  const UpdateMessage msg = algo.ClientUpdate(0, 0, theta, lp.get(), Rng(6));
  // Single d-vector up and down: identical cost to FedAvg/FedProx (paper
  // Section III-B), despite storing the extra dual.
  EXPECT_EQ(msg.UploadBytes(), 8 * 4);
  EXPECT_EQ(algo.DownloadBytesPerClient(), 8 * 4);
  EXPECT_TRUE(msg.delta2.empty());
}

TEST(FedAdmmTest, VariableEpochsWithinBounds) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options();
  options.local.max_epochs = 7;
  options.local.variable_epochs = true;
  FedAdmm algo(options);
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);
  for (int round = 0; round < 15; ++round) {
    auto lp = problem.MakeLocalProblem(round % 6, 0);
    const UpdateMessage msg = algo.ClientUpdate(round % 6, round, theta,
                                                lp.get(), Rng(100 + round));
    EXPECT_GE(msg.epochs_run, 1);
    EXPECT_LE(msg.epochs_run, 7);
  }
}

}  // namespace
}  // namespace fedadmm
