#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 5;
  spec.dim = 6;
  spec.heterogeneity = 1.0;
  spec.seed = 77;
  return spec;
}

AlgorithmContext Ctx(const QuadraticProblem& p) {
  AlgorithmContext ctx;
  ctx.num_clients = p.num_clients();
  ctx.dim = p.dim();
  return ctx;
}

FedAdmmOptions Options(float rho) {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 0;
  options.local.max_epochs = 3;
  options.local.variable_epochs = false;
  options.rho = StepSchedule(rho);
  return options;
}

TEST(DualUpdateTest, DualAscentAccumulatesAcrossRounds) {
  QuadraticProblem problem(Spec());
  const float rho = 1.25f;
  FedAdmm algo(Options(rho));
  std::vector<float> theta(6, 0.2f);
  algo.Setup(Ctx(problem), theta);

  // Round 0: y⁰ = 0, so y¹ = ρ(w¹ − θ⁰).
  auto lp0 = problem.MakeLocalProblem(0, 0);
  algo.ClientUpdate(0, 0, theta, lp0.get(), Rng(11));
  const std::span<const float> dual0 = algo.client_dual(0);
  std::vector<float> y_after_r0(dual0.begin(), dual0.end());
  for (size_t k = 0; k < y_after_r0.size(); ++k) {
    EXPECT_NEAR(y_after_r0[k], rho * (algo.client_model(0)[k] - theta[k]),
                1e-5f);
  }

  // Round 1 with a different θ: y² = y¹ + ρ(w² − θ¹) — the ascent
  // accumulates rather than restarting from zero.
  std::vector<float> theta1(6, -0.4f);
  auto lp1 = problem.MakeLocalProblem(0, 1);
  algo.ClientUpdate(0, 1, theta1, lp1.get(), Rng(12));
  const auto& y = algo.client_dual(0);
  for (size_t k = 0; k < y.size(); ++k) {
    EXPECT_NEAR(y[k],
                y_after_r0[k] + rho * (algo.client_model(0)[k] - theta1[k]),
                1e-5f);
  }
}

TEST(DualUpdateTest, DualAscentUsesRhoInEffectAtRound) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options(0.5f);
  options.rho.AddSwitch(3, 2.0);  // Fig. 9-style dynamic ρ.
  FedAdmm algo(options);
  std::vector<float> theta(6, 0.0f);
  algo.Setup(Ctx(problem), theta);

  auto lp = problem.MakeLocalProblem(2, 3);
  algo.ClientUpdate(2, /*round=*/3, theta, lp.get(), Rng(13));
  const auto& w = algo.client_model(2);
  const auto& y = algo.client_dual(2);
  // y⁰ = 0 and the round-3 ρ is 2.0, so y = 2.0 (w − θ).
  for (size_t k = 0; k < y.size(); ++k) {
    EXPECT_NEAR(y[k], 2.0f * (w[k] - theta[k]), 1e-5f);
  }
}

TEST(DualUpdateTest, FreezeDualsKeepsEveryDualIdenticallyZero) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options(1.0f);
  options.freeze_duals = true;  // the FedProx reduction knob
  FedAdmm algo(options);
  std::vector<float> theta(6, 0.3f);
  algo.Setup(Ctx(problem), theta);

  // Several rounds over every client: duals stay exactly zero even though
  // the primal iterates move away from θ.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < problem.num_clients(); ++i) {
      auto lp = problem.MakeLocalProblem(i, round);
      algo.ClientUpdate(i, round, theta, lp.get(), Rng(100 + round * 10 + i));
      for (float v : algo.client_dual(i)) EXPECT_EQ(v, 0.0f);
      EXPECT_EQ(vec::L2Norm(algo.client_dual(i)), 0.0);
    }
  }
  EXPECT_FALSE(std::equal(algo.client_model(0).begin(),
                          algo.client_model(0).end(), theta.begin(),
                          theta.end()));
}

TEST(DualUpdateTest, FrozenDualDeltaIsPlainModelDelta) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options(1.0f);
  options.freeze_duals = true;
  FedAdmm algo(options);
  std::vector<float> theta(6, 0.0f);
  algo.Setup(Ctx(problem), theta);

  // With y ≡ 0 the augmented model u = w, so Δ = w⁺ − w.
  const std::span<const float> w_view = algo.client_model(1);
  std::vector<float> w_prev(w_view.begin(), w_view.end());
  auto lp = problem.MakeLocalProblem(1, 0);
  const UpdateMessage msg = algo.ClientUpdate(1, 0, theta, lp.get(), Rng(14));
  for (size_t k = 0; k < msg.delta.size(); ++k) {
    EXPECT_NEAR(msg.delta[k], algo.client_model(1)[k] - w_prev[k], 1e-6f);
  }
}

}  // namespace
}  // namespace fedadmm
