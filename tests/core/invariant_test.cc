/// Eq. (20) of the paper's proof: with η = |S_t|/m and the canonical
/// initialization (w_i⁰ = θ⁰, y_i⁰ = 0), the server model equals the mean of
/// all m augmented models u_i = w_i + y_i/ρ at every round, which makes
/// ∇_θ L vanish identically. These tests exercise the invariant through the
/// full simulator under partial participation.

#include <gtest/gtest.h>

#include "core/fedadmm.h"
#include "core/optimality.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 8;
  spec.dim = 6;
  spec.heterogeneity = 1.5;
  spec.seed = 81;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 0;
  options.local.max_epochs = 3;
  options.local.variable_epochs = false;
  options.rho = StepSchedule(1.0);
  options.eta_active_fraction = true;  // η = |S_t|/m
  return options;
}

TEST(TrackingInvariantTest, ThetaEqualsMeanAugmentedModelEveryRound) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(problem.num_clients(), 0.25);

  SimulationConfig config;
  config.max_rounds = 30;
  config.seed = 3;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);

  // Validate after every round via the observer.
  int checked = 0;
  sim.set_observer([&](const RoundRecord& record) {
    const std::vector<float> mean = algo.MeanAugmentedModel(record.round);
    const auto& theta = sim.theta();
    ASSERT_EQ(mean.size(), theta.size());
    for (size_t k = 0; k < mean.size(); ++k) {
      EXPECT_NEAR(theta[k], mean[k], 5e-4f)
          << "round " << record.round << " coord " << k;
    }
    ++checked;
  });
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(checked, 30);
}

TEST(TrackingInvariantTest, GradThetaTermOfVtIsZeroUnderEq20) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(problem.num_clients(), 0.5);
  SimulationConfig config;
  config.max_rounds = 10;
  config.seed = 4;
  Simulation sim(&problem, &algo, &selector, config);
  ASSERT_TRUE(sim.Run().ok());

  const OptimalityGap gap =
      ComputeOptimalityGap(&problem, algo, sim.theta(), /*round=*/9);
  // ∇_θ L = m ρ (θ − mean(u)) = 0 under the invariant (up to float error).
  EXPECT_LT(gap.grad_theta_sq, 1e-4);
}

TEST(TrackingInvariantTest, BrokenWithConstantEtaNotEqualFraction) {
  // Negative control: with η = 1 ≠ |S|/m the invariant must NOT hold —
  // otherwise the test above is vacuous.
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options();
  options.eta_active_fraction = false;
  options.eta = StepSchedule(1.0);
  FedAdmm algo(options);
  UniformFractionSelector selector(problem.num_clients(), 0.25);
  SimulationConfig config;
  config.max_rounds = 10;
  config.seed = 5;
  Simulation sim(&problem, &algo, &selector, config);
  ASSERT_TRUE(sim.Run().ok());

  const std::vector<float> mean = algo.MeanAugmentedModel(9);
  double diff = 0.0;
  for (size_t k = 0; k < mean.size(); ++k) {
    diff += std::fabs(mean[k] - sim.theta()[k]);
  }
  EXPECT_GT(diff, 1e-3);
}

/// Property sweep: the Eq.-20 invariant is independent of ρ — it follows
/// purely from the message/update algebra, so it must hold for any ρ > 0.
class InvariantRhoSweep : public ::testing::TestWithParam<double> {};

TEST_P(InvariantRhoSweep, ThetaTracksMeanAugmentedModel) {
  QuadraticProblem problem(Spec());
  FedAdmmOptions options = Options();
  options.rho = StepSchedule(GetParam());
  FedAdmm algo(options);
  UniformFractionSelector selector(problem.num_clients(), 0.5);
  SimulationConfig config;
  config.max_rounds = 15;
  config.seed = 12;
  Simulation sim(&problem, &algo, &selector, config);
  ASSERT_TRUE(sim.Run().ok());
  const std::vector<float> mean = algo.MeanAugmentedModel(14);
  for (size_t k = 0; k < mean.size(); ++k) {
    EXPECT_NEAR(sim.theta()[k], mean[k], 5e-3f) << "rho " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Rho, InvariantRhoSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

TEST(TrackingInvariantTest, HoldsUnderBernoulliActivation) {
  // Remark 2: the activation scheme is arbitrary; the invariant depends only
  // on η = |S_t|/m, not on how S_t is drawn.
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  std::vector<double> probs;
  for (int i = 0; i < problem.num_clients(); ++i) {
    probs.push_back(0.1 + 0.1 * i);  // heterogeneous participation
  }
  BernoulliSelector selector(std::move(probs));
  SimulationConfig config;
  config.max_rounds = 25;
  config.seed = 6;
  Simulation sim(&problem, &algo, &selector, config);
  ASSERT_TRUE(sim.Run().ok());

  const std::vector<float> mean = algo.MeanAugmentedModel(24);
  for (size_t k = 0; k < mean.size(); ++k) {
    EXPECT_NEAR(sim.theta()[k], mean[k], 5e-4f);
  }
}

}  // namespace
}  // namespace fedadmm
