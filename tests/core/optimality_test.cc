#include "core/optimality.h"

#include <gtest/gtest.h>

#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 6;
  spec.dim = 6;
  spec.heterogeneity = 1.0;
  spec.seed = 101;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 0;
  options.local.max_epochs = 6;
  options.local.variable_epochs = false;
  options.rho = StepSchedule(2.0);
  options.eta_active_fraction = true;
  return options;
}

OptimalityGap GapAfter(int rounds, uint64_t seed) {
  // Fresh problem/algorithm per call keeps runs independent.
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  Simulation sim(&problem, &algo, &selector, config);
  EXPECT_TRUE(sim.Run().ok());
  return ComputeOptimalityGap(&problem, algo, sim.theta(), rounds - 1);
}

TEST(OptimalityGapTest, AllTermsNonNegative) {
  const OptimalityGap gap = GapAfter(3, 1);
  EXPECT_GE(gap.grad_theta_sq, 0.0);
  EXPECT_GE(gap.grad_w_sq, 0.0);
  EXPECT_GE(gap.consensus_sq, 0.0);
  EXPECT_DOUBLE_EQ(gap.total(),
                   gap.grad_theta_sq + gap.grad_w_sq + gap.consensus_sq);
}

TEST(OptimalityGapTest, DecreasesWithTraining) {
  // Theorem 1: the running average of V_t is O(1/T) + ε floor; on a convex
  // problem the end-of-run gap after many rounds must be far below the gap
  // after few rounds.
  const double early = GapAfter(2, 2).total();
  const double late = GapAfter(150, 2).total();
  EXPECT_LT(late, early * 0.05);
}

TEST(OptimalityGapTest, NearZeroAtConvergence) {
  const OptimalityGap gap = GapAfter(400, 3);
  EXPECT_LT(gap.total(), 1e-3);
  // All three components individually vanish at a stationary point of (2).
  EXPECT_LT(gap.grad_theta_sq, 1e-4);
  EXPECT_LT(gap.grad_w_sq, 1e-3);
  EXPECT_LT(gap.consensus_sq, 1e-3);
}

TEST(OptimalityGapTest, ZeroExactlyAtAnalyticStationaryPoint) {
  // Hand-construct the stationary state: w_i = θ = θ*, y_i = −∇f_i(θ*).
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  std::vector<float> theta(problem.optimum().begin(),
                           problem.optimum().end());
  AlgorithmContext ctx;
  ctx.num_clients = problem.num_clients();
  ctx.dim = problem.dim();
  algo.Setup(ctx, theta);

  // Overwrite the state through the public API: run zero rounds, then use
  // the gap on the constructed (w, y, θ) via a fresh FedAdmm whose Setup
  // state we emulate by direct computation. Since client state accessors
  // are read-only, validate instead that V at (θ*, y*) computed manually is
  // zero by evaluating the three terms.
  std::vector<float> grad(static_cast<size_t>(problem.dim()));
  double v_total = 0.0;
  std::vector<double> grad_theta(static_cast<size_t>(problem.dim()), 0.0);
  const float rho = 2.0f;
  for (int i = 0; i < problem.num_clients(); ++i) {
    problem.ClientGradient(i, theta, grad);
    for (int64_t k = 0; k < problem.dim(); ++k) {
      const size_t ks = static_cast<size_t>(k);
      const double y = -static_cast<double>(grad[ks]);  // y_i* = −∇f_i(θ*)
      const double gw = grad[ks] + y + rho * 0.0;       // w_i = θ
      v_total += gw * gw;                                // ‖∇w L_i‖²
      grad_theta[ks] -= y;                               // −Σ y_i
    }
  }
  for (double v : grad_theta) v_total += v * v;
  EXPECT_NEAR(v_total, 0.0, 1e-9);
}

}  // namespace
}  // namespace fedadmm
