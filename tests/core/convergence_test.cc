/// Convergence validation of FedADMM on analytic convex federations, where
/// the global optimum is known in closed form (Theorem 1's setting, minus
/// nonconvexity). Also validates the paper's headline comparison on a
/// heterogeneous problem: FedADMM reaches the optimum neighborhood in fewer
/// rounds than FedAvg under partial participation.

#include <gtest/gtest.h>

#include "core/fedadmm.h"
#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec(double heterogeneity) {
  QuadraticSpec spec;
  spec.num_clients = 10;
  spec.dim = 8;
  spec.heterogeneity = heterogeneity;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions AdmmOptions(float rho) {
  FedAdmmOptions options;
  options.local.learning_rate = 0.04f;
  options.local.batch_size = 0;
  options.local.max_epochs = 8;
  options.local.variable_epochs = false;
  options.rho = StepSchedule(rho);
  options.eta_active_fraction = true;
  return options;
}

double RunFedAdmm(QuadraticProblem* problem, FedAdmmOptions options,
                  int rounds, double fraction, uint64_t seed,
                  std::vector<float>* theta_out = nullptr) {
  FedAdmm algo(std::move(options));
  UniformFractionSelector selector(problem->num_clients(), fraction);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = 2;
  Simulation sim(problem, &algo, &selector, config);
  auto history = sim.Run();
  EXPECT_TRUE(history.ok());
  if (theta_out != nullptr) *theta_out = sim.theta();
  return problem->DistanceToOptimum(sim.theta());
}

TEST(ConvergenceTest, ReachesOptimumUnderFullParticipation) {
  QuadraticProblem problem(Spec(1.0));
  const double dist =
      RunFedAdmm(&problem, AdmmOptions(2.0f), 200, 1.0, 11);
  EXPECT_LT(dist, 0.05);
}

TEST(ConvergenceTest, ReachesOptimumUnderPartialParticipation) {
  QuadraticProblem problem(Spec(1.5));
  const double dist =
      RunFedAdmm(&problem, AdmmOptions(2.0f), 500, 0.2, 12);
  EXPECT_LT(dist, 0.1);
}

TEST(ConvergenceTest, HandlesExtremeHeterogeneityWithoutDivergence) {
  // B = ∞ regime: client optima are wildly dispersed. FedADMM must still
  // converge (Theorem 1 imposes no dissimilarity bound).
  QuadraticProblem problem(Spec(5.0));
  const double dist =
      RunFedAdmm(&problem, AdmmOptions(3.0f), 600, 0.3, 13);
  EXPECT_LT(dist, 0.25);
}

TEST(ConvergenceTest, LargerRhoThanTheoremBoundIsStable) {
  // Theorem 1 wants ρ > (1+√5)L; verify stability at such a ρ.
  QuadraticProblem problem(Spec(1.0));
  const float rho_star =
      static_cast<float>(3.24 * problem.LipschitzBound());
  const double dist =
      RunFedAdmm(&problem, AdmmOptions(rho_star), 400, 0.5, 14);
  EXPECT_LT(dist, 0.6);  // converges, if slowly (large ρ = heavy anchoring)
}

TEST(ConvergenceTest, FedAdmmBeatsFedAvgOnHeterogeneousClients) {
  // The paper's headline: under heterogeneity and partial participation,
  // FedADMM needs fewer rounds to reach a prescribed optimality region.
  QuadraticProblem problem(Spec(3.0));
  const double target_accuracy = 0.6;  // 1/(1+dist) — i.e. dist <= 0.667

  auto rounds_to_target = [&](FederatedAlgorithm* algo) {
    UniformFractionSelector selector(problem.num_clients(), 0.3);
    SimulationConfig config;
    config.max_rounds = 400;
    config.seed = 15;
    config.target_accuracy = target_accuracy;
    config.num_threads = 2;
    Simulation sim(&problem, algo, &selector, config);
    auto history = sim.Run();
    EXPECT_TRUE(history.ok());
    const int rounds = history->RoundsToAccuracy(target_accuracy);
    return rounds < 0 ? 1000 : rounds;
  };

  FedAdmm admm(AdmmOptions(2.0f));
  LocalTrainSpec local;
  local.learning_rate = 0.04f;
  local.batch_size = 0;
  local.max_epochs = 8;
  FedAvg avg(local);
  FedProx prox(local, 2.0f);

  const int r_admm = rounds_to_target(&admm);
  const int r_avg = rounds_to_target(&avg);
  const int r_prox = rounds_to_target(&prox);
  EXPECT_LT(r_admm, r_avg);
  EXPECT_LE(r_admm, r_prox);
}

TEST(ConvergenceTest, DualVariablesConvergeTowardKktPrices) {
  // KKT of problem (2): y_i* = −∇f_i(θ*) and Σ y_i* = 0. After long
  // training the stored duals must approximate the prices.
  QuadraticProblem problem(Spec(1.0));
  FedAdmm algo(AdmmOptions(2.0f));
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = 300;
  config.seed = 16;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  ASSERT_TRUE(sim.Run().ok());

  std::vector<float> grad(8);
  std::vector<double> dual_sum(8, 0.0);
  for (int i = 0; i < problem.num_clients(); ++i) {
    problem.ClientGradient(i, sim.theta(), grad);
    const auto& y = algo.client_dual(i);
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_NEAR(y[k], -grad[k], 0.1) << "client " << i;
      dual_sum[k] += y[k];
    }
  }
  for (double v : dual_sum) EXPECT_NEAR(v, 0.0, 0.15);
}

TEST(ConvergenceTest, MoreLocalEpochsConvergeInFewerRounds) {
  // Table IV: increasing E reduces the number of rounds.
  QuadraticProblem problem(Spec(1.5));
  auto dist_after = [&](int epochs) {
    FedAdmmOptions options = AdmmOptions(2.0f);
    options.local.max_epochs = epochs;
    return RunFedAdmm(&problem, options, 60, 0.5, 17);
  };
  const double d1 = dist_after(1);
  const double d8 = dist_after(8);
  EXPECT_LT(d8, d1);
}

}  // namespace
}  // namespace fedadmm
