#include "fl/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fl/algorithms/fedavg.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 10;
  spec.dim = 6;
  spec.seed = 51;
  return spec;
}

LocalTrainSpec Local() {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 0;
  local.max_epochs = 2;
  return local;
}

TEST(SimulationTest, RunsRequestedRounds) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(10, 0.3);
  SimulationConfig config;
  config.max_rounds = 7;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(history->records()[static_cast<size_t>(i)].round, i);
    EXPECT_EQ(history->records()[static_cast<size_t>(i)].num_selected, 3);
  }
}

TEST(SimulationTest, IsDeterministicForSeedAndThreadCount) {
  QuadraticProblem problem(Spec());
  auto run = [&problem](uint64_t seed, int threads) {
    FedAvg algo(Local());
    UniformFractionSelector selector(10, 0.3);
    SimulationConfig config;
    config.max_rounds = 10;
    config.seed = seed;
    config.num_threads = threads;
    Simulation sim(&problem, &algo, &selector, config);
    auto history = sim.Run();
    EXPECT_TRUE(history.ok());
    return sim.theta();
  };
  // Same seed, different thread counts: identical result (client streams are
  // keyed by (round, client), not by thread).
  EXPECT_EQ(run(3, 1), run(3, 4));
  EXPECT_NE(run(3, 1), run(4, 1));
}

TEST(SimulationTest, TargetAccuracyStopsEarly) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  FullParticipationSelector selector(10);
  SimulationConfig config;
  config.max_rounds = 500;
  config.target_accuracy = 0.5;  // 1/(1+dist) >= 0.5 <=> dist <= 1
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_LT(history->size(), 500);
  EXPECT_GE(history->FinalAccuracy(), 0.5);
}

TEST(SimulationTest, EvalEverySkipsIntermediateRounds) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(10, 0.3);
  SimulationConfig config;
  config.max_rounds = 10;
  config.eval_every = 3;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  const auto& recs = history->records();
  EXPECT_FALSE(std::isnan(recs[0].test_accuracy));
  EXPECT_TRUE(std::isnan(recs[1].test_accuracy));
  EXPECT_TRUE(std::isnan(recs[2].test_accuracy));
  EXPECT_FALSE(std::isnan(recs[3].test_accuracy));
  // Last round always evaluated.
  EXPECT_FALSE(std::isnan(recs[9].test_accuracy));
}

TEST(SimulationTest, CommunicationAccounting) {
  QuadraticProblem problem(Spec());  // dim 6
  FedAvg algo(Local());
  UniformFractionSelector selector(10, 0.3);  // 3 clients/round
  SimulationConfig config;
  config.max_rounds = 4;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  for (const RoundRecord& r : history->records()) {
    EXPECT_EQ(r.upload_bytes, 3 * 6 * 4);
    EXPECT_EQ(r.download_bytes, 3 * 6 * 4);
  }
}

TEST(SimulationTest, ObserverSeesEveryRound) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(10, 0.3);
  SimulationConfig config;
  config.max_rounds = 5;
  Simulation sim(&problem, &algo, &selector, config);
  int observed = 0;
  sim.set_observer([&observed](const RoundRecord& r) {
    EXPECT_EQ(r.round, observed);
    ++observed;
  });
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(observed, 5);
}

TEST(SimulationTest, InvalidConfigsAreRejected) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(10, 0.3);
  {
    SimulationConfig config;
    config.max_rounds = 0;
    Simulation sim(&problem, &algo, &selector, config);
    EXPECT_TRUE(sim.Run().status().IsInvalidArgument());
  }
  {
    SimulationConfig config;
    config.eval_every = 0;
    Simulation sim(&problem, &algo, &selector, config);
    EXPECT_TRUE(sim.Run().status().IsInvalidArgument());
  }
  {
    UniformFractionSelector wrong(11, 0.3);  // m mismatch
    SimulationConfig config;
    Simulation sim(&problem, &algo, &wrong, config);
    EXPECT_TRUE(sim.Run().status().IsInvalidArgument());
  }
}

TEST(SimulationTest, TrainLossIsFiniteEveryRound) {
  QuadraticProblem problem(Spec());
  FedAvg algo(Local());
  UniformFractionSelector selector(10, 0.3);
  SimulationConfig config;
  config.max_rounds = 20;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  for (const RoundRecord& r : history->records()) {
    EXPECT_TRUE(std::isfinite(r.train_loss));
    EXPECT_GE(r.wall_seconds, 0.0);
  }
}

}  // namespace
}  // namespace fedadmm
