#include "fl/types.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace fedadmm {
namespace {

TEST(UpdateMessageTest, UploadBytesCountsBothPayloads) {
  UpdateMessage msg;
  msg.delta.resize(100);
  EXPECT_EQ(msg.UploadBytes(), 400);
  msg.delta2.resize(100);
  EXPECT_EQ(msg.UploadBytes(), 800);  // SCAFFOLD doubles the upload
}

TEST(UpdateMessageTest, EmptyMessageIsFree) {
  UpdateMessage msg;
  EXPECT_EQ(msg.UploadBytes(), 0);  // FedPD non-communication round
}

RoundRecord MakeRecord(int round, double acc) {
  RoundRecord r;
  r.round = round;
  r.test_accuracy = acc;
  r.upload_bytes = 1000;
  r.download_bytes = 2000;
  return r;
}

TEST(HistoryTest, RoundsToAccuracyIsOneBased) {
  History h;
  h.Add(MakeRecord(0, 0.3));
  h.Add(MakeRecord(1, 0.5));
  h.Add(MakeRecord(2, 0.8));
  EXPECT_EQ(h.RoundsToAccuracy(0.25), 1);
  EXPECT_EQ(h.RoundsToAccuracy(0.5), 2);
  EXPECT_EQ(h.RoundsToAccuracy(0.75), 3);
  EXPECT_EQ(h.RoundsToAccuracy(0.9), -1);
}

TEST(HistoryTest, RoundsToAccuracySkipsNanRounds) {
  History h;
  h.Add(MakeRecord(0, std::numeric_limits<double>::quiet_NaN()));
  h.Add(MakeRecord(1, 0.9));
  EXPECT_EQ(h.RoundsToAccuracy(0.5), 2);
}

TEST(HistoryTest, FinalAndBestAccuracy) {
  History h;
  EXPECT_EQ(h.FinalAccuracy(), 0.0);
  EXPECT_EQ(h.BestAccuracy(), 0.0);
  h.Add(MakeRecord(0, 0.6));
  h.Add(MakeRecord(1, 0.9));
  h.Add(MakeRecord(2, 0.7));
  EXPECT_DOUBLE_EQ(h.FinalAccuracy(), 0.7);
  EXPECT_DOUBLE_EQ(h.BestAccuracy(), 0.9);
  h.Add(MakeRecord(3, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_DOUBLE_EQ(h.FinalAccuracy(), 0.7);  // NaN skipped
}

TEST(HistoryTest, ByteTotals) {
  History h;
  h.Add(MakeRecord(0, 0.1));
  h.Add(MakeRecord(1, 0.2));
  EXPECT_EQ(h.TotalUploadBytes(), 2000);
  EXPECT_EQ(h.TotalDownloadBytes(), 4000);
}

TEST(HistoryTest, WriteCsvProducesHeaderAndRows) {
  History h;
  h.Add(MakeRecord(0, 0.5));
  const std::string path = ::testing::TempDir() + "/history_test.csv";
  ASSERT_TRUE(h.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("test_accuracy"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HistoryTest, SizeAndEmpty) {
  History h;
  EXPECT_TRUE(h.empty());
  h.Add(MakeRecord(0, 0.1));
  EXPECT_EQ(h.size(), 1);
  EXPECT_FALSE(h.empty());
}

}  // namespace
}  // namespace fedadmm
