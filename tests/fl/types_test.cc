#include "fl/types.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace fedadmm {
namespace {

TEST(UpdateMessageTest, UploadBytesCountsBothPayloads) {
  UpdateMessage msg;
  msg.delta.resize(100);
  EXPECT_EQ(msg.UploadBytes(), 400);
  msg.delta2.resize(100);
  EXPECT_EQ(msg.UploadBytes(), 800);  // SCAFFOLD doubles the upload
}

TEST(UpdateMessageTest, EmptyMessageIsFree) {
  UpdateMessage msg;
  EXPECT_EQ(msg.UploadBytes(), 0);  // FedPD non-communication round
}

RoundRecord MakeRecord(int round, double acc) {
  RoundRecord r;
  r.round = round;
  r.test_accuracy = acc;
  r.upload_bytes = 1000;
  r.download_bytes = 2000;
  return r;
}

TEST(HistoryTest, RoundsToAccuracyIsOneBased) {
  History h;
  h.Add(MakeRecord(0, 0.3));
  h.Add(MakeRecord(1, 0.5));
  h.Add(MakeRecord(2, 0.8));
  EXPECT_EQ(h.RoundsToAccuracy(0.25), 1);
  EXPECT_EQ(h.RoundsToAccuracy(0.5), 2);
  EXPECT_EQ(h.RoundsToAccuracy(0.75), 3);
  EXPECT_EQ(h.RoundsToAccuracy(0.9), -1);
}

TEST(HistoryTest, RoundsToAccuracySkipsNanRounds) {
  History h;
  h.Add(MakeRecord(0, std::numeric_limits<double>::quiet_NaN()));
  h.Add(MakeRecord(1, 0.9));
  EXPECT_EQ(h.RoundsToAccuracy(0.5), 2);
}

TEST(HistoryTest, RoundsToAccuracyWithSparseEvaluation) {
  // Regression for eval_every > 1: the simulator records NaN accuracy on
  // skipped rounds, which must never satisfy (or poison) the target
  // comparison — only evaluated rounds count.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  History h;
  h.Add(MakeRecord(0, 0.2));  // evaluated
  h.Add(MakeRecord(1, nan));  // skipped (eval_every = 3)
  h.Add(MakeRecord(2, nan));  // skipped
  h.Add(MakeRecord(3, 0.7));  // evaluated: first to reach 0.5
  h.Add(MakeRecord(4, nan));
  EXPECT_EQ(h.RoundsToAccuracy(0.5), 4);
  EXPECT_EQ(h.RoundsToAccuracy(0.1), 1);
  EXPECT_EQ(h.RoundsToAccuracy(0.9), -1);  // NaNs never reach a target
}

TEST(HistoryTest, SimSecondsToAccuracyTracksVirtualClock) {
  auto timed = [](int round, double acc, double sim_seconds) {
    RoundRecord r = MakeRecord(round, acc);
    r.sim_seconds = sim_seconds;
    return r;
  };
  History h;
  EXPECT_DOUBLE_EQ(h.TotalSimSeconds(), 0.0);
  h.Add(timed(0, 0.3, 10.0));
  h.Add(timed(1, std::numeric_limits<double>::quiet_NaN(), 20.0));
  h.Add(timed(2, 0.8, 30.0));
  EXPECT_DOUBLE_EQ(h.SimSecondsToAccuracy(0.25), 10.0);
  // Round 1 was not evaluated: the 0.5 target is first *observed* met at
  // the round-2 evaluation, 30 virtual seconds in.
  EXPECT_DOUBLE_EQ(h.SimSecondsToAccuracy(0.5), 30.0);
  EXPECT_DOUBLE_EQ(h.SimSecondsToAccuracy(0.9), -1.0);
  EXPECT_DOUBLE_EQ(h.TotalSimSeconds(), 30.0);
}

TEST(HistoryTest, TotalDroppedSumsRounds) {
  History h;
  RoundRecord a = MakeRecord(0, 0.1);
  a.num_dropped = 2;
  RoundRecord b = MakeRecord(1, 0.2);
  b.num_dropped = 3;
  b.num_admitted_partial = 1;
  h.Add(a);
  h.Add(b);
  EXPECT_EQ(h.TotalDropped(), 5);
}

TEST(HistoryTest, WriteCsvIncludesSystemColumns) {
  History h;
  RoundRecord r = MakeRecord(0, 0.5);
  r.sim_seconds = 12.5;
  r.num_dropped = 1;
  r.num_admitted_partial = 2;
  h.Add(r);
  const std::string path = ::testing::TempDir() + "/history_sys_test.csv";
  ASSERT_TRUE(h.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  EXPECT_NE(header.find("sim_seconds"), std::string::npos);
  EXPECT_NE(header.find("num_dropped"), std::string::npos);
  EXPECT_NE(header.find("num_admitted_partial"), std::string::npos);
  std::getline(in, row);
  EXPECT_NE(row.find("12.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HistoryTest, FinalAndBestAccuracy) {
  History h;
  EXPECT_EQ(h.FinalAccuracy(), 0.0);
  EXPECT_EQ(h.BestAccuracy(), 0.0);
  h.Add(MakeRecord(0, 0.6));
  h.Add(MakeRecord(1, 0.9));
  h.Add(MakeRecord(2, 0.7));
  EXPECT_DOUBLE_EQ(h.FinalAccuracy(), 0.7);
  EXPECT_DOUBLE_EQ(h.BestAccuracy(), 0.9);
  h.Add(MakeRecord(3, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_DOUBLE_EQ(h.FinalAccuracy(), 0.7);  // NaN skipped
}

TEST(HistoryTest, ByteTotals) {
  History h;
  h.Add(MakeRecord(0, 0.1));
  h.Add(MakeRecord(1, 0.2));
  EXPECT_EQ(h.TotalUploadBytes(), 2000);
  EXPECT_EQ(h.TotalDownloadBytes(), 4000);
}

TEST(HistoryTest, WriteCsvProducesHeaderAndRows) {
  History h;
  h.Add(MakeRecord(0, 0.5));
  const std::string path = ::testing::TempDir() + "/history_test.csv";
  ASSERT_TRUE(h.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("test_accuracy"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HistoryTest, SizeAndEmpty) {
  History h;
  EXPECT_TRUE(h.empty());
  h.Add(MakeRecord(0, 0.1));
  EXPECT_EQ(h.size(), 1);
  EXPECT_FALSE(h.empty());
}

}  // namespace
}  // namespace fedadmm
