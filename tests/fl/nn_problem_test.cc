#include "fl/nn_problem.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

class NnProblemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    split_ = GenerateSynthetic(SyntheticBenchSpec(1, 8, 6, 3, 0.5f));
    Rng rng(1);
    partition_ = PartitionIid(split_.train.size(), 6, &rng).ValueOrDie();
  }
  ModelConfig Config() {
    ModelConfig c = BenchCnnConfig(1, 8);
    c.conv1_channels = 3;
    c.conv2_channels = 4;
    c.hidden = 12;
    return c;
  }
  DataSplit split_;
  Partition partition_;
};

TEST_F(NnProblemTest, ReportsGeometry) {
  NnFederatedProblem problem(Config(), &split_.train, &split_.test,
                             partition_, /*num_workers=*/2);
  EXPECT_EQ(problem.num_clients(), 6);
  EXPECT_EQ(problem.num_workers(), 2);
  EXPECT_EQ(problem.dim(), BuildModel(Config())->NumParameters());
}

TEST_F(NnProblemTest, InitialParametersAreDeterministicInSeed) {
  NnFederatedProblem p1(Config(), &split_.train, &split_.test, partition_, 1);
  NnFederatedProblem p2(Config(), &split_.train, &split_.test, partition_, 1);
  Rng a(7), b(7), c(8);
  EXPECT_EQ(p1.InitialParameters(&a), p2.InitialParameters(&b));
  EXPECT_NE(p1.InitialParameters(&c), p2.InitialParameters(&b));
}

TEST_F(NnProblemTest, LocalProblemComputesBatchGradients) {
  NnFederatedProblem problem(Config(), &split_.train, &split_.test,
                             partition_, 1);
  Rng rng(2);
  const std::vector<float> theta = problem.InitialParameters(&rng);
  auto local = problem.MakeLocalProblem(0, 0);
  EXPECT_EQ(local->dim(), problem.dim());
  EXPECT_EQ(local->num_samples(),
            static_cast<int>(partition_[0].size()));

  std::vector<float> grad(theta.size());
  const auto batches = local->EpochBatches(4, &rng);
  ASSERT_FALSE(batches.empty());
  const double loss = local->BatchLossGradient(theta, batches[0], grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(vec::L2Norm(grad), 0.0);
}

TEST_F(NnProblemTest, WorkersAreIndependent) {
  // Two workers computing the same client's full gradient at the same
  // parameters must agree exactly.
  NnFederatedProblem problem(Config(), &split_.train, &split_.test,
                             partition_, 2);
  Rng rng(3);
  const std::vector<float> theta = problem.InitialParameters(&rng);
  auto l0 = problem.MakeLocalProblem(2, 0);
  auto l1 = problem.MakeLocalProblem(2, 1);
  std::vector<float> g0(theta.size()), g1(theta.size());
  const double loss0 = l0->FullLossGradient(theta, g0);
  const double loss1 = l1->FullLossGradient(theta, g1);
  EXPECT_DOUBLE_EQ(loss0, loss1);
  EXPECT_EQ(g0, g1);
}

TEST_F(NnProblemTest, EvaluateIsConsistentAcrossBatchSizes) {
  NnFederatedProblem problem(Config(), &split_.train, &split_.test,
                             partition_, 1);
  Rng rng(4);
  const std::vector<float> theta = problem.InitialParameters(&rng);
  const EvalResult big = problem.Evaluate(theta, 0);
  problem.set_eval_batch_size(7);  // odd size exercises the tail chunk
  const EvalResult small = problem.Evaluate(theta, 0);
  EXPECT_NEAR(big.accuracy, small.accuracy, 1e-9);
  EXPECT_NEAR(big.loss, small.loss, 1e-6);
}

TEST_F(NnProblemTest, EvaluateAccuracyInUnitInterval) {
  NnFederatedProblem problem(Config(), &split_.train, &split_.test,
                             partition_, 1);
  Rng rng(5);
  const EvalResult eval =
      problem.Evaluate(problem.InitialParameters(&rng), 0);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_GT(eval.loss, 0.0);
}

TEST_F(NnProblemTest, ClientViewsMatchPartition) {
  NnFederatedProblem problem(Config(), &split_.train, &split_.test,
                             partition_, 1);
  for (int i = 0; i < problem.num_clients(); ++i) {
    EXPECT_EQ(problem.client_view(i).indices(),
              partition_[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace fedadmm
