// Deterministic replay: the same seed must reproduce the same θ trajectory
// bitwise, regardless of the worker thread count. This guards the ThreadPool
// path in src/fl/simulation.cc — per-client randomness is keyed by
// (seed, round, client), never by scheduling order.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "comm/identity.h"
#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 12;
  spec.dim = 7;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  // Keep the paper's system-heterogeneity default: epoch counts are drawn
  // from the per-(round, client) stream, so replay also covers it.
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  return options;
}

// Runs the simulation to `rounds` rounds and returns the final θ. Replaying
// prefixes of increasing length checks the whole trajectory, not just the
// endpoint.
std::vector<float> RunTheta(uint64_t seed, int threads, int rounds) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  Simulation sim(&problem, &algo, &selector, config);
  EXPECT_TRUE(sim.Run().ok());
  return sim.theta();
}

TEST(DeterministicReplayTest, SameSeedSameThetaTrajectory) {
  for (int rounds : {1, 2, 5, 10}) {
    EXPECT_EQ(RunTheta(7, 1, rounds), RunTheta(7, 1, rounds))
        << "trajectory diverged at round " << rounds;
  }
}

TEST(DeterministicReplayTest, ThreadCountDoesNotChangeTrajectory) {
  for (int rounds : {1, 3, 8}) {
    const std::vector<float> serial = RunTheta(7, 1, rounds);
    EXPECT_EQ(serial, RunTheta(7, 3, rounds))
        << "3-thread run diverged at round " << rounds;
    EXPECT_EQ(serial, RunTheta(7, 5, rounds))
        << "5-thread run diverged at round " << rounds;
  }
}

TEST(DeterministicReplayTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunTheta(7, 1, 5), RunTheta(8, 1, 5));
}

// --- Codec regression (src/comm): the no-codec path and the identity-codec
// path must be bitwise indistinguishable — in θ AND in the recorded
// History. Guards the codec plumbing in Simulation::Run against perturbing
// RNG streams or byte accounting when compression is off.

struct Replay {
  History history;
  std::vector<float> theta;
};

Replay RunReplay(uint64_t seed, int threads, int rounds,
                 UpdateCodec* uplink, UpdateCodec* downlink) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  Simulation sim(&problem, &algo, &selector, config);
  if (uplink) sim.set_uplink_codec(uplink);
  if (downlink) sim.set_downlink_codec(downlink);
  Replay replay;
  replay.history = std::move(sim.Run()).ValueOrDie();
  replay.theta = sim.theta();
  return replay;
}

// NaN-aware bitwise equality for skipped-eval sentinels.
bool SameMetric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void ExpectBitwiseIdentical(const Replay& a, const Replay& b) {
  EXPECT_EQ(a.theta, b.theta);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (int i = 0; i < a.history.size(); ++i) {
    const RoundRecord& ra = a.history.records()[static_cast<size_t>(i)];
    const RoundRecord& rb = b.history.records()[static_cast<size_t>(i)];
    EXPECT_EQ(ra.round, rb.round);
    EXPECT_EQ(ra.num_selected, rb.num_selected);
    EXPECT_TRUE(SameMetric(ra.train_loss, rb.train_loss)) << i;
    EXPECT_TRUE(SameMetric(ra.test_accuracy, rb.test_accuracy)) << i;
    EXPECT_TRUE(SameMetric(ra.test_loss, rb.test_loss)) << i;
    EXPECT_EQ(ra.upload_bytes, rb.upload_bytes) << i;
    EXPECT_EQ(ra.download_bytes, rb.download_bytes) << i;
    EXPECT_EQ(ra.upload_bytes_raw, rb.upload_bytes_raw) << i;
    EXPECT_EQ(ra.download_bytes_raw, rb.download_bytes_raw) << i;
    EXPECT_EQ(ra.sim_seconds, rb.sim_seconds) << i;
    EXPECT_EQ(ra.num_dropped, rb.num_dropped) << i;
    EXPECT_EQ(ra.num_admitted_partial, rb.num_admitted_partial) << i;
  }
}

TEST(DeterministicReplayTest, IdentityUplinkCodecIsBitwiseInvisible) {
  IdentityCodec identity;
  ExpectBitwiseIdentical(RunReplay(7, 3, 8, nullptr, nullptr),
                         RunReplay(7, 3, 8, &identity, nullptr));
}

TEST(DeterministicReplayTest, IdentityCodecPairIsBitwiseInvisible) {
  IdentityCodec uplink;
  IdentityCodec downlink;
  ExpectBitwiseIdentical(RunReplay(7, 3, 8, nullptr, nullptr),
                         RunReplay(7, 3, 8, &uplink, &downlink));
}

TEST(DeterministicReplayTest, LossyCodecChangesThetaButNotAccounting) {
  // Sanity inversion: a real compressor must NOT be invisible — θ moves —
  // while the raw-bytes columns still mirror the uncompressed run.
  IdentityCodec identity;
  const Replay exact = RunReplay(7, 3, 8, &identity, nullptr);
  Replay lossy;
  {
    QuadraticProblem problem(Spec());
    FedAdmm algo(Options());
    UniformFractionSelector selector(12, 0.5);
    SimulationConfig config;
    config.max_rounds = 8;
    config.seed = 7;
    config.num_threads = 3;
    Simulation sim(&problem, &algo, &selector, config);
    auto codec = MakeUpdateCodec("q8");
    ASSERT_TRUE(codec.ok());
    sim.set_uplink_codec(codec->get());
    lossy.history = std::move(sim.Run()).ValueOrDie();
    lossy.theta = sim.theta();
  }
  EXPECT_NE(exact.theta, lossy.theta);
  ASSERT_EQ(exact.history.size(), lossy.history.size());
  for (int i = 0; i < exact.history.size(); ++i) {
    EXPECT_EQ(
        exact.history.records()[static_cast<size_t>(i)].upload_bytes_raw,
        lossy.history.records()[static_cast<size_t>(i)].upload_bytes_raw);
  }
}

}  // namespace
}  // namespace fedadmm
