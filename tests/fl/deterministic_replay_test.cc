// Deterministic replay: the same seed must reproduce the same θ trajectory
// bitwise, regardless of the worker thread count. This guards the ThreadPool
// path in src/fl/simulation.cc — per-client randomness is keyed by
// (seed, round, client), never by scheduling order.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 12;
  spec.dim = 7;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  // Keep the paper's system-heterogeneity default: epoch counts are drawn
  // from the per-(round, client) stream, so replay also covers it.
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  return options;
}

// Runs the simulation to `rounds` rounds and returns the final θ. Replaying
// prefixes of increasing length checks the whole trajectory, not just the
// endpoint.
std::vector<float> RunTheta(uint64_t seed, int threads, int rounds) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = seed;
  config.num_threads = threads;
  Simulation sim(&problem, &algo, &selector, config);
  EXPECT_TRUE(sim.Run().ok());
  return sim.theta();
}

TEST(DeterministicReplayTest, SameSeedSameThetaTrajectory) {
  for (int rounds : {1, 2, 5, 10}) {
    EXPECT_EQ(RunTheta(7, 1, rounds), RunTheta(7, 1, rounds))
        << "trajectory diverged at round " << rounds;
  }
}

TEST(DeterministicReplayTest, ThreadCountDoesNotChangeTrajectory) {
  for (int rounds : {1, 3, 8}) {
    const std::vector<float> serial = RunTheta(7, 1, rounds);
    EXPECT_EQ(serial, RunTheta(7, 3, rounds))
        << "3-thread run diverged at round " << rounds;
    EXPECT_EQ(serial, RunTheta(7, 5, rounds))
        << "5-thread run diverged at round " << rounds;
  }
}

TEST(DeterministicReplayTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunTheta(7, 1, 5), RunTheta(8, 1, 5));
}

}  // namespace
}  // namespace fedadmm
