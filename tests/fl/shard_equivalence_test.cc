// The sharded aggregation server (SimulationConfig::num_shards).
//
// Covers: W-sharded runs are bitwise deterministic across thread counts
// in every execution mode (per-shard partials at fixed block boundaries,
// per-worker heaps merged on (time, sequence)); the integer/schedule
// columns — selection, byte ledgers, simulated time, drops — are bitwise
// identical across W (sharding regroups float additions, never the
// schedule); the trajectory stays within float tolerance of W = 1; a
// sharded *store* under an unsharded server is storage-transparent
// (bitwise identical); and config validation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fedadmm.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "sys/system_model.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec(int clients = 12, int dim = 7) {
  QuadraticSpec spec;
  spec.num_clients = clients;
  spec.dim = dim;
  spec.heterogeneity = 1.2;
  spec.seed = 91;
  return spec;
}

FedAdmmOptions Options() {
  FedAdmmOptions options;
  options.local.learning_rate = 0.05f;
  options.local.batch_size = 4;
  options.local.max_epochs = 3;
  options.local.variable_epochs = true;
  options.rho = StepSchedule(0.1);
  options.eta_active_fraction = true;
  return options;
}

SystemModel CellularModel(int clients) {
  FleetModel fleet =
      FleetModel::FromPreset("cellular", clients, 3).ValueOrDie();
  return SystemModel(std::move(fleet),
                     MakeStragglerPolicy("wait-for-all", -1.0).ValueOrDie());
}

struct ShardRun {
  History history;
  std::vector<float> theta;
};

ShardRun RunSharded(int num_shards, int threads, int rounds,
                    ExecutionMode mode = ExecutionMode::kSync,
                    const SystemModel* model = nullptr,
                    const std::string& store = "", int buffer_size = 0) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = rounds;
  config.seed = 7;
  config.num_threads = threads;
  config.num_shards = num_shards;
  config.mode = mode;
  config.buffer_size = buffer_size;
  config.state_store = store;
  Simulation sim(&problem, &algo, &selector, config);
  if (model) sim.set_system_model(model);
  ShardRun run;
  run.history = std::move(sim.Run()).ValueOrDie();
  run.theta = sim.theta();
  return run;
}

bool SameMetric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void ExpectIdenticalRuns(const ShardRun& a, const ShardRun& b) {
  EXPECT_EQ(a.theta, b.theta);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (int i = 0; i < a.history.size(); ++i) {
    const RoundRecord& ra = a.history.records()[static_cast<size_t>(i)];
    const RoundRecord& rb = b.history.records()[static_cast<size_t>(i)];
    EXPECT_EQ(ra.num_selected, rb.num_selected) << i;
    EXPECT_TRUE(SameMetric(ra.train_loss, rb.train_loss)) << i;
    EXPECT_TRUE(SameMetric(ra.test_accuracy, rb.test_accuracy)) << i;
    EXPECT_EQ(ra.upload_bytes, rb.upload_bytes) << i;
    EXPECT_EQ(ra.download_bytes, rb.download_bytes) << i;
    EXPECT_EQ(ra.sim_seconds, rb.sim_seconds) << i;
    EXPECT_EQ(ra.num_dropped, rb.num_dropped) << i;
    EXPECT_TRUE(SameMetric(ra.staleness_mean, rb.staleness_mean)) << i;
    EXPECT_EQ(ra.staleness_max, rb.staleness_max) << i;
  }
}

TEST(ShardEquivalenceTest, ShardedSyncIsDeterministicAcrossThreadCounts) {
  for (int w : {2, 4}) {
    const ShardRun serial = RunSharded(w, /*threads=*/1, /*rounds=*/12);
    ExpectIdenticalRuns(serial, RunSharded(w, 3, 12));
    ExpectIdenticalRuns(serial, RunSharded(w, 8, 12));
  }
}

TEST(ShardEquivalenceTest, ShardedEventModesAreDeterministic) {
  const SystemModel model = CellularModel(12);
  const ShardRun async_serial =
      RunSharded(4, 1, 20, ExecutionMode::kAsync, &model);
  ExpectIdenticalRuns(async_serial,
                      RunSharded(4, 6, 20, ExecutionMode::kAsync, &model));
  const ShardRun buffered_serial = RunSharded(
      3, 1, 10, ExecutionMode::kBuffered, &model, "", /*buffer_size=*/3);
  ExpectIdenticalRuns(
      buffered_serial,
      RunSharded(3, 5, 10, ExecutionMode::kBuffered, &model, "", 3));
}

TEST(ShardEquivalenceTest, ScheduleColumnsAreBitwiseIdenticalAcrossW) {
  // Sharding regroups the float additions of the server reduce; it must
  // not touch anything integer-valued or timing-derived: selection,
  // byte ledgers, simulated seconds, drop counts.
  const SystemModel model = CellularModel(12);
  const ShardRun base = RunSharded(1, 4, 16, ExecutionMode::kAsync, &model);
  for (int w : {2, 4, 8}) {
    const ShardRun sharded =
        RunSharded(w, 4, 16, ExecutionMode::kAsync, &model);
    ASSERT_EQ(sharded.history.size(), base.history.size()) << "W=" << w;
    for (int i = 0; i < base.history.size(); ++i) {
      const RoundRecord& rb = base.history.records()[static_cast<size_t>(i)];
      const RoundRecord& rw =
          sharded.history.records()[static_cast<size_t>(i)];
      EXPECT_EQ(rw.num_selected, rb.num_selected) << "W=" << w << " " << i;
      EXPECT_EQ(rw.upload_bytes, rb.upload_bytes) << "W=" << w << " " << i;
      EXPECT_EQ(rw.download_bytes, rb.download_bytes)
          << "W=" << w << " " << i;
      EXPECT_EQ(rw.sim_seconds, rb.sim_seconds) << "W=" << w << " " << i;
      EXPECT_EQ(rw.num_dropped, rb.num_dropped) << "W=" << w << " " << i;
      EXPECT_EQ(rw.staleness_max, rb.staleness_max) << "W=" << w << " " << i;
    }
  }
}

TEST(ShardEquivalenceTest, TrajectoryStaysWithinFloatToleranceAcrossW) {
  // Different W may differ in the last ulp per reduce; over a short run
  // the trajectories must still agree tightly.
  const ShardRun base = RunSharded(1, 4, 16);
  for (int w : {2, 4, 8}) {
    const ShardRun sharded = RunSharded(w, 4, 16);
    ASSERT_EQ(sharded.theta.size(), base.theta.size());
    for (size_t i = 0; i < base.theta.size(); ++i) {
      EXPECT_NEAR(sharded.theta[i], base.theta[i], 1e-4f)
          << "W=" << w << " coord " << i;
    }
    ASSERT_EQ(sharded.history.size(), base.history.size());
    for (int i = 0; i < base.history.size(); ++i) {
      EXPECT_NEAR(
          sharded.history.records()[static_cast<size_t>(i)].test_accuracy,
          base.history.records()[static_cast<size_t>(i)].test_accuracy,
          1e-4)
          << "W=" << w << " round " << i;
    }
  }
}

TEST(ShardEquivalenceTest, ShardedStoreAloneIsBitwiseTransparent) {
  // An explicitly sharded *store* under the W = 1 server returns exactly
  // the floats the inner backend returns: the whole run is bitwise
  // identical to the plain store.
  const ShardRun plain = RunSharded(1, 3, 12, ExecutionMode::kSync, nullptr,
                                    /*store=*/"dense");
  const ShardRun sharded_store = RunSharded(
      1, 3, 12, ExecutionMode::kSync, nullptr, "sharded:3:dense");
  ExpectIdenticalRuns(plain, sharded_store);
}

TEST(ShardEquivalenceTest, ShardCountIsValidated) {
  QuadraticProblem problem(Spec());
  FedAdmm algo(Options());
  UniformFractionSelector selector(12, 0.5);
  SimulationConfig config;
  config.max_rounds = 2;
  config.num_shards = 0;
  Simulation sim(&problem, &algo, &selector, config);
  const auto result = sim.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ShardEquivalenceTest, WMoreShardsThanClientsStillRuns) {
  // W far above the fleet size: store clamps, empty reduce shards are
  // skipped, heap shards just stay sparse.
  const ShardRun run = RunSharded(/*num_shards=*/64, 2, 8);
  EXPECT_EQ(run.history.size(), 8);
  EXPECT_FALSE(run.theta.empty());
  ExpectIdenticalRuns(run, RunSharded(64, 7, 8));
}

}  // namespace
}  // namespace fedadmm
