#include "fl/algorithms/scaffold.h"

#include <gtest/gtest.h>

#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec() {
  QuadraticSpec spec;
  spec.num_clients = 6;
  spec.dim = 8;
  spec.heterogeneity = 2.0;
  spec.seed = 31;
  return spec;
}

AlgorithmContext Ctx(const QuadraticProblem& p) {
  AlgorithmContext ctx;
  ctx.num_clients = p.num_clients();
  ctx.dim = p.dim();
  return ctx;
}

LocalTrainSpec Local() {
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 0;
  local.max_epochs = 3;
  local.variable_epochs = false;
  return local;
}

TEST(ScaffoldTest, ControlsStartAtZero) {
  QuadraticProblem problem(Spec());
  Scaffold algo(Local());
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);
  EXPECT_EQ(vec::L2Norm(algo.server_control()), 0.0);
  for (int i = 0; i < problem.num_clients(); ++i) {
    EXPECT_EQ(vec::L2Norm(algo.client_control(i)), 0.0);
  }
}

TEST(ScaffoldTest, UploadsTwoVectors) {
  QuadraticProblem problem(Spec());
  Scaffold algo(Local());
  std::vector<float> theta(8, 0.5f);
  algo.Setup(Ctx(problem), theta);
  auto lp = problem.MakeLocalProblem(0, 0);
  const UpdateMessage msg = algo.ClientUpdate(0, 0, theta, lp.get(), Rng(1));
  EXPECT_EQ(msg.delta.size(), 8u);
  EXPECT_EQ(msg.delta2.size(), 8u);
  // Both upload and download are doubled vs FedAvg (paper Section I/III-B).
  EXPECT_EQ(msg.UploadBytes(), 2 * 8 * 4);
  EXPECT_EQ(algo.DownloadBytesPerClient(), 2 * 8 * 4);
}

TEST(ScaffoldTest, ControlRefreshMatchesOptionII) {
  QuadraticProblem problem(Spec());
  const LocalTrainSpec local = Local();
  Scaffold algo(local);
  std::vector<float> theta(8, 0.5f);
  algo.Setup(Ctx(problem), theta);
  auto lp = problem.MakeLocalProblem(2, 0);
  const UpdateMessage msg = algo.ClientUpdate(2, 0, theta, lp.get(), Rng(2));

  // With c = c_i = 0: c_i+ = (θ - w+)/(K η_l) = -Δw / (K η_l).
  const float inv = 1.0f / (static_cast<float>(msg.steps_run) *
                            local.learning_rate);
  const auto& c_i = algo.client_control(2);
  for (size_t k = 0; k < c_i.size(); ++k) {
    EXPECT_NEAR(c_i[k], -msg.delta[k] * inv, 1e-5f);
    EXPECT_NEAR(msg.delta2[k], c_i[k], 1e-6f);  // Δc from zero init
  }
}

TEST(ScaffoldTest, ServerControlUpdateScalesByParticipation) {
  QuadraticProblem problem(Spec());  // m = 6
  Scaffold algo(Local());
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);

  UpdateMessage m1, m2, m3;
  for (UpdateMessage* m : {&m1, &m2, &m3}) {
    m->delta.assign(8, 0.0f);
    m->delta2.assign(8, 1.0f);
  }
  algo.ServerUpdate({m1, m2, m3}, 0, &theta);
  // c += (|S|/m) * mean(Δc) = (3/6) * 1 = 0.5.
  for (float v : algo.server_control()) EXPECT_FLOAT_EQ(v, 0.5f);
}

TEST(ScaffoldTest, FirstRoundMatchesFedAvgGivenZeroControls) {
  // With all controls zero the correction term vanishes, so the first
  // ClientUpdate must follow the FedAvg trajectory exactly.
  QuadraticProblem problem(Spec());
  Scaffold algo(Local());
  std::vector<float> theta(8, 1.0f);
  algo.Setup(Ctx(problem), theta);
  auto lp = problem.MakeLocalProblem(1, 0);
  const UpdateMessage msg = algo.ClientUpdate(1, 0, theta, lp.get(), Rng(3));

  std::vector<float> w = theta;
  std::vector<float> grad(8);
  for (int e = 0; e < 3; ++e) {
    problem.ClientGradient(1, w, grad);
    vec::Axpy(-0.05f, grad, std::span<float>(w));
  }
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(msg.delta[i], w[i] - theta[i], 1e-5f);
  }
}

TEST(ScaffoldTest, ConvergesOnHeterogeneousQuadratic) {
  QuadraticProblem problem(Spec());
  Scaffold algo(Local());
  UniformFractionSelector selector(problem.num_clients(), 0.5);
  SimulationConfig config;
  config.max_rounds = 250;
  config.seed = 9;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_LT(problem.DistanceToOptimum(sim.theta()), 0.2);
}

TEST(ScaffoldTest, RequiresControlDeltasInServerUpdate) {
  QuadraticProblem problem(Spec());
  Scaffold algo(Local());
  std::vector<float> theta(8, 0.0f);
  algo.Setup(Ctx(problem), theta);
  UpdateMessage bad;
  bad.delta.assign(8, 0.0f);  // missing delta2
  EXPECT_DEATH(algo.ServerUpdate({bad}, 0, &theta), "control deltas");
}

}  // namespace
}  // namespace fedadmm
