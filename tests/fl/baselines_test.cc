/// Unit tests of the FedSGD / FedAvg / FedProx update rules on analytic
/// quadratic problems, where expected behaviour is checkable in closed form.

#include <gtest/gtest.h>

#include "fl/algorithms/fedavg.h"
#include "fl/algorithms/fedprox.h"
#include "fl/algorithms/fedsgd.h"
#include "fl/quadratic_problem.h"
#include "fl/selection.h"
#include "fl/simulation.h"
#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec Spec(double heterogeneity = 1.0) {
  QuadraticSpec spec;
  spec.num_clients = 8;
  spec.dim = 10;
  spec.heterogeneity = heterogeneity;
  spec.seed = 21;
  return spec;
}

AlgorithmContext Ctx(const QuadraticProblem& p) {
  AlgorithmContext ctx;
  ctx.num_clients = p.num_clients();
  ctx.dim = p.dim();
  return ctx;
}

TEST(FedSgdTest, ClientUploadsExactGradient) {
  QuadraticProblem problem(Spec());
  FedSgd algo(0.1f);
  std::vector<float> theta(10, 0.5f);
  algo.Setup(Ctx(problem), theta);

  auto local = problem.MakeLocalProblem(3, 0);
  const UpdateMessage msg =
      algo.ClientUpdate(3, 0, theta, local.get(), Rng(1));
  std::vector<float> expected(10);
  problem.ClientGradient(3, theta, expected);
  EXPECT_EQ(msg.delta, expected);
  EXPECT_EQ(msg.client_id, 3);
  EXPECT_EQ(msg.steps_run, 1);
}

TEST(FedSgdTest, ServerAppliesAveragedGradient) {
  QuadraticProblem problem(Spec());
  FedSgd algo(0.5f);
  std::vector<float> theta(10, 0.0f);
  algo.Setup(Ctx(problem), theta);

  UpdateMessage m1, m2;
  m1.delta.assign(10, 1.0f);
  m2.delta.assign(10, 3.0f);
  algo.ServerUpdate({m1, m2}, 0, &theta);
  // θ -= 0.5 * mean([1, 3]) = 0.5 * 2 = 1.
  for (float v : theta) EXPECT_FLOAT_EQ(v, -1.0f);
}

TEST(FedSgdTest, ConvergesOnQuadraticWithFullParticipation) {
  QuadraticProblem problem(Spec());
  FedSgd algo(0.1f);
  FullParticipationSelector selector(problem.num_clients());
  SimulationConfig config;
  config.max_rounds = 300;
  config.seed = 5;
  config.num_threads = 2;
  Simulation sim(&problem, &algo, &selector, config);
  auto history = sim.Run();
  ASSERT_TRUE(history.ok());
  EXPECT_LT(problem.DistanceToOptimum(sim.theta()), 0.05);
}

TEST(FedAvgTest, DeltaIsLocalModelMinusTheta) {
  QuadraticProblem problem(Spec());
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 0;
  local.max_epochs = 3;
  FedAvg algo(local);
  std::vector<float> theta(10, 1.0f);
  algo.Setup(Ctx(problem), theta);

  auto lp = problem.MakeLocalProblem(0, 0);
  const UpdateMessage msg = algo.ClientUpdate(0, 0, theta, lp.get(), Rng(2));
  // Replay the same three GD steps manually.
  std::vector<float> w = theta;
  std::vector<float> grad(10);
  for (int e = 0; e < 3; ++e) {
    problem.ClientGradient(0, w, grad);
    vec::Axpy(-0.05f, grad, std::span<float>(w));
  }
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(msg.delta[i], w[i] - theta[i], 1e-5f);
  }
  EXPECT_EQ(msg.epochs_run, 3);
}

TEST(FedAvgTest, ServerAveragesDeltas) {
  QuadraticProblem problem(Spec());
  LocalTrainSpec local;
  FedAvg algo(local);
  std::vector<float> theta(10, 0.0f);
  algo.Setup(Ctx(problem), theta);
  UpdateMessage m1, m2;
  m1.delta.assign(10, 2.0f);
  m2.delta.assign(10, 4.0f);
  algo.ServerUpdate({m1, m2}, 0, &theta);
  for (float v : theta) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(FedAvgTest, FixedEpochsIgnoreHeterogeneityFlagWhenOff) {
  QuadraticProblem problem(Spec());
  LocalTrainSpec local;
  local.max_epochs = 4;
  local.variable_epochs = false;
  FedAvg algo(local);
  std::vector<float> theta(10, 0.0f);
  algo.Setup(Ctx(problem), theta);
  for (int round = 0; round < 5; ++round) {
    auto lp = problem.MakeLocalProblem(1, 0);
    const UpdateMessage msg =
        algo.ClientUpdate(1, round, theta, lp.get(), Rng(round));
    EXPECT_EQ(msg.epochs_run, 4);
  }
}

TEST(FedProxTest, ProximalTermAnchorsToTheta) {
  QuadraticProblem problem(Spec(/*heterogeneity=*/3.0));
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 0;
  local.max_epochs = 20;
  local.variable_epochs = false;

  std::vector<float> theta(10, 0.0f);
  auto run = [&](float rho) {
    FedProx algo(local, rho);
    AlgorithmContext ctx;
    ctx.num_clients = problem.num_clients();
    ctx.dim = problem.dim();
    algo.Setup(ctx, theta);
    auto lp = problem.MakeLocalProblem(0, 0);
    const UpdateMessage msg =
        algo.ClientUpdate(0, 0, theta, lp.get(), Rng(3));
    return vec::SquaredL2Norm(msg.delta);  // ||w+ - θ||²
  };
  // Stronger proximal pull keeps the local model closer to θ.
  EXPECT_GT(run(0.0f), run(1.0f));
  EXPECT_GT(run(1.0f), run(10.0f));
}

TEST(FedProxTest, RhoZeroMatchesFedAvgTrajectory) {
  QuadraticProblem problem(Spec());
  LocalTrainSpec local;
  local.learning_rate = 0.05f;
  local.batch_size = 2;
  local.max_epochs = 3;
  local.variable_epochs = false;

  FedProx prox(local, /*rho=*/0.0f);
  FedAvg avg(local);
  std::vector<float> theta(10, 0.7f);
  prox.Setup(Ctx(problem), theta);
  avg.Setup(Ctx(problem), theta);

  auto lp1 = problem.MakeLocalProblem(2, 0);
  auto lp2 = problem.MakeLocalProblem(2, 0);
  const UpdateMessage m_prox =
      prox.ClientUpdate(2, 0, theta, lp1.get(), Rng(4));
  const UpdateMessage m_avg = avg.ClientUpdate(2, 0, theta, lp2.get(), Rng(4));
  ASSERT_EQ(m_prox.delta.size(), m_avg.delta.size());
  for (size_t i = 0; i < m_prox.delta.size(); ++i) {
    EXPECT_NEAR(m_prox.delta[i], m_avg.delta[i], 1e-6f);
  }
}

TEST(FedProxTest, VariableEpochsVaryAcrossRoundsAndClients) {
  QuadraticProblem problem(Spec());
  LocalTrainSpec local;
  local.max_epochs = 10;
  local.variable_epochs = true;
  FedProx algo(local, 0.1f);
  std::vector<float> theta(10, 0.0f);
  algo.Setup(Ctx(problem), theta);

  std::set<int> epoch_counts;
  for (int round = 0; round < 20; ++round) {
    auto lp = problem.MakeLocalProblem(round % 8, 0);
    const UpdateMessage msg = algo.ClientUpdate(
        round % 8, round, theta, lp.get(), Rng(1000 + round));
    EXPECT_GE(msg.epochs_run, 1);
    EXPECT_LE(msg.epochs_run, 10);
    epoch_counts.insert(msg.epochs_run);
  }
  EXPECT_GT(epoch_counts.size(), 2u);  // actually varies
}

TEST(BaselineBytesTest, SingleVectorUploadAndDownload) {
  QuadraticProblem problem(Spec());
  LocalTrainSpec local;
  FedAvg avg(local);
  FedProx prox(local, 0.1f);
  FedSgd sgd(0.1f);
  std::vector<float> theta(10, 0.0f);
  for (FederatedAlgorithm* algo :
       std::initializer_list<FederatedAlgorithm*>{&avg, &prox, &sgd}) {
    algo->Setup(Ctx(problem), theta);
    EXPECT_EQ(algo->DownloadBytesPerClient(), 10 * 4);
    auto lp = problem.MakeLocalProblem(0, 0);
    const UpdateMessage msg = algo->ClientUpdate(0, 0, theta, lp.get(), Rng(5));
    EXPECT_EQ(msg.UploadBytes(), 10 * 4);
  }
}

}  // namespace
}  // namespace fedadmm
