#include "fl/quadratic_problem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/vec.h"

namespace fedadmm {
namespace {

QuadraticSpec SmallSpec() {
  QuadraticSpec spec;
  spec.num_clients = 5;
  spec.dim = 8;
  spec.seed = 42;
  return spec;
}

TEST(SolveDenseTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5].
  auto x = SolveDense({2, 1, 1, 3}, 2, {3, 5}).ValueOrDie();
  EXPECT_NEAR(x[0], 0.8, 1e-9);
  EXPECT_NEAR(x[1], 1.4, 1e-9);
}

TEST(SolveDenseTest, NeedsPivoting) {
  // Leading zero forces a row swap.
  auto x = SolveDense({0, 1, 1, 0}, 2, {2, 3}).ValueOrDie();
  EXPECT_NEAR(x[0], 3.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(SolveDenseTest, RejectsSingular) {
  EXPECT_TRUE(SolveDense({1, 2, 2, 4}, 2, {1, 2}).status().IsInvalidArgument());
}

TEST(QuadraticProblemTest, OptimumIsStationary) {
  QuadraticProblem problem(SmallSpec());
  std::vector<float> opt(problem.optimum().begin(), problem.optimum().end());
  // Sum of client gradients at the optimum must vanish.
  std::vector<float> grad(static_cast<size_t>(problem.dim()));
  std::vector<double> total(static_cast<size_t>(problem.dim()), 0.0);
  for (int i = 0; i < problem.num_clients(); ++i) {
    problem.ClientGradient(i, opt, grad);
    for (size_t k = 0; k < total.size(); ++k) total[k] += grad[k];
  }
  for (double v : total) EXPECT_NEAR(v, 0.0, 1e-3);
}

TEST(QuadraticProblemTest, OptimumMinimizesGlobalObjective) {
  QuadraticProblem problem(SmallSpec());
  std::vector<float> opt(problem.optimum().begin(), problem.optimum().end());
  const double at_opt = problem.GlobalObjective(opt);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> perturbed = opt;
    for (auto& v : perturbed) v += static_cast<float>(rng.Normal(0.0, 0.3));
    EXPECT_GE(problem.GlobalObjective(perturbed), at_opt - 1e-6);
  }
}

TEST(QuadraticProblemTest, GradientMatchesFiniteDifference) {
  QuadraticProblem problem(SmallSpec());
  Rng rng(5);
  std::vector<float> w(static_cast<size_t>(problem.dim()));
  for (auto& v : w) v = static_cast<float>(rng.Normal(0.0, 1.0));
  std::vector<float> grad(w.size());
  problem.ClientGradient(2, w, grad);

  const double eps = 1e-3;
  for (size_t k = 0; k < w.size(); ++k) {
    std::vector<float> wp = w, wm = w;
    wp[k] += static_cast<float>(eps);
    wm[k] -= static_cast<float>(eps);
    const double numeric =
        (problem.ClientObjective(2, wp) - problem.ClientObjective(2, wm)) /
        (2 * eps);
    EXPECT_NEAR(grad[k], numeric, 1e-2);
  }
}

TEST(QuadraticProblemTest, HeterogeneityDispersesClientOptima) {
  QuadraticSpec homo = SmallSpec();
  homo.heterogeneity = 0.0;
  QuadraticSpec hetero = SmallSpec();
  hetero.heterogeneity = 3.0;

  auto local_optimum_spread = [](const QuadraticSpec& spec) {
    QuadraticProblem problem(spec);
    // Gradient norm of client 0 at the *global* optimum measures how far
    // the global optimum is from the client's own optimum.
    std::vector<float> opt(problem.optimum().begin(),
                           problem.optimum().end());
    std::vector<float> grad(static_cast<size_t>(problem.dim()));
    problem.ClientGradient(0, opt, grad);
    return vec::L2Norm(grad);
  };
  EXPECT_LT(local_optimum_spread(homo), 1e-3);
  EXPECT_GT(local_optimum_spread(hetero), 0.1);
}

TEST(QuadraticProblemTest, EvaluateAccuracyIncreasesTowardOptimum) {
  QuadraticProblem problem(SmallSpec());
  std::vector<float> opt(problem.optimum().begin(), problem.optimum().end());
  std::vector<float> far = opt;
  for (auto& v : far) v += 2.0f;
  const EvalResult at_opt = problem.Evaluate(opt, 0);
  const EvalResult at_far = problem.Evaluate(far, 0);
  EXPECT_GT(at_opt.accuracy, 0.99);
  EXPECT_LT(at_far.accuracy, at_opt.accuracy);
  EXPECT_LT(at_opt.loss, at_far.loss);
}

TEST(QuadraticProblemTest, LocalProblemGradientDescentConverges) {
  QuadraticProblem problem(SmallSpec());
  auto local = problem.MakeLocalProblem(1, 0);
  EXPECT_EQ(local->dim(), 8);
  EXPECT_EQ(local->num_samples(), SmallSpec().pseudo_samples);

  std::vector<float> w(8, 0.0f);
  std::vector<float> grad(8);
  const float lr = 0.2f;
  for (int step = 0; step < 400; ++step) {
    local->FullLossGradient(w, grad);
    vec::Axpy(-lr, grad, std::span<float>(w));
  }
  local->FullLossGradient(w, grad);
  EXPECT_LT(vec::L2Norm(grad), 1e-3);
}

TEST(QuadraticProblemTest, EpochBatchesScaleWithBatchSize) {
  QuadraticProblem problem(SmallSpec());  // pseudo_samples = 8
  auto local = problem.MakeLocalProblem(0, 0);
  Rng rng(1);
  EXPECT_EQ(local->EpochBatches(0, &rng).size(), 1u);   // full batch
  EXPECT_EQ(local->EpochBatches(2, &rng).size(), 4u);   // 8/2 steps
  EXPECT_EQ(local->EpochBatches(3, &rng).size(), 3u);   // ceil(8/3)
  EXPECT_EQ(local->EpochBatches(100, &rng).size(), 1u);
}

TEST(QuadraticProblemTest, LipschitzBoundDominatesCurvature) {
  QuadraticSpec spec = SmallSpec();
  QuadraticProblem problem(spec);
  EXPECT_GE(problem.LipschitzBound(), spec.min_curvature);
}

TEST(QuadraticProblemTest, DeterministicForSeed) {
  QuadraticProblem a(SmallSpec()), b(SmallSpec());
  EXPECT_EQ(a.optimum(), b.optimum());
}

}  // namespace
}  // namespace fedadmm
