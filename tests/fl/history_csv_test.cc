// The shared per-round CSV schema (fl/history_csv.h): canonical columns,
// bitwise round-trip through History::WriteCsv / ReadHistoryCsv, and the
// context-column writer the benches use.

#include "fl/history_csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace fedadmm {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

RoundRecord SampleRecord(int round) {
  RoundRecord r;
  r.round = round;
  r.num_selected = 9;
  r.train_loss = 0.12345678901234567;
  r.test_accuracy = round % 2 == 0
                        ? 0.875
                        : std::numeric_limits<double>::quiet_NaN();
  r.test_loss = 1.5e-3;
  r.upload_bytes = 123456789012345LL;
  r.download_bytes = 987654321;
  r.upload_bytes_raw = 223456789012345LL;
  r.download_bytes_raw = 1987654321;
  r.wall_seconds = 0.03125;
  r.sim_seconds = 7234.5678901234567;
  r.num_dropped = 3;
  r.num_admitted_partial = 1;
  r.staleness_mean = 2.6666666666666665;
  r.staleness_max = 7;
  r.state_bytes_resident = 3456789012345LL;
  return r;
}

// NaN-aware bitwise equality.
bool Same(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void ExpectRecordsEqual(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.num_selected, b.num_selected);
  EXPECT_TRUE(Same(a.train_loss, b.train_loss));
  EXPECT_TRUE(Same(a.test_accuracy, b.test_accuracy));
  EXPECT_TRUE(Same(a.test_loss, b.test_loss));
  EXPECT_EQ(a.upload_bytes, b.upload_bytes);
  EXPECT_EQ(a.download_bytes, b.download_bytes);
  EXPECT_EQ(a.upload_bytes_raw, b.upload_bytes_raw);
  EXPECT_EQ(a.download_bytes_raw, b.download_bytes_raw);
  EXPECT_TRUE(Same(a.wall_seconds, b.wall_seconds));
  EXPECT_TRUE(Same(a.sim_seconds, b.sim_seconds));
  EXPECT_EQ(a.num_dropped, b.num_dropped);
  EXPECT_EQ(a.num_admitted_partial, b.num_admitted_partial);
  EXPECT_TRUE(Same(a.staleness_mean, b.staleness_mean));
  EXPECT_EQ(a.staleness_max, b.staleness_max);
  EXPECT_EQ(a.state_bytes_resident, b.state_bytes_resident);
}

TEST(HistoryCsvTest, RowFormatterRoundTripsBitwise) {
  const RoundRecord record = SampleRecord(3);
  const auto parsed = RoundFromCsvRow(RoundCsvRow(record));
  ASSERT_TRUE(parsed.ok());
  ExpectRecordsEqual(record, parsed.ValueOrDie());
}

TEST(HistoryCsvTest, RowHasOneFieldPerColumn) {
  EXPECT_EQ(RoundCsvRow(SampleRecord(0)).size(), RoundCsvColumns().size());
}

TEST(HistoryCsvTest, HistoryWriteReadRoundTrip) {
  History history;
  for (int round = 0; round < 5; ++round) history.Add(SampleRecord(round));
  const std::string path = TempPath("history_roundtrip.csv");
  ASSERT_TRUE(history.WriteCsv(path).ok());

  const auto loaded = ReadHistoryCsv(path);
  ASSERT_TRUE(loaded.ok());
  const History& back = loaded.ValueOrDie();
  ASSERT_EQ(back.size(), history.size());
  for (int i = 0; i < history.size(); ++i) {
    ExpectRecordsEqual(history.records()[static_cast<size_t>(i)],
                       back.records()[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(HistoryCsvTest, ContextColumnsPrefixEveryRow) {
  const std::string path = TempPath("history_context.csv");
  HistoryCsvWriter writer;
  ASSERT_TRUE(writer.Open(path, {"preset", "algorithm"}).ok());
  ASSERT_TRUE(writer.Append({"cellular", "FedADMM"}, SampleRecord(0)).ok());
  ASSERT_TRUE(writer.Append({"cellular", "FedAvg"}, SampleRecord(1)).ok());
  // Wrong context arity is rejected, not silently misaligned.
  EXPECT_FALSE(writer.Append({"cellular"}, SampleRecord(2)).ok());
  ASSERT_TRUE(writer.Close().ok());

  const auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  const auto& parsed = rows.ValueOrDie();
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0][0], "preset");
  EXPECT_EQ(parsed[0][1], "algorithm");
  EXPECT_EQ(parsed[0].size(), 2 + RoundCsvColumns().size());
  EXPECT_EQ(parsed[1][0], "cellular");
  EXPECT_EQ(parsed[2][1], "FedAvg");
  std::remove(path.c_str());
}

TEST(HistoryCsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(RoundFromCsvRow({"1", "2"}).ok());
  std::vector<std::string> fields = RoundCsvRow(SampleRecord(0));
  fields[2] = "not-a-number";
  EXPECT_FALSE(RoundFromCsvRow(fields).ok());
}

TEST(HistoryCsvTest, ReadRejectsForeignHeader) {
  const std::string path = TempPath("history_bad_header.csv");
  {
    CsvWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteRow({"round", "something_else"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_FALSE(ReadHistoryCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedadmm
