#include "fl/selection.h"

#include <gtest/gtest.h>

#include <set>

namespace fedadmm {
namespace {

TEST(UniformFractionTest, SelectsTenPercent) {
  UniformFractionSelector sel(100, 0.1);
  EXPECT_EQ(sel.clients_per_round(), 10);
  Rng rng(1);
  const auto s = sel.Select(0, &rng);
  EXPECT_EQ(s.size(), 10u);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int c : s) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 100);
  }
}

TEST(UniformFractionTest, AtLeastOneClient) {
  UniformFractionSelector sel(7, 0.01);
  EXPECT_EQ(sel.clients_per_round(), 1);
  Rng rng(2);
  EXPECT_EQ(sel.Select(0, &rng).size(), 1u);
}

TEST(UniformFractionTest, FullFractionSelectsAll) {
  UniformFractionSelector sel(12, 1.0);
  Rng rng(3);
  const auto s = sel.Select(0, &rng);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(UniformFractionTest, EveryClientIsEventuallySelected) {
  // Infinitely-often participation (Remark 2): over many rounds with
  // uniform sampling, all clients must appear.
  UniformFractionSelector sel(30, 0.1);
  Rng rng(4);
  std::set<int> seen;
  for (int round = 0; round < 200; ++round) {
    for (int c : sel.Select(round, &rng)) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(UniformFractionTest, SelectionIsUnbiased) {
  UniformFractionSelector sel(20, 0.25);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  const int rounds = 4000;
  for (int r = 0; r < rounds; ++r) {
    for (int c : sel.Select(r, &rng)) ++counts[static_cast<size_t>(c)];
  }
  // Expected participation: rounds * 5/20 = 1000 per client.
  for (int c : counts) EXPECT_NEAR(c, 1000, 120);
}

TEST(UniformFractionTest, NameMentionsFraction) {
  EXPECT_NE(UniformFractionSelector(10, 0.1).name().find("0.1"),
            std::string::npos);
}

TEST(BernoulliSelectorTest, NeverReturnsEmpty) {
  BernoulliSelector sel(std::vector<double>(5, 0.05));
  Rng rng(6);
  for (int round = 0; round < 200; ++round) {
    EXPECT_FALSE(sel.Select(round, &rng).empty());
  }
}

TEST(BernoulliSelectorTest, RespectsHeterogeneousProbabilities) {
  // Client 0 participates with p=0.9, client 1 with p=0.1.
  BernoulliSelector sel({0.9, 0.1, 0.5});
  Rng rng(7);
  int c0 = 0, c1 = 0;
  const int rounds = 2000;
  for (int r = 0; r < rounds; ++r) {
    for (int c : sel.Select(r, &rng)) {
      if (c == 0) ++c0;
      if (c == 1) ++c1;
    }
  }
  EXPECT_GT(c0, c1 * 4);
}

TEST(BernoulliSelectorTest, NumClients) {
  BernoulliSelector sel({0.5, 0.5, 0.5, 0.5});
  EXPECT_EQ(sel.num_clients(), 4);
}

TEST(FullParticipationTest, SelectsEveryClientEveryRound) {
  FullParticipationSelector sel(6);
  Rng rng(8);
  const auto s = sel.Select(0, &rng);
  EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(sel.Select(17, &rng), s);
}

}  // namespace
}  // namespace fedadmm
