#include "fl/selection.h"

#include <gtest/gtest.h>

#include <set>

#include "sys/profiles.h"

namespace fedadmm {
namespace {

TEST(UniformFractionTest, SelectsTenPercent) {
  UniformFractionSelector sel(100, 0.1);
  EXPECT_EQ(sel.clients_per_round(), 10);
  Rng rng(1);
  const auto s = sel.Select(0, &rng);
  EXPECT_EQ(s.size(), 10u);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int c : s) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 100);
  }
}

TEST(UniformFractionTest, AtLeastOneClient) {
  UniformFractionSelector sel(7, 0.01);
  EXPECT_EQ(sel.clients_per_round(), 1);
  Rng rng(2);
  EXPECT_EQ(sel.Select(0, &rng).size(), 1u);
}

TEST(UniformFractionTest, FullFractionSelectsAll) {
  UniformFractionSelector sel(12, 1.0);
  Rng rng(3);
  const auto s = sel.Select(0, &rng);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(UniformFractionTest, EveryClientIsEventuallySelected) {
  // Infinitely-often participation (Remark 2): over many rounds with
  // uniform sampling, all clients must appear.
  UniformFractionSelector sel(30, 0.1);
  Rng rng(4);
  std::set<int> seen;
  for (int round = 0; round < 200; ++round) {
    for (int c : sel.Select(round, &rng)) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(UniformFractionTest, SelectionIsUnbiased) {
  UniformFractionSelector sel(20, 0.25);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  const int rounds = 4000;
  for (int r = 0; r < rounds; ++r) {
    for (int c : sel.Select(r, &rng)) ++counts[static_cast<size_t>(c)];
  }
  // Expected participation: rounds * 5/20 = 1000 per client.
  for (int c : counts) EXPECT_NEAR(c, 1000, 120);
}

TEST(UniformFractionTest, NameMentionsFraction) {
  EXPECT_NE(UniformFractionSelector(10, 0.1).name().find("0.1"),
            std::string::npos);
}

TEST(BernoulliSelectorTest, NeverReturnsEmpty) {
  BernoulliSelector sel(std::vector<double>(5, 0.05));
  Rng rng(6);
  for (int round = 0; round < 200; ++round) {
    EXPECT_FALSE(sel.Select(round, &rng).empty());
  }
}

TEST(BernoulliSelectorTest, RespectsHeterogeneousProbabilities) {
  // Client 0 participates with p=0.9, client 1 with p=0.1.
  BernoulliSelector sel({0.9, 0.1, 0.5});
  Rng rng(7);
  int c0 = 0, c1 = 0;
  const int rounds = 2000;
  for (int r = 0; r < rounds; ++r) {
    for (int c : sel.Select(r, &rng)) {
      if (c == 0) ++c0;
      if (c == 1) ++c1;
    }
  }
  EXPECT_GT(c0, c1 * 4);
}

TEST(BernoulliSelectorTest, NumClients) {
  BernoulliSelector sel({0.5, 0.5, 0.5, 0.5});
  EXPECT_EQ(sel.num_clients(), 4);
}

TEST(UniformFractionTest, RoundingAtSmallFractions) {
  // lround semantics: 0.04 * 30 = 1.2 rounds to 1; 0.05 * 30 = 1.5 rounds
  // to 2; tiny fractions clamp up to 1 so a round is never empty.
  EXPECT_EQ(UniformFractionSelector(30, 0.04).clients_per_round(), 1);
  EXPECT_EQ(UniformFractionSelector(30, 0.05).clients_per_round(), 2);
  EXPECT_EQ(UniformFractionSelector(1000, 0.0001).clients_per_round(), 1);
  // The rounded count never exceeds the population.
  EXPECT_EQ(UniformFractionSelector(3, 0.99).clients_per_round(), 3);
}

TEST(BernoulliSelectorTest, EmptyDrawRedrawsDeterministically) {
  // With p small enough that the first draw often comes up empty, the
  // redraw loop must still terminate, return a valid set, and replay
  // identically for the same stream.
  BernoulliSelector sel(std::vector<double>(3, 0.01));
  Rng a(123), b(123);
  for (int round = 0; round < 50; ++round) {
    const auto sa = sel.Select(round, &a);
    ASSERT_FALSE(sa.empty());
    for (int c : sa) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 3);
    }
    // Same stream state => same selection (the redraw count is part of the
    // deterministic draw sequence).
    EXPECT_EQ(sa, sel.Select(round, &b));
  }
}

TEST(AvailabilityFilterTest, DeterministicUnderFixedSeed) {
  const FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", 20, 5).ValueOrDie();
  UniformFractionSelector base_a(20, 0.5), base_b(20, 0.5);
  AvailabilityFilterSelector sel_a(&base_a, &fleet);
  AvailabilityFilterSelector sel_b(&base_b, &fleet);
  Rng rng_a(77), rng_b(77);
  for (int round = 0; round < 40; ++round) {
    EXPECT_EQ(sel_a.Select(round, &rng_a), sel_b.Select(round, &rng_b))
        << "diverged at round " << round;
  }
}

TEST(AvailabilityFilterTest, FiltersToSubsetOfBaseSelection) {
  const FleetModel fleet =
      FleetModel::FromPreset("cross-device-churn", 20, 5).ValueOrDie();
  UniformFractionSelector base(20, 0.5);
  AvailabilityFilterSelector sel(&base, &fleet);
  EXPECT_EQ(sel.num_clients(), 20);
  Rng rng(9);
  int total = 0;
  for (int round = 0; round < 100; ++round) {
    const auto s = sel.Select(round, &rng);
    ASSERT_FALSE(s.empty());
    EXPECT_LE(s.size(), 10u);  // never more than the base picks
    std::set<int> unique(s.begin(), s.end());
    EXPECT_EQ(unique.size(), s.size());
    total += static_cast<int>(s.size());
  }
  // Churn availability is 0.1-0.6, so the filter must actually bite.
  EXPECT_LT(total, 100 * 10);
}

TEST(AvailabilityFilterTest, AllZeroTraceFallsBackToBaseSelection) {
  ClientSystemProfile dark;
  dark.device.availability_trace = {0};  // never reachable
  FleetModel fleet({dark, dark, dark});
  UniformFractionSelector base(3, 1.0);
  AvailabilityFilterSelector sel(&base, &fleet);
  Rng rng(4);
  // Rather than stalling, the selector proceeds with the unfiltered set.
  EXPECT_EQ(sel.Select(0, &rng).size(), 3u);
}

TEST(AvailabilityFilterTest, NameMentionsFleetAndBase) {
  const FleetModel fleet = FleetModel::FromPreset("uniform", 5, 1).ValueOrDie();
  UniformFractionSelector base(5, 0.4);
  AvailabilityFilterSelector sel(&base, &fleet);
  EXPECT_NE(sel.name().find("uniform"), std::string::npos);
  EXPECT_NE(sel.name().find("UniformFraction"), std::string::npos);
}

TEST(FullParticipationTest, SelectsEveryClientEveryRound) {
  FullParticipationSelector sel(6);
  Rng rng(8);
  const auto s = sel.Select(0, &rng);
  EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(sel.Select(17, &rng), s);
}

}  // namespace
}  // namespace fedadmm
